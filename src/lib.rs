#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Facade crate for the reproduction of *Insertion and Promotion for
//! Tree-Based PseudoLRU Last-Level Caches* (Jiménez, MICRO 2013).
//!
//! This crate re-exports the workspace's public API under one roof:
//!
//! * [`sim`] — cache model, replacement-policy trait, set-dueling.
//! * [`gippr`] — the paper's contribution: PLRU position algebra, IPVs,
//!   GIPLR/GIPPR/DGIPPR.
//! * [`baselines`] — LRU, Random, FIFO, DIP, SRRIP/BRRIP/DRRIP, PDP, SHiP.
//! * [`traces`] — trace container format and synthetic SPEC CPU 2006
//!   workload models.
//! * [`model`] — memory-hierarchy simulation, CPI models, Belady MIN.
//! * [`evolve`] — genetic algorithm / random search over IPVs.
//! * [`harness`] — per-figure experiment drivers.
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! experiment index.

pub use baselines;
pub use evolve;
pub use gippr;
pub use harness;
pub use mem_model as model;
pub use sim_core as sim;
pub use traces;
