//! Cross-implementation consistency tests: independently written policies
//! must agree where theory says they coincide.

use pseudolru_ipv::baselines::TrueLru;
use pseudolru_ipv::gippr::{GiplrPolicy, GipprPolicy, Ipv, PlruPolicy};
use pseudolru_ipv::sim::{Access, AccessContext, CacheGeometry, SetAssocCache};

fn pseudorandom_blocks(n: usize, space: u64, seed: u64) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % space
        })
        .collect()
}

#[test]
fn giplr_with_lru_vector_equals_timestamp_lru() {
    // Two structurally different LRU implementations (recency stack with
    // shift semantics vs. timestamps) must be access-for-access identical.
    let geom = CacheGeometry::from_sets(16, 8, 64).unwrap();
    let mut stack = SetAssocCache::new(
        geom,
        Box::new(GiplrPolicy::new(&geom, Ipv::lru(8)).unwrap()),
    );
    let mut stamp = SetAssocCache::new(geom, Box::new(TrueLru::new(&geom)));
    for blk in pseudorandom_blocks(20_000, 1024, 42) {
        let ctx = AccessContext::blank();
        let a = stack.access_block(blk, &ctx);
        let b = stamp.access_block(blk, &ctx);
        assert_eq!(a.hit, b.hit, "block {blk}");
        assert_eq!(a.evicted, b.evicted, "block {blk}");
    }
}

#[test]
fn gippr_with_zero_vector_equals_plain_plru() {
    let geom = CacheGeometry::from_sets(32, 16, 64).unwrap();
    let mut gippr = SetAssocCache::new(
        geom,
        Box::new(GipprPolicy::new(&geom, Ipv::lru(16)).unwrap()),
    );
    let mut plru = SetAssocCache::new(geom, Box::new(PlruPolicy::new(&geom)));
    for blk in pseudorandom_blocks(30_000, 4096, 7) {
        let ctx = AccessContext::blank();
        let a = gippr.access_block(blk, &ctx);
        let b = plru.access_block(blk, &ctx);
        assert_eq!(a, b, "block {blk}");
    }
}

#[test]
fn plru_never_evicts_most_recently_touched() {
    // The PLRU guarantee the paper cites: the PLRU block "is guaranteed
    // not to be the MRU block".
    let geom = CacheGeometry::from_sets(4, 16, 64).unwrap();
    let mut cache = SetAssocCache::new(geom, Box::new(PlruPolicy::new(&geom)));
    let mut last_touched: Option<u64> = None;
    for blk in pseudorandom_blocks(10_000, 256, 99) {
        let out = cache.access_block(blk, &AccessContext::blank());
        if let (Some(last), Some(ev)) = (last_touched, out.evicted) {
            // The immediately previously touched block in the same set may
            // not be the victim.
            if geom.set_of_block(last) == geom.set_of_block(blk) {
                assert_ne!(ev.block_addr, last);
            }
        }
        last_touched = Some(blk);
    }
}

#[test]
fn trace_file_replay_is_bit_identical_to_direct_replay() {
    use pseudolru_ipv::traces::spec2006::Spec2006;
    use pseudolru_ipv::traces::{TraceReader, TraceWriter};

    let spec = Spec2006::Xalancbmk.workload().scaled_down(6);
    let accesses: Vec<Access> = spec.generator(0).take(30_000).collect();

    // Serialize through the container.
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf).unwrap();
    for a in &accesses {
        w.write(a).unwrap();
    }
    w.finish().unwrap();
    let replayed: Vec<Access> = TraceReader::new(&buf[..])
        .unwrap()
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(replayed, accesses);

    // Replay both through identical caches: identical stats.
    let geom = CacheGeometry::from_sets(64, 16, 64).unwrap();
    let mut direct = SetAssocCache::new(geom, Box::new(PlruPolicy::new(&geom)));
    let mut from_file = SetAssocCache::new(geom, Box::new(PlruPolicy::new(&geom)));
    for (a, b) in accesses.iter().zip(&replayed) {
        direct.access(a);
        from_file.access(b);
    }
    assert_eq!(direct.stats(), from_file.stats());
}

#[test]
fn dueling_converges_through_real_cache_traffic() {
    // Drive a DGIPPR cache with traffic that favors LRU-insertion (pure
    // streaming): followers must converge onto the PLRU-insertion vector.
    use pseudolru_ipv::gippr::{vectors, DgipprPolicy};
    let geom = CacheGeometry::from_sets(512, 16, 64).unwrap();
    let policy = DgipprPolicy::two_vector(&geom, vectors::wi_2dgippr()).unwrap();
    let mut cache = SetAssocCache::new(geom, Box::new(policy));
    // Stream far beyond capacity, repeatedly, so vector 0 (PLRU-insert)
    // retains blocks across wraps and vector 1 (PMRU-insert) does not.
    for round in 0..6 {
        let _ = round;
        for blk in 0..40_960u64 {
            cache.access_block(blk, &AccessContext::blank());
        }
    }
    // Inspect the winner through the policy name downcast-free interface:
    // re-run a fill in a follower set and check insertion position via
    // statistics instead — a streaming-favoring winner implies hits on
    // wrap-around. With 8192-line capacity vs 40960-block loop, PLRU
    // insertion retains ~20% of the loop.
    assert!(
        cache.stats().hit_ratio() > 0.05,
        "dueling retained part of the loop: {}",
        cache.stats().hit_ratio()
    );
}
