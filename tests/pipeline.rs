//! End-to-end integration tests: the full paper pipeline across crates —
//! workload synthesis → hierarchy capture → policy replay → measurement —
//! asserting the qualitative results the paper depends on.

use pseudolru_ipv::harness::{measure_min, measure_policy, policies, prepare_workloads, Scale};
use pseudolru_ipv::traces::spec2006::Spec2006;

#[test]
fn min_is_a_lower_bound_for_every_policy() {
    let scale = Scale::Micro;
    let workloads = prepare_workloads(
        scale,
        &[Spec2006::Libquantum, Spec2006::Mcf, Spec2006::DealII],
    );
    let geom = scale.hierarchy().llc;
    for w in &workloads {
        let min = measure_min(w, geom);
        for (name, factory) in policies::baseline_roster(3) {
            let m = measure_policy(w, &factory, geom);
            assert!(
                min.misses <= m.misses + 1e-9,
                "MIN beat by {name} on {}: {} vs {}",
                w.bench,
                min.misses,
                m.misses
            );
        }
        let dgippr = policies::dgippr(
            pseudolru_ipv::gippr::vectors::wi_4dgippr().to_vec(),
            "4-DGIPPR",
        );
        let m = measure_policy(w, &dgippr, geom);
        assert!(min.misses <= m.misses + 1e-9);
    }
}

#[test]
fn pseudolru_tracks_true_lru_closely() {
    // Paper Section 3.1: "PLRU provides performance almost equivalent to
    // full LRU".
    let scale = Scale::Micro;
    let workloads = prepare_workloads(
        scale,
        &[
            Spec2006::Mcf,
            Spec2006::Gcc,
            Spec2006::Sphinx3,
            Spec2006::DealII,
        ],
    );
    let geom = scale.hierarchy().llc;
    for w in &workloads {
        let plru = measure_policy(w, &policies::plru(), geom);
        let ratio = plru.normalized_misses(&w.lru);
        assert!(
            (0.85..1.15).contains(&ratio),
            "PLRU vs LRU on {}: {ratio}",
            w.bench
        );
    }
}

#[test]
fn adaptive_policies_win_on_thrash_and_yield_little_on_resident() {
    let scale = Scale::Micro;
    let workloads = prepare_workloads(
        scale,
        &[Spec2006::Libquantum, Spec2006::CactusADM, Spec2006::Gamess],
    );
    let geom = scale.hierarchy().llc;
    let dgippr = policies::dgippr(
        pseudolru_ipv::gippr::vectors::wi_4dgippr().to_vec(),
        "4-DGIPPR",
    );
    for w in &workloads {
        let m = measure_policy(w, &dgippr, geom);
        let ratio = m.normalized_misses(&w.lru);
        match w.bench {
            Spec2006::Libquantum | Spec2006::CactusADM => {
                assert!(ratio < 0.95, "{} should improve: {ratio}", w.bench)
            }
            _ => assert!(
                (0.8..1.2).contains(&ratio),
                "{} is cache-resident: {ratio}",
                w.bench
            ),
        }
    }
}

#[test]
fn dgippr_matches_drrip_class_performance_with_less_state() {
    // The paper's core claim, in miniature: across a mixed suite, 4-DGIPPR
    // lands in the same performance class as DRRIP while declaring less
    // than half the replacement state.
    let scale = Scale::Micro;
    let benches = [
        Spec2006::Libquantum,
        Spec2006::CactusADM,
        Spec2006::Mcf,
        Spec2006::Sphinx3,
        Spec2006::DealII,
        Spec2006::Gamess,
    ];
    let workloads = prepare_workloads(scale, &benches);
    let geom = scale.hierarchy().llc;
    let dgippr_factory = policies::dgippr(
        pseudolru_ipv::gippr::vectors::wi_4dgippr().to_vec(),
        "4-DGIPPR",
    );
    let mut dgippr_speedups = Vec::new();
    let mut drrip_speedups = Vec::new();
    for w in &workloads {
        dgippr_speedups.push(measure_policy(w, &dgippr_factory, geom).speedup_over(&w.lru));
        drrip_speedups.push(measure_policy(w, &policies::drrip(), geom).speedup_over(&w.lru));
    }
    let dg = pseudolru_ipv::harness::geometric_mean(&dgippr_speedups)
        .expect("speedups are positive and nonempty");
    let dr = pseudolru_ipv::harness::geometric_mean(&drrip_speedups)
        .expect("speedups are positive and nonempty");
    assert!(dg > 1.0, "DGIPPR beats LRU overall: {dg}");
    assert!(dg > dr - 0.05, "DGIPPR within DRRIP's class: {dg} vs {dr}");

    // State accounting (paper Section 3.6).
    let g = geom;
    let dgippr_policy = dgippr_factory(&g);
    let drrip_policy = policies::drrip()(&g);
    assert!(
        dgippr_policy.bits_per_set() * 2 <= drrip_policy.bits_per_set(),
        "DGIPPR uses less than half DRRIP's per-set state"
    );
}

#[test]
fn lru_insertion_dominates_on_pure_streaming() {
    // The motivating observation (Section 2.2): zero-reuse streams are
    // better inserted at LRU.
    let scale = Scale::Micro;
    let workloads = prepare_workloads(scale, &[Spec2006::Libquantum]);
    let geom = scale.hierarchy().llc;
    let lip = policies::giplr(pseudolru_ipv::gippr::Ipv::lru_insertion(16), "LIP");
    let m = measure_policy(&workloads[0], &lip, geom);
    assert!(
        m.normalized_misses(&workloads[0].lru) < 0.95,
        "LIP cuts misses on streaming: {}",
        m.normalized_misses(&workloads[0].lru)
    );
}

#[test]
fn dealii_style_workloads_punish_eager_eviction() {
    // The paper's regression case: on 447.dealII, DRRIP/PDP/DGIPPR all
    // increase misses over LRU.
    let scale = Scale::Micro;
    let workloads = prepare_workloads(scale, &[Spec2006::DealII]);
    let geom = scale.hierarchy().llc;
    let w = &workloads[0];
    let dgippr = policies::dgippr(
        pseudolru_ipv::gippr::vectors::wi_4dgippr().to_vec(),
        "4-DGIPPR",
    );
    let ratio = measure_policy(w, &dgippr, geom).normalized_misses(&w.lru);
    assert!(ratio > 1.0, "dealII regression reproduced: {ratio}");
}
