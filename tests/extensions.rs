//! Integration tests for the future-work extensions, end-to-end.

use pseudolru_ipv::baselines::{RripIpvPolicy, SdbpPolicy};
use pseudolru_ipv::gippr::{vectors, DgipprPolicy, Ipv};
use pseudolru_ipv::model::multicore::MulticoreHierarchy;
use pseudolru_ipv::model::prefetch::PrefetchConfig;
use pseudolru_ipv::model::{Hierarchy, HierarchyConfig, Inclusion};
use pseudolru_ipv::sim::{Access, AccessContext, CacheGeometry, SetAssocCache};
use pseudolru_ipv::traces::spec2006::Spec2006;

#[test]
fn bypass_extension_helps_on_streaming_and_never_caches_bypassed_blocks() {
    let geom = CacheGeometry::from_sets(512, 16, 64).unwrap();
    let base = DgipprPolicy::two_vector(&geom, vectors::wi_2dgippr()).unwrap();
    let with_bypass = DgipprPolicy::two_vector(&geom, vectors::wi_2dgippr())
        .unwrap()
        .with_bypass(32)
        .unwrap();
    let mut plain_cache = SetAssocCache::new(geom, Box::new(base));
    let mut bypass_cache = SetAssocCache::new(geom, Box::new(with_bypass));
    // A hot working set plus a dirty scan.
    let ws = 4096u64;
    let mut scan = 1 << 30;
    for _ in 0..20 {
        for b in 0..ws {
            let ctx = AccessContext {
                pc: 1,
                addr: b * 64,
                is_write: false,
            };
            plain_cache.access_block(b, &ctx);
            bypass_cache.access_block(b, &ctx);
        }
        for _ in 0..8192 {
            let ctx = AccessContext {
                pc: 2,
                addr: scan * 64,
                is_write: false,
            };
            plain_cache.access_block(scan, &ctx);
            bypass_cache.access_block(scan, &ctx);
            scan += 1;
        }
    }
    // Bypass must never be worse by more than noise, and should usually
    // help by keeping dead scan blocks out entirely.
    assert!(
        bypass_cache.stats().misses as f64 <= plain_cache.stats().misses as f64 * 1.02,
        "bypass {} vs plain {}",
        bypass_cache.stats().misses,
        plain_cache.stats().misses
    );
}

#[test]
fn rrip_ipv_and_gippr_agree_on_what_matters() {
    // The LIP-flavoured vectors of both substrates retain a thrash loop
    // that LRU-flavoured configurations lose.
    let geom = CacheGeometry::from_sets(64, 8, 64).unwrap();
    let gippr_lip = pseudolru_ipv::gippr::GipprPolicy::new(&geom, Ipv::lru_insertion(8)).unwrap();
    let rrip_lip = RripIpvPolicy::new(&geom, [0, 0, 0, 0, 3]).unwrap();
    let mut a = SetAssocCache::new(geom, Box::new(gippr_lip));
    let mut b = SetAssocCache::new(geom, Box::new(rrip_lip));
    for _ in 0..50 {
        for blk in 0..768u64 {
            a.access_block(blk, &AccessContext::blank());
            b.access_block(blk, &AccessContext::blank());
        }
    }
    assert!(
        a.stats().hit_ratio() > 0.3,
        "PLRU-LIP retains: {}",
        a.stats().hit_ratio()
    );
    assert!(
        b.stats().hit_ratio() > 0.3,
        "RRIP-LIP retains: {}",
        b.stats().hit_ratio()
    );
}

#[test]
fn sdbp_learns_across_a_full_hierarchy_run() {
    let cfg = HierarchyConfig::paper_scaled(5).unwrap();
    let mut h = Hierarchy::new(cfg, Box::new(SdbpPolicy::new(&cfg.llc)));
    let spec = Spec2006::Libquantum.workload().scaled_down(5);
    h.run(spec.generator(0).take(60_000));
    assert!(h.llc_stats().accesses > 0);
}

#[test]
fn prefetcher_and_inclusion_compose() {
    let cfg = HierarchyConfig::paper_scaled(5).unwrap();
    let mut h = Hierarchy::new(
        cfg,
        Box::new(pseudolru_ipv::gippr::PlruPolicy::new(&cfg.llc)),
    );
    h.enable_stride_prefetcher(PrefetchConfig::default());
    h.set_inclusion(Inclusion::Inclusive);
    let spec = Spec2006::Milc.workload().scaled_down(5);
    h.run(spec.generator(0).take(60_000));
    assert!(
        h.prefetch_fills() > 0,
        "streaming milc triggers the prefetcher"
    );
    // Inclusion invariant holds even with prefetch fills in flight.
    for set in 0..h.l2().geometry().sets() {
        for blk in h.l2().resident_blocks(set) {
            assert!(h.llc().probe(blk), "inclusion violated for {blk:#x}");
        }
    }
}

#[test]
fn four_core_mix_attributes_all_traffic() {
    let cfg = HierarchyConfig::paper_scaled(5).unwrap();
    let mut mc = MulticoreHierarchy::new(
        4,
        cfg,
        Box::new(DgipprPolicy::four_vector(&cfg.llc, vectors::wi_4dgippr()).unwrap()),
    );
    let benches = [
        Spec2006::Mcf,
        Spec2006::Libquantum,
        Spec2006::DealII,
        Spec2006::Gamess,
    ];
    let streams: Vec<_> = benches
        .iter()
        .map(|b| {
            b.workload()
                .scaled_down(5)
                .generator(0)
                .take(10_000)
                .collect::<Vec<Access>>()
                .into_iter()
        })
        .collect();
    mc.run_interleaved(streams, 10_000);
    let total: u64 = (0..4).map(|c| mc.llc_stats(c).accesses).sum();
    assert_eq!(total, mc.llc_total().accesses);
    // The cache-resident core (gamess) must miss far less than the
    // streaming core (libquantum): its footprint fits the shared LLC.
    assert!(mc.llc_stats(3).misses < mc.llc_stats(1).misses / 2);
}

#[test]
fn rescaled_vectors_drive_dgippr_at_every_width() {
    for ways in [4usize, 8, 32, 64] {
        let geom = CacheGeometry::from_sets(256, ways, 64).unwrap();
        let rescaled: Vec<Ipv> = vectors::wi_4dgippr()
            .iter()
            .map(|v| v.rescaled(ways).unwrap())
            .collect();
        let policy = DgipprPolicy::with_config(&geom, rescaled, 8, "4-DGIPPR").unwrap();
        let mut cache = SetAssocCache::new(geom, Box::new(policy));
        for blk in 0..20_000u64 {
            cache.access_block(blk % 8192, &AccessContext::blank());
        }
        assert_eq!(cache.stats().accesses, 20_000, "{ways}-way run completes");
    }
}
