//! Cross-crate property-based tests: optimality of MIN, hierarchy
//! inclusion-of-behaviour invariants, and end-to-end policy sanity under
//! arbitrary IPVs.

use proptest::prelude::*;
use pseudolru_ipv::gippr::{GipprPolicy, Ipv};
use pseudolru_ipv::model::cpi::WindowPerfModel;
use pseudolru_ipv::model::{min_misses, replay_llc};
use pseudolru_ipv::sim::{Access, CacheGeometry};

fn stream_from_blocks(blocks: &[u64]) -> Vec<Access> {
    blocks
        .iter()
        .map(|&b| Access::read(b * 64, 0).with_icount_delta(2))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Belady MIN never misses more than GIPPR under ANY vector, on any
    /// block stream.
    #[test]
    fn min_is_optimal_against_arbitrary_ipvs(
        entries in proptest::collection::vec(0u8..8, 9),
        blocks in proptest::collection::vec(0u64..96, 50..400),
    ) {
        let geom = CacheGeometry::from_sets(4, 8, 64).unwrap();
        let stream = stream_from_blocks(&blocks);
        let min = min_misses(&stream, geom, 0);
        let ipv = Ipv::new(entries, 8).unwrap();
        let policy = Box::new(GipprPolicy::new(&geom, ipv).unwrap());
        let run = replay_llc(&stream, geom, policy, 0, &WindowPerfModel::default());
        prop_assert!(min.misses <= run.stats.misses);
        prop_assert_eq!(min.accesses, run.stats.accesses);
    }

    /// Cold-start compulsory misses are identical for every policy: the
    /// number of distinct blocks is a lower bound and is reached when the
    /// cache is big enough.
    #[test]
    fn compulsory_misses_only_in_big_cache(
        blocks in proptest::collection::vec(0u64..64, 1..300),
    ) {
        let geom = CacheGeometry::from_sets(8, 16, 64).unwrap(); // 128 lines > 64 blocks
        let stream = stream_from_blocks(&blocks);
        let distinct = {
            let mut s = blocks.clone();
            s.sort_unstable();
            s.dedup();
            s.len() as u64
        };
        let ipv = Ipv::lru_insertion(16);
        let policy = Box::new(GipprPolicy::new(&geom, ipv).unwrap());
        let run = replay_llc(&stream, geom, policy, 0, &WindowPerfModel::default());
        prop_assert_eq!(run.stats.misses, distinct, "only compulsory misses when all fits");
        let min = min_misses(&stream, geom, 0);
        prop_assert_eq!(min.misses, distinct);
    }

    /// The warm-up split never changes totals: warmup + measured accesses
    /// equals the stream length for both MIN and replay.
    #[test]
    fn warmup_partitions_accesses(
        blocks in proptest::collection::vec(0u64..128, 10..200),
        warm_frac in 0usize..100,
    ) {
        let geom = CacheGeometry::from_sets(4, 4, 64).unwrap();
        let stream = stream_from_blocks(&blocks);
        let warmup = stream.len() * warm_frac / 100;
        let min = min_misses(&stream, geom, warmup);
        prop_assert_eq!(min.accesses as usize, stream.len() - warmup);
        let policy = Box::new(GipprPolicy::new(&geom, Ipv::lru(4)).unwrap());
        let run = replay_llc(&stream, geom, policy, warmup, &WindowPerfModel::default());
        prop_assert_eq!(run.stats.accesses as usize, stream.len() - warmup);
    }

    /// The hierarchy's LLC sees at most as many accesses as L2, which sees
    /// at most as many as L1 (demand filtering), for any workload model.
    #[test]
    fn hierarchy_filters_monotonically(seed in proptest::num::u64::ANY) {
        use pseudolru_ipv::model::{Hierarchy, HierarchyConfig};
        use pseudolru_ipv::gippr::PlruPolicy;
        use pseudolru_ipv::traces::spec2006::Spec2006;
        let cfg = HierarchyConfig::paper_scaled(6).unwrap();
        let mut h = Hierarchy::new(cfg, Box::new(PlruPolicy::new(&cfg.llc)));
        let spec = Spec2006::Gcc.workload().scaled_down(6);
        h.run(spec.generator(seed % 16).take(5_000));
        // Writebacks can add L2/LLC traffic, but demand filtering dominates
        // at these sizes; check misses propagate consistently instead:
        prop_assert!(h.l2_stats().accesses <= h.l1_stats().misses + h.l1_stats().writebacks);
        prop_assert!(h.llc_stats().accesses <= h.l2_stats().misses + h.l2_stats().writebacks);
        prop_assert!(h.llc_stats().misses <= h.llc_stats().accesses);
    }
}
