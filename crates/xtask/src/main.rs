#![forbid(unsafe_code)]

//! Workspace automation (`cargo xtask <command>`).
//!
//! * `lint` — the source-hygiene and roster-coverage gate: audits the
//!   `unsafe` whitelist, checks every policy in the harness roster has a
//!   `sim-verify` differential twin, statically analyzes every published
//!   paper vector, checks that artifact writes go through the crash-safe
//!   `sim_core::persist` path instead of raw `fs::write`/`File::create`,
//!   and (unless `--skip-clippy`) shells out to
//!   `cargo clippy --workspace --all-targets -- -D warnings`.
//! * `model-check` — exhaustively model-checks the production
//!   `gippr::PlruTree` and the bit-sliced `sim_core::SlicedTreeLane`
//!   (4+ trees packed per `u64`, checked at a non-zero lane offset with
//!   live poison in sibling lanes) under plain PLRU, classic vectors, and
//!   every published paper vector, at associativities 2–16, and
//!   cross-checks both packed trees against the naive mirror over the
//!   complete state space. Nonzero exit on any counterexample.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("usage: cargo xtask <lint|model-check> [options]");
            return ExitCode::FAILURE;
        }
    };
    let failures = match cmd {
        "lint" => lint(rest),
        "model-check" => model_check(rest),
        other => {
            eprintln!("unknown command {other:?}; expected `lint` or `model-check`");
            return ExitCode::FAILURE;
        }
    };
    if failures == 0 {
        println!("xtask {cmd}: ok");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask {cmd}: {failures} failure(s)");
        ExitCode::FAILURE
    }
}

/// Workspace root: xtask is always compiled from `crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the root")
        .to_path_buf()
}

// ---------------------------------------------------------------------------
// lint
// ---------------------------------------------------------------------------

fn lint(args: &[String]) -> usize {
    let skip_clippy = args.iter().any(|a| a == "--skip-clippy");
    let root = workspace_root();
    let mut failures = 0;
    failures += lint_unsafe_hygiene(&root);
    failures += lint_policy_twins();
    failures += lint_paper_vectors();
    failures += lint_direct_writes(&root);
    if skip_clippy {
        println!("lint: clippy skipped (--skip-clippy)");
    } else {
        failures += lint_clippy(&root);
    }
    failures
}

/// The `unsafe` keyword, assembled at runtime so this source file does not
/// trip its own token scan.
fn unsafe_token() -> String {
    ["un", "safe"].concat()
}

/// Strips `//` line comments (including `///` docs) so prose mentioning
/// the forbidden token does not count as usage.
fn strip_line_comments(source: &str) -> String {
    source
        .lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Whether stripped source uses the `unsafe` keyword (as code, not as the
/// `unsafe_code`/`unsafe_op_in_unsafe_fn` lint names inside attributes).
fn uses_unsafe_keyword(stripped: &str) -> bool {
    let tok = unsafe_token();
    stripped.match_indices(&tok).any(|(i, _)| {
        let after = &stripped[i + tok.len()..];
        // `unsafe_code` / `unsafe_op_in_unsafe_fn` continue with `_`;
        // keyword usage continues with whitespace, `{`, or `(`.
        !after.starts_with('_')
    })
}

fn rust_sources_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_sources_under(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Audit 1: the `unsafe` whitelist.
///
/// * Every crate root except `sim-core`'s carries `#![forbid(unsafe_code)]`.
/// * `sim-core`'s root carries `#![deny(unsafe_code)]` (overridable by the
///   whitelisted module, which `forbid` would not be) plus
///   `#![deny(unsafe_op_in_unsafe_fn)]`.
/// * `sim-core/src/pool.rs` is the only file using the keyword, with
///   exactly four sites, each annotated `// SAFETY:`.
/// * The bit-sliced kernel modules (`sim-core/src/slice.rs`,
///   `sim-core/src/simd.rs`) opt back up to `forbid` inside sim-core's
///   `deny` root: packed-word tricks must stay entirely safe code.
fn lint_unsafe_hygiene(root: &Path) -> usize {
    let mut failures = 0;
    let mut fail = |msg: String| {
        eprintln!("lint(hygiene): {msg}");
        failures += 1;
    };

    // Crate roots and their required attributes.
    let mut roots: Vec<(PathBuf, &str)> = vec![(root.join("src/lib.rs"), "forbid")];
    for entry in std::fs::read_dir(root.join("crates")).expect("crates/ exists") {
        let crate_dir = entry.expect("readable dir entry").path();
        let kind = if crate_dir.file_name().is_some_and(|n| n == "sim-core") {
            "deny"
        } else {
            "forbid"
        };
        for candidate in ["src/lib.rs", "src/main.rs"] {
            let path = crate_dir.join(candidate);
            if path.is_file() {
                roots.push((path, kind));
            }
        }
    }
    for (path, kind) in &roots {
        let source = std::fs::read_to_string(path).expect("crate root is readable");
        let attr = format!("#![{kind}({}_code)]", unsafe_token());
        if !source.contains(&attr) {
            fail(format!("{} lacks `{attr}`", path.display()));
        }
        if *kind == "deny" {
            let attr = format!("#![deny({tok}_op_in_{tok}_fn)]", tok = unsafe_token());
            if !source.contains(&attr) {
                fail(format!("{} lacks `{attr}`", path.display()));
            }
        }
    }

    // The bit-sliced kernel modules must carry their own inner `forbid`:
    // they sit inside sim-core's (merely `deny`) root, and the packed-word
    // bit tricks are exactly the kind of code that must never quietly gain
    // an `allow` escape hatch.
    for module in [
        "crates/sim-core/src/slice.rs",
        "crates/sim-core/src/simd.rs",
    ] {
        let path = root.join(module);
        let source = std::fs::read_to_string(&path).expect("sliced kernel module is readable");
        let attr = format!("#![forbid({}_code)]", unsafe_token());
        if !source.contains(&attr) {
            fail(format!("{} lacks `{attr}`", path.display()));
        }
    }

    // Keyword scan: pool.rs is the only permitted user.
    let mut sources = Vec::new();
    rust_sources_under(root, &mut sources);
    let whitelist = root.join("crates/sim-core/src/pool.rs");
    let mut saw_whitelist = false;
    for path in &sources {
        let source = std::fs::read_to_string(path).expect("source is readable");
        let stripped = strip_line_comments(&source);
        if *path == whitelist {
            saw_whitelist = true;
            let tok = unsafe_token();
            // Keyword sites only: `unsafe_code` in the module's own
            // `allow` attribute continues with `_` and does not count.
            let sites = stripped
                .match_indices(&tok)
                .filter(|(i, _)| !stripped[i + tok.len()..].starts_with('_'))
                .count();
            let safety_comments = source
                .lines()
                .filter(|l| l.trim_start().starts_with("// SAFETY:"))
                .count();
            if sites != 4 {
                fail(format!(
                    "{} has {sites} {} sites, expected exactly 4",
                    path.display(),
                    unsafe_token()
                ));
            }
            if safety_comments != 4 {
                fail(format!(
                    "{} has {safety_comments} `// SAFETY:` comments, expected exactly 4 \
                     (one per site)",
                    path.display()
                ));
            }
        } else if uses_unsafe_keyword(&stripped) {
            fail(format!(
                "{} uses the {} keyword outside the whitelisted pool module",
                path.display(),
                unsafe_token()
            ));
        }
    }
    if !saw_whitelist {
        fail("whitelisted pool module not found".to_string());
    }

    if failures == 0 {
        println!(
            "lint: {} hygiene ok ({} sources, 1 whitelisted module)",
            unsafe_token(),
            sources.len()
        );
    }
    failures
}

/// Audit 2: every policy the harness can run has a `sim-verify`
/// differential twin, and the paper policies are covered too.
fn lint_policy_twins() -> usize {
    let mut failures = 0;
    let twins: BTreeSet<String> = sim_verify::roster("all")
        .iter()
        .map(|pair| pair.name.to_string())
        .collect();

    let mut required: Vec<String> = harness::policies::baseline_roster(0)
        .iter()
        .map(|(name, _)| match *name {
            // The differential roster keys on lowercase short names.
            "PseudoLRU" => "plru".to_string(),
            other => other.to_lowercase(),
        })
        .collect();
    // The paper's own policies are constructed ad hoc by experiments
    // (not part of the baseline roster) but must be verified as well.
    for paper in ["gippr", "giplr", "dgippr2", "dgippr4"] {
        required.push(paper.to_string());
    }
    // The related-work roster members are required by name, not only via
    // the baseline roster, so dropping one from the roster cannot
    // silently drop its verification twin.
    for related in ["ehc", "awrp", "arc"] {
        required.push(related.to_string());
    }

    for name in required {
        if !twins.contains(&name) {
            eprintln!("lint(twins): policy {name:?} has no sim-verify reference twin");
            failures += 1;
        }
    }
    if failures == 0 {
        println!("lint: policy twin coverage ok ({} pairs)", twins.len());
    }
    failures
}

/// Audit 3: every published paper vector passes the static analyzer.
fn lint_paper_vectors() -> usize {
    let mut vectors: Vec<(String, Vec<u8>)> = vec![
        ("GIPLR-best".into(), gippr::vectors::GIPLR_BEST_RAW.to_vec()),
        ("WI-GIPPR".into(), gippr::vectors::WI_GIPPR_RAW.to_vec()),
        (
            "PERLBENCH-WN1".into(),
            gippr::vectors::PERLBENCH_WN1_RAW.to_vec(),
        ),
    ];
    for (i, raw) in gippr::vectors::WI_2DGIPPR_RAW.iter().enumerate() {
        vectors.push((format!("WI-2-DGIPPR[{i}]"), raw.to_vec()));
    }
    for (i, raw) in gippr::vectors::WI_4DGIPPR_RAW.iter().enumerate() {
        vectors.push((format!("WI-4-DGIPPR[{i}]"), raw.to_vec()));
    }

    let mut failures = 0;
    for (name, raw) in &vectors {
        match sim_lint::analyze(raw) {
            Ok(analysis) if analysis.is_degenerate() => {
                eprintln!("lint(vectors): {name} is degenerate: {analysis}");
                failures += 1;
            }
            Ok(analysis) => {
                println!(
                    "lint: {name}: {} ({} lints)",
                    analysis.class(),
                    analysis.lints().len()
                );
            }
            Err(e) => {
                eprintln!("lint(vectors): {name} is malformed: {e}");
                failures += 1;
            }
        }
    }
    failures
}

/// Audit 4: artifact writes go through `sim_core::persist`.
///
/// Raw `fs::write` / `File::create` calls bypass the crash-safe atomic
/// write path (tmp + fsync + rename) and its fault-injection points, so a
/// crash mid-write can leave torn artifacts. Outside `persist.rs` itself,
/// vendored crates, xtask, and test code (`tests/` directories and the
/// trailing `#[cfg(test)]` module of a file), every such call must carry
/// a `// lint: direct-write` justification on the same line.
fn lint_direct_writes(root: &Path) -> usize {
    let mut failures = 0;
    let mut sources = Vec::new();
    rust_sources_under(root, &mut sources);
    let persist = root.join("crates/sim-core/src/persist.rs");
    let mut scanned = 0;
    for path in &sources {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if rel_str.starts_with("crates/vendor-")
            || rel_str.starts_with("crates/xtask/")
            || rel_str.contains("/tests/")
            || *path == persist
        {
            continue;
        }
        scanned += 1;
        let source = std::fs::read_to_string(path).expect("source is readable");
        for (lineno, line) in source.lines().enumerate() {
            // By repo idiom the `#[cfg(test)]` module closes out a file;
            // test code may write scratch files however it likes.
            if line.trim_start().starts_with("#[cfg(test)]") {
                break;
            }
            let code = line.split("//").next().unwrap_or("");
            if (code.contains("fs::write(") || code.contains("File::create("))
                && !line.contains("lint: direct-write")
            {
                eprintln!(
                    "lint(direct-writes): {rel_str}:{}: raw file write bypasses \
                     sim_core::persist::atomic_write; route it through persist or \
                     annotate `// lint: direct-write` with a reason",
                    lineno + 1
                );
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!("lint: direct-write audit ok ({scanned} sources)");
    }
    failures
}

/// Audit 5: clippy with warnings denied, over every target.
fn lint_clippy(root: &Path) -> usize {
    println!("lint: running cargo clippy --workspace --all-targets -- -D warnings");
    let status = Command::new("cargo")
        .args([
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ])
        .current_dir(root)
        .status();
    match status {
        Ok(s) if s.success() => 0,
        Ok(s) => {
            eprintln!("lint(clippy): exited with {s}");
            1
        }
        Err(e) => {
            eprintln!("lint(clippy): failed to launch cargo: {e}");
            1
        }
    }
}

// ---------------------------------------------------------------------------
// model-check
// ---------------------------------------------------------------------------

fn model_check(args: &[String]) -> usize {
    let max_ways: usize = args
        .iter()
        .position(|a| a == "--max-ways")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--max-ways takes an integer"))
        .unwrap_or(16);

    let mut failures = 0;
    println!(
        "{:>4}  {:<28} {:>12} {:>12} {:>12}  verdict",
        "ways", "rule", "tree states", "bfs states", "transitions"
    );

    for ways in [2usize, 4, 8, 16] {
        if ways > max_ways {
            continue;
        }
        for (name, rule) in rules_for(ways) {
            match sim_lint::ModelChecker::new(ways, rule.clone()).run::<gippr::PlruTree>() {
                Ok(report) => println!(
                    "{:>4}  {:<28} {:>12} {:>12} {:>12}  ok",
                    ways, name, report.tree_states, report.reachable_states, report.transitions
                ),
                Err(ce) => {
                    println!("{ways:>4}  {name:<28} {:>38}  COUNTEREXAMPLE", "");
                    eprintln!("{ce}");
                    failures += 1;
                }
            }
            // Same rule, this time interpreted by the bit-sliced tree at a
            // non-zero lane offset: the packed arithmetic must honor every
            // rule while the sibling lanes hold live poison (SlicedTreeLane
            // panics if a write leaks across a lane boundary).
            let sliced_name = format!("{name} [sliced]");
            match sim_lint::ModelChecker::new(ways, rule).run::<sim_core::SlicedTreeLane<3>>() {
                Ok(report) => println!(
                    "{:>4}  {:<28} {:>12} {:>12} {:>12}  ok",
                    ways,
                    sliced_name,
                    report.tree_states,
                    report.reachable_states,
                    report.transitions
                ),
                Err(ce) => {
                    println!("{ways:>4}  {sliced_name:<28} {:>38}  COUNTEREXAMPLE", "");
                    eprintln!("{ce}");
                    failures += 1;
                }
            }
        }
        type Sliced0 = sim_core::SlicedTreeLane<0>;
        type Sliced3 = sim_core::SlicedTreeLane<3>;
        let cross: [(&str, Result<u64, _>); 3] = [
            (
                "cross-check vs mirror",
                sim_lint::cross_check::<gippr::PlruTree, sim_lint::MirrorTree>(ways),
            ),
            (
                "cross-check vs sliced[0]",
                sim_lint::cross_check::<gippr::PlruTree, Sliced0>(ways),
            ),
            (
                "cross-check vs sliced[3]",
                sim_lint::cross_check::<gippr::PlruTree, Sliced3>(ways),
            ),
        ];
        for (label, result) in cross {
            match result {
                Ok(states) => println!(
                    "{:>4}  {:<28} {:>12} {:>12} {:>12}  ok",
                    ways, label, states, "-", "-"
                ),
                Err(ce) => {
                    println!("{:>4}  {:<28} {:>38}  COUNTEREXAMPLE", ways, label, "");
                    eprintln!("{ce}");
                    failures += 1;
                }
            }
        }
    }
    failures
}

/// The rule battery for one associativity: plain PLRU, the classic
/// LRU/LIP vectors, and the published paper vectors (natively at 16 ways,
/// rescaled below).
fn rules_for(ways: usize) -> Vec<(String, sim_lint::PromotionRule)> {
    use sim_lint::PromotionRule;

    let mut rules = vec![
        ("plru".to_string(), PromotionRule::Plru),
        (
            "lru vector".to_string(),
            PromotionRule::Ipv(vec![0; ways + 1]),
        ),
        ("lip vector".to_string(), {
            let mut v = vec![0u8; ways + 1];
            v[ways] = (ways - 1) as u8;
            PromotionRule::Ipv(v)
        }),
    ];
    let paper: Vec<(&str, gippr::Ipv)> = vec![
        ("giplr-best", gippr::vectors::giplr_best()),
        ("wi-gippr", gippr::vectors::wi_gippr()),
        ("perlbench-wn1", gippr::vectors::perlbench_wn1()),
    ];
    for (name, ipv) in paper {
        let scaled = if ways == 16 {
            ipv
        } else {
            ipv.rescaled(ways).expect("16 -> smaller rescale is valid")
        };
        rules.push((
            format!("{name}{}", if ways == 16 { "" } else { " (rescaled)" }),
            sim_lint::PromotionRule::Ipv(scaled.entries().to_vec()),
        ));
    }
    for (i, ipv) in gippr::vectors::wi_4dgippr().into_iter().enumerate() {
        if ways == 16 {
            rules.push((
                format!("wi-4-dgippr[{i}]"),
                sim_lint::PromotionRule::Ipv(ipv.entries().to_vec()),
            ));
        }
    }
    rules
}
