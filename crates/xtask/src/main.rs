#![forbid(unsafe_code)]

//! Workspace automation (`cargo xtask <command>`).
//!
//! * `lint` — the source-hygiene and roster-coverage gate: audits the
//!   `unsafe` whitelist, checks every policy in the harness roster has a
//!   `sim-verify` differential twin, statically analyzes every published
//!   paper vector, checks that artifact writes go through the crash-safe
//!   `sim_core::persist` path instead of raw `fs::write`/`File::create`,
//!   and (unless `--skip-clippy`) shells out to
//!   `cargo clippy --workspace --all-targets -- -D warnings`.
//! * `model-check` — the roster-wide verification gate, five passes:
//!   1. the exhaustive PLRU battery: the production `gippr::PlruTree` and
//!      the bit-sliced `sim_core::SlicedTreeLane` (checked at a non-zero
//!      lane offset with live poison in sibling lanes) under plain PLRU,
//!      classic vectors, and every published paper vector, at
//!      associativities 2–16, cross-checked against the naive mirror
//!      over the complete state space;
//!   2. the bounded roster sweep: every baseline-roster policy adapted
//!      onto `sim_lint::BoundedChecker` via `sim_verify::PolicyModel`,
//!      proving victim totality, never-evict-invalid, policy-declared
//!      metadata invariants, and (where state is bounded) promotion-orbit
//!      convergence over tiny-cache state graphs;
//!   3. the shard-affinity pass: every `SetLocal` policy explored on
//!      interleaved multi-set streams against isolated per-set twins;
//!   4. the slice-kernel equivalence sweep: every kernel the roster
//!      advertises (plus the published paper vectors) checked lane-by-lane
//!      against the scalar interpreters;
//!   5. the Mattson qualification audit plus seeded-defect self-tests
//!      (poisoned ARC `p` update, fake-`SetLocal` fixture, poisoned lane
//!      transitions) proving each checker catches its defect class.
//!
//!   `--policy NAME` restricts the roster passes to one policy;
//!   `--budget-secs N` caps the bounded sweeps' wall clock (CI uses this
//!   to stay under a minute). Nonzero exit on any counterexample.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("usage: cargo xtask <lint|model-check> [options]");
            return ExitCode::FAILURE;
        }
    };
    let failures = match cmd {
        "lint" => lint(rest),
        "model-check" => model_check(rest),
        other => {
            eprintln!("unknown command {other:?}; expected `lint` or `model-check`");
            return ExitCode::FAILURE;
        }
    };
    if failures == 0 {
        println!("xtask {cmd}: ok");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask {cmd}: {failures} failure(s)");
        ExitCode::FAILURE
    }
}

/// Workspace root: xtask is always compiled from `crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the root")
        .to_path_buf()
}

// ---------------------------------------------------------------------------
// lint
// ---------------------------------------------------------------------------

fn lint(args: &[String]) -> usize {
    let skip_clippy = args.iter().any(|a| a == "--skip-clippy");
    let root = workspace_root();
    let mut failures = 0;
    failures += lint_unsafe_hygiene(&root);
    failures += lint_policy_twins();
    failures += lint_paper_vectors();
    failures += lint_direct_writes(&root);
    failures += lint_island_atomicity(&root);
    if skip_clippy {
        println!("lint: clippy skipped (--skip-clippy)");
    } else {
        failures += lint_clippy(&root);
    }
    failures
}

/// The `unsafe` keyword, assembled at runtime so this source file does not
/// trip its own token scan.
fn unsafe_token() -> String {
    ["un", "safe"].concat()
}

/// Strips `//` line comments (including `///` docs) so prose mentioning
/// the forbidden token does not count as usage.
fn strip_line_comments(source: &str) -> String {
    source
        .lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Whether stripped source uses the `unsafe` keyword (as code, not as the
/// `unsafe_code`/`unsafe_op_in_unsafe_fn` lint names inside attributes).
fn uses_unsafe_keyword(stripped: &str) -> bool {
    let tok = unsafe_token();
    stripped.match_indices(&tok).any(|(i, _)| {
        let after = &stripped[i + tok.len()..];
        // `unsafe_code` / `unsafe_op_in_unsafe_fn` continue with `_`;
        // keyword usage continues with whitespace, `{`, or `(`.
        !after.starts_with('_')
    })
}

fn rust_sources_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_sources_under(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Audit 1: the `unsafe` whitelist.
///
/// * Every crate root except `sim-core`'s carries `#![forbid(unsafe_code)]`.
/// * `sim-core`'s root carries `#![deny(unsafe_code)]` (overridable by the
///   whitelisted module, which `forbid` would not be) plus
///   `#![deny(unsafe_op_in_unsafe_fn)]`.
/// * `sim-core/src/pool.rs` is the only file using the keyword, with
///   exactly four sites, each annotated `// SAFETY:`.
/// * The bit-sliced kernel modules (`sim-core/src/slice.rs`,
///   `sim-core/src/simd.rs`) opt back up to `forbid` inside sim-core's
///   `deny` root: packed-word tricks must stay entirely safe code.
fn lint_unsafe_hygiene(root: &Path) -> usize {
    let mut failures = 0;
    let mut fail = |msg: String| {
        eprintln!("lint(hygiene): {msg}");
        failures += 1;
    };

    // Crate roots and their required attributes.
    let mut roots: Vec<(PathBuf, &str)> = vec![(root.join("src/lib.rs"), "forbid")];
    for entry in std::fs::read_dir(root.join("crates")).expect("crates/ exists") {
        let crate_dir = entry.expect("readable dir entry").path();
        let kind = if crate_dir.file_name().is_some_and(|n| n == "sim-core") {
            "deny"
        } else {
            "forbid"
        };
        for candidate in ["src/lib.rs", "src/main.rs"] {
            let path = crate_dir.join(candidate);
            if path.is_file() {
                roots.push((path, kind));
            }
        }
    }
    for (path, kind) in &roots {
        let source = std::fs::read_to_string(path).expect("crate root is readable");
        let attr = format!("#![{kind}({}_code)]", unsafe_token());
        if !source.contains(&attr) {
            fail(format!("{} lacks `{attr}`", path.display()));
        }
        if *kind == "deny" {
            let attr = format!("#![deny({tok}_op_in_{tok}_fn)]", tok = unsafe_token());
            if !source.contains(&attr) {
                fail(format!("{} lacks `{attr}`", path.display()));
            }
        }
    }

    // High-risk modules must carry their own inner `forbid`: the
    // bit-sliced kernels sit inside sim-core's (merely `deny`) root, and
    // the related-work baselines with intricate invariant-carrying state
    // (ARC's lists, AWRP's clocks, EHC's tables) are pinned the same way
    // so none can quietly gain an `allow` escape hatch.
    for module in [
        "crates/sim-core/src/slice.rs",
        "crates/sim-core/src/simd.rs",
        "crates/baselines/src/arc.rs",
        "crates/baselines/src/awrp.rs",
        "crates/baselines/src/ehc.rs",
    ] {
        let path = root.join(module);
        let source = std::fs::read_to_string(&path).expect("audited module is readable");
        let attr = format!("#![forbid({}_code)]", unsafe_token());
        if !source.contains(&attr) {
            fail(format!("{} lacks `{attr}`", path.display()));
        }
    }

    // Keyword scan: pool.rs is the only permitted user.
    let mut sources = Vec::new();
    rust_sources_under(root, &mut sources);
    let whitelist = root.join("crates/sim-core/src/pool.rs");
    let mut saw_whitelist = false;
    for path in &sources {
        let source = std::fs::read_to_string(path).expect("source is readable");
        let stripped = strip_line_comments(&source);
        if *path == whitelist {
            saw_whitelist = true;
            let tok = unsafe_token();
            // Keyword sites only: `unsafe_code` in the module's own
            // `allow` attribute continues with `_` and does not count.
            let sites = stripped
                .match_indices(&tok)
                .filter(|(i, _)| !stripped[i + tok.len()..].starts_with('_'))
                .count();
            let safety_comments = source
                .lines()
                .filter(|l| l.trim_start().starts_with("// SAFETY:"))
                .count();
            if sites != 4 {
                fail(format!(
                    "{} has {sites} {} sites, expected exactly 4",
                    path.display(),
                    unsafe_token()
                ));
            }
            if safety_comments != 4 {
                fail(format!(
                    "{} has {safety_comments} `// SAFETY:` comments, expected exactly 4 \
                     (one per site)",
                    path.display()
                ));
            }
        } else if uses_unsafe_keyword(&stripped) {
            fail(format!(
                "{} uses the {} keyword outside the whitelisted pool module",
                path.display(),
                unsafe_token()
            ));
        }
    }
    if !saw_whitelist {
        fail("whitelisted pool module not found".to_string());
    }

    if failures == 0 {
        println!(
            "lint: {} hygiene ok ({} sources, 1 whitelisted module)",
            unsafe_token(),
            sources.len()
        );
    }
    failures
}

/// Audit 2: every policy the harness can run has a `sim-verify`
/// differential twin, and the paper policies are covered too.
fn lint_policy_twins() -> usize {
    let mut failures = 0;
    let twins: BTreeSet<String> = sim_verify::roster("all")
        .iter()
        .map(|pair| pair.name.to_string())
        .collect();

    let mut required: Vec<String> = harness::policies::baseline_roster(0)
        .iter()
        .map(|(name, _)| match *name {
            // The differential roster keys on lowercase short names.
            "PseudoLRU" => "plru".to_string(),
            other => other.to_lowercase(),
        })
        .collect();
    // The paper's own policies are constructed ad hoc by experiments
    // (not part of the baseline roster) but must be verified as well.
    for paper in ["gippr", "giplr", "dgippr2", "dgippr4"] {
        required.push(paper.to_string());
    }
    // The related-work roster members are required by name, not only via
    // the baseline roster, so dropping one from the roster cannot
    // silently drop its verification twin.
    for related in ["ehc", "awrp", "arc"] {
        required.push(related.to_string());
    }

    for name in required {
        if !twins.contains(&name) {
            eprintln!("lint(twins): policy {name:?} has no sim-verify reference twin");
            failures += 1;
        }
    }

    // The bounded model checker must cover exactly the harness roster:
    // adding a policy to the shoot-out without a model-check entry (or
    // vice versa) is a coverage gap this pins shut.
    let baseline: Vec<String> = harness::policies::baseline_roster(0)
        .iter()
        .map(|(name, _)| name.to_string())
        .collect();
    let mck: Vec<String> = sim_verify::mck_roster(0)
        .iter()
        .map(|e| e.name.to_string())
        .collect();
    if baseline != mck {
        eprintln!(
            "lint(twins): sim_verify::mck_roster {mck:?} is out of sync with \
             harness baseline_roster {baseline:?}"
        );
        failures += 1;
    }

    if failures == 0 {
        println!(
            "lint: policy twin coverage ok ({} pairs, {} model-check entries)",
            twins.len(),
            mck.len()
        );
    }
    failures
}

/// Audit 3: every published paper vector passes the static analyzer.
fn lint_paper_vectors() -> usize {
    let mut vectors: Vec<(String, Vec<u8>)> = vec![
        ("GIPLR-best".into(), gippr::vectors::GIPLR_BEST_RAW.to_vec()),
        ("WI-GIPPR".into(), gippr::vectors::WI_GIPPR_RAW.to_vec()),
        (
            "PERLBENCH-WN1".into(),
            gippr::vectors::PERLBENCH_WN1_RAW.to_vec(),
        ),
    ];
    for (i, raw) in gippr::vectors::WI_2DGIPPR_RAW.iter().enumerate() {
        vectors.push((format!("WI-2-DGIPPR[{i}]"), raw.to_vec()));
    }
    for (i, raw) in gippr::vectors::WI_4DGIPPR_RAW.iter().enumerate() {
        vectors.push((format!("WI-4-DGIPPR[{i}]"), raw.to_vec()));
    }

    let mut failures = 0;
    for (name, raw) in &vectors {
        match sim_lint::analyze(raw) {
            Ok(analysis) if analysis.is_degenerate() => {
                eprintln!("lint(vectors): {name} is degenerate: {analysis}");
                failures += 1;
            }
            Ok(analysis) => {
                println!(
                    "lint: {name}: {} ({} lints)",
                    analysis.class(),
                    analysis.lints().len()
                );
            }
            Err(e) => {
                eprintln!("lint(vectors): {name} is malformed: {e}");
                failures += 1;
            }
        }
    }
    failures
}

/// Audit 4: artifact writes go through `sim_core::persist`.
///
/// Raw `fs::write` / `File::create` calls bypass the crash-safe atomic
/// write path (tmp + fsync + rename) and its fault-injection points, so a
/// crash mid-write can leave torn artifacts. Outside `persist.rs` itself,
/// vendored crates, xtask, and test code (`tests/` directories and the
/// trailing `#[cfg(test)]` module of a file), every such call must carry
/// a `// lint: direct-write` justification on the same line.
fn lint_direct_writes(root: &Path) -> usize {
    let mut failures = 0;
    let mut sources = Vec::new();
    rust_sources_under(root, &mut sources);
    let persist = root.join("crates/sim-core/src/persist.rs");
    let mut scanned = 0;
    for path in &sources {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if rel_str.starts_with("crates/vendor-")
            || rel_str.starts_with("crates/xtask/")
            || rel_str.contains("/tests/")
            || *path == persist
        {
            continue;
        }
        scanned += 1;
        let source = std::fs::read_to_string(path).expect("source is readable");
        for (lineno, line) in source.lines().enumerate() {
            // By repo idiom the `#[cfg(test)]` module closes out a file;
            // test code may write scratch files however it likes.
            if line.trim_start().starts_with("#[cfg(test)]") {
                break;
            }
            let code = line.split("//").next().unwrap_or("");
            if (code.contains("fs::write(") || code.contains("File::create("))
                && !line.contains("lint: direct-write")
            {
                eprintln!(
                    "lint(direct-writes): {rel_str}:{}: raw file write bypasses \
                     sim_core::persist::atomic_write; route it through persist or \
                     annotate `// lint: direct-write` with a reason",
                    lineno + 1
                );
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!("lint: direct-write audit ok ({scanned} sources)");
    }
    failures
}

/// Audit 5: crash-recovery state is crash-safe by construction.
///
/// Two subsystems promise kill-anywhere, resume-bit-identically: the
/// island fleet (GA checkpoints, migration mailboxes, worker results,
/// the fleet manifest) and the serving daemon (per-tenant session
/// snapshots, the published port file). Both rest on every durable
/// write going through `sim_core::persist::atomic_write`. The negative
/// direct-write audit above catches raw `fs::write` calls; this
/// positive audit fails if those sources stop routing through the
/// crash-safe helpers entirely (say, a refactor to a hand-rolled writer
/// whose call shape the negative audit's pattern list misses).
fn lint_island_atomicity(root: &Path) -> usize {
    let checks: &[(&str, &[&str])] = &[
        (
            "crates/evolve/src/checkpoint.rs",
            &["persist::atomic_write", "save_mailbox", "save_island_state"],
        ),
        (
            "crates/evolve/src/island.rs",
            &[
                "checkpoint::save_mailbox",
                "save_island_state",
                "save_island_final",
            ],
        ),
        (
            "crates/harness/src/bin/evolve-islands.rs",
            &["atomic_write"],
        ),
        ("crates/harness/src/manifest.rs", &["atomic_write"]),
        // Serving daemon: session snapshots retry through atomic_write...
        (
            "crates/sim-serve/src/session.rs",
            &["persist::atomic_write", "write_snapshot"],
        ),
        // ...and the server parks sessions only via that snapshot path.
        (
            "crates/sim-serve/src/server.rs",
            &["write_snapshot", "snapshot_session"],
        ),
        // Port file and client stats files are poll-read by other
        // processes, so a torn write is an immediate race.
        ("crates/harness/src/bin/serve.rs", &["atomic_write"]),
        ("crates/harness/src/bin/bench-serve.rs", &["atomic_write"]),
    ];
    let mut failures = 0;
    for (rel, needles) in checks {
        let path = root.join(rel);
        let Ok(source) = std::fs::read_to_string(&path) else {
            eprintln!("lint(island-atomicity): {rel} is missing or unreadable");
            failures += 1;
            continue;
        };
        for needle in *needles {
            if !source.contains(needle) {
                eprintln!(
                    "lint(island-atomicity): {rel} no longer references `{needle}`; \
                     island checkpoint/mailbox/manifest writes must stay on the \
                     sim_core::persist::atomic_write path"
                );
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!("lint: island-atomicity audit ok ({} sources)", checks.len());
    }
    failures
}

/// Audit 6: clippy with warnings denied, over every target.
fn lint_clippy(root: &Path) -> usize {
    println!("lint: running cargo clippy --workspace --all-targets -- -D warnings");
    let status = Command::new("cargo")
        .args([
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ])
        .current_dir(root)
        .status();
    match status {
        Ok(s) if s.success() => 0,
        Ok(s) => {
            eprintln!("lint(clippy): exited with {s}");
            1
        }
        Err(e) => {
            eprintln!("lint(clippy): failed to launch cargo: {e}");
            1
        }
    }
}

// ---------------------------------------------------------------------------
// model-check
// ---------------------------------------------------------------------------

/// Value of a `--flag VALUE` pair, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Whether a `--policy` filter selects roster entry `name`. Accepts the
/// roster spelling case-insensitively plus the `plru` short name.
fn filter_matches(filter: &str, name: &str) -> bool {
    filter.eq_ignore_ascii_case(name)
        || (name == "PseudoLRU" && filter.eq_ignore_ascii_case("plru"))
}

fn model_check(args: &[String]) -> usize {
    let max_ways: usize = flag_value(args, "--max-ways")
        .map(|v| v.parse().expect("--max-ways takes an integer"))
        .unwrap_or(16);
    let policy_filter: Option<String> = flag_value(args, "--policy").map(str::to_string);
    let budget: Option<Duration> = flag_value(args, "--budget-secs")
        .map(|v| Duration::from_secs_f64(v.parse().expect("--budget-secs takes seconds")));

    let roster = sim_verify::mck_roster(0x51CE);
    if let Some(f) = &policy_filter {
        let paper = ["GIPPR", "GIPLR", "RRIP-IPV"];
        if !roster.iter().any(|e| filter_matches(f, e.name))
            && !paper.iter().any(|p| filter_matches(f, p))
        {
            let known: Vec<&str> = roster.iter().map(|e| e.name).chain(paper).collect();
            eprintln!("model-check: --policy {f:?} matches none of {known:?}");
            return 1;
        }
    }
    let matches = |name: &str| {
        policy_filter
            .as_deref()
            .map_or(true, |f| filter_matches(f, name))
    };

    let started = Instant::now();
    // Budget split: the two BoundedChecker sweeps dominate the wall clock;
    // hand each run an equal slice of 80% of the budget, reserving the
    // rest for the fixed-cost exhaustive passes.
    let bounded_runs = roster.iter().filter(|e| matches(e.name)).count() * 4;
    let per_run = budget.map(|b| b.mul_f64(0.8) / bounded_runs.max(1) as u32);

    let mut failures = 0;
    if matches("PseudoLRU") {
        failures += plru_tree_battery(max_ways);
    }
    failures += roster_bounded_pass(&roster, &matches, per_run);
    failures += affinity_pass(&roster, &matches, per_run);
    failures += kernel_sweep_pass(&roster, &matches, max_ways);
    if matches("LRU") {
        failures += mattson_pass();
    }
    if policy_filter.is_none() {
        failures += checker_selftests();
    }
    println!(
        "model-check: {:.1}s elapsed{}",
        started.elapsed().as_secs_f64(),
        budget.map_or(String::new(), |b| format!(
            " (budget {:.0}s)",
            b.as_secs_f64()
        ))
    );
    failures
}

/// Pass 1: the exhaustive PLRU-tree battery (scalar and bit-sliced
/// interpreters, full state space, every rule, cross-checks).
fn plru_tree_battery(max_ways: usize) -> usize {
    let mut failures = 0;
    println!(
        "{:>4}  {:<28} {:>12} {:>12} {:>12}  verdict",
        "ways", "rule", "tree states", "bfs states", "transitions"
    );

    for ways in [2usize, 4, 8, 16] {
        if ways > max_ways {
            continue;
        }
        for (name, rule) in rules_for(ways) {
            match sim_lint::ModelChecker::new(ways, rule.clone()).run::<gippr::PlruTree>() {
                Ok(report) => println!(
                    "{:>4}  {:<28} {:>12} {:>12} {:>12}  ok",
                    ways, name, report.tree_states, report.reachable_states, report.transitions
                ),
                Err(ce) => {
                    println!("{ways:>4}  {name:<28} {:>38}  COUNTEREXAMPLE", "");
                    eprintln!("{ce}");
                    failures += 1;
                }
            }
            // Same rule, this time interpreted by the bit-sliced tree at a
            // non-zero lane offset: the packed arithmetic must honor every
            // rule while the sibling lanes hold live poison (SlicedTreeLane
            // panics if a write leaks across a lane boundary).
            let sliced_name = format!("{name} [sliced]");
            match sim_lint::ModelChecker::new(ways, rule).run::<sim_core::SlicedTreeLane<3>>() {
                Ok(report) => println!(
                    "{:>4}  {:<28} {:>12} {:>12} {:>12}  ok",
                    ways,
                    sliced_name,
                    report.tree_states,
                    report.reachable_states,
                    report.transitions
                ),
                Err(ce) => {
                    println!("{ways:>4}  {sliced_name:<28} {:>38}  COUNTEREXAMPLE", "");
                    eprintln!("{ce}");
                    failures += 1;
                }
            }
        }
        type Sliced0 = sim_core::SlicedTreeLane<0>;
        type Sliced3 = sim_core::SlicedTreeLane<3>;
        let cross: [(&str, Result<u64, _>); 3] = [
            (
                "cross-check vs mirror",
                sim_lint::cross_check::<gippr::PlruTree, sim_lint::MirrorTree>(ways),
            ),
            (
                "cross-check vs sliced[0]",
                sim_lint::cross_check::<gippr::PlruTree, Sliced0>(ways),
            ),
            (
                "cross-check vs sliced[3]",
                sim_lint::cross_check::<gippr::PlruTree, Sliced3>(ways),
            ),
        ];
        for (label, result) in cross {
            match result {
                Ok(states) => println!(
                    "{:>4}  {:<28} {:>12} {:>12} {:>12}  ok",
                    ways, label, states, "-", "-"
                ),
                Err(ce) => {
                    println!("{:>4}  {:<28} {:>38}  COUNTEREXAMPLE", ways, label, "");
                    eprintln!("{ce}");
                    failures += 1;
                }
            }
        }
    }
    failures
}

/// The tiny geometries the bounded roster sweep explores. Small enough
/// for BFS to close or nearly close the reachable set, large enough to
/// exercise multi-set interaction (dueling leader maps, ARC's global
/// target, SHiP's shared tables).
fn bounded_geometries() -> [(sim_core::CacheGeometry, usize); 2] {
    [
        (
            sim_core::CacheGeometry::from_sets(4, 2, 64).expect("valid tiny geometry"),
            2,
        ),
        (
            sim_core::CacheGeometry::from_sets(4, 4, 64).expect("valid tiny geometry"),
            2,
        ),
    ]
}

/// Pass 2: bounded BFS over every roster policy's tiny-cache state graph.
/// Victim totality, never-evict-invalid, and `audit_invariants` are
/// checked on every transition; promotion-orbit convergence runs for the
/// policies whose canonical state is bounded.
fn roster_bounded_pass(
    roster: &[sim_verify::MckEntry],
    matches: &dyn Fn(&str) -> bool,
    per_run: Option<Duration>,
) -> usize {
    use sim_lint::PolicyState;

    println!("\nbounded roster sweep (BFS with state hashing, invariants on every transition):");
    println!(
        "{:<10} {:>5} {:>7} {:>9} {:>12} {:>7} {:>13}  verdict",
        "policy", "ways", "inputs", "states", "transitions", "orbits", "stop"
    );
    let mut failures = 0;
    for entry in roster {
        if !matches(entry.name) {
            continue;
        }
        for (geom, bps) in bounded_geometries() {
            let mut model =
                sim_verify::PolicyModel::new(entry.name, geom, bps, entry.build.clone());
            let mut checker = sim_lint::BoundedChecker::new()
                .with_max_states(4096)
                .with_max_depth(24);
            if !entry.orbit_converges {
                // PDP's periodic access counter and AWRP's idle-way ages
                // are genuinely unbounded: constant-input orbits mint
                // fresh states forever, so only the budgeted BFS applies.
                checker = checker.with_orbits(0, 0);
            }
            if let Some(b) = per_run {
                checker = checker.with_budget(b);
            }
            match checker.run(&mut model) {
                Ok(r) => println!(
                    "{:<10} {:>5} {:>7} {:>9} {:>12} {:>7} {:>13}  ok",
                    entry.name,
                    geom.ways(),
                    model.num_inputs(),
                    r.states,
                    r.transitions,
                    r.orbits_checked,
                    r.stop.to_string(),
                ),
                Err(trail) => {
                    println!("{:<10} {:>5}  COUNTEREXAMPLE", entry.name, geom.ways());
                    eprintln!("{trail}");
                    failures += 1;
                }
            }
        }
    }
    failures
}

/// Pass 3: the shard-affinity checker. Every policy claiming `SetLocal`
/// is explored on interleaved multi-set streams while isolated per-set
/// twins replay each set's subsequence; outcomes and per-set audit
/// digests must match at every reachable state.
fn affinity_pass(
    roster: &[sim_verify::MckEntry],
    matches: &dyn Fn(&str) -> bool,
    per_run: Option<Duration>,
) -> usize {
    println!("\nshard-affinity pass (interleaved vs isolated per-set replicas):");
    println!(
        "{:<10} {:>5} {:>9} {:>12} {:>13}  verdict",
        "policy", "ways", "states", "transitions", "stop"
    );
    let mut failures = 0;
    let mut checked = 0;
    for entry in roster {
        if !matches(entry.name) {
            continue;
        }
        for (geom, bps) in bounded_geometries() {
            let geom = sim_core::CacheGeometry::from_sets(2, geom.ways(), 64)
                .expect("valid tiny geometry");
            let mut model =
                match sim_verify::AffinityModel::new(entry.name, geom, bps, entry.build.clone()) {
                    Ok(m) => m,
                    // Global policies are legitimately interleaving-
                    // sensitive; the contract only binds SetLocal claims.
                    Err(_) => continue,
                };
            let mut checker = sim_lint::BoundedChecker::new()
                .with_max_states(2048)
                .with_max_depth(16);
            if !entry.orbit_converges {
                checker = checker.with_orbits(0, 0);
            }
            if let Some(b) = per_run {
                checker = checker.with_budget(b);
            }
            match checker.run(&mut model) {
                Ok(r) => {
                    checked += 1;
                    println!(
                        "{:<10} {:>5} {:>9} {:>12} {:>13}  ok",
                        entry.name,
                        geom.ways(),
                        r.states,
                        r.transitions,
                        r.stop.to_string(),
                    );
                }
                Err(trail) => {
                    println!("{:<10} {:>5}  COUNTEREXAMPLE", entry.name, geom.ways());
                    eprintln!("{trail}");
                    failures += 1;
                }
            }
        }
    }
    println!("affinity pass: {checked} SetLocal policy/geometry combinations verified");
    failures
}

/// Pass 4: the slice-kernel equivalence sweep. Every kernel the roster
/// advertises — plus the published paper vectors and the RRIP-IPV
/// variants — is checked against the scalar interpreters at every lane
/// offset with poisoned sibling lanes.
fn kernel_sweep_pass(
    roster: &[sim_verify::MckEntry],
    matches: &dyn Fn(&str) -> bool,
    max_ways: usize,
) -> usize {
    use sim_core::ReplacementPolicy;

    println!("\nslice-kernel equivalence sweep (packed lanes vs scalar policy):");
    println!(
        "{:<22} {:>5} {:>6} {:>10} {:>12}  verdict",
        "kernel", "ways", "lanes", "states", "transitions"
    );
    let mut failures = 0;
    for ways in [2usize, 4, 8, 16] {
        if ways > max_ways {
            continue;
        }
        let geom = sim_core::CacheGeometry::from_sets(64, ways, 64).expect("valid probe geometry");
        let mut kernels: Vec<(String, sim_core::SliceKernel)> = Vec::new();
        for entry in roster {
            if !matches(entry.name) {
                continue;
            }
            if let Some(k) = (entry.build)(&geom).slice_kernel() {
                kernels.push((entry.name.to_string(), k));
            }
        }
        if matches("RRIP-IPV") {
            for (label, vector) in [
                ("RRIP-IPV[srrip]", baselines::RripIpvPolicy::srrip_vector()),
                ("RRIP-IPV[cautious]", [0, 0, 1, 2, 3]),
            ] {
                let policy =
                    baselines::RripIpvPolicy::new(&geom, vector).expect("valid RRIP-IPV vector");
                if let Some(k) = policy.slice_kernel() {
                    kernels.push((label.to_string(), k));
                }
            }
        }
        if ways == 16 {
            let paper: [(&str, Box<dyn sim_core::ReplacementPolicy>); 3] = [
                (
                    "GIPPR[wi]",
                    Box::new(
                        gippr::GipprPolicy::new(&geom, gippr::vectors::wi_gippr())
                            .expect("16-way paper vector"),
                    ),
                ),
                (
                    "GIPLR[best]",
                    Box::new(
                        gippr::GiplrPolicy::new(&geom, gippr::vectors::giplr_best())
                            .expect("16-way paper vector"),
                    ),
                ),
                (
                    "GIPPR[perlbench]",
                    Box::new(
                        gippr::GipprPolicy::new(&geom, gippr::vectors::perlbench_wn1())
                            .expect("16-way paper vector"),
                    ),
                ),
            ];
            for (label, policy) in paper {
                let short = label.split('[').next().unwrap_or(label);
                if !matches(short) {
                    continue;
                }
                if let Some(k) = policy.slice_kernel() {
                    kernels.push((label.to_string(), k));
                }
            }
        }
        // One sweep per distinct kernel shape; several roster entries
        // advertise the same kernel (e.g. LRU and the all-zero stack IPV).
        let mut seen = BTreeSet::new();
        for (label, kernel) in kernels {
            if !seen.insert(format!("{kernel:?}")) {
                continue;
            }
            match sim_core::kernel_soundness_sweep(&kernel, ways) {
                Ok(r) => println!(
                    "{:<22} {:>5} {:>6} {:>10} {:>12}  ok{}",
                    label,
                    ways,
                    r.lanes,
                    r.states,
                    r.transitions,
                    if r.exhaustive { "" } else { " (sampled walk)" }
                ),
                Err(e) => {
                    println!("{label:<22} {ways:>5}  COUNTEREXAMPLE");
                    eprintln!("kernel sweep ({label}, {ways} ways): {e}");
                    failures += 1;
                }
            }
        }
    }
    failures
}

/// Pass 5a: the Mattson fast-path qualification audit. The single-pass
/// profiler trusts `policy_qualifies` to admit only LRU-equivalent
/// policies; verify the qualifying roster set is exactly {LRU} and that
/// LRU matches an independent reference over all short streams.
fn mattson_pass() -> usize {
    let geom = sim_core::CacheGeometry::from_sets(2, 2, 64).expect("valid tiny geometry");
    match sim_verify::mattson_qualification_audit(geom, 2, 6) {
        Ok(names) if names == ["LRU"] => {
            println!(
                "\nmattson qualification audit: {{LRU}} qualifies; verified \
                 hit/evict-equivalent to the reference over all depth-6 streams"
            );
            0
        }
        Ok(names) => {
            eprintln!(
                "mattson qualification audit: qualifying set {names:?} != [\"LRU\"] — \
                 if a new LRU-equivalent policy was added, update the pin here and in \
                 sim-verify::mck deliberately"
            );
            1
        }
        Err(e) => {
            eprintln!("mattson qualification audit: {e}");
            1
        }
    }
}

/// Pass 5b: seeded-defect self-tests — each checker must catch the
/// defect class it exists for. A checker that reports `ok` on poisoned
/// input is worse than no checker.
fn checker_selftests() -> usize {
    use std::sync::Arc;

    println!("\nchecker self-tests (seeded defects must be caught):");
    let mut failures = 0;
    let mut expect = |label: &str, caught: bool, detail: String| {
        if caught {
            println!("  {label:<46} caught");
        } else {
            eprintln!("model-check(self-test): {label} NOT caught: {detail}");
            failures += 1;
        }
    };

    // Poisoned lane transitions: the kernel sweep must flag a cross-lane
    // XOR in the PLRU interpreter and nibble corruption in the stack and
    // RRIP interpreters.
    let plru = sim_core::SliceKernel::PlruIpv { ipv: vec![0; 5] };
    let r = sim_core::slice::kernel_soundness_sweep_poisoned(&plru, 4);
    expect(
        "kernel sweep: cross-lane PLRU leak",
        r.as_ref().is_err_and(|e| e.contains("lane boundary")),
        format!("{r:?}"),
    );
    let stack = sim_core::SliceKernel::StackIpv { ipv: vec![0; 5] };
    let r = sim_core::slice::kernel_soundness_sweep_poisoned(&stack, 4);
    expect(
        "kernel sweep: stack nibble corruption",
        r.as_ref().is_err_and(|e| e.contains("on_hit")),
        format!("{r:?}"),
    );
    let rrip = sim_core::SliceKernel::RripIpv {
        vector: baselines::RripIpvPolicy::srrip_vector(),
    };
    let r = sim_core::slice::kernel_soundness_sweep_poisoned(&rrip, 4);
    expect(
        "kernel sweep: RRIP nibble corruption",
        r.as_ref().is_err_and(|e| e.contains("on_hit")),
        format!("{r:?}"),
    );

    // Poisoned ARC `p` update: the bounded checker must reach the
    // unclamped growth past ways * P_SCALE and report a minimal trail.
    let build: sim_verify::SharedFactory = Arc::new(|g: &sim_core::CacheGeometry| {
        let mut p = baselines::ArcPolicy::new(g);
        p.poison_p_clamp();
        Box::new(p) as Box<dyn sim_core::ReplacementPolicy>
    });
    let geom = sim_core::CacheGeometry::from_sets(1, 2, 64).expect("valid tiny geometry");
    let mut model = sim_verify::PolicyModel::new("ARC[poisoned-p]", geom, 4, build);
    let r = sim_lint::BoundedChecker::new()
        .with_max_states(8192)
        .with_max_depth(10)
        .with_orbits(0, 0)
        .run(&mut model);
    expect(
        "bounded sweep: poisoned ARC p clamp",
        r.as_ref().is_err_and(|t| t.invariant.contains("exceeds")),
        match &r {
            Ok(rep) => format!("completed: {rep:?}"),
            Err(t) => t.invariant.clone(),
        },
    );

    // Fake SetLocal claim: the affinity pass must see the global cursor
    // leak across sets.
    let build: sim_verify::SharedFactory = Arc::new(|g: &sim_core::CacheGeometry| {
        Box::new(sim_verify::mck::SneakyGlobal::new(g)) as Box<dyn sim_core::ReplacementPolicy>
    });
    let geom = sim_core::CacheGeometry::from_sets(2, 2, 64).expect("valid tiny geometry");
    let r = sim_verify::AffinityModel::new("SneakyGlobal", geom, 2, build)
        .map_err(|e| e.to_string())
        .and_then(|mut m| {
            sim_lint::BoundedChecker::new()
                .with_max_states(512)
                .with_max_depth(8)
                .run(&mut m)
                .map_err(|t| t.invariant.clone())
                .map(|_| ())
        });
    expect(
        "affinity pass: fake SetLocal global cursor",
        r.as_ref()
            .is_err_and(|e| e.contains("shard-affinity violation")),
        format!("{r:?}"),
    );

    failures
}

/// The rule battery for one associativity: plain PLRU, the classic
/// LRU/LIP vectors, and the published paper vectors (natively at 16 ways,
/// rescaled below).
fn rules_for(ways: usize) -> Vec<(String, sim_lint::PromotionRule)> {
    use sim_lint::PromotionRule;

    let mut rules = vec![
        ("plru".to_string(), PromotionRule::Plru),
        (
            "lru vector".to_string(),
            PromotionRule::Ipv(vec![0; ways + 1]),
        ),
        ("lip vector".to_string(), {
            let mut v = vec![0u8; ways + 1];
            v[ways] = (ways - 1) as u8;
            PromotionRule::Ipv(v)
        }),
    ];
    let paper: Vec<(&str, gippr::Ipv)> = vec![
        ("giplr-best", gippr::vectors::giplr_best()),
        ("wi-gippr", gippr::vectors::wi_gippr()),
        ("perlbench-wn1", gippr::vectors::perlbench_wn1()),
    ];
    for (name, ipv) in paper {
        let scaled = if ways == 16 {
            ipv
        } else {
            ipv.rescaled(ways).expect("16 -> smaller rescale is valid")
        };
        rules.push((
            format!("{name}{}", if ways == 16 { "" } else { " (rescaled)" }),
            sim_lint::PromotionRule::Ipv(scaled.entries().to_vec()),
        ));
    }
    for (i, ipv) in gippr::vectors::wi_4dgippr().into_iter().enumerate() {
        if ways == 16 {
            rules.push((
                format!("wi-4-dgippr[{i}]"),
                sim_lint::PromotionRule::Ipv(ipv.entries().to_vec()),
            ));
        }
    }
    rules
}
