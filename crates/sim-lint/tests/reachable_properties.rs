//! Property tests pitting the analyzer's fixed-point reachability against
//! a brute-force enumeration that replays every single-step transition on
//! an explicit recency permutation.
//!
//! The analyzer reasons with interval arithmetic over shift edges; the
//! brute force here knows nothing of intervals — it builds a `Vec` of
//! occupants and lets `Vec::remove`/`Vec::insert` do the shifting, which
//! is the paper's Section 2.3 semantics by construction. Agreement over
//! random vectors at every associativity 4–16 is the satellite-task
//! guarantee that the fixed point computes the right set.

use proptest::prelude::*;
use sim_lint::{analyze, IpvClass};

/// The tracked block's new position after the block at `from` moves to
/// `to` in a `k`-deep stack, shifting the blocks between them.
fn after_move(k: usize, tracked: usize, from: usize, to: usize) -> usize {
    let mut order: Vec<usize> = (0..k).collect();
    let moved = order.remove(from);
    order.insert(to, moved);
    order
        .iter()
        .position(|&id| id == tracked)
        .expect("tracked block never leaves on a move")
}

/// The tracked block's new position after a miss inserts a fresh block at
/// `ins` (evicting the occupant of `k - 1`), or `None` if the tracked
/// block was the victim.
fn after_insert(k: usize, tracked: usize, ins: usize) -> Option<usize> {
    let mut order: Vec<usize> = (0..k).collect();
    let victim = order.pop().expect("k >= 2");
    if victim == tracked {
        return None;
    }
    order.insert(ins, usize::MAX);
    Some(
        order
            .iter()
            .position(|&id| id == tracked)
            .expect("survivor still resident"),
    )
}

/// All one-step successors of tracked position `p` under vector `v`.
fn brute_successors(v: &[u8], p: usize) -> Vec<usize> {
    let k = v.len() - 1;
    let mut out = Vec::new();
    // Self-hit: the tracked block moves to V[p].
    out.push(after_move(k, p, p, usize::from(v[p])));
    // Foreign hit: the block at q != p moves to V[q], dragging p along.
    for (q, &target) in v.iter().enumerate().take(k) {
        if q != p {
            out.push(after_move(k, p, q, usize::from(target)));
        }
    }
    // Miss: insertion at V[k].
    if let Some(np) = after_insert(k, p, usize::from(v[k])) {
        out.push(np);
    }
    out
}

/// Closure of `{V[k]}` under [`brute_successors`].
fn brute_reachable(v: &[u8]) -> Vec<usize> {
    let k = v.len() - 1;
    let mut seen = vec![false; k];
    let mut queue = vec![usize::from(v[k])];
    seen[usize::from(v[k])] = true;
    while let Some(p) = queue.pop() {
        for np in brute_successors(v, p) {
            if !seen[np] {
                seen[np] = true;
                queue.push(np);
            }
        }
    }
    (0..k).filter(|&p| seen[p]).collect()
}

/// Builds a well-formed random vector for `assoc` ways from raw entropy
/// bytes: entry `i` is `raw[i] % assoc`, always in range.
fn build_vector(assoc: usize, raw: &[u8]) -> Vec<u8> {
    (0..=assoc).map(|i| raw[i] % assoc as u8).collect()
}

/// Strategy for `(assoc, raw)` pairs covering associativities 4–16; the
/// vendored proptest has no `prop_flat_map`, so the dependent vector is
/// derived inside each test via [`build_vector`].
fn vector_inputs() -> impl Strategy<Value = (usize, Vec<u8>)> {
    (4usize..17, proptest::collection::vec(0u8..255, 17))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The fixed-point reachable set equals brute-force enumeration.
    #[test]
    fn reachable_set_matches_brute_force(inputs in vector_inputs()) {
        let v = build_vector(inputs.0, &inputs.1);
        let analysis = analyze(&v).expect("generated vectors are well-formed");
        prop_assert_eq!(
            analysis.reachable_positions(),
            brute_reachable(&v),
            "vector {:?}", v
        );
    }

    /// Degeneracy is exactly "brute force cannot reach pseudo-MRU".
    #[test]
    fn degeneracy_matches_brute_force(inputs in vector_inputs()) {
        let v = build_vector(inputs.0, &inputs.1);
        let analysis = analyze(&v).expect("well-formed");
        prop_assert_eq!(
            analysis.is_degenerate(),
            !brute_reachable(&v).contains(&0),
            "vector {:?}", v
        );
    }

    /// No foreign event ever pushes a block out of a protected position
    /// toward the victim, per the brute-force move simulation.
    #[test]
    fn protected_positions_resist_foreign_demotion(inputs in vector_inputs()) {
        let v = build_vector(inputs.0, &inputs.1);
        let k = v.len() - 1;
        let analysis = analyze(&v).expect("well-formed");
        for p in analysis.protected_positions() {
            // Foreign hits.
            for q in 0..k {
                if q != p {
                    let np = after_move(k, p, q, usize::from(v[q]));
                    prop_assert!(
                        np <= p,
                        "hit at {q} demoted protected {p} to {np} under {:?}", v
                    );
                }
            }
            // Insertions.
            let np = after_insert(k, p, usize::from(v[k]))
                .expect("protected positions are never the victim");
            prop_assert!(np <= p, "insertion demoted protected {p} to {np} under {:?}", v);
        }
    }

    /// Degenerate classification always coincides with the degeneracy bit,
    /// and non-degenerate vectors get a non-degenerate class.
    #[test]
    fn classification_is_consistent(inputs in vector_inputs()) {
        let v = build_vector(inputs.0, &inputs.1);
        let analysis = analyze(&v).expect("well-formed");
        prop_assert_eq!(
            analysis.class() == IpvClass::Degenerate,
            analysis.is_degenerate()
        );
    }
}

#[test]
fn brute_force_agrees_on_known_shapes() {
    // LRU at 8 ways: everything reachable.
    let lru = vec![0u8; 9];
    assert_eq!(brute_reachable(&lru), (0..8).collect::<Vec<_>>());
    // Identity promotions with LRU insertion: only the victim position.
    let mut dead: Vec<u8> = (0..8).collect();
    dead.push(7);
    assert_eq!(brute_reachable(&dead), vec![7]);
}
