//! The exhaustive PLRU model checker.
//!
//! `sim-verify` (PR 2) spot-checks the simulator's invariants along
//! whatever states a replayed trace happens to visit. This module *proves*
//! them instead, by exhausting the state space of one cache set:
//!
//! 1. **Complete tree sweep** — every one of the `2^(k-1)` PLRU bit
//!    patterns is checked for victim-selection totality (the victim walk
//!    lands on a real way sitting at position `k - 1`), the position↔tree
//!    bijection (per-way positions form a permutation of `0..k`), the
//!    position-write round-trip (`set_position` then `position` agree for
//!    every `(way, position)` pair), and the `bits`/`from_bits` encoding
//!    round-trip.
//! 2. **Reachable-space BFS** — from the reset state (zero tree, empty
//!    set), every `(tree, valid-mask)` state reachable under the policy's
//!    real hit/fill dynamics is explored breadth-first, proving
//!    invalid-line-first filling keeps the valid mask prefix-closed,
//!    victim totality on every reachable state, and *promotion
//!    convergence*: repeatedly hitting any fixed way settles into a cycle
//!    of bounded length (a fixpoint for plain PLRU; the vector's promotion
//!    orbit for an IPV). Because BFS explores in depth order, the event
//!    trail attached to a [`Counterexample`] is a minimal-length repro.
//!
//! The full `(tree × mask)` product space factors cleanly: no invariant
//! couples the tree bits to the valid mask (positions are defined for
//! invalid ways too; filling consults only the mask until the set is
//! full), so sweeping `2^(k-1)` trees plus BFS-ing the reachable product
//! covers everything the `2^(k-1) · 2^k` brute product would.
//!
//! The checker is generic over [`PlruState`] so the production
//! `gippr::PlruTree` — not a model of it — is the object being checked;
//! [`MirrorTree`](crate::mirror::MirrorTree) exists to check the checker.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::collections::HashSet;
use std::fmt;

/// One set's worth of PLRU replacement state, as the checker drives it.
///
/// `bits` is the canonical `u64` encoding (node `i` of the heap-indexed
/// tree at bit `i - 1`); two substrates agree on a state iff their `bits`
/// agree, which is what lets the checker cross-check implementations.
pub trait PlruState: Clone {
    /// Reconstructs a state from its canonical encoding.
    fn from_bits(ways: usize, bits: u64) -> Self;
    /// The canonical encoding of this state.
    fn bits(&self) -> u64;
    /// Associativity.
    fn ways(&self) -> usize;
    /// The way the victim walk selects.
    fn victim(&self) -> usize;
    /// `way`'s pseudo recency position (0 = MRU, `ways - 1` = victim).
    fn position(&self, way: usize) -> usize;
    /// Rewrites `way`'s root-to-leaf path so it occupies `position`.
    fn set_position(&mut self, way: usize, position: usize);
}

/// How hits and fills drive the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PromotionRule {
    /// Plain tree PseudoLRU: promote to pseudo-MRU on hit and fill.
    Plru,
    /// GIPPR: an insertion/promotion vector `V[0..=k]` — a hit at
    /// position `p` rewrites to `V[p]`, a fill lands at `V[k]`.
    Ipv(Vec<u8>),
}

impl PromotionRule {
    /// A short display name for reports.
    pub fn name(&self) -> String {
        match self {
            PromotionRule::Plru => "plru".to_string(),
            PromotionRule::Ipv(v) => format!("ipv{v:?}"),
        }
    }

    fn on_hit<S: PlruState>(&self, state: &mut S, way: usize) {
        match self {
            PromotionRule::Plru => state.set_position(way, 0),
            PromotionRule::Ipv(v) => {
                let p = state.position(way);
                state.set_position(way, usize::from(v[p]));
            }
        }
    }

    fn on_fill<S: PlruState>(&self, state: &mut S, way: usize) {
        match self {
            PromotionRule::Plru => state.set_position(way, 0),
            PromotionRule::Ipv(v) => state.set_position(way, usize::from(v[v.len() - 1])),
        }
    }
}

/// One event of a counterexample trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A miss: fill the first invalid way, or evict the victim.
    Miss,
    /// A hit on the given way.
    Hit(
        /// The way that hit.
        usize,
    ),
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Miss => write!(f, "miss"),
            Event::Hit(w) => write!(f, "hit(way {w})"),
        }
    }
}

/// A violated invariant with the smallest witness the checker found.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Associativity being checked.
    pub ways: usize,
    /// The promotion rule in force.
    pub rule: String,
    /// Which invariant broke.
    pub invariant: String,
    /// Tree bits of the offending state.
    pub state_bits: u64,
    /// Valid mask of the offending state (all-ones for tree-sweep
    /// findings, which are mask-independent).
    pub valid_mask: u64,
    /// Minimal event sequence from reset reaching the state (empty for
    /// tree-sweep findings, which index the state directly).
    pub trail: Vec<Event>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violated at {} ways (rule {}): bits {:#b}, mask {:#b}, trail [",
            self.invariant, self.ways, self.rule, self.state_bits, self.valid_mask
        )?;
        for (i, e) in self.trail.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

/// Statistics from a successful check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckReport {
    /// Associativity checked.
    pub ways: usize,
    /// Tree states swept exhaustively (`2^(ways-1)`).
    pub tree_states: u64,
    /// `(tree, mask)` states reachable from reset.
    pub reachable_states: u64,
    /// Transitions taken during the BFS.
    pub transitions: u64,
}

/// The exhaustive checker for one `(ways, rule)` configuration.
#[derive(Debug, Clone)]
pub struct ModelChecker {
    ways: usize,
    rule: PromotionRule,
}

/// Longest hit orbit tolerated before declaring non-convergence. The
/// promotion orbit of a `k`-entry vector has preperiod + period ≤ `k`
/// tree-position steps; double it for slack.
fn orbit_bound(ways: usize) -> usize {
    2 * ways + 2
}

impl ModelChecker {
    /// Creates a checker.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` is a power of two in `2..=16` (the exhaustive
    /// sweep is `2^(ways-1)` states; wider trees need a different
    /// strategy), or if an [`PromotionRule::Ipv`] rule's length is not
    /// `ways + 1` or holds an out-of-range entry.
    pub fn new(ways: usize, rule: PromotionRule) -> Self {
        assert!(
            ways.is_power_of_two() && (2..=16).contains(&ways),
            "model checker sweeps ways 2..=16, got {ways}"
        );
        if let PromotionRule::Ipv(v) = &rule {
            assert_eq!(v.len(), ways + 1, "IPV length must be ways + 1");
            assert!(
                v.iter().all(|&e| usize::from(e) < ways),
                "IPV entry out of range for {ways} ways"
            );
        }
        ModelChecker { ways, rule }
    }

    /// Associativity this checker covers.
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn fail(
        &self,
        invariant: &str,
        bits: u64,
        mask: u64,
        trail: Vec<Event>,
    ) -> Box<Counterexample> {
        Box::new(Counterexample {
            ways: self.ways,
            rule: self.rule.name(),
            invariant: invariant.to_string(),
            state_bits: bits,
            valid_mask: mask,
            trail,
        })
    }

    /// Runs both phases against substrate `S`.
    ///
    /// # Errors
    ///
    /// Returns the first [`Counterexample`] found; the BFS phase's trail
    /// is minimal in event count.
    pub fn run<S: PlruState>(&self) -> Result<CheckReport, Box<Counterexample>> {
        let tree_states = self.sweep_trees::<S>()?;
        let (reachable_states, transitions) = self.bfs_reachable::<S>()?;
        Ok(CheckReport {
            ways: self.ways,
            tree_states,
            reachable_states,
            transitions,
        })
    }

    /// Phase 1: every tree bit pattern, no dynamics.
    fn sweep_trees<S: PlruState>(&self) -> Result<u64, Box<Counterexample>> {
        let k = self.ways;
        let full_mask = ones(k);
        for bits in 0..(1u64 << (k - 1)) {
            let s = S::from_bits(k, bits);
            if s.bits() != bits {
                return Err(self.fail("bits/from_bits round-trip", bits, full_mask, vec![]));
            }
            self.check_victim_and_bijection(&s, bits, full_mask, &[])?;
            for way in 0..k {
                for pos in 0..k {
                    let mut t = s.clone();
                    t.set_position(way, pos);
                    if t.position(way) != pos {
                        return Err(self.fail(
                            &format!("position round-trip (way {way}, pos {pos})"),
                            bits,
                            full_mask,
                            vec![],
                        ));
                    }
                }
            }
        }
        Ok(1u64 << (k - 1))
    }

    fn check_victim_and_bijection<S: PlruState>(
        &self,
        s: &S,
        bits: u64,
        mask: u64,
        trail: &[Event],
    ) -> Result<(), Box<Counterexample>> {
        let k = self.ways;
        let v = s.victim();
        if v >= k {
            return Err(self.fail("victim totality", bits, mask, trail.to_vec()));
        }
        if s.position(v) != k - 1 {
            return Err(self.fail("victim at position k-1", bits, mask, trail.to_vec()));
        }
        let mut seen = 0u64;
        for w in 0..k {
            let p = s.position(w);
            if p >= k || seen & (1 << p) != 0 {
                return Err(self.fail("position bijection", bits, mask, trail.to_vec()));
            }
            seen |= 1 << p;
        }
        Ok(())
    }

    /// Phase 2: BFS over reachable `(tree, mask)` states under real
    /// dynamics, with predecessor links for minimal trails.
    fn bfs_reachable<S: PlruState>(&self) -> Result<(u64, u64), Box<Counterexample>> {
        let k = self.ways;
        let full = ones(k);
        let key = |bits: u64, mask: u64| bits | (mask << 20);

        // visited: state key -> (parent key, event that reached it).
        let mut visited: HashMap<u64, Option<(u64, Event)>> = HashMap::new();
        visited.insert(key(0, 0), None);
        let mut frontier: Vec<(u64, u64)> = vec![(0, 0)];
        let mut transitions = 0u64;
        // (bits, way) pairs whose hit orbit is already proven to converge.
        let mut converged: HashSet<(u64, usize)> = HashSet::new();

        let trail_of = |visited: &HashMap<u64, Option<(u64, Event)>>, mut at: u64| {
            let mut trail = Vec::new();
            while let Some(Some((parent, event))) = visited.get(&at) {
                trail.push(*event);
                at = *parent;
            }
            trail.reverse();
            trail
        };

        while let Some((bits, mask)) = frontier.pop() {
            let mut next_frontier = Vec::new();
            let mut layer = vec![(bits, mask)];
            // Drain the whole BFS layer-by-layer: `frontier` holds one
            // layer; pushing discoveries to `next_frontier` keeps depth
            // order, so the first violation has a minimal trail.
            layer.append(&mut frontier);
            for (bits, mask) in layer {
                let s = S::from_bits(k, bits);
                let trail = trail_of(&visited, key(bits, mask));
                self.check_victim_and_bijection(&s, bits, mask, &trail)?;
                self.check_convergence(&s, bits, mask, &trail, &mut converged)?;

                // Successors: a miss, and a hit on every valid way.
                let mut successors: Vec<(Event, u64, u64)> = Vec::with_capacity(k + 1);
                {
                    let mut t = s.clone();
                    let fill_way = if mask != full {
                        // Invalid-line-first: the cache model fills the
                        // lowest invalid way without consulting the tree.
                        let w = (!mask).trailing_zeros() as usize;
                        if w >= k || mask & (1 << w) != 0 {
                            return Err(self.fail("invalid-first fill", bits, mask, trail));
                        }
                        w
                    } else {
                        let w = t.victim();
                        if w >= k {
                            return Err(self.fail("victim totality on miss", bits, mask, trail));
                        }
                        w
                    };
                    self.rule.on_fill(&mut t, fill_way);
                    let new_mask = mask | (1 << fill_way);
                    if (new_mask + 1) & new_mask != 0 {
                        return Err(self.fail("valid-mask prefix closure", bits, mask, trail));
                    }
                    successors.push((Event::Miss, t.bits(), new_mask));
                }
                for w in 0..k {
                    if mask & (1 << w) == 0 {
                        continue;
                    }
                    let mut t = s.clone();
                    self.rule.on_hit(&mut t, w);
                    successors.push((Event::Hit(w), t.bits(), mask));
                }

                for (event, nbits, nmask) in successors {
                    transitions += 1;
                    if let Entry::Vacant(slot) = visited.entry(key(nbits, nmask)) {
                        slot.insert(Some((key(bits, mask), event)));
                        next_frontier.push((nbits, nmask));
                    }
                }
            }
            frontier = next_frontier;
        }
        Ok((visited.len() as u64, transitions))
    }

    /// Proves that repeatedly hitting any single valid way settles into a
    /// bounded cycle (and, for plain PLRU, a one-step fixpoint).
    /// Memoized on `(bits, way)`: every state along a proven orbit is
    /// itself proven, so total work is linear in distinct pairs.
    fn check_convergence<S: PlruState>(
        &self,
        s: &S,
        bits: u64,
        mask: u64,
        trail: &[Event],
        converged: &mut HashSet<(u64, usize)>,
    ) -> Result<(), Box<Counterexample>> {
        let k = self.ways;
        let bound = orbit_bound(k);
        for way in 0..k {
            if mask & (1 << way) == 0 || converged.contains(&(bits, way)) {
                continue;
            }
            let mut t = s.clone();
            let mut path = vec![bits];
            let mut settled = false;
            for step in 0..bound {
                self.rule.on_hit(&mut t, way);
                let b = t.bits();
                if matches!(self.rule, PromotionRule::Plru) && step == 1 && b != path[1] {
                    return Err(self.fail("plru promotion fixpoint", bits, mask, trail.to_vec()));
                }
                if converged.contains(&(b, way)) || path.contains(&b) {
                    settled = true;
                    break;
                }
                path.push(b);
            }
            if !settled {
                return Err(self.fail(
                    &format!("promotion convergence (way {way})"),
                    bits,
                    mask,
                    trail.to_vec(),
                ));
            }
            for b in path {
                converged.insert((b, way));
            }
        }
        Ok(())
    }
}

/// Sweeps two substrates over the complete tree space and every
/// `(way, position)` write, returning the number of states compared or
/// the first disagreement. This is the exhaustive version of the
/// `sim-verify` PLRU differential pair.
///
/// # Errors
///
/// Returns a [`Counterexample`] naming the disagreeing operation.
pub fn cross_check<A: PlruState, B: PlruState>(ways: usize) -> Result<u64, Box<Counterexample>> {
    assert!(
        ways.is_power_of_two() && (2..=16).contains(&ways),
        "cross-check sweeps ways 2..=16, got {ways}"
    );
    let full = ones(ways);
    let fail = |invariant: String, bits: u64| {
        Box::new(Counterexample {
            ways,
            rule: "cross-check".to_string(),
            invariant,
            state_bits: bits,
            valid_mask: full,
            trail: vec![],
        })
    };
    for bits in 0..(1u64 << (ways - 1)) {
        let a = A::from_bits(ways, bits);
        let b = B::from_bits(ways, bits);
        if a.victim() != b.victim() {
            return Err(fail(
                format!("victim {} vs {}", a.victim(), b.victim()),
                bits,
            ));
        }
        for w in 0..ways {
            if a.position(w) != b.position(w) {
                return Err(fail(format!("position(way {w})"), bits));
            }
            for p in 0..ways {
                let mut ta = a.clone();
                let mut tb = b.clone();
                ta.set_position(w, p);
                tb.set_position(w, p);
                if ta.bits() != tb.bits() {
                    return Err(fail(format!("set_position(way {w}, pos {p})"), bits));
                }
            }
        }
    }
    Ok(1u64 << (ways - 1))
}

fn ones(k: usize) -> u64 {
    (1u64 << k) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mirror::MirrorTree;

    #[test]
    fn plru_clean_up_to_8_ways() {
        for ways in [2usize, 4, 8] {
            let report = ModelChecker::new(ways, PromotionRule::Plru)
                .run::<MirrorTree>()
                .unwrap_or_else(|c| panic!("{c}"));
            assert_eq!(report.tree_states, 1 << (ways - 1));
            assert!(report.reachable_states > 0);
            assert!(report.transitions >= report.reachable_states - 1);
        }
    }

    #[test]
    fn lip_vector_clean_on_mirror() {
        for ways in [2usize, 4, 8] {
            let mut v = vec![0u8; ways + 1];
            v[ways] = (ways - 1) as u8;
            ModelChecker::new(ways, PromotionRule::Ipv(v))
                .run::<MirrorTree>()
                .unwrap_or_else(|c| panic!("{c}"));
        }
    }

    #[test]
    fn oscillating_vector_still_converges_to_a_cycle() {
        // V[0] = 2, V[2] = 0 oscillates — a cycle, not a fixpoint, which
        // the convergence invariant (bounded cycle) accepts for IPVs.
        let v = vec![2u8, 1, 0, 3, 0];
        ModelChecker::new(4, PromotionRule::Ipv(v))
            .run::<MirrorTree>()
            .unwrap_or_else(|c| panic!("{c}"));
    }

    /// A substrate with a broken victim walk, to prove the checker sees it.
    #[derive(Clone)]
    struct BrokenVictim(MirrorTree);

    impl PlruState for BrokenVictim {
        fn from_bits(ways: usize, bits: u64) -> Self {
            BrokenVictim(MirrorTree::from_bits(ways, bits))
        }
        fn bits(&self) -> u64 {
            self.0.bits()
        }
        fn ways(&self) -> usize {
            self.0.ways()
        }
        fn victim(&self) -> usize {
            // Always way 0, regardless of the tree: wrong whenever the
            // tree points elsewhere.
            0
        }
        fn position(&self, way: usize) -> usize {
            self.0.position(way)
        }
        fn set_position(&mut self, way: usize, position: usize) {
            self.0.set_position(way, position);
        }
    }

    #[test]
    fn broken_victim_is_caught_with_counterexample() {
        let err = ModelChecker::new(4, PromotionRule::Plru)
            .run::<BrokenVictim>()
            .expect_err("broken substrate must fail");
        assert!(err.invariant.contains("victim"), "{err}");
        assert!(!err.to_string().is_empty());
    }

    /// A substrate whose position write is off by one in the write path.
    #[derive(Clone)]
    struct BrokenWrite(MirrorTree);

    impl PlruState for BrokenWrite {
        fn from_bits(ways: usize, bits: u64) -> Self {
            BrokenWrite(MirrorTree::from_bits(ways, bits))
        }
        fn bits(&self) -> u64 {
            self.0.bits()
        }
        fn ways(&self) -> usize {
            self.0.ways()
        }
        fn victim(&self) -> usize {
            self.0.victim()
        }
        fn position(&self, way: usize) -> usize {
            self.0.position(way)
        }
        fn set_position(&mut self, way: usize, position: usize) {
            // Drops the low position bit: Multi-step-LRU-style compact
            // encoding bug that trace tests rarely trip.
            self.0.set_position(way, position & !1);
        }
    }

    #[test]
    fn broken_write_is_caught_in_tree_sweep() {
        let err = ModelChecker::new(8, PromotionRule::Plru)
            .run::<BrokenWrite>()
            .expect_err("broken write must fail");
        assert!(err.invariant.contains("round-trip"), "{err}");
    }

    #[test]
    fn seeded_poison_state_is_caught() {
        /// Misbehaves only in one specific tree state, which the
        /// exhaustive sweep must reach and report by its bits.
        #[derive(Clone)]
        struct TrickyTree {
            inner: MirrorTree,
            poisoned: bool,
        }
        impl PlruState for TrickyTree {
            fn from_bits(ways: usize, bits: u64) -> Self {
                TrickyTree {
                    inner: MirrorTree::from_bits(ways, bits),
                    // Encode the poison in a real tree bit so BFS keying
                    // (which only sees `bits`) is faithful: bit pattern
                    // 0b11 marks the poisoned state for 4 ways.
                    poisoned: bits == 0b011,
                }
            }
            fn bits(&self) -> u64 {
                self.inner.bits()
            }
            fn ways(&self) -> usize {
                self.inner.ways()
            }
            fn victim(&self) -> usize {
                if self.poisoned {
                    self.inner.ways() // out of range
                } else {
                    self.inner.victim()
                }
            }
            fn position(&self, way: usize) -> usize {
                self.inner.position(way)
            }
            fn set_position(&mut self, way: usize, position: usize) {
                self.inner.set_position(way, position);
            }
        }

        // Tree sweep hits the poisoned bits directly (empty trail); make
        // sure the counterexample is reported at all.
        let err = ModelChecker::new(4, PromotionRule::Plru)
            .run::<TrickyTree>()
            .expect_err("poisoned tree must fail");
        assert_eq!(err.state_bits, 0b011);
        assert!(err.invariant.contains("victim"));
    }

    #[test]
    fn mirror_cross_checks_against_itself() {
        for ways in [2usize, 4, 8] {
            let states = cross_check::<MirrorTree, MirrorTree>(ways).unwrap();
            assert_eq!(states, 1 << (ways - 1));
        }
    }

    #[test]
    fn cross_check_catches_disagreement() {
        let err = cross_check::<MirrorTree, BrokenWrite>(4).expect_err("must disagree");
        assert!(err.invariant.contains("set_position"), "{err}");
    }

    #[test]
    fn rejects_bad_configs() {
        let caught = std::panic::catch_unwind(|| ModelChecker::new(32, PromotionRule::Plru));
        assert!(caught.is_err(), "ways 32 exceeds the sweepable range");
        let caught =
            std::panic::catch_unwind(|| ModelChecker::new(4, PromotionRule::Ipv(vec![0; 3])));
        assert!(caught.is_err(), "short vector must be rejected");
    }

    #[test]
    fn report_fields_are_plausible() {
        let r = ModelChecker::new(4, PromotionRule::Plru)
            .run::<MirrorTree>()
            .unwrap();
        assert_eq!(r.ways, 4);
        assert_eq!(r.tree_states, 8);
        // 8 tree states x 5 prefix masks bounds the reachable product.
        assert!(r.reachable_states <= 8 * 5);
        assert!(r.reachable_states >= 5, "masks alone give 5 states");
    }
}
