//! A deliberately naive tree-PseudoLRU substrate.
//!
//! [`MirrorTree`] reimplements the paper's four tree algorithms (victim
//! walk, promote, position read, position write) over a `Vec<bool>` of
//! node bits — no packing, no bit tricks — as an independent second
//! implementation. The model checker's self-tests run against it, and
//! [`mck::cross_check`](crate::mck::cross_check) sweeps it against the
//! production bit-packed tree over the *complete* state space, turning
//! the differential-testing idea of `sim-verify` into a proof for the
//! tree algebra.

use crate::mck::PlruState;

/// A `Vec<bool>` tree-PLRU state for one set.
///
/// Node `i` (heap-indexed from 1, children `2i` and `2i + 1`) stores its
/// bit at `nodes[i]`; way `w`'s leaf is node `ways + w`. The canonical
/// `u64` encoding used by [`PlruState::bits`] places node `i` at bit
/// `i - 1`, matching `gippr::PlruTree::raw_bits`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirrorTree {
    /// `nodes[0]` is unused padding so the heap indexing stays 1-based.
    nodes: Vec<bool>,
    ways: usize,
}

impl MirrorTree {
    /// Creates an all-zero tree.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` is a power of two in `2..=64`.
    pub fn new(ways: usize) -> Self {
        assert!(
            ways.is_power_of_two() && (2..=64).contains(&ways),
            "mirror tree needs a power-of-two associativity in 2..=64, got {ways}"
        );
        MirrorTree {
            nodes: vec![false; ways],
            ways,
        }
    }
}

impl PlruState for MirrorTree {
    fn from_bits(ways: usize, bits: u64) -> Self {
        let mut t = MirrorTree::new(ways);
        for node in 1..ways {
            t.nodes[node] = bits >> (node - 1) & 1 == 1;
        }
        t
    }

    fn bits(&self) -> u64 {
        let mut bits = 0u64;
        for node in 1..self.ways {
            if self.nodes[node] {
                bits |= 1 << (node - 1);
            }
        }
        bits
    }

    fn ways(&self) -> usize {
        self.ways
    }

    fn victim(&self) -> usize {
        let mut node = 1;
        while node < self.ways {
            node = 2 * node + usize::from(self.nodes[node]);
        }
        node - self.ways
    }

    fn position(&self, way: usize) -> usize {
        assert!(way < self.ways, "way {way} out of range");
        let mut node = self.ways + way;
        let mut pos = 0usize;
        let mut level = 0u32;
        while node > 1 {
            let parent = node / 2;
            let is_right = node % 2 == 1;
            // The parent's bit contributes 1 to this level iff it points
            // toward the block.
            let toward = if is_right {
                self.nodes[parent]
            } else {
                !self.nodes[parent]
            };
            if toward {
                pos |= 1 << level;
            }
            node = parent;
            level += 1;
        }
        pos
    }

    fn set_position(&mut self, way: usize, position: usize) {
        assert!(way < self.ways, "way {way} out of range");
        assert!(position < self.ways, "position {position} out of range");
        let mut node = self.ways + way;
        let mut level = 0u32;
        while node > 1 {
            let parent = node / 2;
            let is_right = node % 2 == 1;
            let toward = position >> level & 1 == 1;
            self.nodes[parent] = if is_right { toward } else { !toward };
            node = parent;
            level += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tree_victimizes_way_zero() {
        let t = MirrorTree::new(8);
        assert_eq!(t.victim(), 0);
        assert_eq!(t.position(0), 7, "the victim sits at the bottom");
    }

    #[test]
    fn set_position_round_trips() {
        let mut t = MirrorTree::new(16);
        for way in 0..16 {
            for pos in 0..16 {
                t.set_position(way, pos);
                assert_eq!(t.position(way), pos);
            }
        }
    }

    #[test]
    fn bits_round_trip() {
        for bits in 0..128u64 {
            let t = MirrorTree::from_bits(8, bits);
            assert_eq!(t.bits(), bits);
        }
    }

    #[test]
    fn positions_always_a_permutation() {
        for bits in 0..128u64 {
            let t = MirrorTree::from_bits(8, bits);
            let mut ps: Vec<usize> = (0..8).map(|w| t.position(w)).collect();
            ps.sort_unstable();
            assert_eq!(ps, (0..8).collect::<Vec<_>>(), "bits {bits:#b}");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_bad_ways() {
        let _ = MirrorTree::new(6);
    }
}
