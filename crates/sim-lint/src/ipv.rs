//! The IPV static analyzer.
//!
//! An insertion/promotion vector `V[0..=k]` for a `k`-way set fully
//! determines — with no workload in sight — which recency positions a block
//! can ever occupy, which positions shelter a block from eviction pressure,
//! and whether the vector is degenerate (no block can ever reach pseudo-MRU,
//! the paper's footnote-1 pathology). This module decides all of that by
//! fixed-point iteration over the vector's single-step transition relation.
//!
//! # Transition semantics
//!
//! The analysis tracks one block's position `p` under the paper's
//! Section 2.3 true-LRU shifting semantics. One event moves it:
//!
//! * **self-hit** — the block is referenced: `p → V[p]`.
//! * **foreign hit at `q ≠ p`** — the block at `q` moves to `V[q]`,
//!   shifting the interval between: if `V[q] < q`, occupants of
//!   `[V[q], q)` slide down (`p → p + 1`); if `V[q] > q`, occupants of
//!   `(q, V[q]]` slide up (`p → p - 1`).
//! * **insertion** — a miss inserts a new block at `V[k]`, sliding
//!   occupants of `[V[k], k-1)` down one; the previous occupant of
//!   `k - 1` is evicted.
//!
//! These are exactly the edges `gippr::Ipv::is_degenerate` walks; the
//! analyzer generalizes that single reachability query into the full
//! report and is the one implementation both `gippr` and `evolve` consult.

use std::error::Error;
use std::fmt;

/// Widest associativity the analyzer supports (positions fit a `u64` set).
pub const MAX_ASSOC: usize = 64;

/// A structural error that makes `entries` not an IPV at all.
///
/// Contrast with [`IpvLint`]: an error means the vector cannot drive a
/// cache; a lint flags a well-formed vector with notable behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpvLintError {
    /// Fewer than 3 entries (a 2-way vector is the smallest meaningful one)
    /// or more than [`MAX_ASSOC`] + 1.
    WrongShape(usize),
    /// Entry `index` holds `value`, outside `0..assoc`.
    PositionOutOfRange {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: u8,
        /// Exclusive position bound (the associativity).
        assoc: usize,
    },
}

impl fmt::Display for IpvLintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpvLintError::WrongShape(n) => {
                write!(f, "IPV needs 3..={} entries, got {n}", MAX_ASSOC + 1)
            }
            IpvLintError::PositionOutOfRange {
                index,
                value,
                assoc,
            } => write!(f, "IPV entry {index} is {value}, outside 0..{assoc}"),
        }
    }
}

impl Error for IpvLintError {}

/// A statically detected behavioural property worth flagging.
///
/// Lints are advisory: several published paper vectors trip them by
/// design (the genetic algorithm found demotion and oscillation useful),
/// so callers decide which lints are acceptable in which context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpvLint {
    /// `V[i] > i`: a hit *demotes* the block toward the victim position,
    /// violating the classic promotion constraint `V[i] ≤ i`. Legal — the
    /// paper's evolved vectors use pessimistic promotion deliberately —
    /// but a red flag in a hand-written vector.
    DemotesOnHit {
        /// The hit position `i`.
        index: usize,
        /// Its demotion target `V[i]`.
        target: usize,
    },
    /// The insertion position is `k - 1`: every incoming block lands on
    /// the victim position and is evicted by the next miss unless it hits
    /// first (LIP-style; intentional for scan resistance).
    InsertsAtVictim,
    /// Positions no block can ever occupy. Dead positions waste encoding
    /// space and usually indicate a vector that behaves like a
    /// lower-associativity one.
    DeadPositions(
        /// The unreachable positions, ascending.
        Vec<usize>,
    ),
    /// Repeated hits starting from some reachable position never settle:
    /// the promotion orbit enters a cycle of length ≥ 2 instead of a
    /// fixpoint (`V[p] = p` or the MRU self-loop).
    OscillatingPromotion {
        /// A reachable position whose orbit oscillates.
        start: usize,
        /// The positions of the cycle, in orbit order.
        cycle: Vec<usize>,
    },
    /// Pseudo-MRU (position 0) is unreachable from the insertion
    /// position: the paper's footnote-1 degeneracy. The fatal lint — the
    /// vector cannot express any recency ordering worth evaluating.
    UnreachableMru,
}

impl fmt::Display for IpvLint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpvLint::DemotesOnHit { index, target } => {
                write!(f, "hit at position {index} demotes to {target}")
            }
            IpvLint::InsertsAtVictim => write!(f, "inserts at the victim position"),
            IpvLint::DeadPositions(ps) => write!(f, "unreachable positions {ps:?}"),
            IpvLint::OscillatingPromotion { start, cycle } => {
                write!(
                    f,
                    "promotion orbit from {start} oscillates through {cycle:?}"
                )
            }
            IpvLint::UnreachableMru => write!(f, "pseudo-MRU unreachable (degenerate)"),
        }
    }
}

/// The behavioural class of a vector, decided statically.
///
/// Precedence when several descriptions fit:
/// [`Degenerate`](IpvClass::Degenerate) >
/// [`Protective`](IpvClass::Protective) >
/// [`ThrashResistant`](IpvClass::ThrashResistant) >
/// [`LruLike`](IpvClass::LruLike).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpvClass {
    /// Pseudo-MRU is unreachable; no recency ordering can form.
    Degenerate,
    /// Some reachable position is *protected*: no foreign hit or
    /// insertion can push a block out of it, so a resident block survives
    /// arbitrary eviction pressure until its own next hit moves it.
    Protective,
    /// Insertion lands in the lower half of the stack (`V[k] ≥ k / 2`):
    /// incoming blocks must earn promotion before displacing the working
    /// set, the LIP-style scan-resistance mechanism.
    ThrashResistant,
    /// Insertion and promotion both work the upper stack; behaviour is
    /// recency-dominated like classic LRU.
    LruLike,
}

impl fmt::Display for IpvClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IpvClass::Degenerate => "degenerate",
            IpvClass::Protective => "protective",
            IpvClass::ThrashResistant => "thrash-resistant",
            IpvClass::LruLike => "LRU-like",
        };
        f.write_str(s)
    }
}

/// The full static report for one vector. Built by [`analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpvAnalysis {
    assoc: usize,
    entries: Vec<u8>,
    reachable: u64,
    protected: u64,
    lints: Vec<IpvLint>,
    class: IpvClass,
}

/// Analyzes raw vector entries `V[0..=k]` (`k = entries.len() - 1`).
///
/// Works on raw bytes rather than a policy type so the analyzer sits below
/// every simulator crate in the dependency graph; `gippr::Ipv` guarantees
/// the same invariants this function re-checks.
///
/// # Errors
///
/// Returns [`IpvLintError`] if the shape or any entry makes `entries` not
/// an IPV. Behavioural findings are never errors — they land in
/// [`IpvAnalysis::lints`].
pub fn analyze(entries: &[u8]) -> Result<IpvAnalysis, IpvLintError> {
    if entries.len() < 3 || entries.len() > MAX_ASSOC + 1 {
        return Err(IpvLintError::WrongShape(entries.len()));
    }
    let assoc = entries.len() - 1;
    if let Some((index, &value)) = entries
        .iter()
        .enumerate()
        .find(|(_, &v)| usize::from(v) >= assoc)
    {
        return Err(IpvLintError::PositionOutOfRange {
            index,
            value,
            assoc,
        });
    }

    let v = |i: usize| usize::from(entries[i]);
    let ins = v(assoc);
    let reachable = reachable_fixed_point(entries);
    let protected = protected_mask(entries);

    let mut lints = Vec::new();
    for i in 0..assoc {
        if v(i) > i {
            lints.push(IpvLint::DemotesOnHit {
                index: i,
                target: v(i),
            });
        }
    }
    if ins == assoc - 1 {
        lints.push(IpvLint::InsertsAtVictim);
    }
    let dead: Vec<usize> = (0..assoc).filter(|&p| reachable & (1 << p) == 0).collect();
    if !dead.is_empty() {
        lints.push(IpvLint::DeadPositions(dead));
    }
    for p in 0..assoc {
        if reachable & (1 << p) == 0 {
            continue;
        }
        if let Some(cycle) = oscillation(entries, p) {
            lints.push(IpvLint::OscillatingPromotion { start: p, cycle });
            break; // one witness is enough; orbits overlap heavily
        }
    }
    let degenerate = reachable & 1 == 0;
    if degenerate {
        lints.push(IpvLint::UnreachableMru);
    }

    let class = if degenerate {
        IpvClass::Degenerate
    } else if (0..assoc - 1).any(|p| reachable & protected & (1 << p) != 0) {
        IpvClass::Protective
    } else if ins >= assoc / 2 {
        IpvClass::ThrashResistant
    } else {
        IpvClass::LruLike
    };

    Ok(IpvAnalysis {
        assoc,
        entries: entries.to_vec(),
        reachable,
        protected,
        lints,
        class,
    })
}

/// Closes `{V[k]}` under the single-step transition relation by iterating
/// to a fixed point. Terminates in at most `k` rounds: the reachable set
/// only grows and has at most `k` members.
fn reachable_fixed_point(entries: &[u8]) -> u64 {
    let assoc = entries.len() - 1;
    let v = |i: usize| usize::from(entries[i]);
    let ins = v(assoc);
    let mut reach: u64 = 1 << ins;
    loop {
        let mut next = reach;
        for p in 0..assoc {
            if reach & (1 << p) == 0 {
                continue;
            }
            // Self-hit.
            next |= 1 << v(p);
            // Foreign hit at q: shifts p by one if p lies in the moved
            // interval.
            for q in 0..assoc {
                if q == p {
                    continue;
                }
                let t = v(q);
                if t < q && t <= p && p < q {
                    next |= 1 << (p + 1);
                }
                if t > q && q < p && p <= t {
                    next |= 1 << (p - 1);
                }
            }
            // Insertion slides [ins, k-1) down one.
            if p >= ins && p < assoc - 1 {
                next |= 1 << (p + 1);
            }
        }
        if next == reach {
            return reach;
        }
        reach = next;
    }
}

/// Positions no *foreign* event can push toward the victim: `p` is
/// protected iff the insertion point lies strictly below it (`p < V[k]`)
/// and no hit interval `[V[q], q)` with `V[q] < q` covers it. The victim
/// position `k - 1` is never protected. A block in a protected position
/// can still demote itself via its own hit when `V[p] > p`.
fn protected_mask(entries: &[u8]) -> u64 {
    let assoc = entries.len() - 1;
    let v = |i: usize| usize::from(entries[i]);
    let ins = v(assoc);
    let mut mask = 0u64;
    'pos: for p in 0..assoc - 1 {
        if p >= ins {
            continue;
        }
        for q in 0..assoc {
            let t = v(q);
            if t < q && t <= p && p < q {
                continue 'pos;
            }
        }
        mask |= 1 << p;
    }
    mask
}

/// Follows the promotion orbit `p → V[p] → V[V[p]] → …`. Returns the
/// cycle it enters if that cycle has length ≥ 2 (oscillation), `None` if
/// the orbit reaches a fixpoint `V[t] = t`.
fn oscillation(entries: &[u8], start: usize) -> Option<Vec<usize>> {
    let assoc = entries.len() - 1;
    let v = |i: usize| usize::from(entries[i]);
    let mut seen = vec![usize::MAX; assoc];
    let mut t = start;
    let mut step = 0usize;
    while seen[t] == usize::MAX {
        seen[t] = step;
        step += 1;
        t = v(t);
    }
    if v(t) == t {
        return None;
    }
    let mut cycle = vec![t];
    let mut u = v(t);
    while u != t {
        cycle.push(u);
        u = v(u);
    }
    Some(cycle)
}

impl IpvAnalysis {
    /// Associativity `k` of the analyzed vector.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// The analyzed entries, `V[0..=k]`.
    pub fn entries(&self) -> &[u8] {
        &self.entries
    }

    /// The insertion position `V[k]`.
    pub fn insertion(&self) -> usize {
        usize::from(self.entries[self.assoc])
    }

    /// Bitmask of positions a block can ever occupy (bit `p` set iff
    /// position `p` is reachable from the insertion position).
    pub fn reachable_mask(&self) -> u64 {
        self.reachable
    }

    /// Reachable positions, ascending.
    pub fn reachable_positions(&self) -> Vec<usize> {
        (0..self.assoc)
            .filter(|&p| self.reachable & (1 << p) != 0)
            .collect()
    }

    /// Positions no block can ever occupy, ascending.
    pub fn dead_positions(&self) -> Vec<usize> {
        (0..self.assoc)
            .filter(|&p| self.reachable & (1 << p) == 0)
            .collect()
    }

    /// Protected positions (see [`IpvClass::Protective`]), ascending.
    pub fn protected_positions(&self) -> Vec<usize> {
        (0..self.assoc)
            .filter(|&p| self.protected & (1 << p) != 0)
            .collect()
    }

    /// Whether pseudo-MRU is unreachable (the paper's footnote-1 check).
    pub fn is_degenerate(&self) -> bool {
        self.reachable & 1 == 0
    }

    /// Whether every reachable promotion orbit settles at a fixpoint.
    pub fn converges_to_fixpoint(&self) -> bool {
        !self
            .lints
            .iter()
            .any(|l| matches!(l, IpvLint::OscillatingPromotion { .. }))
    }

    /// All advisory lints, in detection order.
    pub fn lints(&self) -> &[IpvLint] {
        &self.lints
    }

    /// The behavioural classification.
    pub fn class(&self) -> IpvClass {
        self.class
    }
}

impl fmt::Display for IpvAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-way {}: insert@{}, {} reachable, {} dead, {} protected, {} lint(s)",
            self.assoc,
            self.class,
            self.insertion(),
            self.reachable_positions().len(),
            self.dead_positions().len(),
            self.protected_positions().len(),
            self.lints.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru(k: usize) -> Vec<u8> {
        vec![0; k + 1]
    }

    fn lip(k: usize) -> Vec<u8> {
        let mut v = vec![0u8; k + 1];
        v[k] = (k - 1) as u8;
        v
    }

    #[test]
    fn rejects_malformed_vectors() {
        assert_eq!(analyze(&[0, 0]), Err(IpvLintError::WrongShape(2)));
        assert_eq!(analyze(&[0; 70]), Err(IpvLintError::WrongShape(70)));
        assert_eq!(
            analyze(&[0, 4, 0, 0, 1]),
            Err(IpvLintError::PositionOutOfRange {
                index: 1,
                value: 4,
                assoc: 4
            })
        );
    }

    #[test]
    fn lru_is_lru_like_and_clean() {
        let a = analyze(&lru(16)).unwrap();
        assert_eq!(a.class(), IpvClass::LruLike);
        assert!(a.lints().is_empty(), "{:?}", a.lints());
        assert_eq!(a.reachable_positions(), (0..16).collect::<Vec<_>>());
        assert!(a.protected_positions().is_empty());
        assert!(a.converges_to_fixpoint());
    }

    #[test]
    fn lip_is_thrash_resistant() {
        let a = analyze(&lip(16)).unwrap();
        assert_eq!(a.class(), IpvClass::ThrashResistant);
        assert!(a.lints().contains(&IpvLint::InsertsAtVictim));
        assert!(!a.is_degenerate());
    }

    #[test]
    fn identity_promotions_with_lru_insertion_are_degenerate() {
        // V[i] = i, insert at k-1: hits never move anything, insertions
        // only refill k-1. Nothing ever climbs.
        let mut v: Vec<u8> = (0..16).collect();
        v.push(15);
        let a = analyze(&v).unwrap();
        assert_eq!(a.class(), IpvClass::Degenerate);
        assert!(a.is_degenerate());
        assert!(a.lints().contains(&IpvLint::UnreachableMru));
        assert_eq!(a.reachable_positions(), vec![15]);
        assert_eq!(a.dead_positions(), (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn protective_vector_detected() {
        // 4-way: V = [1, 1, 1, 1 | 1]. Position 0 is reachable (a hit on
        // the MRU block demotes it to 1, pulling the position-1 block up)
        // and protected (no foreign hit interval or insertion covers 0).
        let a = analyze(&[1, 1, 1, 1, 1]).unwrap();
        assert_eq!(a.class(), IpvClass::Protective);
        assert_eq!(a.protected_positions(), vec![0]);
        assert!(a.reachable_positions().contains(&0));
    }

    #[test]
    fn demotion_lint_fires() {
        let a = analyze(&[0, 0, 3, 0, 0]).unwrap();
        assert!(a.lints().iter().any(|l| matches!(
            l,
            IpvLint::DemotesOnHit {
                index: 2,
                target: 3
            }
        )));
    }

    #[test]
    fn oscillating_orbit_detected() {
        // V[0] = 2, V[2] = 0: repeated hits bounce between 0 and 2.
        let a = analyze(&[2, 1, 0, 3, 0]).unwrap();
        assert!(!a.converges_to_fixpoint());
        let osc = a
            .lints()
            .iter()
            .find_map(|l| match l {
                IpvLint::OscillatingPromotion { cycle, .. } => Some(cycle.clone()),
                _ => None,
            })
            .expect("oscillation lint");
        let mut sorted = osc;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 2]);
    }

    #[test]
    fn two_way_vectors_work() {
        let a = analyze(&[0, 0, 1]).unwrap();
        assert_eq!(a.assoc(), 2);
        assert!(!a.is_degenerate());
        assert_eq!(a.class(), IpvClass::ThrashResistant, "ins 1 >= 2/2");
    }

    #[test]
    fn dead_positions_reported() {
        // 4-way, insert at 0, promote everything to 0: only shifts move
        // blocks down, so all positions are reachable. Contrast with
        // insert at 2, V[i] = min(i, 2)-ish shapes that strand position 0.
        let all = analyze(&lru(4)).unwrap();
        assert!(all.dead_positions().is_empty());
        // V = [0, 1, 2, 3 | 3]: degenerate with dead 0..3.
        let a = analyze(&[0, 1, 2, 3, 3]).unwrap();
        assert_eq!(a.dead_positions(), vec![0, 1, 2]);
    }

    #[test]
    fn display_summary_mentions_class() {
        let a = analyze(&lip(8)).unwrap();
        let s = a.to_string();
        assert!(s.contains("thrash-resistant"), "{s}");
        assert!(!IpvLint::InsertsAtVictim.to_string().is_empty());
        assert!(!IpvClass::Degenerate.to_string().is_empty());
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!IpvLintError::WrongShape(1).to_string().is_empty());
        let e = IpvLintError::PositionOutOfRange {
            index: 0,
            value: 9,
            assoc: 4,
        };
        assert!(!e.to_string().is_empty());
    }
}
