//! Roster-wide bounded model checking over opaque policy state machines.
//!
//! [`mck`](crate::mck) proves properties of PLRU trees by *exhausting* their
//! state space, which works because a `k`-way tree has exactly `2^(k-1)`
//! states. The rest of the roster is not so obliging: EHC carries a 4096-entry
//! counter table, ARC keeps ghost lists plus an adaptive partition target, and
//! AWRP/LRU timestamps grow without bound. For those policies we fall back to
//! *bounded* model checking: breadth-first exploration of the reachable state
//! graph under a small input alphabet, with state hashing over a
//! caller-supplied canonical digest, explicit state/depth/wall-clock budgets,
//! and minimal counterexample trails when an invariant breaks.
//!
//! The checker is deliberately decoupled from the simulator: it sees a model
//! only through the [`PolicyState`] object interface (reset, enumerable
//! inputs, apply-with-invariant-check, digest). `sim-verify` adapts every
//! roster policy — driven through the real `SetAssocCache` access protocol —
//! onto this trait, and `xtask model-check` sweeps the lot.
//!
//! # Soundness of the digest quotient
//!
//! Two states with equal digests are merged during search. Models must
//! therefore emit digests that are *behaviourally faithful*: equal digests
//! only for states no input sequence can distinguish. Models with genuinely
//! unbounded counters (timestamps, RNG words) should either rebase them into
//! a canonical form (rank order, offsets from the running minimum) or accept
//! that exploration is truncated by the budget rather than by state-space
//! closure — the [`BoundedReport::complete`] flag records which happened.
//! A digest that merges *distinguishable* states can hide defects but can
//! never fabricate one: invariants are always evaluated on a real replayed
//! instance, so every reported counterexample trail is genuine.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

/// An opaque, resettable, deterministic state machine with a finite input
/// alphabet and self-checked invariants.
///
/// This is the roster-policy analogue of [`PlruState`](crate::PlruState):
/// where that trait exposes the *structure* of a PLRU tree (so the checker
/// can enumerate and decode every state), `PolicyState` exposes only what
/// bounded search needs — replayability, transitions, and a hashable
/// canonical digest. Implementations wrap real production policies; the
/// invariants they check in [`apply`](PolicyState::apply) are the model's
/// whole reason to exist.
pub trait PolicyState {
    /// Restores the model to its initial state. Must be deterministic:
    /// `reset` followed by the same input sequence must always reproduce the
    /// same digests.
    fn reset(&mut self);

    /// Number of inputs in the alphabet. Inputs are identified by index
    /// `0..num_inputs()`.
    fn num_inputs(&self) -> usize;

    /// Human-readable label for input `input`, used in counterexample
    /// trails (e.g. `"access B@set1"`).
    fn input_label(&self, input: usize) -> String;

    /// Applies input `input` to the current state, then checks every
    /// invariant the model guards. Returns `Err(description)` when an
    /// invariant is violated; the checker turns that into a minimal trail.
    fn apply(&mut self, input: usize) -> Result<(), String>;

    /// Canonical digest of the current state. Equal digests ⇒ states are
    /// merged by the search (see the module docs for the soundness
    /// obligation this places on implementations).
    fn digest(&self) -> Vec<u8>;
}

/// Why a bounded run stopped exploring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every reachable state (under the digest quotient) was visited.
    Exhausted,
    /// The state budget was hit.
    StateBudget,
    /// The depth bound was hit (frontier still had unexpanded states).
    DepthBound,
    /// The wall-clock deadline expired.
    Deadline,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::Exhausted => "exhausted",
            StopReason::StateBudget => "state-budget",
            StopReason::DepthBound => "depth-bound",
            StopReason::Deadline => "deadline",
        };
        f.write_str(s)
    }
}

/// Statistics from a successful bounded run.
#[derive(Debug, Clone)]
pub struct BoundedReport {
    /// Distinct digests visited (including the initial state).
    pub states: usize,
    /// Transitions applied during search (excluding replays).
    pub transitions: usize,
    /// Deepest BFS layer fully or partially explored.
    pub depth: usize,
    /// True when the search closed the reachable set rather than hitting a
    /// budget.
    pub complete: bool,
    /// What terminated the search.
    pub stop: StopReason,
    /// Number of (state, input) orbit convergence checks performed.
    pub orbits_checked: usize,
}

/// A minimal input sequence witnessing an invariant violation.
#[derive(Debug, Clone)]
pub struct BoundedTrail {
    /// Description of the violated invariant, from
    /// [`PolicyState::apply`].
    pub invariant: String,
    /// Input labels from the initial state to the violation, in order. The
    /// final label is the input whose application failed.
    pub trail: Vec<String>,
}

impl fmt::Display for BoundedTrail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated: {}", self.invariant)?;
        writeln!(f, "minimal trail ({} steps):", self.trail.len())?;
        for (i, label) in self.trail.iter().enumerate() {
            writeln!(f, "  {:>3}. {label}", i + 1)?;
        }
        Ok(())
    }
}

const ROOT: usize = usize::MAX;

/// One visited state: its parent in the BFS tree and the input that reached
/// it. States are reconstructed by replaying the parent chain, so the
/// checker never needs `Clone` on the model.
struct Node {
    parent: usize,
    input: usize,
    depth: usize,
}

/// Breadth-first bounded explorer with state hashing and minimal trails.
///
/// Because BFS visits states in nondecreasing depth order and a violation is
/// reported the first time its state is reached, the returned trail is
/// shortest among all input sequences triggering that violation (under the
/// digest quotient).
#[derive(Debug, Clone)]
pub struct BoundedChecker {
    max_states: usize,
    max_depth: usize,
    orbit_bound: usize,
    orbit_samples: usize,
    budget: Option<Duration>,
}

impl Default for BoundedChecker {
    fn default() -> Self {
        BoundedChecker {
            max_states: 4096,
            max_depth: 24,
            orbit_bound: 64,
            orbit_samples: 32,
            budget: None,
        }
    }
}

impl BoundedChecker {
    /// A checker with default budgets (4096 states, depth 24, no deadline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of distinct states visited.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states.max(1);
        self
    }

    /// Caps the BFS depth.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Caps orbit length when checking promotion-orbit convergence, and how
    /// many sampled states seed orbits (0 disables the orbit pass).
    pub fn with_orbits(mut self, bound: usize, samples: usize) -> Self {
        self.orbit_bound = bound;
        self.orbit_samples = samples;
        self
    }

    /// Sets a wall-clock deadline for the whole run (search + orbits).
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Runs bounded BFS plus the orbit-convergence pass over `model`.
    ///
    /// On success returns coverage statistics; on an invariant violation
    /// returns the minimal counterexample trail.
    pub fn run(&self, model: &mut dyn PolicyState) -> Result<BoundedReport, Box<BoundedTrail>> {
        let start = Instant::now();
        let n_inputs = model.num_inputs();
        assert!(n_inputs > 0, "model must offer at least one input");

        model.reset();
        let mut nodes = vec![Node {
            parent: ROOT,
            input: 0,
            depth: 0,
        }];
        let mut visited: HashMap<Vec<u8>, usize> = HashMap::new();
        visited.insert(model.digest(), 0);
        let mut queue: VecDeque<usize> = VecDeque::from([0]);

        let mut transitions = 0usize;
        let mut depth_reached = 0usize;
        let mut stop = StopReason::Exhausted;

        'search: while let Some(node) = queue.pop_front() {
            let depth = nodes[node].depth;
            depth_reached = depth_reached.max(depth);
            if depth >= self.max_depth {
                stop = StopReason::DepthBound;
                continue; // drain remaining frontier without expanding
            }
            let trail = self.trail_inputs(&nodes, node);
            for input in 0..n_inputs {
                if self.over_deadline(start) {
                    stop = StopReason::Deadline;
                    break 'search;
                }
                self.replay(model, &trail)?;
                if let Err(invariant) = model.apply(input) {
                    return Err(Box::new(BoundedTrail {
                        invariant,
                        trail: self.labels(model, &trail, input),
                    }));
                }
                transitions += 1;
                let digest = model.digest();
                if visited.contains_key(&digest) {
                    continue;
                }
                if visited.len() >= self.max_states {
                    stop = StopReason::StateBudget;
                    break 'search;
                }
                nodes.push(Node {
                    parent: node,
                    input,
                    depth: depth + 1,
                });
                visited.insert(digest, nodes.len() - 1);
                queue.push_back(nodes.len() - 1);
            }
        }

        let orbits_checked = self.check_orbits(model, &nodes, start, &mut stop)?;

        Ok(BoundedReport {
            states: visited.len(),
            transitions,
            depth: depth_reached,
            complete: stop == StopReason::Exhausted,
            stop,
            orbits_checked,
        })
    }

    /// Promotion-orbit convergence: from a sample of reachable states,
    /// repeatedly applying any single input must revisit a digest within
    /// `orbit_bound` steps (i.e. every constant-input orbit falls into a
    /// cycle — "promote the same block forever" settles instead of drifting
    /// through fresh states).
    fn check_orbits(
        &self,
        model: &mut dyn PolicyState,
        nodes: &[Node],
        start: Instant,
        stop: &mut StopReason,
    ) -> Result<usize, Box<BoundedTrail>> {
        if self.orbit_samples == 0 || self.orbit_bound == 0 {
            return Ok(0);
        }
        let stride = nodes.len().div_ceil(self.orbit_samples).max(1);
        let mut checked = 0usize;
        for node in (0..nodes.len()).step_by(stride) {
            let trail = self.trail_inputs(nodes, node);
            for input in 0..model.num_inputs() {
                if self.over_deadline(start) {
                    *stop = StopReason::Deadline;
                    return Ok(checked);
                }
                self.replay(model, &trail)?;
                let mut seen = vec![model.digest()];
                let mut converged = false;
                for step in 0..self.orbit_bound {
                    if let Err(invariant) = model.apply(input) {
                        let mut labels = self.labels(model, &trail, input);
                        labels
                            .extend(std::iter::repeat_with(|| model.input_label(input)).take(step));
                        return Err(Box::new(BoundedTrail {
                            invariant,
                            trail: labels,
                        }));
                    }
                    let digest = model.digest();
                    if seen.contains(&digest) {
                        converged = true;
                        break;
                    }
                    seen.push(digest);
                }
                if !converged {
                    return Err(Box::new(BoundedTrail {
                        invariant: format!(
                            "promotion orbit for input `{}` did not revisit a state within {} steps",
                            model.input_label(input),
                            self.orbit_bound
                        ),
                        trail: self.labels(model, &trail, input),
                    }));
                }
                checked += 1;
            }
        }
        Ok(checked)
    }

    fn over_deadline(&self, start: Instant) -> bool {
        self.budget.is_some_and(|b| start.elapsed() >= b)
    }

    /// Input sequence from the root to `node`, reconstructed via parent
    /// links.
    fn trail_inputs(&self, nodes: &[Node], mut node: usize) -> Vec<usize> {
        let mut trail = Vec::with_capacity(nodes[node].depth);
        while nodes[node].parent != ROOT {
            trail.push(nodes[node].input);
            node = nodes[node].parent;
        }
        trail.reverse();
        trail
    }

    /// Resets the model and replays `trail`. Replays traverse inputs the
    /// search already accepted, so a failure here means the model is
    /// nondeterministic — reported as its own violation rather than a panic.
    fn replay(
        &self,
        model: &mut dyn PolicyState,
        trail: &[usize],
    ) -> Result<(), Box<BoundedTrail>> {
        model.reset();
        for (step, &input) in trail.iter().enumerate() {
            if let Err(invariant) = model.apply(input) {
                return Err(Box::new(BoundedTrail {
                    invariant: format!(
                        "nondeterministic model: replay failed at step {} ({invariant})",
                        step + 1
                    ),
                    trail: trail[..=step]
                        .iter()
                        .map(|&i| model.input_label(i))
                        .collect(),
                }));
            }
        }
        Ok(())
    }

    fn labels(&self, model: &dyn PolicyState, trail: &[usize], last: usize) -> Vec<String> {
        trail
            .iter()
            .chain(std::iter::once(&last))
            .map(|&i| model.input_label(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Saturating counter: inputs inc/dec, value clamped to 0..=cap.
    struct SatCounter {
        value: u32,
        cap: u32,
        broken_clamp: bool,
    }

    impl SatCounter {
        fn new(cap: u32) -> Self {
            SatCounter {
                value: 0,
                cap,
                broken_clamp: false,
            }
        }
    }

    impl PolicyState for SatCounter {
        fn reset(&mut self) {
            self.value = 0;
        }
        fn num_inputs(&self) -> usize {
            2
        }
        fn input_label(&self, input: usize) -> String {
            ["inc", "dec"][input].to_string()
        }
        fn apply(&mut self, input: usize) -> Result<(), String> {
            match input {
                0 if self.broken_clamp => self.value += 1,
                0 => self.value = (self.value + 1).min(self.cap),
                _ => self.value = self.value.saturating_sub(1),
            }
            if self.value > self.cap {
                return Err(format!("counter {} exceeds cap {}", self.value, self.cap));
            }
            Ok(())
        }
        fn digest(&self) -> Vec<u8> {
            self.value.to_le_bytes().to_vec()
        }
    }

    #[test]
    fn saturating_counter_exhausts() {
        let report = BoundedChecker::new()
            .run(&mut SatCounter::new(5))
            .expect("sound model");
        assert_eq!(report.states, 6, "values 0..=5");
        assert!(report.complete);
        assert_eq!(report.stop, StopReason::Exhausted);
        assert!(report.orbits_checked > 0);
    }

    #[test]
    fn seeded_clamp_bug_yields_minimal_trail() {
        let mut model = SatCounter::new(3);
        model.broken_clamp = true;
        let trail = BoundedChecker::new()
            .run(&mut model)
            .expect_err("clamp bug must be caught");
        // Minimal violation: four increments push 0 -> 4 > 3.
        assert_eq!(trail.trail, vec!["inc"; 4]);
        assert!(trail.invariant.contains("exceeds cap"));
    }

    #[test]
    fn state_budget_truncates_unbounded_model() {
        /// Pure counter with no cap: state space is unbounded.
        struct Unbounded(u64);
        impl PolicyState for Unbounded {
            fn reset(&mut self) {
                self.0 = 0;
            }
            fn num_inputs(&self) -> usize {
                1
            }
            fn input_label(&self, _: usize) -> String {
                "tick".into()
            }
            fn apply(&mut self, _: usize) -> Result<(), String> {
                self.0 += 1;
                Ok(())
            }
            fn digest(&self) -> Vec<u8> {
                self.0.to_le_bytes().to_vec()
            }
        }
        let report = BoundedChecker::new()
            .with_max_states(16)
            .with_max_depth(1000)
            .with_orbits(0, 0)
            .run(&mut Unbounded(0))
            .expect("no invariants to violate");
        assert!(!report.complete);
        assert_eq!(report.stop, StopReason::StateBudget);
        assert_eq!(report.states, 16);
    }

    #[test]
    fn depth_bound_reported() {
        let report = BoundedChecker::new()
            .with_max_depth(2)
            .with_orbits(0, 0)
            .run(&mut SatCounter::new(50))
            .expect("sound model");
        assert!(!report.complete);
        assert_eq!(report.stop, StopReason::DepthBound);
        assert_eq!(report.depth, 2);
    }

    #[test]
    fn divergent_orbit_is_caught() {
        /// `spin` walks an 8-cycle (converges); `drift` never revisits.
        struct Drifter {
            spin: u8,
            drift: u64,
        }
        impl PolicyState for Drifter {
            fn reset(&mut self) {
                self.spin = 0;
                self.drift = 0;
            }
            fn num_inputs(&self) -> usize {
                2
            }
            fn input_label(&self, input: usize) -> String {
                ["spin", "drift"][input].to_string()
            }
            fn apply(&mut self, input: usize) -> Result<(), String> {
                match input {
                    0 => self.spin = (self.spin + 1) % 8,
                    _ => self.drift += 1,
                }
                Ok(())
            }
            fn digest(&self) -> Vec<u8> {
                let mut d = vec![self.spin];
                d.extend_from_slice(&self.drift.to_le_bytes());
                d
            }
        }
        let trail = BoundedChecker::new()
            .with_max_states(32)
            .run(&mut Drifter { spin: 0, drift: 0 })
            .expect_err("drift orbit never cycles");
        assert!(trail.invariant.contains("did not revisit"));
        assert!(trail.invariant.contains("drift"));
    }

    #[test]
    fn deadline_stops_search_without_failure() {
        let report = BoundedChecker::new()
            .with_budget(Duration::ZERO)
            .run(&mut SatCounter::new(200))
            .expect("deadline is not a failure");
        assert!(!report.complete);
        assert_eq!(report.stop, StopReason::Deadline);
    }
}
