#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Static analysis and exhaustive model checking for the PseudoLRU
//! insertion/promotion stack.
//!
//! The repo's other defence layers are *dynamic*: unit tests sample a few
//! states, and the `sim-verify` differential oracle replays traces through
//! independent implementations. Both can only witness behaviour a workload
//! happens to exercise. This crate adds the *static* layer: properties of
//! an insertion/promotion vector that are decidable from the vector alone,
//! and invariants of the PLRU state machine proved by exhausting its state
//! space rather than sampling it.
//!
//! * [`ipv`] — the IPV static analyzer: well-formedness lints, the
//!   reachable-position set computed by fixed-point iteration, dead and
//!   protected positions, and a behavioural classification
//!   ([`IpvClass`]). Used by `gippr` to validate every published paper
//!   vector at construction and by `evolve` to prune degenerate genomes
//!   before spending a fitness evaluation on them.
//! * [`mck`] — the exhaustive model checker: sweeps the complete PLRU
//!   tree-state space and BFS-explores the reachable (tree × valid-mask)
//!   product under real policy dynamics, proving victim-selection
//!   totality, the position↔tree bijection round-trip, valid-mask prefix
//!   closure, and promotion convergence — emitting a minimal
//!   counterexample event sequence on failure. Generic over
//!   [`PlruState`], so the *production* `gippr::PlruTree` is what gets
//!   checked, not a model of it.
//! * [`mirror`] — [`MirrorTree`](mirror::MirrorTree), an independently
//!   coded naive tree substrate used to self-test the checker and to
//!   cross-check bit-packed implementations.
//! * [`bounded`] — the roster-wide *bounded* model checker: breadth-first
//!   search with state hashing over any [`PolicyState`](bounded::PolicyState)
//!   — an opaque, resettable state machine with a finite input alphabet and
//!   self-checked invariants. Used by `sim-verify` to sweep every roster
//!   policy (EHC, ARC, AWRP, …) whose state space is too large or unbounded
//!   for exhaustive enumeration, with explicit state/depth/wall-clock
//!   budgets and minimal counterexample trails.
//!
//! The `xtask lint` / `xtask model-check` binaries drive all layers as a
//! CI gate.

pub mod bounded;
pub mod ipv;
pub mod mck;
pub mod mirror;

pub use bounded::{BoundedChecker, BoundedReport, BoundedTrail, PolicyState, StopReason};
pub use ipv::{analyze, IpvAnalysis, IpvClass, IpvLint, IpvLintError};
pub use mck::{
    cross_check, CheckReport, Counterexample, Event, ModelChecker, PlruState, PromotionRule,
};
pub use mirror::MirrorTree;
