//! Figure 12: workload-neutral versus workload-inclusive speedups for the
//! 1-, 2-, and 4-vector configurations.
//!
//! Paper geomeans — WN1-GIPPR 3.47 % vs WI-GIPPR 3.68 %; WN1-2-DGIPPR
//! 4.96 % vs WI 5.12 %; WN1-4-DGIPPR 5.61 % vs WI 5.66 %: "the geometric
//! mean difference between the two kinds of results is small", validating
//! that the evolved vectors generalize beyond their training workloads.
//!
//! This is the GA-heavy experiment: it evolves three workload-inclusive
//! vector configurations plus three per-holdout WN1 sweeps at the given
//! scale.

use crate::policies;
use crate::report::{fmt_geomean, fmt_ratio, Table};
use crate::runner::{measure_policy, prepare_workloads};
use crate::scale::Scale;
use crate::stats::geometric_mean;
use evolve::{wn1_evaluation, Ga, Substrate, VectorSet};
use gippr::Ipv;
use std::collections::HashMap;
use traces::spec2006::Spec2006;

/// Runs Figure 12 and returns per-benchmark speedups for the six
/// configurations with a geometric-mean footer.
pub fn run(scale: Scale) -> Table {
    let benches = Spec2006::all();
    let workloads = prepare_workloads(scale, &benches);
    let geom = scale.hierarchy().llc;
    // Shared with the WN1 vector assignments of figures 10/11/13: the GA
    // streams are captured once per (scale, benches) process-wide.
    let ctx = crate::cache::workload_cache().fitness_context(scale, &benches);

    // Workload-inclusive vectors: evolve once on everything, seeding with
    // the published vectors as the paper seeds pgapack with first-stage
    // winners.
    let ga = Ga::new(scale.ga(1201));
    let wi_single = ga
        .run_seeded(
            &ctx,
            vec![gippr::vectors::wi_gippr()],
            |c, g| c.fitness_single(g, Substrate::Plru),
            <Ipv as evolve::Genome>::sample,
        )
        .best;
    let wi_pair = ga
        .run_set(
            &ctx,
            2,
            vec![VectorSet::new(gippr::vectors::wi_2dgippr().to_vec())],
        )
        .best
        .vectors()
        .to_vec();
    let wi_quad = ga
        .run_set(
            &ctx,
            4,
            vec![VectorSet::new(gippr::vectors::wi_4dgippr().to_vec())],
        )
        .best
        .vectors()
        .to_vec();

    // Workload-neutral vectors per holdout.
    let to_map = |outcomes: Vec<evolve::Wn1Outcome>| -> HashMap<Spec2006, Vec<Ipv>> {
        outcomes
            .into_iter()
            .filter_map(|o| Spec2006::from_name(&o.holdout).map(|b| (b, o.vectors)))
            .collect()
    };
    let wn_single = to_map(wn1_evaluation(&ctx, scale.ga(1211), 1, Substrate::Plru));
    let wn_pair = to_map(wn1_evaluation(&ctx, scale.ga(1212), 2, Substrate::Plru));
    let wn_quad = to_map(wn1_evaluation(&ctx, scale.ga(1213), 4, Substrate::Plru));

    let mut table = Table::new(
        &format!(
            "Figure 12: workload-neutral vs workload-inclusive speedup over LRU ({scale} scale)"
        ),
        &[
            "benchmark",
            "WN1-GIPPR",
            "WN1-2-DGIPPR",
            "WN1-4-DGIPPR",
            "WI-GIPPR",
            "WI-2-DGIPPR",
            "WI-4-DGIPPR",
        ],
    );
    let mut cols: [Vec<f64>; 6] = Default::default();
    let mut rows: Vec<(String, [f64; 6])> = workloads
        .iter()
        .map(|w| {
            let b = w.bench;
            let values = [
                measure_policy(
                    w,
                    &policies::gippr(wn_single[&b][0].clone(), "WN1-GIPPR"),
                    geom,
                ),
                measure_policy(
                    w,
                    &policies::dgippr(wn_pair[&b].clone(), "WN1-2-DGIPPR"),
                    geom,
                ),
                measure_policy(
                    w,
                    &policies::dgippr(wn_quad[&b].clone(), "WN1-4-DGIPPR"),
                    geom,
                ),
                measure_policy(w, &policies::gippr(wi_single.clone(), "WI-GIPPR"), geom),
                measure_policy(w, &policies::dgippr(wi_pair.clone(), "WI-2-DGIPPR"), geom),
                measure_policy(w, &policies::dgippr(wi_quad.clone(), "WI-4-DGIPPR"), geom),
            ]
            .map(|m| m.speedup_over(&w.lru));
            (b.name().to_string(), values)
        })
        .collect();
    rows.sort_by(|a, b| {
        a.1[2]
            .partial_cmp(&b.1[2])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (name, values) in &rows {
        table.row(
            std::iter::once(name.clone())
                .chain(values.iter().map(|v| fmt_ratio(*v)))
                .collect(),
        );
        for (c, v) in cols.iter_mut().zip(values) {
            c.push(*v);
        }
    }
    table.row(
        std::iter::once("GEOMEAN".to_string())
            .chain(cols.iter().map(|c| fmt_geomean(geometric_mean(c))))
            .collect(),
    );
    table
}

#[cfg(test)]
mod tests {
    // Figure 12 is GA-heavy even at quick scale; its machinery is covered
    // by the evolve crate's tests and the binary is exercised in CI-style
    // smoke runs. Here we only check the experiment compiles and its
    // pieces are wired (construction of the vector maps is tested in
    // experiments::tests via assign_vectors).
}
