//! Figure 1: uniformly random exploration of the IPV design space.
//!
//! The paper samples 15 000 random IPVs, scores each with the fitness
//! function, and plots the speedups in ascending order: "clearly most of
//! the points in this random sample are inferior to LRU, but there are
//! some areas of improvement".

use crate::report::{fmt_ratio, Table};
use crate::scale::Scale;
use crate::stats::geometric_mean;
use evolve::{random_search, FitnessContext, Substrate};
use traces::spec2006::Spec2006;

/// Runs the random design-space exploration and returns the sorted series
/// as a table (`rank, speedup`), ready for plotting.
pub fn run(scale: Scale) -> Table {
    let ctx = FitnessContext::for_benchmarks(
        &Spec2006::all(),
        scale.simpoints(),
        scale.ga_accesses(),
        scale.fitness(),
    );
    let samples = scale.random_samples();
    let results = random_search(&ctx, Substrate::Plru, samples, 0xF1601);

    let mut table = Table::new(
        &format!("Figure 1: {samples} random IPVs, speedup over LRU (sorted ascending)"),
        &["rank", "speedup"],
    );
    for (rank, (_ipv, speedup)) in results.iter().enumerate() {
        table.row(vec![rank.to_string(), fmt_ratio(*speedup)]);
    }
    table
}

/// Summary statistics of a Figure 1 run, for the binary's footer.
pub fn summary(scale: Scale) -> (f64, f64, f64, f64) {
    let ctx = FitnessContext::for_benchmarks(
        &Spec2006::all(),
        scale.simpoints(),
        scale.ga_accesses(),
        scale.fitness(),
    );
    let results = random_search(&ctx, Substrate::Plru, scale.random_samples(), 0xF1601);
    let values: Vec<f64> = results.iter().map(|(_, s)| *s).collect();
    let worst = values.first().copied().unwrap_or(1.0);
    let best = values.last().copied().unwrap_or(1.0);
    let better = values.iter().filter(|&&v| v > 1.0).count() as f64 / values.len().max(1) as f64;
    // NaN (formatted as "n/a") when no sample produced a usable speedup.
    (
        worst,
        best,
        geometric_mean(&values).unwrap_or(f64::NAN),
        better,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use evolve::FitnessScale;

    #[test]
    fn shape_matches_paper_claim() {
        // Tiny in-test variant: most random vectors lose to LRU, the tail
        // wins. Use a reduced context for speed.
        let ctx = FitnessContext::for_benchmarks(
            &[Spec2006::Libquantum, Spec2006::DealII, Spec2006::Gamess],
            1,
            15_000,
            FitnessScale {
                shift: 6,
                threads: 2,
            },
        );
        let results = random_search(&ctx, Substrate::Plru, 30, 7);
        let below = results.iter().filter(|(_, s)| *s < 1.0).count();
        assert!(below > 0, "some random IPVs are inferior to LRU");
        assert!(results.last().unwrap().1 > results.first().unwrap().1);
    }
}
