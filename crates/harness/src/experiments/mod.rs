//! One driver per paper figure/table. See the crate docs for the index.

pub mod ablations;
pub mod assoc_sweep;
pub mod fig01;
pub mod fig04;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod multicore_tab;
pub mod overhead;
pub mod vectors_tab;

use crate::scale::Scale;
use evolve::{wn1_evaluation, Substrate};
use gippr::Ipv;
use std::collections::HashMap;
use traces::spec2006::Spec2006;

/// Where the DGIPPR vectors used by a figure come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VectorMode {
    /// The paper's published workload-inclusive vectors (fast, default).
    Published,
    /// Workload-neutral cross-validation: evolve per-holdout vectors with
    /// the genetic algorithm at the current scale (`--wn1`).
    Wn1,
}

impl VectorMode {
    /// Selects a mode from the `--wn1` CLI flag.
    pub fn from_flag(wn1: bool) -> Self {
        if wn1 {
            VectorMode::Wn1
        } else {
            VectorMode::Published
        }
    }

    /// Label prefix used in column headings.
    pub fn label(&self) -> &'static str {
        match self {
            VectorMode::Published => "WI",
            VectorMode::Wn1 => "WN1",
        }
    }
}

/// Per-benchmark vector assignments for 1-, 2-, and 4-vector GIPPR
/// configurations under `mode`.
#[derive(Debug, Clone)]
pub struct VectorAssignment {
    /// Single GIPPR vector per benchmark.
    pub single: HashMap<Spec2006, Ipv>,
    /// 2-DGIPPR vector pair per benchmark.
    pub pair: HashMap<Spec2006, Vec<Ipv>>,
    /// 4-DGIPPR vector quadruple per benchmark.
    pub quad: HashMap<Spec2006, Vec<Ipv>>,
}

/// Builds the vectors each benchmark should run with: the published WI
/// vectors (every benchmark shares them) or freshly evolved WN1 vectors
/// (each benchmark gets vectors trained without it).
///
/// Memoized through the [`WorkloadCache`](crate::cache::WorkloadCache):
/// figures 10, 11, and 13 all ask for the same assignment, and in WN1 mode
/// recomputing it would mean repeating a full per-holdout GA sweep.
pub fn assign_vectors(scale: Scale, benches: &[Spec2006], mode: VectorMode) -> VectorAssignment {
    crate::cache::workload_cache()
        .vector_assignment(scale, benches, mode)
        .as_ref()
        .clone()
}

/// The uncached assignment computation behind [`assign_vectors`]; only
/// [`WorkloadCache::vector_assignment`](crate::cache::WorkloadCache::vector_assignment)
/// should call this.
pub(crate) fn compute_vector_assignment(
    cache: &crate::cache::WorkloadCache,
    scale: Scale,
    benches: &[Spec2006],
    mode: VectorMode,
) -> VectorAssignment {
    match mode {
        VectorMode::Published => {
            let single: HashMap<_, _> = benches
                .iter()
                .map(|b| (*b, gippr::vectors::wi_gippr()))
                .collect();
            let pair: HashMap<_, _> = benches
                .iter()
                .map(|b| (*b, gippr::vectors::wi_2dgippr().to_vec()))
                .collect();
            let quad: HashMap<_, _> = benches
                .iter()
                .map(|b| (*b, gippr::vectors::wi_4dgippr().to_vec()))
                .collect();
            VectorAssignment { single, pair, quad }
        }
        VectorMode::Wn1 => {
            let ctx = cache.fitness_context(scale, benches);
            let by_name = |outcomes: Vec<evolve::Wn1Outcome>| -> HashMap<Spec2006, Vec<Ipv>> {
                outcomes
                    .into_iter()
                    .filter_map(|o| Spec2006::from_name(&o.holdout).map(|b| (b, o.vectors)))
                    .collect()
            };
            let single_raw = by_name(wn1_evaluation(&ctx, scale.ga(101), 1, Substrate::Plru));
            let pair = by_name(wn1_evaluation(&ctx, scale.ga(202), 2, Substrate::Plru));
            let quad = by_name(wn1_evaluation(&ctx, scale.ga(303), 4, Substrate::Plru));
            let single = single_raw
                .into_iter()
                .map(|(b, mut vs)| (b, vs.pop().expect("single vector present")))
                .collect();
            VectorAssignment { single, pair, quad }
        }
    }
}
