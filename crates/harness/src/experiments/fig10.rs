//! Figure 10: misses per kilo-instruction normalized to LRU for the 1-,
//! 2-, and 4-vector GIPPR configurations, plus Belady MIN.
//!
//! Paper geomeans: WN1-GIPPR 0.952, WN1-2-DGIPPR 0.965, WN1-4-DGIPPR
//! 0.910, optimal 0.675 of LRU's misses.

use crate::experiments::{assign_vectors, VectorMode};
use crate::policies;
use crate::report::{fmt_geomean, fmt_ratio, Table};
use crate::runner::{measure_min, measure_policies, prepare_workloads};
use crate::scale::Scale;
use crate::stats::geometric_mean;
use sim_core::PolicyFactory;
use traces::spec2006::Spec2006;

/// Runs Figure 10 and returns the normalized-miss table (sorted ascending
/// by the 4-vector configuration) with a geometric-mean footer.
pub fn run(scale: Scale, mode: VectorMode) -> Table {
    let benches = Spec2006::all();
    let workloads = prepare_workloads(scale, &benches);
    let geom = scale.hierarchy().llc;
    let vectors = assign_vectors(scale, &benches, mode);
    let label = mode.label();

    let mut rows: Vec<(String, [f64; 4])> = workloads
        .iter()
        .map(|w| {
            // One sharded single-pass replay per simpoint covers the whole
            // roster; results are bit-identical to per-policy replays.
            let roster = [
                policies::gippr(vectors.single[&w.bench].clone(), "GIPPR"),
                policies::dgippr(vectors.pair[&w.bench].clone(), "2-DGIPPR"),
                policies::dgippr(vectors.quad[&w.bench].clone(), "4-DGIPPR"),
            ];
            let refs: Vec<&PolicyFactory> = roster.iter().collect();
            let measured = measure_policies(w, &refs, geom);
            let min = measure_min(w, geom);
            (
                w.bench.name().to_string(),
                [
                    measured[0].normalized_misses(&w.lru),
                    measured[1].normalized_misses(&w.lru),
                    measured[2].normalized_misses(&w.lru),
                    min.normalized_misses(&w.lru),
                ],
            )
        })
        .collect();
    rows.sort_by(|a, b| {
        a.1[2]
            .partial_cmp(&b.1[2])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut table = Table::new(
        &format!("Figure 10: misses normalized to LRU ({label} vectors, {scale} scale)"),
        &[
            "benchmark",
            &format!("{label}-GIPPR"),
            &format!("{label}-2-DGIPPR"),
            &format!("{label}-4-DGIPPR"),
            "Optimal (MIN)",
        ],
    );
    let mut cols: [Vec<f64>; 4] = Default::default();
    for (name, values) in &rows {
        table.row(
            std::iter::once(name.clone())
                .chain(values.iter().map(|v| fmt_ratio(*v)))
                .collect(),
        );
        for (c, v) in cols.iter_mut().zip(values) {
            c.push(*v);
        }
    }
    table.row(
        std::iter::once("GEOMEAN".to_string())
            .chain(cols.iter().map(|c| fmt_geomean(geometric_mean(c))))
            .collect(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_mode_shapes_hold() {
        let table = run(Scale::Quick, VectorMode::Published);
        assert_eq!(table.len(), 30);
        let text = table.to_string();
        // The geomean row exists and MIN's column is present.
        assert!(text.contains("GEOMEAN"));
        assert!(text.contains("Optimal (MIN)"));
    }
}
