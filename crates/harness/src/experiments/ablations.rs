//! Ablations of the design choices DESIGN.md calls out: leader-set count,
//! PSEL width, vector count, replacement substrate, and the bypass
//! extension. Each sweep reports geometric-mean normalized misses (vs
//! LRU) over a mixed subset of the workload suite.

use crate::policies;
use crate::report::{fmt_geomean, Table};
use crate::runner::{measure_policies, prepare_workloads};
use crate::scale::Scale;
use crate::stats::geometric_mean;
use gippr::{DgipprPolicy, GiplrPolicy, GipprPolicy};
use sim_core::policy::factory;
use sim_core::PolicyFactory;
use traces::spec2006::Spec2006;

/// The mixed subset used for ablations: thrash-heavy, recency-friendly,
/// pointer-chasing, and cache-resident representatives.
pub fn ablation_benches() -> [Spec2006; 8] {
    [
        Spec2006::Libquantum,
        Spec2006::CactusADM,
        Spec2006::Mcf,
        Spec2006::Sphinx3,
        Spec2006::DealII,
        Spec2006::Omnetpp,
        Spec2006::Hmmer,
        Spec2006::Gamess,
    ]
}

/// Runs all ablation sweeps and returns one table.
pub fn run(scale: Scale) -> Table {
    let workloads = prepare_workloads(scale, &ablation_benches());
    let geom = scale.hierarchy().llc;
    let vectors4 = gippr::vectors::wi_4dgippr().to_vec();
    let vectors2 = gippr::vectors::wi_2dgippr().to_vec();

    let mut table = Table::new(
        &format!(
            "Ablations: geometric-mean misses vs LRU over {} workloads ({scale} scale)",
            workloads.len()
        ),
        &["configuration", "misses vs LRU"],
    );
    // Collect every sweep configuration first, then measure the whole
    // roster with one sharded single-pass replay per workload — the
    // routing pre-pass is shared across all ~15 configurations instead of
    // being re-derived per (configuration × workload) pair.
    let mut configs: Vec<(String, PolicyFactory)> = Vec::new();
    let mut push = |name: String, f: PolicyFactory| {
        configs.push((name, f));
    };

    // Leader-set count sweep (default 32 at full scale; scaled caches use
    // proportionally fewer).
    for leaders in [2usize, 4, 8, 16] {
        let vs = vectors4.clone();
        if geom.sets() / leaders >= 4 {
            push(
                format!("4-DGIPPR, {leaders} leaders/vector"),
                factory(move |g| {
                    Box::new(
                        DgipprPolicy::with_config(g, vs.clone(), leaders, "4-DGIPPR")
                            .expect("valid config"),
                    )
                }),
            );
        }
    }

    // PSEL width sweep (paper: 11 bits). The +bypass rows sweep the bypass
    // duel at the same width — `with_bypass` inherits the configured PSEL
    // width rather than pinning the paper's 11 bits.
    for bits in [5u32, 8, 11] {
        let vs = vectors4.clone();
        push(
            format!("4-DGIPPR, {bits}-bit PSEL"),
            factory(move |g| {
                Box::new(
                    DgipprPolicy::with_full_config(
                        g,
                        vs.clone(),
                        crate::policies::leaders_for(g),
                        bits,
                        "4-DGIPPR",
                    )
                    .expect("valid config"),
                )
            }),
        );
        let vs = vectors4.clone();
        push(
            format!("4-DGIPPR + bypass, {bits}-bit PSEL"),
            factory(move |g| {
                Box::new(
                    DgipprPolicy::with_full_config(
                        g,
                        vs.clone(),
                        crate::policies::leaders_for(g),
                        bits,
                        "4-DGIPPR",
                    )
                    .expect("valid config")
                    .with_bypass(crate::policies::leaders_for(g))
                    .expect("valid bypass config"),
                )
            }),
        );
    }

    // Vector-count ablation: 1 (static WI-GIPPR) vs 2 vs 4.
    push(
        "1 vector (WI-GIPPR, static)".to_string(),
        policies::gippr(gippr::vectors::wi_gippr(), "WI-GIPPR"),
    );
    push(
        "2 vectors (WI-2-DGIPPR)".to_string(),
        policies::dgippr(vectors2, "2-DGIPPR"),
    );
    push(
        "4 vectors (WI-4-DGIPPR)".to_string(),
        policies::dgippr(vectors4.clone(), "4-DGIPPR"),
    );

    // Substrate ablation: the same vector on PLRU state vs full LRU stacks
    // (GIPPR vs GIPLR — the paper's point that the cheap substrate keeps
    // the benefit).
    push(
        "WI-GIPPR vector on PLRU state (15 bits/set)".to_string(),
        factory(|g| {
            Box::new(GipprPolicy::new(g, gippr::vectors::wi_gippr()).expect("assoc matches"))
        }),
    );
    push(
        "WI-GIPPR vector on LRU stacks (64 bits/set)".to_string(),
        factory(|g| {
            Box::new(GiplrPolicy::new(g, gippr::vectors::wi_gippr()).expect("assoc matches"))
        }),
    );

    // Bypass extension (future work 1).
    {
        let vs = vectors4.clone();
        push(
            "4-DGIPPR + bypass duel".to_string(),
            factory(move |g| {
                Box::new(
                    DgipprPolicy::with_config(
                        g,
                        vs.clone(),
                        crate::policies::leaders_for(g),
                        "4-DGIPPR",
                    )
                    .expect("valid config")
                    .with_bypass(crate::policies::leaders_for(g))
                    .expect("valid bypass config"),
                )
            }),
        );
    }

    // RRIP-IPV extension (future work 5): cautious-promotion vector.
    push(
        "RRIP-IPV [0 0 1 2 | 3] (extension)".to_string(),
        factory(|g| {
            Box::new(baselines::RripIpvPolicy::new(g, [0, 0, 1, 2, 3]).expect("valid vector"))
        }),
    );
    push(
        "RRIP-IPV = SRRIP [0 0 0 0 | 2]".to_string(),
        factory(|g| {
            Box::new(
                baselines::RripIpvPolicy::new(g, baselines::RripIpvPolicy::srrip_vector())
                    .expect("valid vector"),
            )
        }),
    );

    // Batched measurement: one `replay_many` per workload covers every
    // configuration above; per-configuration geomeans then read column i
    // of the transposed results. Bit-identical to per-config
    // `measure_policy` loops, just without N redundant routing passes.
    let refs: Vec<&PolicyFactory> = configs.iter().map(|(_, f)| f).collect();
    let per_workload: Vec<Vec<_>> = workloads
        .iter()
        .map(|w| measure_policies(w, &refs, geom))
        .collect();
    for (i, (name, _)) in configs.iter().enumerate() {
        let ratios: Vec<f64> = workloads
            .iter()
            .zip(&per_workload)
            .map(|(w, measured)| measured[i].normalized_misses(&w.lru))
            .collect();
        table.row(vec![name.clone(), fmt_geomean(geometric_mean(&ratios))]);
    }

    // Writeback-convention ablation (DESIGN.md §5.0): replaying a
    // writeback-inclusive LLC stream lets writebacks update replacement
    // state — demonstrating why the demand-only convention matters for a
    // protective insertion policy (LIP-style).
    {
        use mem_model::cpi::WindowPerfModel;
        let config = scale.hierarchy();
        let perf = WindowPerfModel::default();
        let lip = gippr::Ipv::lru_insertion(geom.ways());
        // Use the write-heavy streaming models where the effect is
        // diagnostic: dirty streams whose writebacks would re-promote
        // themselves.
        let wb_benches = [
            Spec2006::Libquantum,
            Spec2006::Lbm,
            Spec2006::Milc,
            Spec2006::Bwaves,
        ];
        let mut row = |include_wb: bool, label: &str| {
            let mut ratios = Vec::new();
            for b in wb_benches {
                let spec = b.workload().scaled_down(scale.shift());
                let (stream, _) = mem_model::hierarchy::capture_llc_stream_config(
                    config,
                    spec.generator(0).take(scale.accesses()),
                    include_wb,
                );
                let warmup = mem_model::llc::default_warmup(stream.len());
                let lru =
                    mem_model::replay_llc(&stream, geom, policies::lru()(&geom), warmup, &perf);
                let pol = mem_model::replay_llc(
                    &stream,
                    geom,
                    Box::new(GipprPolicy::new(&geom, lip.clone()).expect("assoc matches")),
                    warmup,
                    &perf,
                );
                ratios.push(if lru.stats.misses == 0 {
                    1.0
                } else {
                    pol.stats.misses as f64 / lru.stats.misses as f64
                });
            }
            table.row(vec![
                label.to_string(),
                fmt_geomean(geometric_mean(&ratios)),
            ]);
        };
        row(false, "PLRU-LIP, demand-only replay (convention)");
        row(
            true,
            "PLRU-LIP, writebacks update replacement (off-convention)",
        );
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_table_runs_at_micro_scale() {
        let t = run(Scale::Micro);
        assert!(t.len() >= 10, "all sweeps present: {} rows", t.len());
        let text = t.to_string();
        assert!(text.contains("PSEL"));
        assert!(text.contains("bypass"));
        assert!(text.contains("RRIP-IPV"));
    }
}
