//! Figure 4: speedup over LRU of the evolved GIPLR vector, plain
//! PseudoLRU, and Random replacement, per benchmark.
//!
//! Paper result: GIPLR yields a 3.1 % geometric-mean speedup; Random lands
//! at 99.9 % of LRU; PseudoLRU performs "on average about as well as true
//! LRU".

use crate::policies;
use crate::report::{fmt_geomean, fmt_ratio, Table};
use crate::runner::{measure_policy_all, prepare_workloads};
use crate::scale::Scale;
use crate::stats::geometric_mean;
use traces::spec2006::Spec2006;

/// Runs Figure 4 and returns the per-benchmark speedup table (sorted
/// ascending by GIPLR speedup) with a geometric-mean footer row.
pub fn run(scale: Scale) -> Table {
    let benches = Spec2006::all();
    let workloads = prepare_workloads(scale, &benches);
    let geom = scale.hierarchy().llc;

    let plru = measure_policy_all(&workloads, &policies::plru(), geom);
    let random = measure_policy_all(&workloads, &policies::random(0xF1604), geom);
    let giplr = measure_policy_all(
        &workloads,
        &policies::giplr(gippr::vectors::giplr_best(), "GIPLR"),
        geom,
    );

    let mut rows: Vec<(String, f64, f64, f64)> = workloads
        .iter()
        .zip(plru.iter().zip(random.iter().zip(giplr.iter())))
        .map(|(w, (p, (r, g)))| {
            (
                w.bench.name().to_string(),
                p.speedup_over(&w.lru),
                r.speedup_over(&w.lru),
                g.speedup_over(&w.lru),
            )
        })
        .collect();
    rows.sort_by(|a, b| a.3.partial_cmp(&b.3).unwrap_or(std::cmp::Ordering::Equal));

    let mut table = Table::new(
        &format!(
            "Figure 4: speedup over LRU (GIPLR vector {}) at {scale} scale",
            gippr::vectors::giplr_best()
        ),
        &["benchmark", "PseudoLRU", "Random", "GIPLR"],
    );
    let mut cols: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (name, p, r, g) in &rows {
        table.row(vec![
            name.clone(),
            fmt_ratio(*p),
            fmt_ratio(*r),
            fmt_ratio(*g),
        ]);
        cols[0].push(*p);
        cols[1].push(*r);
        cols[2].push(*g);
    }
    table.row(vec![
        "GEOMEAN".into(),
        fmt_geomean(geometric_mean(&cols[0])),
        fmt_geomean(geometric_mean(&cols[1])),
        fmt_geomean(geometric_mean(&cols[2])),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_all_benchmarks_and_geomean() {
        let table = run(Scale::Quick);
        assert_eq!(table.len(), 30, "29 benchmarks + geomean row");
    }
}
