//! Associativity sweep (paper future-work item 6: "explore the performance
//! of our technique at high levels of associativity"): fixed capacity,
//! ways swept from 4 to 64, comparing true LRU, tree PseudoLRU, and an
//! IPV-driven PLRU (LIP-style vector, which is defined at any
//! associativity, unlike the evolved 16-way vectors).

use crate::policies;
use crate::report::{fmt_geomean, Table};
use crate::runner::prepare_workloads;
use crate::scale::Scale;
use crate::stats::geometric_mean;
use gippr::Ipv;
use mem_model::cpi::WindowPerfModel;
use mem_model::replay_llc;
use sim_core::{Access, CacheGeometry, StackDistanceProfile};
use std::sync::Arc;
use traces::spec2006::Spec2006;

/// The sweep's associativities.
const SWEEP_WAYS: [usize; 5] = [4, 8, 16, 32, 64];

/// Benchmarks exercised by the sweep.
pub fn sweep_benches() -> [Spec2006; 5] {
    [
        Spec2006::Libquantum,
        Spec2006::CactusADM,
        Spec2006::Mcf,
        Spec2006::DealII,
        Spec2006::Sphinx3,
    ]
}

/// Runs the sweep and returns normalized misses (vs same-geometry LRU) per
/// associativity.
pub fn run(scale: Scale) -> Table {
    let config = scale.hierarchy();
    let perf = WindowPerfModel::default();
    // L1/L2 are fixed across the sweep (only the LLC geometry varies), so
    // the shared capture cache's streams apply — the same ones every other
    // figure replays, captured once per process.
    let streams: Vec<Arc<Vec<Access>>> = prepare_workloads(scale, &sweep_benches())
        .iter()
        .flat_map(|w| w.simpoints.iter().map(|sp| sp.stream.clone()))
        .collect();

    let mut table = Table::new(
        &format!(
            "Associativity sweep at fixed {} KB capacity ({scale} scale): misses vs LRU",
            config.llc.size_bytes() / 1024
        ),
        &[
            "ways",
            "PseudoLRU",
            "PLRU + LIP vector",
            "4-DGIPPR (rescaled)",
            "plru bits/set",
            "lru bits/set",
        ],
    );
    // The LRU denominators come from one Mattson stack-distance pass per
    // stream instead of one full replay per (stream × ways): LRU is
    // inclusion-preserving, so a single capture at the sweep's geometries
    // answers every associativity's exact miss count at once (the
    // per-ways set counts differ at fixed capacity, so `capture_many`
    // advances one bounded stack structure per geometry — still one
    // stream traversal). The tree/IPV policies are not stack algorithms
    // and keep their per-configuration replays.
    let specs: Vec<(CacheGeometry, usize)> = SWEEP_WAYS
        .iter()
        .map(|&ways| {
            let geom = CacheGeometry::new(config.llc.size_bytes(), ways, 64)
                .expect("capacity divisible at all sweep widths");
            (geom, ways)
        })
        .collect();
    let lru_misses: Vec<Vec<u64>> = streams
        .iter()
        .map(|stream| {
            let warmup = mem_model::llc::default_warmup(stream.len());
            StackDistanceProfile::capture_many(stream, &specs, warmup)
                .iter()
                .map(|p| p.misses(p.max_ways()))
                .collect()
        })
        .collect();

    for (wi, &ways) in SWEEP_WAYS.iter().enumerate() {
        let geom = specs[wi].0;
        let mut plru_ratios = Vec::new();
        let mut lip_ratios = Vec::new();
        let mut dgippr_ratios = Vec::new();
        let rescaled: Vec<gippr::Ipv> = gippr::vectors::wi_4dgippr()
            .iter()
            .map(|v| v.rescaled(ways).expect("supported width"))
            .collect();
        for (si, stream) in streams.iter().enumerate() {
            let warmup = mem_model::llc::default_warmup(stream.len());
            let plru = replay_llc(stream, geom, policies::plru()(&geom), warmup, &perf);
            let lip = replay_llc(
                stream,
                geom,
                Box::new(
                    gippr::GipprPolicy::with_name(&geom, Ipv::lru_insertion(ways), "PLRU-LIP")
                        .expect("assoc matches"),
                ),
                warmup,
                &perf,
            );
            let dgippr = replay_llc(
                stream,
                geom,
                policies::dgippr(rescaled.clone(), "4-DGIPPR")(&geom),
                warmup,
                &perf,
            );
            let denom = lru_misses[si][wi].max(1) as f64;
            plru_ratios.push(plru.stats.misses as f64 / denom);
            lip_ratios.push(lip.stats.misses as f64 / denom);
            dgippr_ratios.push(dgippr.stats.misses as f64 / denom);
        }
        table.row(vec![
            ways.to_string(),
            fmt_geomean(geometric_mean(&plru_ratios)),
            fmt_geomean(geometric_mean(&lip_ratios)),
            fmt_geomean(geometric_mean(&dgippr_ratios)),
            sim_core::overhead::plru_bits_per_set(ways).to_string(),
            sim_core::overhead::lru_bits_per_set(ways).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_widths() {
        let t = run(Scale::Micro);
        assert_eq!(t.len(), 5);
        let text = t.to_string();
        assert!(text.contains("64"));
    }

    #[test]
    fn profile_denominator_equals_lru_replay() {
        // The sweep's single-pass LRU miss counts must be bit-identical
        // to the per-config replays they replaced.
        let config = Scale::Micro.hierarchy();
        let perf = WindowPerfModel::default();
        let streams: Vec<Arc<Vec<Access>>> = prepare_workloads(Scale::Micro, &[Spec2006::Mcf])
            .iter()
            .flat_map(|w| w.simpoints.iter().map(|sp| sp.stream.clone()))
            .collect();
        for ways in [4usize, 16] {
            let geom = CacheGeometry::new(config.llc.size_bytes(), ways, 64).unwrap();
            for stream in &streams {
                let warmup = mem_model::llc::default_warmup(stream.len());
                let p = StackDistanceProfile::capture(stream, &geom, warmup, ways);
                let lru = replay_llc(stream, geom, policies::lru()(&geom), warmup, &perf);
                assert_eq!(p.misses(ways), lru.stats.misses);
                assert_eq!(p.hits(ways), lru.stats.hits);
                assert_eq!(p.instructions(), lru.instructions);
            }
        }
    }
}
