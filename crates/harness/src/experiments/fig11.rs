//! Figure 11: misses normalized to LRU — DRRIP and PDP versus the
//! 4-vector GIPPR configuration, plus Belady MIN.
//!
//! Paper geomeans: DRRIP 0.915, PDP 0.902, WN1-4-DGIPPR 0.910, MIN 0.675 —
//! the point being that DGIPPR matches the state of the art with less than
//! half their replacement state.

use crate::experiments::{assign_vectors, VectorMode};
use crate::policies;
use crate::report::{fmt_geomean, fmt_ratio, Table};
use crate::runner::{measure_min, measure_policies, prepare_workloads};
use crate::scale::Scale;
use crate::stats::geometric_mean;
use sim_core::PolicyFactory;
use traces::spec2006::Spec2006;

/// Runs Figure 11 and returns the normalized-miss table (sorted ascending
/// by DRRIP, the paper's x-axis convention) with a geometric-mean footer.
pub fn run(scale: Scale, mode: VectorMode) -> Table {
    let benches = Spec2006::all();
    let workloads = prepare_workloads(scale, &benches);
    let geom = scale.hierarchy().llc;
    let vectors = assign_vectors(scale, &benches, mode);
    let label = mode.label();

    let mut rows: Vec<(String, [f64; 4])> = workloads
        .iter()
        .map(|w| {
            // The full per-workload roster shares one routing pre-pass.
            let roster = [
                policies::drrip(),
                policies::pdp(),
                policies::dgippr(vectors.quad[&w.bench].clone(), "4-DGIPPR"),
            ];
            let refs: Vec<&PolicyFactory> = roster.iter().collect();
            let measured = measure_policies(w, &refs, geom);
            let min = measure_min(w, geom);
            (
                w.bench.name().to_string(),
                [
                    measured[0].normalized_misses(&w.lru),
                    measured[1].normalized_misses(&w.lru),
                    measured[2].normalized_misses(&w.lru),
                    min.normalized_misses(&w.lru),
                ],
            )
        })
        .collect();
    rows.sort_by(|a, b| {
        a.1[0]
            .partial_cmp(&b.1[0])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut table = Table::new(
        &format!("Figure 11: misses normalized to LRU ({label} vectors, {scale} scale)"),
        &[
            "benchmark",
            "DRRIP",
            "PDP",
            &format!("{label}-4-DGIPPR"),
            "Optimal (MIN)",
        ],
    );
    let mut cols: [Vec<f64>; 4] = Default::default();
    for (name, values) in &rows {
        table.row(
            std::iter::once(name.clone())
                .chain(values.iter().map(|v| fmt_ratio(*v)))
                .collect(),
        );
        for (c, v) in cols.iter_mut().zip(values) {
            c.push(*v);
        }
    }
    table.row(
        std::iter::once("GEOMEAN".to_string())
            .chain(cols.iter().map(|c| fmt_geomean(geometric_mean(c))))
            .collect(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_match_paper_comparison() {
        let table = run(Scale::Quick, VectorMode::Published);
        let text = table.to_string();
        assert!(text.contains("DRRIP"));
        assert!(text.contains("PDP"));
        assert!(text.contains("4-DGIPPR"));
        assert!(text.contains("GEOMEAN"));
    }
}
