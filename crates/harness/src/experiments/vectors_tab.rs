//! The Section 5.3 published-vector inventory: every IPV printed in the
//! paper, with its insertion style and degeneracy status.

use crate::report::Table;
use gippr::{vectors, Ipv};

fn insertion_style(ipv: &Ipv) -> &'static str {
    let k = ipv.assoc();
    match ipv.insertion() {
        0 => "PMRU",
        p if p == k - 1 => "PLRU",
        p if p < k / 4 => "near-PMRU",
        p if p >= 3 * k / 4 => "near-PLRU",
        _ => "middle",
    }
}

fn row_for(table: &mut Table, name: &str, ipv: &Ipv) {
    table.row(vec![
        name.to_string(),
        ipv.to_string(),
        ipv.insertion().to_string(),
        insertion_style(ipv).to_string(),
        if ipv.is_degenerate() { "yes" } else { "no" }.to_string(),
    ]);
}

/// Builds the published-vector table.
pub fn run() -> Table {
    let mut table = Table::new(
        "Section 5.3: vectors published in the paper",
        &["name", "vector", "insert@", "style", "degenerate"],
    );
    row_for(&mut table, "GIPLR (Sec 2.5)", &vectors::giplr_best());
    row_for(&mut table, "WI-GIPPR", &vectors::wi_gippr());
    row_for(&mut table, "400.perlbench WN1", &vectors::perlbench_wn1());
    for (i, v) in vectors::wi_2dgippr().iter().enumerate() {
        row_for(&mut table, &format!("WI-2-DGIPPR[{i}]"), v);
    }
    for (i, v) in vectors::wi_4dgippr().iter().enumerate() {
        row_for(&mut table, &format!("WI-4-DGIPPR[{i}]"), v);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_published_vectors() {
        let table = run();
        assert_eq!(table.len(), 9);
    }

    #[test]
    fn interpretation_matches_paper_prose() {
        // "The WI-2-DGIPPR IPVs clearly duel between PLRU and PMRU
        // insertion."
        let [a, b] = vectors::wi_2dgippr();
        assert_eq!(insertion_style(&a), "PLRU");
        assert_eq!(insertion_style(&b), "PMRU");
        // "The WI-4-DGIPPR IPVs switch between PLRU, PMRU, close to PMRU,
        // and middle insertion."
        let styles: Vec<&str> = vectors::wi_4dgippr().iter().map(insertion_style).collect();
        assert!(styles.contains(&"PLRU"));
        assert!(styles.contains(&"PMRU"));
        assert!(styles.contains(&"near-PMRU"));
        assert!(styles.contains(&"middle"));
    }
}
