//! The Section 3.6 storage-overhead comparison, computed from the policy
//! implementations' own accounting rather than hard-coded.
//!
//! Paper claims for the 4 MB 16-way LLC: GIPPR/DGIPPR 15 bits/set (7 KB,
//! < 0.94 bits/block) versus LRU 64 bits/set (32 KB), DRRIP 2 bits/block
//! (16 KB), PDP 4 bits/block (32 KB) plus a microcontroller; DGIPPR's
//! dueling counters add only 11 (2-vector) or 33 (4-vector) bits to the
//! whole chip.

use crate::policies;
use crate::report::Table;
use sim_core::{CacheGeometry, OverheadReport, PolicyFactory};

/// Builds the overhead table on the paper's LLC geometry (overheads do not
/// depend on experiment scale; the 4 MB geometry is always used).
pub fn run() -> Table {
    let geom = CacheGeometry::new(4 * 1024 * 1024, 16, 64).expect("paper LLC is valid");
    let entries: Vec<(&str, PolicyFactory)> = vec![
        ("LRU", policies::lru()),
        ("PseudoLRU", policies::plru()),
        ("Random", policies::random(1)),
        ("FIFO", policies::fifo()),
        ("DIP", policies::dip()),
        ("SRRIP", policies::srrip()),
        ("DRRIP", policies::drrip()),
        ("PDP (no bypass)", policies::pdp()),
        ("SHiP-PC", policies::ship()),
        (
            "GIPLR",
            policies::giplr(gippr::vectors::giplr_best(), "GIPLR"),
        ),
        (
            "GIPPR",
            policies::gippr(gippr::vectors::wi_gippr(), "GIPPR"),
        ),
        (
            "2-DGIPPR",
            policies::dgippr(gippr::vectors::wi_2dgippr().to_vec(), "2-DGIPPR"),
        ),
        (
            "4-DGIPPR",
            policies::dgippr(gippr::vectors::wi_4dgippr().to_vec(), "4-DGIPPR"),
        ),
    ];

    let mut table = Table::new(
        "Section 3.6: replacement-state overhead on the 4 MB 16-way LLC",
        &[
            "policy",
            "bits/set",
            "bits/block",
            "global bits",
            "total KB",
        ],
    );
    for (name, factory) in entries {
        let policy = factory(&geom);
        let report = OverheadReport::for_policy(&geom, policy.as_ref());
        table.row(vec![
            name.to_string(),
            report.bits_per_set.to_string(),
            format!("{:.3}", report.bits_per_block()),
            report.global_bits.to_string(),
            format!("{:.2}", report.total_kib()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_overhead_claims_hold() {
        let text = run().to_string();
        // LRU: 64 bits/set, 32 KB. PLRU/GIPPR: 15 bits/set. DRRIP: 32
        // bits/set, ~16 KB.
        assert!(text.contains("LRU"));
        let lru_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("LRU"))
            .unwrap();
        assert!(lru_line.contains("64"), "{lru_line}");
        assert!(lru_line.contains("32.00"), "{lru_line}");
        let gippr_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("GIPPR"))
            .unwrap();
        assert!(gippr_line.contains("15"), "{gippr_line}");
        assert!(gippr_line.contains("0.938"), "{gippr_line}");
        let four = text
            .lines()
            .find(|l| l.trim_start().starts_with("4-DGIPPR"))
            .unwrap();
        assert!(four.contains("33"), "three 11-bit counters: {four}");
    }
}
