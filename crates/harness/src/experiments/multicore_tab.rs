//! Multi-core extension experiment (paper future-work item 4): two-core
//! multiprogrammed mixes sharing the LLC, comparing replacement policies by
//! weighted speedup over a shared-LRU baseline.

use crate::policies;
use crate::report::{fmt_ratio, Table};
use crate::scale::Scale;
use mem_model::cpi::LinearCpiModel;
use mem_model::multicore::{weighted_speedup, MulticoreHierarchy};
use sim_core::PolicyFactory;
use traces::spec2006::Spec2006;

/// The two-core mixes: aggressive streamer + victim, and balanced pairs.
pub fn mixes() -> [(Spec2006, Spec2006); 4] {
    [
        (Spec2006::Libquantum, Spec2006::DealII),
        (Spec2006::Mcf, Spec2006::Gamess),
        (Spec2006::Sphinx3, Spec2006::Milc),
        (Spec2006::CactusADM, Spec2006::Omnetpp),
    ]
}

fn run_mix(scale: Scale, mix: (Spec2006, Spec2006), factory: &PolicyFactory) -> [f64; 2] {
    let cfg = scale.hierarchy();
    let per_core = scale.accesses() / 2;
    let mut mc = MulticoreHierarchy::new(2, cfg, factory(&cfg.llc));
    // Reference streams come from the shared capture cache (generated once
    // per benchmark); every policy contender replays the same prefix.
    let cache = crate::cache::workload_cache();
    let a = cache.raw_stream(scale, mix.0);
    let b = cache.raw_stream(scale, mix.1);
    mc.run_interleaved(
        vec![a[..per_core].iter().copied(), b[..per_core].iter().copied()],
        per_core,
    );
    let model = LinearCpiModel::default();
    [
        model.cycles(mc.instructions(0), mc.llc_stats(0).misses),
        model.cycles(mc.instructions(1), mc.llc_stats(1).misses),
    ]
}

/// Runs the two-core comparison and returns the weighted-speedup table.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        &format!("Multi-core extension: 2-core weighted speedup over shared LRU ({scale} scale)"),
        &["mix", "DRRIP", "PDP", "WI-4-DGIPPR"],
    );
    let contenders: Vec<(&str, PolicyFactory)> = vec![
        ("DRRIP", policies::drrip()),
        ("PDP", policies::pdp()),
        (
            "WI-4-DGIPPR",
            policies::dgippr(gippr::vectors::wi_4dgippr().to_vec(), "WI-4-DGIPPR"),
        ),
    ];
    for mix in mixes() {
        let lru_cycles = run_mix(scale, mix, &policies::lru());
        let mut cells = vec![format!("{} + {}", mix.0, mix.1)];
        for (_, factory) in &contenders {
            let cycles = run_mix(scale, mix, factory);
            cells.push(fmt_ratio(weighted_speedup(&lru_cycles, &cycles)));
        }
        table.row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicore_table_runs() {
        let t = run(Scale::Micro);
        assert_eq!(t.len(), 4);
        assert!(t.to_string().contains("462.libquantum + 447.dealII"));
    }
}
