//! Figure 13: speedup over LRU — DRRIP, PDP, and 4-vector DGIPPR — plus
//! the memory-intensive subset summary.
//!
//! Paper geomeans over all of SPEC: DRRIP 5.41 %, PDP 5.69 %,
//! WN1-4-DGIPPR 5.61 %. Over the memory-intensive subset (benchmarks where
//! DRRIP's speedup exceeds 1 %): DRRIP 15.6 %, PDP 16.4 %, WN1-4-DGIPPR
//! 15.6 % — "the same performance as DRRIP with half the storage overhead,
//! and 95 % of the performance of PDP with a small fraction of the
//! complexity".

use crate::experiments::{assign_vectors, VectorMode};
use crate::policies;
use crate::report::{fmt_pct, fmt_ratio, Table};
use crate::runner::{measure_policies, prepare_workloads};
use crate::scale::Scale;
use crate::stats::geometric_mean;
use sim_core::PolicyFactory;
use traces::spec2006::Spec2006;

/// The full Figure 13 output: the per-benchmark table plus subset
/// geomeans.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// Per-benchmark speedups, sorted ascending by DRRIP (paper x-axis).
    pub table: Table,
    /// `(label, drrip, pdp, dgippr)` geomean rows: all benchmarks and the
    /// memory-intensive subset (computed by the paper's rule).
    pub geomeans: Vec<(String, f64, f64, f64)>,
    /// The memory-intensive subset as computed by "DRRIP speedup > 1 %".
    pub memory_intensive: Vec<Spec2006>,
}

/// Runs Figure 13.
pub fn run(scale: Scale, mode: VectorMode) -> Fig13 {
    let benches = Spec2006::all();
    let workloads = prepare_workloads(scale, &benches);
    let geom = scale.hierarchy().llc;
    let vectors = assign_vectors(scale, &benches, mode);
    let label = format!("{}-4-DGIPPR", mode.label());

    let mut rows: Vec<(Spec2006, [f64; 3])> = workloads
        .iter()
        .map(|w| {
            // The full per-workload roster shares one routing pre-pass.
            let roster = [
                policies::drrip(),
                policies::pdp(),
                policies::dgippr(vectors.quad[&w.bench].clone(), &label),
            ];
            let refs: Vec<&PolicyFactory> = roster.iter().collect();
            let measured = measure_policies(w, &refs, geom);
            (
                w.bench,
                [
                    measured[0].speedup_over(&w.lru),
                    measured[1].speedup_over(&w.lru),
                    measured[2].speedup_over(&w.lru),
                ],
            )
        })
        .collect();
    rows.sort_by(|a, b| {
        a.1[0]
            .partial_cmp(&b.1[0])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut table = Table::new(
        &format!(
            "Figure 13: speedup over LRU ({} vectors, {scale} scale)",
            mode.label()
        ),
        &["benchmark", "DRRIP", "PDP", &label],
    );
    for (bench, values) in &rows {
        table.row(vec![
            bench.name().to_string(),
            fmt_ratio(values[0]),
            fmt_ratio(values[1]),
            fmt_ratio(values[2]),
        ]);
    }

    // The paper's subset rule: DRRIP speedup over LRU exceeds 1 %.
    let memory_intensive: Vec<Spec2006> = rows
        .iter()
        .filter(|(_, v)| v[0] > 1.01)
        .map(|(b, _)| *b)
        .collect();

    type Row = (Spec2006, [f64; 3]);
    let geomean_of = |pick: &dyn Fn(&Row) -> bool| -> (f64, f64, f64) {
        let mut cols: [Vec<f64>; 3] = Default::default();
        for row in rows.iter().filter(|r| pick(r)) {
            for (c, v) in cols.iter_mut().zip(&row.1) {
                c.push(*v);
            }
        }
        // NaN renders as "n/a" if a filter selects no benchmarks (the old
        // silent 1.0 looked like a real "no change" geomean).
        (
            geometric_mean(&cols[0]).unwrap_or(f64::NAN),
            geometric_mean(&cols[1]).unwrap_or(f64::NAN),
            geometric_mean(&cols[2]).unwrap_or(f64::NAN),
        )
    };
    let all = geomean_of(&|_| true);
    let mem = geomean_of(&|(b, _)| memory_intensive.contains(b));
    let geomeans = vec![
        ("all benchmarks".to_string(), all.0, all.1, all.2),
        (
            "memory-intensive (DRRIP > 1%)".to_string(),
            mem.0,
            mem.1,
            mem.2,
        ),
    ];

    for (name, d, p, g) in &geomeans {
        table.row(vec![
            format!("GEOMEAN {name}"),
            format!("{} ({})", fmt_ratio(*d), fmt_pct(*d)),
            format!("{} ({})", fmt_ratio(*p), fmt_pct(*p)),
            format!("{} ({})", fmt_ratio(*g), fmt_pct(*g)),
        ]);
    }
    Fig13 {
        table,
        geomeans,
        memory_intensive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_subset_and_geomeans() {
        let fig = run(Scale::Quick, VectorMode::Published);
        assert_eq!(fig.table.len(), 31, "29 benchmarks + 2 geomean rows");
        assert_eq!(fig.geomeans.len(), 2);
        // The canonical thrash benchmarks must land in the subset.
        assert!(fig.memory_intensive.contains(&Spec2006::Libquantum));
        assert!(fig.memory_intensive.contains(&Spec2006::CactusADM));
        // Cache-resident benchmarks must not.
        assert!(!fig.memory_intensive.contains(&Spec2006::Gamess));
        // Memory-intensive geomeans exceed the all-benchmark geomeans.
        let (_, all_d, _, all_g) = fig.geomeans[0].clone();
        let (_, mem_d, _, mem_g) = fig.geomeans[1].clone();
        assert!(mem_d >= all_d);
        assert!(mem_g >= all_g);
    }
}
