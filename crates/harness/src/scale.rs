//! Experiment scale presets.

use evolve::{FitnessScale, GaConfig};
use mem_model::HierarchyConfig;

/// How big an experiment run should be. All knobs scale together so every
/// preset preserves the paper's capacity ratios (workload footprint :
/// LLC size) — only absolute sizes and statistical depth change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Sub-second smoke runs for benches and tests: 64 KB LLC, very short
    /// traces, minimal GA.
    Micro,
    /// Seconds per figure: 128 KB LLC, short traces, one simpoint, tiny GA.
    Quick,
    /// A few minutes per figure: 512 KB LLC, two simpoints, medium GA.
    Medium,
    /// The paper's configuration: 4 MB LLC, three simpoints, large GA.
    /// Hours of CPU time for the GA-driven figures.
    Paper,
}

impl Scale {
    /// Parses `quick` / `medium` / `paper` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "micro" => Some(Scale::Micro),
            "quick" => Some(Scale::Quick),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Capacity shift relative to the paper's hierarchy (0 = 4 MB LLC).
    pub fn shift(&self) -> u32 {
        match self {
            Scale::Micro => 6,
            Scale::Quick => 5,
            Scale::Medium => 3,
            Scale::Paper => 0,
        }
    }

    /// Reference-trace length per simpoint fed to L1.
    pub fn accesses(&self) -> usize {
        match self {
            Scale::Micro => 20_000,
            Scale::Quick => 80_000,
            Scale::Medium => 600_000,
            Scale::Paper => 8_000_000,
        }
    }

    /// Simpoints per benchmark.
    pub fn simpoints(&self) -> usize {
        match self {
            Scale::Micro | Scale::Quick => 1,
            Scale::Medium => 2,
            Scale::Paper => 3,
        }
    }

    /// Random-design-space sample size (Figure 1; paper used 15 000).
    pub fn random_samples(&self) -> usize {
        match self {
            Scale::Micro => 30,
            Scale::Quick => 150,
            Scale::Medium => 1_000,
            Scale::Paper => 15_000,
        }
    }

    /// The hierarchy geometries at this scale.
    pub fn hierarchy(&self) -> HierarchyConfig {
        HierarchyConfig::paper_scaled(self.shift()).expect("preset shifts are valid")
    }

    /// Fitness-evaluation knobs at this scale.
    pub fn fitness(&self) -> FitnessScale {
        FitnessScale {
            shift: self.shift(),
            ..FitnessScale::default()
        }
    }

    /// Reference-trace length per simpoint used inside GA fitness
    /// evaluation (shorter than [`Scale::accesses`]: the GA replays whole
    /// suites thousands of times).
    pub fn ga_accesses(&self) -> usize {
        match self {
            Scale::Micro => 8_000,
            Scale::Quick => 20_000,
            Scale::Medium => 150_000,
            Scale::Paper => 2_000_000,
        }
    }

    /// Genetic-algorithm budget at this scale.
    pub fn ga(&self, seed: u64) -> GaConfig {
        match self {
            Scale::Micro => GaConfig {
                initial_population: 8,
                population: 6,
                generations: 2,
                mutation_rate: 0.05,
                elitism: 2,
                tournament: 2,
                seed,
            },
            Scale::Quick => GaConfig {
                initial_population: 16,
                population: 12,
                generations: 4,
                mutation_rate: 0.05,
                elitism: 2,
                tournament: 3,
                seed,
            },
            Scale::Medium => GaConfig {
                initial_population: 128,
                population: 64,
                generations: 12,
                mutation_rate: 0.05,
                elitism: 4,
                tournament: 4,
                seed,
            },
            Scale::Paper => GaConfig {
                initial_population: 2_000,
                population: 512,
                generations: 30,
                mutation_rate: 0.05,
                elitism: 8,
                tournament: 4,
                seed,
            },
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scale::Micro => "micro",
            Scale::Quick => "quick",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in [Scale::Micro, Scale::Quick, Scale::Medium, Scale::Paper] {
            assert_eq!(Scale::parse(&s.to_string()), Some(s));
        }
        assert_eq!(Scale::parse("QUICK"), Some(Scale::Quick));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn paper_scale_is_the_paper_hierarchy() {
        let h = Scale::Paper.hierarchy();
        assert_eq!(h.llc.size_bytes(), 4 * 1024 * 1024);
        assert_eq!(h.llc.ways(), 16);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Quick.accesses() < Scale::Medium.accesses());
        assert!(Scale::Medium.accesses() < Scale::Paper.accesses());
        assert!(Scale::Quick.shift() > Scale::Paper.shift());
    }
}
