//! Table rendering, CSV output, and the standard CLI for the experiment
//! binaries.

use std::fmt;
use std::io;
use std::path::Path;

/// A simple column-aligned table with a title, printable and CSV-writable.
///
/// # Example
///
/// ```
/// use harness::Table;
///
/// let mut t = Table::new("demo", &["benchmark", "speedup"]);
/// t.row(vec!["429.mcf".into(), "1.35".into()]);
/// assert!(t.to_string().contains("429.mcf"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "table '{}' expects {} cells",
            self.title,
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV text (header row first).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV (header row first) to `path`, creating
    /// parent directories. The write is atomic (tmp + fsync + rename via
    /// [`sim_core::persist`]): a crash mid-write leaves any previous
    /// artifact at `path` intact.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        sim_core::persist::atomic_write(path.as_ref(), self.to_csv_string().as_bytes())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if i == 0 {
                    write!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "{cell:>w$}")?;
                }
            }
            writeln!(f)
        };
        print_row(f, &self.columns)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a ratio as `1.234`.
pub fn fmt_ratio(v: f64) -> String {
    if v.is_nan() {
        "n/a".to_string()
    } else {
        format!("{v:.3}")
    }
}

/// Formats an optional summary statistic (e.g. the result of
/// [`geometric_mean`](crate::geometric_mean)): `n/a` when no usable
/// entries produced one, [`fmt_ratio`] otherwise.
pub fn fmt_geomean(v: Option<f64>) -> String {
    match v {
        Some(v) => fmt_ratio(v),
        None => "n/a".to_string(),
    }
}

/// Formats a percentage delta from 1.0, e.g. `+5.6%` for 1.056.
pub fn fmt_pct(v: f64) -> String {
    if v.is_nan() {
        "n/a".to_string()
    } else {
        format!("{:+.1}%", (v - 1.0) * 100.0)
    }
}

/// Parsed standard experiment CLI arguments.
///
/// Every experiment binary accepts `--scale quick|medium|paper`,
/// `--out DIR`, and `--wn1` (run true workload-neutral cross-validation —
/// GA per holdout — instead of the fast default that reuses the paper's
/// published workload-inclusive vectors). The resumable drivers
/// (`run-all`, `evolve-vectors`) additionally honor `--resume` (continue
/// an interrupted run from its manifest/checkpoints) and
/// `--only NAME[,NAME...]` (restrict to the named experiments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// Experiment scale (`--scale`, default quick).
    pub scale: crate::Scale,
    /// Output directory for CSV artifacts (`--out`).
    pub out: Option<String>,
    /// Workload-neutral cross-validation requested (`--wn1`).
    pub wn1: bool,
    /// Resume an interrupted run (`--resume`).
    pub resume: bool,
    /// Restrict to the named experiments (`--only`, repeatable and
    /// comma-separable); empty means all.
    pub only: Vec<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: crate::Scale::Quick,
            out: None,
            wn1: false,
            resume: false,
            only: Vec::new(),
        }
    }
}

impl Args {
    /// Parses command-line arguments (without the program name).
    ///
    /// # Panics
    ///
    /// Panics with a usage hint on unknown flags or missing values.
    pub fn parse(args: &[String]) -> Args {
        let mut parsed = Args::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    parsed.scale = args
                        .get(i)
                        .and_then(|s| crate::Scale::parse(s))
                        .unwrap_or_else(|| panic!("--scale needs quick|medium|paper"));
                }
                "--out" => {
                    i += 1;
                    parsed.out = Some(args.get(i).expect("--out needs a directory").clone());
                }
                "--wn1" => parsed.wn1 = true,
                "--resume" => parsed.resume = true,
                "--only" => {
                    i += 1;
                    let names = args.get(i).expect("--only needs experiment name(s)");
                    parsed
                        .only
                        .extend(names.split(',').map(|n| n.trim().to_string()));
                }
                other => panic!("unknown argument {other:?} (try --scale quick|medium|paper)"),
            }
            i += 1;
        }
        parsed
    }

    /// Parses the current process's command line.
    pub fn from_env() -> Args {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Args::parse(&args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_alignment() {
        let mut t = Table::new("t", &["name", "x"]);
        t.row(vec!["a-long-name".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.to_string();
        assert!(s.contains("== t =="));
        assert!(s.contains("a-long-name"));
    }

    #[test]
    #[should_panic(expected = "expects 2 cells")]
    fn row_arity_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_round_trip_with_escaping() {
        let dir = std::env::temp_dir().join("plru-test-csv");
        let path = dir.join("t.csv");
        let mut t = Table::new("t", &["name", "note"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        t.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("name,note\n"));
        assert!(text.contains("\"a,b\""));
        assert!(text.contains("\"say \"\"hi\"\"\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_geomean(Some(1.2345)), "1.234");
        assert_eq!(fmt_geomean(None), "n/a");
        assert_eq!(fmt_ratio(1.2345), "1.234");
        assert_eq!(fmt_pct(1.056), "+5.6%");
        assert_eq!(fmt_pct(0.973), "-2.7%");
        assert_eq!(fmt_ratio(f64::NAN), "n/a");
    }

    #[test]
    fn arg_parsing() {
        let a = Args::parse(&["--scale".into(), "medium".into(), "--wn1".into()]);
        assert_eq!(a.scale, crate::Scale::Medium);
        assert!(a.out.is_none());
        assert!(a.wn1);
        assert!(!a.resume);
        let a = Args::parse(&["--out".into(), "results".into()]);
        assert_eq!(a.scale, crate::Scale::Quick);
        assert_eq!(a.out.as_deref(), Some("results"));
        let a = Args::parse(&[
            "--resume".into(),
            "--only".into(),
            "fig01,fig04".into(),
            "--only".into(),
            "fig10".into(),
        ]);
        assert!(a.resume);
        assert_eq!(a.only, vec!["fig01", "fig04", "fig10"]);
    }

    #[test]
    fn csv_write_is_atomic_under_injected_torn_write() {
        if !sim_fault::COMPILED_IN {
            return;
        }
        let dir = std::env::temp_dir().join("plru-test-csv-torn");
        let path = dir.join("t.csv");
        let mut old = Table::new("t", &["a"]);
        old.row(vec!["old".into()]);
        old.write_csv(&path).unwrap();

        let mut new = Table::new("t", &["a"]);
        new.row(vec!["new".into()]);
        sim_fault::with_plan("torn", || {
            let err = new.write_csv(&path).unwrap_err();
            assert!(err.to_string().contains("torn"), "unexpected error: {err}");
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("old"),
            "old artifact must survive a torn write, got: {text}"
        );
        assert!(
            !sim_core::persist::tmp_path(&path).exists(),
            "torn tmp file must be cleaned up"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
