//! A frozen copy of the v0 (seed) replay engine, kept verbatim for
//! longitudinal benchmarking.
//!
//! `bench-replay` and the Criterion `replay` bench report the speedup of
//! the monomorphized engine over *this* implementation, so the number in
//! `BENCH_replay.json` stays comparable across PRs no matter how the live
//! engine evolves. The engine here is the seed's `SetAssocCache` +
//! `replay_llc` pair: a `Box<dyn ReplacementPolicy>` field (virtual call
//! on every policy interaction), three-field cache lines, an early-exit
//! hit scan followed by a second scan for an invalid way, and per-way
//! bounds-checked indexing. Do not optimize this module — its job is to
//! not change.

use mem_model::cpi::WindowPerfModel;
use mem_model::hierarchy::ServiceLevel;
use mem_model::LlcRunResult;
use sim_core::{Access, AccessContext, CacheGeometry, CacheStats, ReplacementPolicy};

/// The seed's `PerfAccumulator`, verbatim: the miss-cluster bookkeeping
/// is an `Option` chain with a data-dependent branch per miss (since
/// rewritten branchless in [`mem_model::cpi::PerfAccumulator`]). Kept so
/// the baseline pays what it paid at v0; the numbers it produces are
/// identical.
#[derive(Default)]
struct SeedPerfAccumulator {
    instructions: u64,
    l2_hits: u64,
    llc_hits: u64,
    misses: u64,
    clusters: u64,
    last_miss_instruction: Option<u64>,
}

impl SeedPerfAccumulator {
    fn note(&mut self, icount_delta: u32, level: ServiceLevel, model: &WindowPerfModel) {
        self.instructions += u64::from(icount_delta);
        match level {
            ServiceLevel::L1 => {}
            ServiceLevel::L2 => self.l2_hits += 1,
            ServiceLevel::Llc => self.llc_hits += 1,
            ServiceLevel::Memory => {
                self.misses += 1;
                let clustered = self
                    .last_miss_instruction
                    .is_some_and(|at| self.instructions - at <= model.window);
                if !clustered {
                    self.clusters += 1;
                }
                self.last_miss_instruction = Some(self.instructions);
            }
        }
    }

    fn cycles(&self, model: &WindowPerfModel) -> f64 {
        let overlapped = self.misses - self.clusters;
        self.instructions as f64 / model.width
            + self.clusters as f64 * model.dram_latency
            + overlapped as f64 * model.overlap_charge
            + self.llc_hits as f64 * model.llc_hit_charge
            + self.l2_hits as f64 * model.l2_hit_charge
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
}

/// The seed's set-associative cache: replacement decisions go through a
/// boxed trait object, so every `on_hit`/`victim`/`on_fill` is a virtual
/// call.
pub struct SeedCache {
    geom: CacheGeometry,
    lines: Vec<Line>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
}

impl SeedCache {
    /// Creates an empty cache using `policy` for replacement decisions.
    pub fn new(geom: CacheGeometry, policy: Box<dyn ReplacementPolicy>) -> Self {
        SeedCache {
            geom,
            lines: vec![Line::default(); geom.sets() * geom.ways()],
            policy,
            stats: CacheStats::new(),
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics without touching contents or policy state.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    /// Looks up a byte-addressed access, filling on miss.
    pub fn access(&mut self, access: &Access) -> bool {
        self.access_block(self.geom.block_of(access.addr), &access.context())
    }

    /// Looks up `block_addr`, filling on miss; returns whether it hit.
    pub fn access_block(&mut self, block_addr: u64, ctx: &AccessContext) -> bool {
        let set = self.geom.set_of_block(block_addr);
        let tag = self.geom.tag_of_block(block_addr);
        let ways = self.geom.ways();
        let base = set * ways;
        self.stats.accesses += 1;

        // Hit path.
        for way in 0..ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.dirty |= ctx.is_write;
                self.stats.hits += 1;
                self.policy.on_hit(set, way, ctx);
                return true;
            }
        }

        // Miss path.
        self.stats.misses += 1;
        self.policy.on_miss(set, ctx);
        if self.policy.should_bypass(set, ctx) {
            self.stats.bypasses += 1;
            return false;
        }

        // Prefer an invalid way; otherwise ask the policy for a victim.
        let fill_way = match (0..ways).find(|&w| !self.lines[base + w].valid) {
            Some(w) => w,
            None => {
                let w = self.policy.victim(set, ctx);
                assert!(
                    w < ways,
                    "policy {} returned way {w} >= {ways}",
                    self.policy.name()
                );
                let old = self.lines[base + w];
                self.stats.evictions += 1;
                if old.dirty {
                    self.stats.writebacks += 1;
                }
                self.policy.on_evict(set, w);
                w
            }
        };

        self.lines[base + fill_way] = Line {
            tag,
            valid: true,
            dirty: ctx.is_write,
        };
        self.policy.on_fill(set, fill_way, ctx);
        false
    }
}

/// The seed's `replay_llc`: warm on a prefix, measure the remainder, every
/// policy interaction dispatched through the boxed trait object.
pub fn replay_llc_seed(
    stream: &[Access],
    geom: CacheGeometry,
    policy: Box<dyn ReplacementPolicy>,
    warmup: usize,
    perf: &WindowPerfModel,
) -> LlcRunResult {
    let mut cache = SeedCache::new(geom, policy);
    let mut acc = SeedPerfAccumulator::default();
    for a in stream.iter().take(warmup) {
        cache.access(a);
    }
    cache.reset_stats();
    for a in stream.iter().skip(warmup) {
        let hit = cache.access(a);
        let level = if hit {
            ServiceLevel::Llc
        } else {
            ServiceLevel::Memory
        };
        acc.note(a.icount_delta, level, perf);
    }
    LlcRunResult {
        stats: *cache.stats(),
        instructions: acc.instructions,
        cycles: acc.cycles(perf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::TrueLru;
    use mem_model::replay_llc;

    /// The frozen engine must agree with the live one access for access —
    /// it is a baseline, not a different simulator.
    #[test]
    fn seed_engine_matches_live_engine() {
        let geom = CacheGeometry::from_sets(64, 8, 64).unwrap();
        let stream: Vec<Access> = (0..20_000)
            .map(|i| {
                let addr = if i % 3 == 0 {
                    (i as u64 % 640) * 64
                } else {
                    0x40_0000 + i as u64 * 64
                };
                Access::read(addr, 0x100).with_icount_delta(2)
            })
            .collect();
        let warmup = stream.len() / 3;
        let perf = WindowPerfModel::default();
        let seed = replay_llc_seed(&stream, geom, Box::new(TrueLru::new(&geom)), warmup, &perf);
        let live = replay_llc(&stream, geom, Box::new(TrueLru::new(&geom)), warmup, &perf);
        assert_eq!(seed, live);
    }
}
