//! The run manifest: a crash-safe record of per-experiment progress that
//! makes `run-all --resume` possible.
//!
//! The manifest lives at `<out>/manifest.json` and is rewritten (through
//! [`sim_core::persist::atomic_write`], so a crash never leaves a torn
//! manifest) around every experiment state transition:
//!
//! * before an experiment starts it is marked `running` — after a crash
//!   the manifest shows exactly which experiment was interrupted;
//! * on success it is marked `done` with a CRC-32 digest of the CSV
//!   artifact, so a resume can verify the artifact on disk really is the
//!   one the manifest describes before skipping the experiment;
//! * on failure (after retries) it is marked `failed` with the error.
//!
//! The file is JSON written and parsed by the tiny self-contained
//! implementation in [`json`] — the container has no serde, and the
//! schema is small enough that hand-rolling stays honest.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Manifest schema version; bumped on incompatible layout changes.
pub const MANIFEST_VERSION: u64 = 1;

/// Lifecycle state of one experiment in a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Not started yet.
    Pending,
    /// Started but not finished — after a crash, the interrupted one.
    Running,
    /// Finished successfully.
    Done,
    /// Gave up after the retry budget.
    Failed,
}

impl Status {
    /// The manifest string for this status.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Pending => "pending",
            Status::Running => "running",
            Status::Done => "done",
            Status::Failed => "failed",
        }
    }

    /// Parses a manifest status string.
    pub fn parse(s: &str) -> Option<Status> {
        match s {
            "pending" => Some(Status::Pending),
            "running" => Some(Status::Running),
            "done" => Some(Status::Done),
            "failed" => Some(Status::Failed),
            _ => None,
        }
    }
}

/// One experiment's entry in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Experiment name (`fig01`, `tab-overhead`, ...).
    pub name: String,
    /// CSV artifact file name relative to the output directory.
    pub file: String,
    /// CRC-32 (hex) of the written CSV; empty until done.
    pub digest: String,
    /// Lifecycle state.
    pub status: Status,
    /// Number of run attempts so far.
    pub attempts: u64,
    /// Last error message (empty unless failed).
    pub error: String,
}

impl Entry {
    fn new(name: &str, file: &str) -> Entry {
        Entry {
            name: name.to_string(),
            file: file.to_string(),
            digest: String::new(),
            status: Status::Pending,
            attempts: 0,
            error: String::new(),
        }
    }
}

/// The run manifest: run inputs (scale, vector mode) plus per-experiment
/// progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Scale label the run was started with (`quick`/`medium`/`paper`).
    pub scale: String,
    /// Vector mode label (`WI`/`WN1`).
    pub mode: String,
    /// Per-experiment progress, in run order.
    pub experiments: Vec<Entry>,
}

impl Manifest {
    /// Creates an empty manifest for a run with the given inputs.
    pub fn new(scale: &str, mode: &str) -> Manifest {
        Manifest {
            scale: scale.to_string(),
            mode: mode.to_string(),
            experiments: Vec::new(),
        }
    }

    /// Looks up an experiment entry.
    pub fn entry(&self, name: &str) -> Option<&Entry> {
        self.experiments.iter().find(|e| e.name == name)
    }

    /// Looks up an experiment entry mutably, adding a fresh one if the
    /// manifest (e.g. from an older run) doesn't know it yet.
    pub fn entry_mut(&mut self, name: &str, file: &str) -> &mut Entry {
        if let Some(i) = self.experiments.iter().position(|e| e.name == name) {
            &mut self.experiments[i]
        } else {
            self.experiments.push(Entry::new(name, file));
            self.experiments.last_mut().expect("just pushed")
        }
    }

    /// Serializes the manifest to JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"version\": {MANIFEST_VERSION},");
        let _ = writeln!(out, "  \"scale\": {},", json::quote(&self.scale));
        let _ = writeln!(out, "  \"mode\": {},", json::quote(&self.mode));
        let _ = writeln!(out, "  \"experiments\": [");
        for (i, e) in self.experiments.iter().enumerate() {
            let comma = if i + 1 < self.experiments.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"file\": {}, \"digest\": {}, \
                 \"status\": {}, \"attempts\": {}, \"error\": {}}}{comma}",
                json::quote(&e.name),
                json::quote(&e.file),
                json::quote(&e.digest),
                json::quote(e.status.as_str()),
                e.attempts,
                json::quote(&e.error),
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a manifest from JSON text. Returns `None` on any syntax or
    /// schema mismatch (including a version from the future) — a resume
    /// then degrades to a fresh run.
    pub fn parse(text: &str) -> Option<Manifest> {
        let value = json::parse(text)?;
        let top = value.as_object()?;
        if json::get(top, "version")?.as_u64()? != MANIFEST_VERSION {
            return None;
        }
        let mut manifest = Manifest::new(
            json::get(top, "scale")?.as_str()?,
            json::get(top, "mode")?.as_str()?,
        );
        for item in json::get(top, "experiments")?.as_array()? {
            let e = item.as_object()?;
            manifest.experiments.push(Entry {
                name: json::get(e, "name")?.as_str()?.to_string(),
                file: json::get(e, "file")?.as_str()?.to_string(),
                digest: json::get(e, "digest")?.as_str()?.to_string(),
                status: Status::parse(json::get(e, "status")?.as_str()?)?,
                attempts: json::get(e, "attempts")?.as_u64()?,
                error: json::get(e, "error")?.as_str()?.to_string(),
            });
        }
        Some(manifest)
    }

    /// Loads a manifest from disk; `None` if absent or unparseable.
    pub fn load(path: &Path) -> Option<Manifest> {
        Manifest::parse(&std::fs::read_to_string(path).ok()?)
    }

    /// Persists the manifest atomically.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        sim_core::persist::atomic_write(path, self.to_json().as_bytes())
    }
}

/// CRC-32 (hex, lowercase, 8 digits) of an artifact's bytes — the digest
/// format the manifest stores.
pub fn digest(bytes: &[u8]) -> String {
    let mut crc = traces::format::Crc32::new();
    crc.update(bytes);
    format!("{:08x}", crc.finish())
}

/// A minimal JSON subset: objects, arrays, strings (with escapes),
/// non-negative integers, plus whitespace. Exactly what the manifest
/// schema needs, nothing more.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// A string.
        Str(String),
        /// A non-negative integer.
        Num(u64),
        /// An array.
        Arr(Vec<Value>),
        /// An object as key/value pairs in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Field lookup in a parsed object.
    pub fn get<'v>(obj: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Serializes a string with JSON escaping.
    pub fn quote(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Parses one JSON document; `None` on any error or trailing junk.
    pub fn parse(text: &str) -> Option<Value> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn eat(&mut self, b: u8) -> Option<()> {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                Some(())
            } else {
                None
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        fn value(&mut self) -> Option<Value> {
            match self.peek()? {
                b'"' => self.string().map(Value::Str),
                b'[' => self.array(),
                b'{' => self.object(),
                b'0'..=b'9' => self.number(),
                _ => None,
            }
        }

        fn string(&mut self) -> Option<String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos)? {
                    b'"' => {
                        self.pos += 1;
                        return Some(out);
                    }
                    b'\\' => {
                        self.pos += 1;
                        match self.bytes.get(self.pos)? {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                                let code =
                                    u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                                out.push(char::from_u32(code)?);
                                self.pos += 4;
                            }
                            _ => return None,
                        }
                        self.pos += 1;
                    }
                    _ => {
                        // Consume one UTF-8 scalar (multi-byte sequences
                        // never contain '"' or '\\' continuation bytes, so
                        // a byte-wise copy would also work; this keeps the
                        // char-boundary invariant explicit).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                        let c = rest.chars().next()?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Option<Value> {
            self.skip_ws();
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == start {
                return None;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()?
                .parse()
                .ok()
                .map(Value::Num)
        }

        fn array(&mut self) -> Option<Value> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.pos += 1;
                return Some(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Some(Value::Arr(items));
                    }
                    _ => return None,
                }
            }
        }

        fn object(&mut self) -> Option<Value> {
            self.eat(b'{')?;
            let mut fields = Vec::new();
            if self.peek()? == b'}' {
                self.pos += 1;
                return Some(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.eat(b':')?;
                fields.push((key, self.value()?));
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Some(Value::Obj(fields));
                    }
                    _ => return None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new("quick", "WI");
        {
            let e = m.entry_mut("fig01", "fig01.csv");
            e.status = Status::Done;
            e.digest = "deadbeef".into();
            e.attempts = 1;
        }
        {
            let e = m.entry_mut("fig04", "fig04.csv");
            e.status = Status::Failed;
            e.attempts = 3;
            e.error = "panicked: \"boom\"\nline two\t\\end".into();
        }
        m.entry_mut("fig10", "fig10.csv");
        m
    }

    #[test]
    fn json_round_trips_exactly() {
        let m = sample();
        let parsed = Manifest::parse(&m.to_json()).expect("round trip");
        assert_eq!(parsed, m);
    }

    #[test]
    fn rejects_garbage_and_future_versions() {
        assert!(Manifest::parse("").is_none());
        assert!(Manifest::parse("{not json").is_none());
        assert!(Manifest::parse("{\"version\": 99}").is_none());
        let truncated = sample().to_json();
        assert!(Manifest::parse(&truncated[..truncated.len() / 2]).is_none());
        let trailing = format!("{}junk", sample().to_json());
        assert!(Manifest::parse(&trailing).is_none());
    }

    #[test]
    fn entry_lookup_and_upsert() {
        let mut m = sample();
        assert_eq!(m.entry("fig01").unwrap().digest, "deadbeef");
        assert!(m.entry("nope").is_none());
        assert_eq!(m.experiments.len(), 3);
        m.entry_mut("fig01", "fig01.csv").attempts = 2;
        assert_eq!(m.experiments.len(), 3, "upsert must not duplicate");
        m.entry_mut("new", "new.csv");
        assert_eq!(m.experiments.len(), 4);
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join("plru-test-manifest");
        let path = dir.join("manifest.json");
        let m = sample();
        m.save(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), m);
        assert!(Manifest::load(&dir.join("absent.json")).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digest_is_stable_crc32_hex() {
        assert_eq!(digest(b""), "00000000");
        assert_eq!(digest(b"hello"), digest(b"hello"));
        assert_ne!(digest(b"hello"), digest(b"hellp"));
        assert_eq!(digest(b"x").len(), 8);
    }
}
