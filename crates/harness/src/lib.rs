#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Experiment drivers that regenerate every evaluation figure and table of
//! the paper.
//!
//! | Id | Paper artifact | Module | Binary |
//! |----|----------------|--------|--------|
//! | FIG1 | random IPV design-space sample, sorted speedups | [`experiments::fig01`] | `fig01-random-space` |
//! | FIG4 | GIPLR / PseudoLRU / Random speedup over LRU | [`experiments::fig04`] | `fig04-giplr` |
//! | FIG10 | normalized MPKI: WN1-GIPPR, WN1-2-DGIPPR, WN1-4-DGIPPR, MIN | [`experiments::fig10`] | `fig10-mpki-gippr` |
//! | FIG11 | normalized MPKI: DRRIP, PDP, WN1-4-DGIPPR, MIN | [`experiments::fig11`] | `fig11-mpki-vs-others` |
//! | FIG12 | workload-neutral vs workload-inclusive speedup | [`experiments::fig12`] | `fig12-wn-vs-wi` |
//! | FIG13 | speedup: DRRIP, PDP, WN1-4-DGIPPR (+ memory-intensive subset) | [`experiments::fig13`] | `fig13-speedup` |
//! | TAB-OVH | Section 3.6 storage-overhead comparison | [`experiments::overhead`] | `tab-overhead` |
//! | TAB-VEC | Section 5.3 published vectors | [`experiments::vectors_tab`] | `tab-vectors` |
//!
//! Every binary accepts `--scale quick|medium|paper` (cache sizes,
//! trace lengths, and GA budgets scale together; see [`Scale`]) and
//! `--out <dir>` to write CSV next to the printed table.

pub mod cache;
pub mod experiments;
pub mod manifest;
pub mod pipeline;
pub mod policies;
pub mod report;
pub mod runner;
pub mod scale;
pub mod seed_replay;
pub mod stats;

pub use cache::{workload_cache, WorkloadCache};
pub use pipeline::{Experiment, Pipeline, PipelineReport};
pub use report::{Args, Table};
pub use runner::{measure_min, measure_policy, prepare_workloads, PolicyMeasurement, WorkloadData};
pub use scale::Scale;
pub use stats::geometric_mean;
