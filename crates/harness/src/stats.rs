//! Small statistical helpers shared by the experiments.

/// Geometric mean of a slice (the paper's summary statistic for speedups
/// and normalized MPKI). Returns 1.0 for an empty slice; nonpositive
/// entries are clamped to a tiny positive value to stay defined.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Weighted arithmetic mean; returns `default` when the weights sum to 0.
pub fn weighted_mean(pairs: &[(f64, f64)], default: f64) -> f64 {
    let total_w: f64 = pairs.iter().map(|(_, w)| w).sum();
    if total_w <= 0.0 {
        default
    } else {
        pairs.iter().map(|(v, w)| v * w).sum::<f64>() / total_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 1.0);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_handles_nonpositive() {
        let g = geometric_mean(&[0.0, 1.0]);
        assert!(g.is_finite() && g >= 0.0);
    }

    #[test]
    fn weighted_mean_basics() {
        assert!((weighted_mean(&[(1.0, 1.0), (3.0, 1.0)], 0.0) - 2.0).abs() < 1e-12);
        assert!((weighted_mean(&[(1.0, 3.0), (5.0, 1.0)], 0.0) - 2.0).abs() < 1e-12);
        assert_eq!(weighted_mean(&[], 7.0), 7.0);
    }
}
