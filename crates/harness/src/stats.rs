//! Small statistical helpers shared by the experiments.

/// Geometric mean of a slice (the paper's summary statistic for speedups
/// and normalized MPKI).
///
/// Entries that are nonpositive or non-finite have no defined log and are
/// **skipped with a warning** rather than silently clamped — a single
/// zero-miss benchmark used to drag the geomean toward `1e-12` and corrupt
/// figure footers. Returns `None` when no usable entry remains (including
/// the empty slice), so callers must decide what an absent summary means
/// instead of inheriting a silent `1.0`.
///
/// # Example
///
/// ```
/// use harness::geometric_mean;
///
/// assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
/// assert_eq!(geometric_mean(&[]), None);
/// // The zero is skipped, not clamped:
/// assert!((geometric_mean(&[0.0, 4.0]).unwrap() - 4.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    let mut log_sum = 0.0f64;
    let mut used = 0usize;
    for &v in values {
        if v > 0.0 && v.is_finite() {
            log_sum += v.ln();
            used += 1;
        }
    }
    let skipped = values.len() - used;
    if skipped > 0 {
        eprintln!(
            "warning: geometric_mean skipped {skipped} nonpositive/non-finite \
             of {} entries",
            values.len()
        );
    }
    if used == 0 {
        return None;
    }
    Some((log_sum / used as f64).exp())
}

/// Weighted arithmetic mean; returns `default` when the weights sum to 0.
pub fn weighted_mean(pairs: &[(f64, f64)], default: f64) -> f64 {
    let total_w: f64 = pairs.iter().map(|(_, w)| w).sum();
    if total_w <= 0.0 {
        default
    } else {
        pairs.iter().map(|(v, w)| v * w).sum::<f64>() / total_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_is_none() {
        assert_eq!(geometric_mean(&[]), None);
    }

    #[test]
    fn geomean_skips_nonpositive_instead_of_clamping() {
        // A zero entry used to be clamped to 1e-12 and crater the mean;
        // now it is excluded from the summary.
        let g = geometric_mean(&[0.0, 4.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12, "zero skipped, not clamped: {g}");
        let g = geometric_mean(&[-3.0, 2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_skips_non_finite() {
        let g = geometric_mean(&[f64::NAN, f64::INFINITY, 9.0]).unwrap();
        assert!((g - 9.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_all_unusable_is_none() {
        assert_eq!(geometric_mean(&[0.0, -1.0, f64::NAN]), None);
    }

    #[test]
    fn weighted_mean_basics() {
        assert!((weighted_mean(&[(1.0, 1.0), (3.0, 1.0)], 0.0) - 2.0).abs() < 1e-12);
        assert!((weighted_mean(&[(1.0, 3.0), (5.0, 1.0)], 0.0) - 2.0).abs() < 1e-12);
        assert_eq!(weighted_mean(&[], 7.0), 7.0);
    }
}
