//! A process-wide capture cache shared by every experiment.
//!
//! Capturing a benchmark's LLC stream means simulating the whole L1/L2
//! hierarchy over the reference trace — by far the most expensive part of
//! workload preparation, and `run-all` used to repeat it for every figure
//! that calls [`prepare_workloads`](crate::runner::prepare_workloads).
//! [`WorkloadCache`] memoizes, per `(Scale, Spec2006)`:
//!
//! * the captured simpoint streams plus LRU baseline ([`WorkloadData`]),
//! * the raw (pre-hierarchy) reference stream used by the multi-core
//!   experiment,
//!
//! and per `(Scale, benches)` the GA [`FitnessContext`] plus per-mode
//! vector assignments, so the figures 10/11/12/13 share one GA context and
//! one WN1 sweep instead of four.
//!
//! Streams are handed out as `Arc`s: the cache stays the single owner of
//! each capture and every consumer replays the same bytes.
//!
//! # On-disk spill
//!
//! When a spill directory is configured ([`WorkloadCache::set_disk_dir`];
//! the global cache resolves `SIM_CACHE_DIR`, then the legacy
//! `PLRU_CACHE_DIR`, then defaults to `results/cache/` — setting either
//! variable to an empty string disables spilling), captured workloads are
//! also persisted as one `<scale>-<bench>.wlc` file each, and later runs
//! load them instead of re-capturing. At global-cache initialization,
//! stale spill files whose `<scale>-<bench>` stem no longer names a known
//! scale and benchmark are pruned ([`prune_stale_spills`]). The file format
//! is a small header (magic, version, a fingerprint of every capture
//! parameter, the LRU baseline) followed by each simpoint's weight,
//! warm-up split, and stream as an embedded `PLRUTRC1` trace container,
//! then a CRC-32 footer over every metadata field (the streams carry
//! their own trace CRC). Any mismatch — different scale knobs, stale
//! format, truncation, a corrupted metadata field or stream, trailing
//! garbage — falls back to a fresh capture that overwrites the file,
//! with a warning on stderr so silent re-capture loops are visible.

use crate::experiments::{VectorAssignment, VectorMode};
use crate::runner::{measure_policy, PolicyMeasurement, SimpointData, WorkloadData};
use crate::scale::Scale;
use evolve::FitnessContext;
use mem_model::capture_llc_stream;
use sim_core::Access;
use std::collections::HashMap;
use std::fs;
use std::hash::Hash;
use std::io::{BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use traces::spec2006::Spec2006;
use traces::{TraceReader, TraceWriter};

/// Magic identifying a spilled-workload file.
const WLC_MAGIC: &[u8; 8] = b"PLRUWLC1";
/// Spill format version; bump on any layout change. Version 2 added the
/// metadata CRC footer and the end-of-file check.
const WLC_VERSION: u32 = 2;
/// Upper bound on the simpoint count field. A corrupted count used to
/// drive `Vec::with_capacity` straight into an allocation abort; any real
/// capture holds a handful of simpoints.
const WLC_MAX_SIMPOINTS: usize = 4096;

/// A keyed exactly-once memo: concurrent callers asking for the same key
/// block on one `OnceLock` so the value is computed a single time, while
/// distinct keys initialize fully in parallel (the map lock is only held
/// to look up the slot, never during `init`).
struct Memo<K, V> {
    map: Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>,
}

impl<K: Eq + Hash, V> Default for Memo<K, V> {
    fn default() -> Self {
        Memo {
            map: Mutex::new(HashMap::new()),
        }
    }
}

impl<K: Eq + Hash, V> Memo<K, V> {
    fn get_or_init<F: FnOnce() -> V>(&self, key: K, init: F) -> Arc<V> {
        let slot = {
            let mut map = self.map.lock().expect("memo lock poisoned");
            map.entry(key).or_default().clone()
        };
        slot.get_or_init(|| Arc::new(init())).clone()
    }
}

/// The shared workload-capture cache. See the module docs for what it
/// stores; use [`workload_cache`] for the process-global instance.
#[derive(Default)]
pub struct WorkloadCache {
    workloads: Memo<(Scale, Spec2006), WorkloadData>,
    raw: Memo<(Scale, Spec2006), Vec<Access>>,
    contexts: Memo<(Scale, Vec<Spec2006>), FitnessContext>,
    vectors: Memo<(Scale, Vec<Spec2006>, VectorMode), VectorAssignment>,
    captures: AtomicUsize,
    disk_loads: AtomicUsize,
    disk_dir: Mutex<Option<PathBuf>>,
}

impl std::fmt::Debug for WorkloadCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadCache")
            .field("captures", &self.captures())
            .field("disk_loads", &self.disk_loads())
            .finish_non_exhaustive()
    }
}

impl WorkloadCache {
    /// Creates an empty cache with no spill directory (tests use private
    /// instances; experiments share [`workload_cache`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables (`Some`) or disables (`None`) on-disk spill of captured
    /// workloads. The directory is created on first write.
    pub fn set_disk_dir(&self, dir: Option<PathBuf>) {
        *self.disk_dir.lock().expect("disk dir lock poisoned") = dir;
    }

    /// The configured spill directory, if any.
    pub fn disk_dir(&self) -> Option<PathBuf> {
        self.disk_dir
            .lock()
            .expect("disk dir lock poisoned")
            .clone()
    }

    /// Fresh hierarchy captures performed so far (cache misses).
    pub fn captures(&self) -> usize {
        self.captures.load(Ordering::Relaxed)
    }

    /// Workloads served from the on-disk spill instead of a capture.
    pub fn disk_loads(&self) -> usize {
        self.disk_loads.load(Ordering::Relaxed)
    }

    /// Returns `bench`'s captured simpoint streams and LRU baseline at
    /// `scale`, capturing (or loading from disk) on first use.
    pub fn workload(&self, scale: Scale, bench: Spec2006) -> Arc<WorkloadData> {
        self.workloads.get_or_init((scale, bench), || {
            let path = self.disk_dir().map(|d| spill_path(&d, scale, bench));
            if let Some(path) = &path {
                if let Some(data) = load_workload(path, scale, bench) {
                    self.disk_loads.fetch_add(1, Ordering::Relaxed);
                    return data;
                }
            }
            self.captures.fetch_add(1, Ordering::Relaxed);
            let data = capture_workload(scale, bench);
            if let Some(path) = &path {
                // Spill failures are non-fatal: the in-memory copy is what
                // this run uses; the disk copy only accelerates the next.
                if let Err(e) = save_workload(path, scale, bench, &data) {
                    eprintln!(
                        "warning: could not spill workload cache file {}: {e}; \
                         continuing in-memory",
                        path.display()
                    );
                }
            }
            data
        })
    }

    /// Returns `bench`'s raw reference stream (`scale.accesses()` long,
    /// before any cache filtering), generated once. The multi-core mixes
    /// replay prefixes of these.
    pub fn raw_stream(&self, scale: Scale, bench: Spec2006) -> Arc<Vec<Access>> {
        self.raw.get_or_init((scale, bench), || {
            bench
                .workload()
                .scaled_down(scale.shift())
                .generator(0)
                .take(scale.accesses())
                .collect()
        })
    }

    /// Returns the GA fitness context over `benches` at `scale`, built
    /// once and shared (figure 12 and every WN1 vector assignment use the
    /// same context).
    pub fn fitness_context(&self, scale: Scale, benches: &[Spec2006]) -> Arc<FitnessContext> {
        self.contexts.get_or_init((scale, benches.to_vec()), || {
            FitnessContext::for_benchmarks(
                benches,
                scale.simpoints(),
                scale.ga_accesses(),
                scale.fitness(),
            )
        })
    }

    /// Returns the per-benchmark vector assignment for `mode`, computed
    /// once per `(scale, benches, mode)` — in WN1 mode this is a full GA
    /// sweep, which figures 10, 11, and 13 would otherwise each repeat.
    pub fn vector_assignment(
        &self,
        scale: Scale,
        benches: &[Spec2006],
        mode: VectorMode,
    ) -> Arc<VectorAssignment> {
        self.vectors
            .get_or_init((scale, benches.to_vec(), mode), || {
                crate::experiments::compute_vector_assignment(self, scale, benches, mode)
            })
    }
}

/// The process-global cache used by
/// [`prepare_workloads`](crate::runner::prepare_workloads) and the
/// experiment drivers. The spill directory comes from `SIM_CACHE_DIR`,
/// falling back to the legacy `PLRU_CACHE_DIR`, then to `results/cache/`;
/// setting either variable to an empty string disables spilling. Stale
/// spill files are pruned once, here at initialization.
pub fn workload_cache() -> &'static WorkloadCache {
    static GLOBAL: OnceLock<WorkloadCache> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let cache = WorkloadCache::new();
        if let Some(dir) = spill_dir_from(|var| std::env::var_os(var)) {
            let pruned = prune_stale_spills(&dir);
            if pruned > 0 {
                eprintln!(
                    "note: pruned {pruned} stale workload-cache file(s) from {}",
                    dir.display()
                );
            }
            cache.set_disk_dir(Some(dir));
        }
        cache
    })
}

/// Resolves the global cache's spill directory from an environment
/// lookup: `SIM_CACHE_DIR` wins, then the legacy `PLRU_CACHE_DIR`, then
/// the `results/cache/` default. A variable that is set but empty
/// returns `None` (spill disabled) — the escape hatch for fully
/// stateless runs.
fn spill_dir_from(lookup: impl Fn(&str) -> Option<std::ffi::OsString>) -> Option<PathBuf> {
    for var in ["SIM_CACHE_DIR", "PLRU_CACHE_DIR"] {
        if let Some(dir) = lookup(var) {
            return (!dir.is_empty()).then(|| PathBuf::from(dir));
        }
    }
    Some(PathBuf::from("results/cache"))
}

/// Deletes stale spill files in `dir`: any `*.wlc` whose
/// `<scale>-<bench>` stem no longer names a known [`Scale`] and
/// [`Spec2006`] benchmark (renamed benchmarks, removed scales, foreign
/// leftovers from older layouts), plus abandoned `*.wlc.tmp`
/// temporaries from interrupted writes. Files with current stems are
/// untouched — staleness from changed *capture parameters* is still
/// detected per file by the fingerprint check at load time. Returns how
/// many files were removed; a missing directory prunes nothing.
pub fn prune_stale_spills(dir: &Path) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut pruned = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = match name.strip_suffix(".wlc") {
            Some(stem) => !stem_is_current(stem),
            None => name.ends_with(".wlc.tmp"),
        };
        if stale && fs::remove_file(entry.path()).is_ok() {
            pruned += 1;
        }
    }
    pruned
}

/// Whether a spill file stem still names a live `(scale, bench)` pair.
fn stem_is_current(stem: &str) -> bool {
    stem.split_once('-').is_some_and(|(scale, bench)| {
        Scale::parse(scale).is_some() && Spec2006::from_name(bench).is_some()
    })
}

/// Captures every simpoint of `bench` at `scale` and measures the LRU
/// baseline — the cache-miss path of [`WorkloadCache::workload`].
pub fn capture_workload(scale: Scale, bench: Spec2006) -> WorkloadData {
    let config = scale.hierarchy();
    let simpoints: Vec<SimpointData> = bench
        .simpoints()
        .into_iter()
        .take(scale.simpoints().max(1))
        .map(|sp| {
            let mut spec = bench.workload().scaled_down(scale.shift());
            spec.seed ^= sp.index.wrapping_mul(0x517c_c1b7_2722_0a95);
            let (stream, _) =
                capture_llc_stream(config, spec.generator(sp.index).take(scale.accesses()));
            let warmup = mem_model::llc::default_warmup(stream.len());
            SimpointData {
                weight: sp.weight,
                stream: Arc::new(stream),
                warmup,
            }
        })
        .collect();
    let mut data = WorkloadData {
        bench,
        simpoints,
        lru: PolicyMeasurement {
            mpki: 0.0,
            cycles: 1.0,
            misses: 0.0,
        },
    };
    data.lru = measure_policy(&data, &crate::policies::lru(), config.llc);
    data
}

fn spill_path(dir: &Path, scale: Scale, bench: Spec2006) -> PathBuf {
    dir.join(format!("{scale}-{}.wlc", bench.name()))
}

/// FNV-1a over every knob that determines a capture's content, so stale
/// spill files from different scale parameters (or a changed format) are
/// rejected instead of silently replayed.
fn fingerprint(scale: Scale, bench: Spec2006) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(b"wlc-fingerprint-v1");
    eat(scale.to_string().as_bytes());
    eat(&(scale.shift() as u64).to_le_bytes());
    eat(&(scale.accesses() as u64).to_le_bytes());
    eat(&(scale.simpoints() as u64).to_le_bytes());
    eat(bench.name().as_bytes());
    h
}

/// Persists `data` at `path` through [`sim_core::persist::atomic_write_with`]
/// (write-to-temp + fsync + rename), so readers never see a half-written
/// file and a crash mid-spill leaves any previous spill intact.
fn save_workload(
    path: &Path,
    scale: Scale,
    bench: Spec2006,
    data: &WorkloadData,
) -> std::io::Result<()> {
    sim_core::persist::atomic_write_with(path, |w| {
        // The embedded trace containers protect the streams with their own
        // CRC; `meta_crc` covers every field outside them (the LRU
        // baseline, the simpoint count, each weight and warm-up split) so
        // a flipped metadata byte is caught instead of loaded as garbage.
        let mut meta_crc = traces::format::Crc32::new();
        w.write_all(WLC_MAGIC)?;
        w.write_all(&WLC_VERSION.to_le_bytes())?;
        w.write_all(&fingerprint(scale, bench).to_le_bytes())?;
        for field in [data.lru.mpki, data.lru.cycles, data.lru.misses] {
            let bytes = field.to_le_bytes();
            meta_crc.update(&bytes);
            w.write_all(&bytes)?;
        }
        let count = (data.simpoints.len() as u32).to_le_bytes();
        meta_crc.update(&count);
        w.write_all(&count)?;
        for sp in &data.simpoints {
            let weight = sp.weight.to_le_bytes();
            let warmup = (sp.warmup as u64).to_le_bytes();
            meta_crc.update(&weight);
            meta_crc.update(&warmup);
            w.write_all(&weight)?;
            w.write_all(&warmup)?;
            let mut tw = TraceWriter::new(&mut *w).map_err(trace_to_io)?;
            for a in sp.stream.iter() {
                tw.write(a).map_err(trace_to_io)?;
            }
            tw.finish().map_err(trace_to_io)?;
        }
        w.write_all(&meta_crc.finish().to_le_bytes())?;
        Ok(())
    })
}

fn trace_to_io(e: traces::TraceError) -> std::io::Error {
    match e {
        traces::TraceError::Io(io) => io,
        other => std::io::Error::other(other.to_string()),
    }
}

/// Loads a spilled workload, returning `None` (fall back to capture) on
/// any mismatch. A missing file is the normal cold-cache case and stays
/// silent; a file that exists but cannot be loaded — foreign magic, stale
/// version or fingerprint, truncation, a failed metadata or trace CRC,
/// trailing garbage — logs a warning so the re-capture is visible.
fn load_workload(path: &Path, scale: Scale, bench: Spec2006) -> Option<WorkloadData> {
    let file = fs::File::open(path).ok()?;
    match load_workload_file(file, scale, bench) {
        Ok(data) => Some(data),
        Err(reason) => {
            eprintln!(
                "warning: ignoring workload cache file {} ({reason}); re-capturing",
                path.display()
            );
            None
        }
    }
}

/// The fallible body of [`load_workload`]; the error is a human-readable
/// reason for the warning log.
fn load_workload_file(
    file: fs::File,
    scale: Scale,
    bench: Spec2006,
) -> Result<WorkloadData, String> {
    let mut r = BufReader::new(file);
    let mut meta_crc = traces::format::Crc32::new();
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(|_| "truncated header")?;
    if &magic != WLC_MAGIC {
        return Err("foreign magic".into());
    }
    let version = read_u32(&mut r).ok_or("truncated header")?;
    if version != WLC_VERSION {
        return Err(format!("stale format version {version}"));
    }
    if read_u64(&mut r).ok_or("truncated header")? != fingerprint(scale, bench) {
        return Err("capture-parameter fingerprint mismatch".into());
    }
    let mut meta_f64 = |r: &mut BufReader<fs::File>| -> Option<f64> {
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf).ok()?;
        meta_crc.update(&buf);
        Some(f64::from_le_bytes(buf))
    };
    let lru = PolicyMeasurement {
        mpki: meta_f64(&mut r).ok_or("truncated LRU baseline")?,
        cycles: meta_f64(&mut r).ok_or("truncated LRU baseline")?,
        misses: meta_f64(&mut r).ok_or("truncated LRU baseline")?,
    };
    let mut count_buf = [0u8; 4];
    r.read_exact(&mut count_buf)
        .map_err(|_| "truncated simpoint count")?;
    meta_crc.update(&count_buf);
    let n = u32::from_le_bytes(count_buf) as usize;
    // Never trust the count for a pre-allocation: a corrupted field here
    // used to request gigabytes and abort the process.
    if n > WLC_MAX_SIMPOINTS {
        return Err(format!("implausible simpoint count {n}"));
    }
    let mut simpoints = Vec::with_capacity(n);
    for i in 0..n {
        let mut buf = [0u8; 16];
        r.read_exact(&mut buf)
            .map_err(|_| format!("truncated header of simpoint {i}"))?;
        meta_crc.update(&buf);
        let weight = f64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
        let warmup = u64::from_le_bytes(buf[8..].try_into().expect("8 bytes")) as usize;
        let stream: Vec<Access> = TraceReader::new(&mut r)
            .map_err(|e| format!("bad trace container of simpoint {i}: {e}"))?
            .collect::<Result<_, _>>()
            .map_err(|e| format!("bad trace stream of simpoint {i}: {e}"))?;
        simpoints.push(SimpointData {
            weight,
            stream: Arc::new(stream),
            warmup,
        });
    }
    let footer = read_u32(&mut r).ok_or("truncated metadata CRC footer")?;
    if footer != meta_crc.finish() {
        return Err("metadata CRC mismatch".into());
    }
    let mut extra = [0u8; 1];
    if r.read(&mut extra).map_err(|e| e.to_string())? != 0 {
        return Err("trailing garbage after footer".into());
    }
    Ok(WorkloadData {
        bench,
        simpoints,
        lru,
    })
}

fn read_u32<R: Read>(r: &mut R) -> Option<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).ok()?;
    Some(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> Option<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).ok()?;
    Some(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> Spec2006 {
        Spec2006::Libquantum
    }

    #[test]
    fn capture_happens_exactly_once_per_key() {
        let cache = WorkloadCache::new();
        // Hammer the same key from the pool: the memo must serialize
        // initialization down to one capture.
        let first = cache.workload(Scale::Micro, bench());
        let again: Vec<_> =
            sim_core::pool::global().run(8, usize::MAX, |_| cache.workload(Scale::Micro, bench()));
        assert_eq!(cache.captures(), 1);
        for w in &again {
            assert!(
                Arc::ptr_eq(w, &first),
                "every caller shares the same capture"
            );
        }
        // A different scale is a different key.
        let _ = cache.workload(Scale::Quick, bench());
        assert_eq!(cache.captures(), 2);
    }

    #[test]
    fn cached_workload_matches_fresh_capture() {
        let cache = WorkloadCache::new();
        let cached = cache.workload(Scale::Micro, bench());
        let fresh = capture_workload(Scale::Micro, bench());
        assert_eq!(cached.simpoints.len(), fresh.simpoints.len());
        for (c, f) in cached.simpoints.iter().zip(&fresh.simpoints) {
            assert_eq!(
                c.stream, f.stream,
                "cached stream identical to fresh capture"
            );
            assert_eq!(c.warmup, f.warmup);
            assert_eq!(c.weight, f.weight);
        }
        assert_eq!(cached.lru, fresh.lru);
    }

    #[test]
    fn raw_stream_is_deterministic_and_shared() {
        let cache = WorkloadCache::new();
        let a = cache.raw_stream(Scale::Micro, bench());
        let b = cache.raw_stream(Scale::Micro, bench());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), Scale::Micro.accesses());
    }

    #[test]
    fn disk_spill_round_trips_byte_identical() {
        let dir = std::env::temp_dir().join(format!("wlc-spill-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let writer = WorkloadCache::new();
        writer.set_disk_dir(Some(dir.clone()));
        let original = writer.workload(Scale::Micro, bench());
        assert_eq!(writer.captures(), 1);
        assert_eq!(writer.disk_loads(), 0);

        let reader = WorkloadCache::new();
        reader.set_disk_dir(Some(dir.clone()));
        let loaded = reader.workload(Scale::Micro, bench());
        assert_eq!(reader.captures(), 0, "served from disk");
        assert_eq!(reader.disk_loads(), 1);
        assert_eq!(loaded.lru, original.lru);
        for (l, o) in loaded.simpoints.iter().zip(&original.simpoints) {
            assert_eq!(l.stream, o.stream);
            assert_eq!(l.warmup, o.warmup);
            assert_eq!(l.weight, o.weight);
        }

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_stale_spill_falls_back_to_capture() {
        let dir = std::env::temp_dir().join(format!("wlc-stale-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let writer = WorkloadCache::new();
        writer.set_disk_dir(Some(dir.clone()));
        let _ = writer.workload(Scale::Micro, bench());

        // Flip a byte in the middle of the spilled stream: the embedded
        // trace CRC must reject it and a fresh capture must take over.
        let path = spill_path(&dir, Scale::Micro, bench());
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, &bytes).unwrap();

        let reader = WorkloadCache::new();
        reader.set_disk_dir(Some(dir.clone()));
        let recaptured = reader.workload(Scale::Micro, bench());
        assert_eq!(reader.disk_loads(), 0);
        assert_eq!(reader.captures(), 1);
        assert!(!recaptured.simpoints.is_empty());

        // A file written at one scale never satisfies another.
        assert!(load_workload(&path, Scale::Quick, bench()).is_none());

        let _ = fs::remove_dir_all(&dir);
    }

    /// Writes one good spill file and returns `(dir, path, bytes)`.
    fn spilled_file(tag: &str) -> (std::path::PathBuf, std::path::PathBuf, Vec<u8>) {
        let dir = std::env::temp_dir().join(format!("wlc-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let writer = WorkloadCache::new();
        writer.set_disk_dir(Some(dir.clone()));
        let _ = writer.workload(Scale::Micro, bench());
        let path = spill_path(&dir, Scale::Micro, bench());
        let bytes = fs::read(&path).unwrap();
        (dir, path, bytes)
    }

    #[test]
    fn truncated_spill_falls_back_at_every_length() {
        // Chopping the file anywhere — mid-header, mid-simpoint-metadata,
        // mid-stream, mid-footer — must yield a clean fallback, never a
        // panic or a short-read of garbage.
        let (dir, path, bytes) = spilled_file("trunc");
        let probes: Vec<usize> = (0..bytes.len())
            .step_by((bytes.len() / 64).max(1))
            .chain([0, 7, 11, 19, 43, 44, 59, 60, bytes.len() - 1])
            .filter(|&n| n < bytes.len())
            .collect();
        for n in probes {
            fs::write(&path, &bytes[..n]).unwrap();
            assert!(
                load_workload(&path, Scale::Micro, bench()).is_none(),
                "truncation to {n} of {} bytes must not load",
                bytes.len()
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_metadata_field_is_rejected_by_footer_crc() {
        // Flip one byte of the first simpoint's weight (offset 48: after
        // magic 8, version 4, fingerprint 8, LRU 24, count 4). The streams'
        // trace CRCs cannot see it; only the metadata footer can.
        let (dir, path, mut bytes) = spilled_file("meta");
        bytes[48] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(
            load_workload(&path, Scale::Micro, bench()).is_none(),
            "corrupt weight must fail the metadata CRC"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn implausible_simpoint_count_is_rejected_without_allocating() {
        // Overwrite the count field (offset 44) with u32::MAX: the loader
        // must bail out instead of pre-allocating gigabytes.
        let (dir, path, mut bytes) = spilled_file("count");
        bytes[44..48].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(load_workload(&path, Scale::Micro, bench()).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (dir, path, mut bytes) = spilled_file("tail");
        bytes.extend_from_slice(b"junk");
        fs::write(&path, &bytes).unwrap();
        assert!(load_workload(&path, Scale::Micro, bench()).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_dir_resolution_prefers_sim_cache_dir() {
        use std::ffi::OsString;
        let env = |pairs: &'static [(&'static str, &'static str)]| {
            move |var: &str| -> Option<OsString> {
                pairs
                    .iter()
                    .find(|(k, _)| *k == var)
                    .map(|(_, v)| OsString::from(v))
            }
        };
        // SIM_CACHE_DIR beats the legacy variable.
        assert_eq!(
            spill_dir_from(env(&[("SIM_CACHE_DIR", "/a"), ("PLRU_CACHE_DIR", "/b")])),
            Some(PathBuf::from("/a"))
        );
        // The legacy variable still works alone.
        assert_eq!(
            spill_dir_from(env(&[("PLRU_CACHE_DIR", "/b")])),
            Some(PathBuf::from("/b"))
        );
        // Nothing set: the default directory.
        assert_eq!(
            spill_dir_from(env(&[])),
            Some(PathBuf::from("results/cache"))
        );
        // Set-but-empty disables spilling entirely.
        assert_eq!(spill_dir_from(env(&[("SIM_CACHE_DIR", "")])), None);
        assert_eq!(spill_dir_from(env(&[("PLRU_CACHE_DIR", "")])), None);
    }

    #[test]
    fn prune_removes_stale_spills_and_keeps_current() {
        let (dir, path, _) = spilled_file("prune");
        // Stale neighbors: unknown scale, unknown benchmark, no separator,
        // and an abandoned temp file. The `.txt` is foreign and untouched.
        for stale in [
            "nosuchscale-462.libquantum.wlc",
            "quick-999.nothing.wlc",
            "noseparator.wlc",
            "micro-462.libquantum.wlc.tmp",
        ] {
            fs::write(dir.join(stale), b"PLRUWLC1junk").unwrap();
        }
        fs::write(dir.join("README.txt"), b"not a spill").unwrap();

        assert_eq!(prune_stale_spills(&dir), 4);
        assert!(path.exists(), "current spill survives pruning");
        assert!(dir.join("README.txt").exists(), "foreign files untouched");
        assert!(
            load_workload(&path, Scale::Micro, bench()).is_some(),
            "survivor still loads"
        );
        // Idempotent: a second pass finds nothing stale.
        assert_eq!(prune_stale_spills(&dir), 0);
        // A missing directory prunes nothing.
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(prune_stale_spills(&dir), 0);
    }

    #[test]
    fn stale_version_is_rejected() {
        let (dir, path, mut bytes) = spilled_file("ver");
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(load_workload(&path, Scale::Micro, bench()).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Directory entries whose name ends with `suffix`.
    fn entries_with_suffix(dir: &Path, suffix: &str) -> Vec<String> {
        match fs::read_dir(dir) {
            Ok(rd) => rd
                .filter_map(|e| Some(e.ok()?.file_name().to_string_lossy().into_owned()))
                .filter(|n| n.ends_with(suffix))
                .collect(),
            Err(_) => Vec::new(),
        }
    }

    #[test]
    fn injected_enospc_spill_completes_in_memory() {
        if !sim_fault::COMPILED_IN {
            return;
        }
        let dir = std::env::temp_dir().join(format!("wlc-enospc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        sim_fault::with_plan("enospc@.wlc:sticky", || {
            let cache = WorkloadCache::new();
            cache.set_disk_dir(Some(dir.clone()));
            let data = cache.workload(Scale::Micro, bench());
            assert!(!data.simpoints.is_empty(), "capture must still succeed");
            assert_eq!(cache.captures(), 1);
        });
        assert!(
            entries_with_suffix(&dir, ".wlc").is_empty(),
            "nothing may be committed under ENOSPC"
        );
        assert!(
            entries_with_suffix(&dir, ".tmp").is_empty(),
            "no orphan temp files under ENOSPC"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_spill_leaves_no_orphan_and_recaptures() {
        if !sim_fault::COMPILED_IN {
            return;
        }
        let dir = std::env::temp_dir().join(format!("wlc-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        sim_fault::with_plan("torn@.wlc:n=1", || {
            let writer = WorkloadCache::new();
            writer.set_disk_dir(Some(dir.clone()));
            let _ = writer.workload(Scale::Micro, bench());
            assert_eq!(writer.captures(), 1);
        });
        assert!(
            entries_with_suffix(&dir, ".tmp").is_empty(),
            "torn spill must clean up its temp file"
        );
        assert!(
            entries_with_suffix(&dir, ".wlc").is_empty(),
            "torn spill must not commit"
        );
        // The next run finds no spill and transparently re-captures.
        let reader = WorkloadCache::new();
        reader.set_disk_dir(Some(dir.clone()));
        let data = reader.workload(Scale::Micro, bench());
        assert!(!data.simpoints.is_empty());
        assert_eq!(reader.disk_loads(), 0);
        assert_eq!(reader.captures(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_corrupt_spill_is_rejected_by_crc_on_load() {
        if !sim_fault::COMPILED_IN {
            return;
        }
        let dir = std::env::temp_dir().join(format!("wlc-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // The corrupt fault flips one payload byte but lets the commit
        // succeed: a damaged spill lands on disk. Either the embedded
        // trace CRC, the metadata CRC, or the header check must reject it
        // deterministically, falling back to a fresh capture.
        sim_fault::with_plan("corrupt@.wlc:n=1", || {
            let writer = WorkloadCache::new();
            writer.set_disk_dir(Some(dir.clone()));
            let _ = writer.workload(Scale::Micro, bench());
        });
        let path = spill_path(&dir, Scale::Micro, bench());
        assert!(path.exists(), "corrupt fault commits the damaged file");
        assert!(
            load_workload(&path, Scale::Micro, bench()).is_none(),
            "damaged spill must fail validation"
        );
        let reader = WorkloadCache::new();
        reader.set_disk_dir(Some(dir.clone()));
        let data = reader.workload(Scale::Micro, bench());
        assert!(!data.simpoints.is_empty());
        assert_eq!(reader.disk_loads(), 0, "damaged spill must not be served");
        assert_eq!(reader.captures(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
