//! Fail-soft, resumable execution of the experiment suite.
//!
//! [`Pipeline::run`] drives a list of [`Experiment`]s the way `run-all`
//! needs: each experiment runs under `catch_unwind` with a bounded-backoff
//! retry budget, a failure is recorded and the run *continues* with the
//! remaining experiments (fail-soft), and every state transition is
//! persisted to the [`Manifest`](crate::manifest::Manifest) so an
//! interrupted run — crash, SIGKILL, injected fault — resumes with
//! `--resume`, skipping experiments whose artifacts are already on disk
//! and verified against their recorded digests.

use crate::manifest::{digest, Manifest, Status};
use crate::report::{Args, Table};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Duration;

/// Default number of attempts per experiment (first try + retries).
pub const DEFAULT_MAX_ATTEMPTS: u64 = 3;

/// Environment variable overriding the base retry backoff in
/// milliseconds (default 500; each retry doubles it). Tests set it to 0.
pub const RETRY_BASE_MS_ENV: &str = "SIM_RETRY_BASE_MS";

/// Bounded exponential backoff before retry `attempt` (0-based): the
/// [`RETRY_BASE_MS_ENV`] base (default 500 ms) doubled per attempt,
/// capped at 64x. Shared by the pipeline's experiment retries and the
/// `evolve-islands` worker respawn loop.
pub fn retry_backoff(attempt: u64) -> Duration {
    let base = std::env::var(RETRY_BASE_MS_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500u64);
    Duration::from_millis(base.saturating_mul(1u64 << attempt.min(6)))
}

/// One named experiment: a closure producing its table, plus the CSV file
/// name the table lands in under the output directory.
pub struct Experiment {
    name: String,
    file: String,
    run: Box<dyn Fn() -> Table>,
}

impl Experiment {
    /// Creates an experiment. `name` is the manifest/`--only` key; `file`
    /// is the CSV name relative to `--out`.
    pub fn new(name: &str, file: &str, run: impl Fn() -> Table + 'static) -> Experiment {
        Experiment {
            name: name.to_string(),
            file: file.to_string(),
            run: Box::new(run),
        }
    }
}

/// Outcome summary of a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineReport {
    /// Experiments that ran to completion this invocation.
    pub completed: Vec<String>,
    /// Experiments skipped because a resume found them already done.
    pub skipped: Vec<String>,
    /// Experiments that exhausted their retry budget, with the error.
    pub failed: Vec<(String, String)>,
}

impl PipelineReport {
    /// Whether every selected experiment is now done.
    pub fn all_ok(&self) -> bool {
        self.failed.is_empty()
    }
}

/// The experiment pipeline driver. See the module docs.
pub struct Pipeline {
    out: Option<String>,
    resume: bool,
    only: Vec<String>,
    max_attempts: u64,
}

impl Pipeline {
    /// Builds a pipeline from parsed CLI arguments.
    pub fn new(args: &Args) -> Pipeline {
        Pipeline {
            out: args.out.clone(),
            resume: args.resume,
            only: args.only.clone(),
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        }
    }

    /// Overrides the per-experiment attempt budget (minimum 1).
    pub fn max_attempts(mut self, n: u64) -> Pipeline {
        self.max_attempts = n.max(1);
        self
    }

    fn manifest_path(&self) -> Option<PathBuf> {
        self.out
            .as_ref()
            .map(|dir| PathBuf::from(dir).join("manifest.json"))
    }

    fn selected(&self, name: &str) -> bool {
        self.only.is_empty() || self.only.iter().any(|n| n == name)
    }

    /// Loads the resume manifest if one exists and matches this run's
    /// inputs; otherwise starts fresh (with a warning when a mismatched
    /// manifest is being ignored).
    fn initial_manifest(&self, scale: &str, mode: &str) -> Manifest {
        if self.resume {
            if let Some(path) = self.manifest_path() {
                if let Some(m) = Manifest::load(&path) {
                    if m.scale == scale && m.mode == mode {
                        return m;
                    }
                    eprintln!(
                        "run-all: --resume ignored: manifest at {} was recorded at \
                         scale={} mode={} but this run uses scale={scale} mode={mode}; \
                         starting fresh",
                        path.display(),
                        m.scale,
                        m.mode,
                    );
                } else if path.exists() {
                    eprintln!(
                        "run-all: --resume ignored: manifest at {} is unreadable; \
                         starting fresh",
                        path.display()
                    );
                }
            } else {
                eprintln!("run-all: --resume has no effect without --out");
            }
        }
        Manifest::new(scale, mode)
    }

    /// Whether a resume can skip `name`: manifest says done AND the
    /// artifact on disk matches the recorded digest.
    fn verified_done(&self, manifest: &Manifest, name: &str) -> bool {
        let Some(entry) = manifest.entry(name) else {
            return false;
        };
        if entry.status != Status::Done {
            return false;
        }
        let Some(dir) = &self.out else {
            return false;
        };
        match std::fs::read(PathBuf::from(dir).join(&entry.file)) {
            Ok(bytes) => {
                if digest(&bytes) == entry.digest {
                    true
                } else {
                    eprintln!(
                        "run-all: artifact {} does not match its manifest digest; \
                         re-running {name}",
                        entry.file
                    );
                    false
                }
            }
            Err(_) => {
                eprintln!(
                    "run-all: artifact {} is missing; re-running {name}",
                    entry.file
                );
                false
            }
        }
    }

    fn persist(&self, manifest: &Manifest) {
        if let Some(path) = self.manifest_path() {
            if let Err(e) = manifest.save(&path) {
                eprintln!("run-all: could not persist manifest: {e}");
            }
        }
    }

    fn backoff(attempt: u64) -> Duration {
        retry_backoff(attempt)
    }

    /// Runs the experiments in order. `scale` and `mode` are the run-input
    /// labels recorded in the manifest (a resume refuses to mix them).
    pub fn run(&self, experiments: &[Experiment], scale: &str, mode: &str) -> PipelineReport {
        let mut manifest = self.initial_manifest(scale, mode);
        for e in experiments {
            manifest.entry_mut(&e.name, &e.file);
        }
        self.persist(&manifest);

        let mut report = PipelineReport {
            completed: Vec::new(),
            skipped: Vec::new(),
            failed: Vec::new(),
        };
        for e in experiments {
            if !self.selected(&e.name) {
                continue;
            }
            if self.resume && self.verified_done(&manifest, &e.name) {
                println!("[{}] already done, skipping (--resume)\n", e.name);
                report.skipped.push(e.name.clone());
                continue;
            }
            match self.run_one(e, &mut manifest) {
                Ok(()) => report.completed.push(e.name.clone()),
                Err(err) => report.failed.push((e.name.clone(), err)),
            }
        }

        if !report.failed.is_empty() {
            eprintln!("run-all: {} experiment(s) failed:", report.failed.len());
            for (name, err) in &report.failed {
                eprintln!("  {name}: {err}");
            }
        }
        report
    }

    /// One experiment with its retry budget. `Err` carries the last error
    /// after the budget is exhausted.
    fn run_one(&self, e: &Experiment, manifest: &mut Manifest) -> Result<(), String> {
        let mut last_error = String::new();
        for attempt in 0..self.max_attempts {
            {
                let entry = manifest.entry_mut(&e.name, &e.file);
                entry.status = Status::Running;
                entry.attempts += 1;
            }
            self.persist(manifest);

            match catch_unwind(AssertUnwindSafe(&e.run)) {
                Ok(table) => {
                    println!("{table}");
                    let csv = table.to_csv_string();
                    let mut written = None;
                    if let Some(dir) = &self.out {
                        let path = PathBuf::from(dir).join(&e.file);
                        match table.write_csv(&path) {
                            Ok(()) => {
                                println!("wrote {}\n", path.display());
                                written = Some(digest(csv.as_bytes()));
                            }
                            Err(err) => {
                                last_error = format!("writing {}: {err}", path.display());
                            }
                        }
                    } else {
                        written = Some(String::new());
                    }
                    if let Some(d) = written {
                        let entry = manifest.entry_mut(&e.name, &e.file);
                        entry.status = Status::Done;
                        entry.digest = d;
                        entry.error.clear();
                        self.persist(manifest);
                        return Ok(());
                    }
                }
                Err(panic) => {
                    // `as_ref` to reach the payload; a plain `&panic`
                    // would coerce the Box itself into the `dyn Any`.
                    last_error = panic_message(panic.as_ref());
                }
            }

            let entry = manifest.entry_mut(&e.name, &e.file);
            entry.status = Status::Failed;
            entry.error = last_error.clone();
            self.persist(manifest);
            if attempt + 1 < self.max_attempts {
                let wait = Self::backoff(attempt);
                eprintln!(
                    "[{}] attempt {} failed ({last_error}); retrying in {wait:?}",
                    e.name,
                    attempt + 1
                );
                std::thread::sleep(wait);
            }
        }
        eprintln!(
            "[{}] giving up after {} attempt(s): {last_error}",
            e.name, self.max_attempts
        );
        Err(last_error)
    }
}

/// Extracts a readable message from a `catch_unwind` payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn table(marker: &str) -> Table {
        let mut t = Table::new("t", &["v"]);
        t.row(vec![marker.to_string()]);
        t
    }

    fn temp_out(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("plru-test-pipeline-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir.to_string_lossy().into_owned()
    }

    fn args(out: &str, resume: bool) -> Args {
        Args {
            out: Some(out.to_string()),
            resume,
            ..Args::default()
        }
    }

    #[test]
    fn fail_soft_continues_and_reports() {
        std::env::set_var(RETRY_BASE_MS_ENV, "0");
        let out = temp_out("failsoft");
        let experiments = vec![
            Experiment::new("ok-1", "ok1.csv", || table("one")),
            Experiment::new("bad", "bad.csv", || panic!("synthetic failure")),
            Experiment::new("ok-2", "ok2.csv", || table("two")),
        ];
        let report = Pipeline::new(&args(&out, false)).run(&experiments, "quick", "WI");
        assert_eq!(report.completed, vec!["ok-1", "ok-2"]);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].0, "bad");
        assert!(report.failed[0].1.contains("synthetic failure"));
        assert!(!report.all_ok());

        let m = Manifest::load(&PathBuf::from(&out).join("manifest.json")).unwrap();
        assert_eq!(m.entry("ok-1").unwrap().status, Status::Done);
        assert_eq!(m.entry("bad").unwrap().status, Status::Failed);
        assert_eq!(m.entry("bad").unwrap().attempts, DEFAULT_MAX_ATTEMPTS);
        assert!(m.entry("bad").unwrap().error.contains("synthetic failure"));
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        std::env::set_var(RETRY_BASE_MS_ENV, "0");
        let out = temp_out("retry");
        let calls = Arc::new(AtomicUsize::new(0));
        let c = calls.clone();
        let experiments = vec![Experiment::new("flaky", "flaky.csv", move || {
            if c.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            table("finally")
        })];
        let report = Pipeline::new(&args(&out, false)).run(&experiments, "quick", "WI");
        assert!(report.all_ok());
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        let m = Manifest::load(&PathBuf::from(&out).join("manifest.json")).unwrap();
        assert_eq!(m.entry("flaky").unwrap().status, Status::Done);
        assert_eq!(m.entry("flaky").unwrap().attempts, 3);
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn resume_skips_verified_done_and_reruns_tampered() {
        std::env::set_var(RETRY_BASE_MS_ENV, "0");
        let out = temp_out("resume");
        let runs = Arc::new(AtomicUsize::new(0));
        let make = |runs: &Arc<AtomicUsize>| {
            let r = runs.clone();
            vec![
                Experiment::new("a", "a.csv", {
                    let r = r.clone();
                    move || {
                        r.fetch_add(1, Ordering::SeqCst);
                        table("a")
                    }
                }),
                Experiment::new("b", "b.csv", {
                    let r = r.clone();
                    move || {
                        r.fetch_add(1, Ordering::SeqCst);
                        table("b")
                    }
                }),
            ]
        };
        let report = Pipeline::new(&args(&out, false)).run(&make(&runs), "quick", "WI");
        assert!(report.all_ok());
        assert_eq!(runs.load(Ordering::SeqCst), 2);

        // Resume: both verified done, nothing re-runs.
        let report = Pipeline::new(&args(&out, true)).run(&make(&runs), "quick", "WI");
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        assert_eq!(report.skipped, vec!["a", "b"]);

        // Tamper with one artifact: its digest no longer matches, so a
        // resume re-runs exactly that experiment.
        std::fs::write(PathBuf::from(&out).join("a.csv"), b"tampered").unwrap();
        let report = Pipeline::new(&args(&out, true)).run(&make(&runs), "quick", "WI");
        assert_eq!(runs.load(Ordering::SeqCst), 3);
        assert_eq!(report.skipped, vec!["b"]);
        assert_eq!(report.completed, vec!["a"]);
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn resume_refuses_mismatched_inputs() {
        std::env::set_var(RETRY_BASE_MS_ENV, "0");
        let out = temp_out("mismatch");
        let runs = Arc::new(AtomicUsize::new(0));
        let make = |runs: &Arc<AtomicUsize>| {
            let r = runs.clone();
            vec![Experiment::new("a", "a.csv", move || {
                r.fetch_add(1, Ordering::SeqCst);
                table("a")
            })]
        };
        Pipeline::new(&args(&out, false)).run(&make(&runs), "quick", "WI");
        // Same experiments, different scale: the manifest must not be
        // trusted, so the experiment runs again.
        Pipeline::new(&args(&out, true)).run(&make(&runs), "medium", "WI");
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn only_filter_restricts_run() {
        std::env::set_var(RETRY_BASE_MS_ENV, "0");
        let out = temp_out("only");
        let runs = Arc::new(AtomicUsize::new(0));
        let r = runs.clone();
        let experiments = vec![
            Experiment::new("a", "a.csv", {
                let r = r.clone();
                move || {
                    r.fetch_add(1, Ordering::SeqCst);
                    table("a")
                }
            }),
            Experiment::new("b", "b.csv", {
                let r = r.clone();
                move || {
                    r.fetch_add(1, Ordering::SeqCst);
                    table("b")
                }
            }),
        ];
        let mut a = args(&out, false);
        a.only = vec!["b".to_string()];
        let report = Pipeline::new(&a).run(&experiments, "quick", "WI");
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!(report.completed, vec!["b"]);
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn injected_csv_fault_is_retried_and_recovers() {
        if !sim_fault::COMPILED_IN {
            return;
        }
        std::env::set_var(RETRY_BASE_MS_ENV, "0");
        let out = temp_out("faultcsv");
        let experiments = vec![Experiment::new("x", "x.csv", || table("x"))];
        // First CSV write tears; the retry succeeds.
        let report = sim_fault::with_plan("torn@x.csv:n=1", || {
            Pipeline::new(&args(&out, false)).run(&experiments, "quick", "WI")
        });
        assert!(report.all_ok(), "failed: {:?}", report.failed);
        let m = Manifest::load(&PathBuf::from(&out).join("manifest.json")).unwrap();
        assert_eq!(m.entry("x").unwrap().status, Status::Done);
        assert_eq!(m.entry("x").unwrap().attempts, 2);
        let text = std::fs::read_to_string(PathBuf::from(&out).join("x.csv")).unwrap();
        assert!(text.contains('x'));
        std::fs::remove_dir_all(&out).ok();
    }
}
