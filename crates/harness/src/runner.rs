//! Workload preparation and policy measurement — the machinery every
//! figure shares.

use crate::scale::Scale;
use crate::stats::weighted_mean;
use mem_model::cpi::WindowPerfModel;
use mem_model::{min_misses, replay_llc};
use sim_core::{Access, CacheGeometry, PolicyFactory};
use std::sync::Arc;
use traces::spec2006::Spec2006;

/// One captured simpoint of a benchmark.
#[derive(Debug, Clone)]
pub struct SimpointData {
    /// Simpoint weight within the benchmark.
    pub weight: f64,
    /// Captured LLC demand stream.
    pub stream: Arc<Vec<Access>>,
    /// Warm-up prefix length.
    pub warmup: usize,
}

/// A benchmark's captured simpoints plus its LRU baseline.
#[derive(Debug, Clone)]
pub struct WorkloadData {
    /// The benchmark.
    pub bench: Spec2006,
    /// Captured simpoints.
    pub simpoints: Vec<SimpointData>,
    /// LRU baseline, measured once.
    pub lru: PolicyMeasurement,
}

/// A policy's weighted measurement on one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyMeasurement {
    /// Weighted misses per kilo-instruction.
    pub mpki: f64,
    /// Weighted cycle estimate (window performance model).
    pub cycles: f64,
    /// Weighted raw miss count (for normalized-miss figures).
    pub misses: f64,
}

impl PolicyMeasurement {
    /// Speedup of this measurement relative to `baseline` (cycle ratio).
    pub fn speedup_over(&self, baseline: &PolicyMeasurement) -> f64 {
        if self.cycles <= 0.0 {
            1.0
        } else {
            baseline.cycles / self.cycles
        }
    }

    /// This measurement's misses normalized to `baseline`'s.
    pub fn normalized_misses(&self, baseline: &PolicyMeasurement) -> f64 {
        if baseline.misses <= 0.0 {
            1.0
        } else {
            self.misses / baseline.misses
        }
    }
}

/// Captures the LLC streams for `benches` at `scale` and measures the LRU
/// baseline. Benchmarks are processed in parallel on the shared worker
/// pool, and every capture goes through the process-wide
/// [`WorkloadCache`](crate::cache::WorkloadCache): repeated calls for the
/// same `(scale, bench)` pair — common inside `run-all`, where every
/// figure wants the full suite — reuse the first capture's streams
/// instead of re-simulating the L1/L2 hierarchy.
///
/// The returned `WorkloadData` values share their streams (`Arc`) with the
/// cache; cloning them is cheap. An empty `benches` slice returns an empty
/// vector.
pub fn prepare_workloads(scale: Scale, benches: &[Spec2006]) -> Vec<WorkloadData> {
    let cache = crate::cache::workload_cache();
    sim_core::pool::global().run(benches.len(), usize::MAX, |i| {
        cache.workload(scale, benches[i]).as_ref().clone()
    })
}

/// Measures `factory`'s policy on every simpoint of `workload`, weighting
/// results by simpoint weight (the paper's reporting convention).
pub fn measure_policy(
    workload: &WorkloadData,
    factory: &PolicyFactory,
    geom: CacheGeometry,
) -> PolicyMeasurement {
    let perf = WindowPerfModel::default();
    let mut mpki = Vec::new();
    let mut cycles = Vec::new();
    let mut misses = Vec::new();
    for sp in &workload.simpoints {
        let run = replay_llc(&sp.stream, geom, factory(&geom), sp.warmup, &perf);
        mpki.push((run.mpki(), sp.weight));
        cycles.push((run.cycles, sp.weight));
        misses.push((run.stats.misses as f64, sp.weight));
    }
    PolicyMeasurement {
        mpki: weighted_mean(&mpki, 0.0),
        cycles: weighted_mean(&cycles, 1.0),
        misses: weighted_mean(&misses, 0.0),
    }
}

/// Measures every policy in `factories` on `workload` with one sharded
/// single-pass replay per simpoint ([`mem_model::replay_many`]): the
/// stream is routed by set index once and the whole roster shares that
/// pre-pass, instead of re-deriving set/tag per policy. When routing
/// cannot fan out (single-core hosts) the engine skips it entirely and
/// each policy replays whole — bit-sliced where it provides a
/// `SliceKernel`, monomorphized otherwise. Results are in factory order
/// and bit-identical to calling [`measure_policy`] once per factory.
pub fn measure_policies(
    workload: &WorkloadData,
    factories: &[&PolicyFactory],
    geom: CacheGeometry,
) -> Vec<PolicyMeasurement> {
    let perf = WindowPerfModel::default();
    let mut mpki = vec![Vec::new(); factories.len()];
    let mut cycles = vec![Vec::new(); factories.len()];
    let mut misses = vec![Vec::new(); factories.len()];
    for sp in &workload.simpoints {
        let runs = mem_model::replay_many(&sp.stream, geom, factories, sp.warmup, &perf);
        for (i, run) in runs.iter().enumerate() {
            mpki[i].push((run.mpki(), sp.weight));
            cycles[i].push((run.cycles, sp.weight));
            misses[i].push((run.stats.misses as f64, sp.weight));
        }
    }
    (0..factories.len())
        .map(|i| PolicyMeasurement {
            mpki: weighted_mean(&mpki[i], 0.0),
            cycles: weighted_mean(&cycles[i], 1.0),
            misses: weighted_mean(&misses[i], 0.0),
        })
        .collect()
}

/// Measures Belady MIN (misses only — the paper does not define MIN
/// speedups under out-of-order execution, and neither do we).
pub fn measure_min(workload: &WorkloadData, geom: CacheGeometry) -> PolicyMeasurement {
    let mut misses = Vec::new();
    for sp in &workload.simpoints {
        let stats = min_misses(&sp.stream, geom, sp.warmup);
        misses.push((stats.misses as f64, sp.weight));
    }
    PolicyMeasurement {
        mpki: 0.0,
        cycles: f64::NAN,
        misses: weighted_mean(&misses, 0.0),
    }
}

/// Measures `factory` across many workloads in parallel, returning
/// measurements in workload order.
pub fn measure_policy_all(
    workloads: &[WorkloadData],
    factory: &PolicyFactory,
    geom: CacheGeometry,
) -> Vec<PolicyMeasurement> {
    sim_core::pool::global().run(workloads.len(), usize::MAX, |i| {
        measure_policy(&workloads[i], factory, geom)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies;

    fn quick_pair() -> (Vec<WorkloadData>, CacheGeometry) {
        let scale = Scale::Quick;
        let benches = [Spec2006::Libquantum, Spec2006::Gamess];
        (prepare_workloads(scale, &benches), scale.hierarchy().llc)
    }

    #[test]
    fn empty_bench_list_prepares_nothing() {
        // Regression: the old chunked implementation computed a chunk size
        // of zero for an empty slice and panicked in `chunks(0)`.
        let ws = prepare_workloads(Scale::Micro, &[]);
        assert!(ws.is_empty());
        let none = measure_policy_all(&ws, &policies::lru(), Scale::Micro.hierarchy().llc);
        assert!(none.is_empty());
    }

    #[test]
    fn prepare_gives_baseline_and_streams() {
        let (ws, _) = quick_pair();
        assert_eq!(ws.len(), 2);
        for w in &ws {
            assert_eq!(w.simpoints.len(), 1);
            assert!(!w.simpoints[0].stream.is_empty());
            assert!(w.lru.cycles > 0.0);
        }
    }

    #[test]
    fn lru_speedup_over_itself_is_one() {
        let (ws, geom) = quick_pair();
        for w in &ws {
            let again = measure_policy(w, &policies::lru(), geom);
            assert!((again.speedup_over(&w.lru) - 1.0).abs() < 1e-9);
            assert!((again.normalized_misses(&w.lru) - 1.0).abs() < 1e-9 || w.lru.misses == 0.0);
        }
    }

    #[test]
    fn min_never_exceeds_lru_misses() {
        let (ws, geom) = quick_pair();
        for w in &ws {
            let min = measure_min(w, geom);
            assert!(min.misses <= w.lru.misses + 1e-9, "{}", w.bench);
        }
    }

    #[test]
    fn parallel_measure_matches_sequential() {
        let (ws, geom) = quick_pair();
        let f = policies::drrip();
        let par = measure_policy_all(&ws, &f, geom);
        for (w, m) in ws.iter().zip(&par) {
            let seq = measure_policy(w, &f, geom);
            assert_eq!(*m, seq);
        }
    }

    #[test]
    fn batched_measure_matches_singles_exactly() {
        let (ws, geom) = quick_pair();
        let roster = [policies::lru(), policies::drrip(), policies::plru()];
        let refs: Vec<&PolicyFactory> = roster.iter().collect();
        for w in &ws {
            let batched = measure_policies(w, &refs, geom);
            for (f, b) in refs.iter().zip(&batched) {
                let single = measure_policy(w, f, geom);
                assert_eq!(*b, single, "{}", w.bench);
            }
        }
    }

    #[test]
    fn cache_resident_benchmark_is_policy_insensitive() {
        // 416.gamess fits in the LLC: every policy should produce roughly
        // LRU's misses (the paper: "for several benchmarks the optimal
        // policy performs no better than LRU").
        let (ws, geom) = quick_pair();
        let gamess = ws.iter().find(|w| w.bench == Spec2006::Gamess).unwrap();
        let drrip = measure_policy(gamess, &policies::drrip(), geom);
        let ratio = drrip.normalized_misses(&gamess.lru);
        assert!(
            (0.9..1.1).contains(&ratio),
            "gamess insensitive, got {ratio}"
        );
    }
}
