//! The serving-mode driver: one binary, three roles.
//!
//! * **Daemon** (default): bind the sim-serve daemon on `--listen`,
//!   optionally with crash-safe snapshots under `--snapshot-dir`, and run
//!   until killed. The bound port is published through `--port-file`
//!   (written atomically, so a watching client never reads a torn file).
//! * **Client** (`--client`): stream a deterministic access (or KV)
//!   workload into a tenant session and write the final canonical stats
//!   to `--out`. `--resume` continues a parked session after a crash,
//!   skipping whatever the daemon already ingested.
//! * **Reference** (`--reference`): compute the same tenant's stats
//!   in-process — no sockets — and write them to `--out`. A serving run
//!   is correct iff its client output is byte-identical to this.
//!
//! The chaos drill (`tests/serve.rs` and the CI `serve` job) SIGKILLs
//! clients and the daemon mid-stream and then diffs client output against
//! reference output byte for byte.
//!
//! Usage:
//!
//! ```text
//! serve [--listen 127.0.0.1:0] [--snapshot-dir DIR] [--port-file PATH]
//!       [--snapshot-every N] [--label NAME]
//! serve --client --connect ADDR --tenant NAME --accesses N --seed S
//!       [--batch B] [--slow-ms MS] [--kv] [--resume] [--delta-every N]
//!       [--out FILE]
//! serve --reference --accesses N --seed S [--kv] --out FILE
//! ```

use harness::pipeline::retry_backoff;
use harness::policies;
use sim_core::persist::atomic_write;
use sim_core::{Access, AccessKind};
use sim_serve::protocol::{ClientFrame, GeometrySpec, Hello, KvOp, ServerFrame};
use sim_serve::session::{canonical_stats, reference_delta, Roster};
use sim_serve::{Server, ServerConfig, PROTOCOL_VERSION};
use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

/// Serving geometry: deliberately small so CI drills replay quickly while
/// still exercising every policy's set/way logic.
fn spec() -> GeometrySpec {
    GeometrySpec {
        size_bytes: 256 * 1024,
        ways: 16,
        line_bytes: 64,
    }
}

/// The full serving roster: every baseline plus the paper's GIPPR
/// configurations. Daemon and `--reference` share this function, which is
/// what makes byte-for-byte comparison meaningful.
fn full_roster() -> Roster {
    let mut roster: Roster = policies::baseline_roster(0xC0FFEE)
        .into_iter()
        .map(|(n, f)| (n.to_string(), f))
        .collect();
    roster.push((
        "WI-GIPPR".to_string(),
        policies::gippr(gippr::vectors::wi_gippr(), "WI-GIPPR"),
    ));
    roster.push((
        "WN1-GIPPR".to_string(),
        policies::gippr(gippr::vectors::perlbench_wn1(), "WN1-GIPPR"),
    ));
    roster.push((
        "WI-4-DGIPPR".to_string(),
        policies::dgippr(gippr::vectors::wi_4dgippr().to_vec(), "WI-4-DGIPPR"),
    ));
    roster
}

/// Deterministic xorshift access stream shared by clients and references.
fn stream(n: usize, seed: u64) -> Vec<Access> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let addr = (state % 16384) * 64;
            let kind = match state % 5 {
                0 => AccessKind::Write,
                4 => AccessKind::Writeback,
                _ => AccessKind::Read,
            };
            Access {
                addr,
                pc: (i as u64) * 4,
                kind,
                icount_delta: (state % 7) as u32 + 1,
            }
        })
        .collect()
}

/// Deterministic KV workload: skewed key popularity, periodic writes.
fn kv_stream(n: usize, seed: u64) -> Vec<KvOp> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Zipf-ish: half the traffic on 16 hot keys, the rest spread.
            let key_id = if state % 2 == 0 {
                state % 16
            } else {
                state % 4096
            };
            KvOp {
                write: state % 10 == 0,
                key: format!("key:{key_id}"),
            }
        })
        .collect()
}

struct Cli {
    mode: Mode,
    listen: String,
    snapshot_dir: Option<PathBuf>,
    port_file: Option<PathBuf>,
    snapshot_every: u64,
    label: String,
    connect: Option<String>,
    tenant: String,
    accesses: usize,
    seed: u64,
    batch: usize,
    slow_ms: u64,
    kv: bool,
    resume: bool,
    delta_every: u64,
    out: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Mode {
    Daemon,
    Client,
    Reference,
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        mode: Mode::Daemon,
        listen: "127.0.0.1:0".to_string(),
        snapshot_dir: None,
        port_file: None,
        snapshot_every: 0,
        label: "serve".to_string(),
        connect: None,
        tenant: "default".to_string(),
        accesses: 1000,
        seed: 1,
        batch: 64,
        slow_ms: 0,
        kv: false,
        resume: false,
        delta_every: 0,
        out: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| {
                eprintln!("serve: {flag} needs a value");
                exit(2);
            })
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--client" => cli.mode = Mode::Client,
            "--reference" => cli.mode = Mode::Reference,
            "--listen" => cli.listen = value(&mut i, "--listen"),
            "--snapshot-dir" => cli.snapshot_dir = Some(value(&mut i, "--snapshot-dir").into()),
            "--port-file" => cli.port_file = Some(value(&mut i, "--port-file").into()),
            "--snapshot-every" => {
                cli.snapshot_every = value(&mut i, "--snapshot-every").parse().expect("number")
            }
            "--label" => cli.label = value(&mut i, "--label"),
            "--connect" => cli.connect = Some(value(&mut i, "--connect")),
            "--tenant" => cli.tenant = value(&mut i, "--tenant"),
            "--accesses" => cli.accesses = value(&mut i, "--accesses").parse().expect("number"),
            "--seed" => cli.seed = value(&mut i, "--seed").parse().expect("number"),
            "--batch" => cli.batch = value(&mut i, "--batch").parse().expect("number"),
            "--slow-ms" => cli.slow_ms = value(&mut i, "--slow-ms").parse().expect("number"),
            "--kv" => cli.kv = true,
            "--resume" => cli.resume = true,
            "--delta-every" => {
                cli.delta_every = value(&mut i, "--delta-every").parse().expect("number")
            }
            "--out" => cli.out = Some(value(&mut i, "--out").into()),
            other => {
                eprintln!("serve: unknown flag {other}");
                exit(2);
            }
        }
        i += 1;
    }
    cli
}

fn main() {
    let cli = parse_args();
    match cli.mode {
        Mode::Daemon => daemon(cli),
        Mode::Client => client(cli),
        Mode::Reference => reference(cli),
    }
}

fn daemon(cli: Cli) {
    let config = ServerConfig {
        label: cli.label.clone(),
        snapshot_dir: cli.snapshot_dir.clone(),
        backoff: retry_backoff,
        snapshot_every: cli.snapshot_every,
        ..ServerConfig::default()
    };
    let server = match Server::bind_tcp(&cli.listen, full_roster(), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {}: {e}", cli.listen);
            exit(1);
        }
    };
    let addr = server.local_addr().expect("tcp listener has an address");
    println!(
        "serve: listening on {addr} ({} sessions restored)",
        server.session_count()
    );
    if let Some(path) = &cli.port_file {
        // Atomic so a polling client never reads a half-written port.
        if let Err(e) = atomic_write(path, format!("{addr}\n").as_bytes()) {
            eprintln!("serve: cannot write port file {}: {e}", path.display());
            exit(1);
        }
    }
    // Serve until killed: the drill SIGKILLs this process mid-stream.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn client(cli: Cli) {
    let addr = cli.connect.clone().unwrap_or_else(|| {
        eprintln!("serve: --client needs --connect ADDR");
        exit(2);
    });
    let mut sock = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot connect {addr}: {e}");
            exit(1);
        }
    };
    sock.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    sock.set_nodelay(true).unwrap();

    sim_serve::protocol::send_client(
        &mut sock,
        &ClientFrame::Hello(Hello {
            version: PROTOCOL_VERSION,
            tenant: cli.tenant.clone(),
            resume: cli.resume,
            kv_mode: cli.kv,
            geometry: spec(),
            roster: Vec::new(),
            delta_every: cli.delta_every,
        }),
    )
    .expect("send hello");
    let resumed = match sim_serve::protocol::recv_server(&mut sock).expect("hello ack") {
        ServerFrame::HelloAck { resumed, .. } => resumed as usize,
        ServerFrame::Error { code, message } => {
            eprintln!("serve: session rejected ({code:?}): {message}");
            exit(1);
        }
        other => {
            eprintln!("serve: unexpected frame {other:?}");
            exit(1);
        }
    };
    if resumed > 0 {
        println!("serve: resuming after {resumed} ingested accesses");
    }

    if cli.kv {
        let ops = kv_stream(cli.accesses, cli.seed);
        for chunk in ops[resumed.min(ops.len())..].chunks(cli.batch.max(1)) {
            sim_serve::protocol::send_client(&mut sock, &ClientFrame::KvBatch(chunk.to_vec()))
                .expect("send kv batch");
            if cli.slow_ms > 0 {
                std::thread::sleep(Duration::from_millis(cli.slow_ms));
            }
        }
    } else {
        let accesses = stream(cli.accesses, cli.seed);
        for chunk in accesses[resumed.min(accesses.len())..].chunks(cli.batch.max(1)) {
            sim_serve::protocol::send_client(&mut sock, &ClientFrame::Accesses(chunk.to_vec()))
                .expect("send batch");
            if cli.slow_ms > 0 {
                std::thread::sleep(Duration::from_millis(cli.slow_ms));
            }
        }
    }
    sim_serve::protocol::send_client(&mut sock, &ClientFrame::Finish).expect("send finish");

    let mut throttled = 0u64;
    let fin = loop {
        match sim_serve::protocol::recv_server(&mut sock).expect("server frame") {
            ServerFrame::Delta(_) => {}
            ServerFrame::Throttled { coalesced } => throttled += coalesced,
            ServerFrame::Warning { code, message } => {
                eprintln!("serve: warning {code}: {message}");
            }
            ServerFrame::Final { delta, .. } => break delta,
            other => {
                eprintln!("serve: unexpected frame {other:?}");
                exit(1);
            }
        }
    };
    if throttled > 0 {
        println!("serve: {throttled} deltas were coalesced under backpressure");
    }
    // Best effort: a clean goodbye keeps the daemon's log quiet.
    let _ = sim_serve::protocol::send_client(&mut sock, &ClientFrame::Bye);
    let stats = canonical_stats(&fin);
    match &cli.out {
        Some(path) => atomic_write(path, stats.as_bytes()).expect("write stats"),
        None => {
            std::io::stdout().write_all(stats.as_bytes()).unwrap();
        }
    }
}

fn reference(cli: Cli) {
    let accesses = if cli.kv {
        kv_stream(cli.accesses, cli.seed)
            .iter()
            .map(|op| sim_serve::kv::op_to_access(op, u64::from(spec().line_bytes)))
            .collect()
    } else {
        stream(cli.accesses, cli.seed)
    };
    let delta = reference_delta(&accesses, &[], &full_roster(), spec()).expect("reference replay");
    let stats = canonical_stats(&delta);
    match &cli.out {
        Some(path) => atomic_write(path, stats.as_bytes()).expect("write stats"),
        None => {
            std::io::stdout().write_all(stats.as_bytes()).unwrap();
        }
    }
}
