//! Diagnostic: exact stack-distance profiles of the 29 synthetic SPEC
//! models — cold fraction and fully-associative LRU hit ratios at
//! fractions of the LLC capacity. This is the tool used to calibrate the
//! workload suite against the paper's qualitative descriptions.
//!
//! Usage: `analyze-workloads [--scale quick|medium|paper] [--out DIR]`

use harness::{Args, Table};
use mem_model::analysis::stack_distances;
use sim_core::Access;
use traces::spec2006::Spec2006;

fn main() {
    let Args { scale, out, .. } = Args::from_env();
    let llc_blocks = (scale.hierarchy().llc.size_bytes() / 64) as usize;
    let geom = scale.hierarchy().llc;

    let mut table = Table::new(
        &format!(
            "stack-distance profiles at {scale} scale (LLC = {llc_blocks} blocks); \
             hit ratios of fully-associative LRU at fractions of LLC capacity"
        ),
        &[
            "benchmark",
            "cold%",
            "hit@1/4",
            "hit@1/2",
            "hit@1x",
            "hit@2x",
        ],
    );
    for b in Spec2006::all() {
        let stream: Vec<Access> = b
            .workload()
            .scaled_down(scale.shift())
            .generator(0)
            .take(scale.accesses())
            .collect();
        let sd = stack_distances(&stream, geom, llc_blocks * 4);
        let total = sd.total().max(1) as f64;
        let hit = |cap: usize| format!("{:.3}", sd.lru_hits_at(cap) as f64 / total);
        table.row(vec![
            b.name().to_string(),
            format!("{:.1}", sd.cold as f64 * 100.0 / total),
            hit(llc_blocks / 4),
            hit(llc_blocks / 2),
            hit(llc_blocks),
            hit(llc_blocks * 2),
        ]);
    }
    println!("{table}");
    println!(
        "(hit@1x vs hit@2x separates 'fits' from 'thrash' models; a big jump between \
              them marks the capacity-sensitive benchmarks the paper's technique targets)"
    );
    if let Some(dir) = out {
        let path = format!("{dir}/workload-profiles.csv");
        table.write_csv(&path).expect("write CSV");
        println!("wrote {path}");
    }
}
