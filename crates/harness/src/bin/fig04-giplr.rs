//! Regenerates Figure 4: GIPLR / PseudoLRU / Random speedup over LRU.
//!
//! Usage: `fig04-giplr [--scale quick|medium|paper] [--out DIR]`

use harness::experiments::fig04;
use harness::Args;

fn main() {
    let Args { scale, out, .. } = Args::from_env();
    let table = fig04::run(scale);
    println!("{table}");
    println!("(paper: GIPLR geomean 1.031, Random 0.999, PseudoLRU about 1.0)");
    if let Some(dir) = out {
        let path = format!("{dir}/fig04.csv");
        table.write_csv(&path).expect("write CSV");
        println!("wrote {path}");
    }
}
