//! Regenerates Figure 11: normalized misses of DRRIP, PDP, and 4-vector
//! DGIPPR plus Belady MIN.
//!
//! Usage: `fig11-mpki-vs-others [--scale quick|medium|paper] [--wn1] [--out DIR]`

use harness::experiments::{fig11, VectorMode};
use harness::Args;

fn main() {
    let Args {
        scale, out, wn1, ..
    } = Args::from_env();
    let table = fig11::run(scale, VectorMode::from_flag(wn1));
    println!("{table}");
    println!("(paper geomeans: DRRIP 0.915, PDP 0.902, WN1-4-DGIPPR 0.910, MIN 0.675)");
    if let Some(dir) = out {
        let path = format!("{dir}/fig11.csv");
        table.write_csv(&path).expect("write CSV");
        println!("wrote {path}");
    }
}
