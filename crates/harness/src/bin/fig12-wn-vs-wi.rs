//! Regenerates Figure 12: workload-neutral vs workload-inclusive speedup.
//! This experiment runs the genetic algorithm (three WI configurations and
//! three 29-holdout WN1 sweeps), so it is the slowest figure.
//!
//! Usage: `fig12-wn-vs-wi [--scale quick|medium|paper] [--out DIR]`

use harness::experiments::fig12;
use harness::Args;

fn main() {
    let Args { scale, out, .. } = Args::from_env();
    let table = fig12::run(scale);
    println!("{table}");
    println!(
        "(paper geomeans: WN1 1.035/1.050/1.056 vs WI 1.037/1.051/1.057 for 1/2/4 vectors; \
              the WN-vs-WI gap is small)"
    );
    if let Some(dir) = out {
        let path = format!("{dir}/fig12.csv");
        table.write_csv(&path).expect("write CSV");
        println!("wrote {path}");
    }
}
