//! Regenerates Figure 10: normalized misses of the 1-, 2-, and 4-vector
//! GIPPR configurations plus Belady MIN.
//!
//! Usage: `fig10-mpki-gippr [--scale quick|medium|paper] [--wn1] [--out DIR]`
//!
//! Default uses the paper's published workload-inclusive vectors; `--wn1`
//! evolves workload-neutral vectors per holdout (slow).

use harness::experiments::{fig10, VectorMode};
use harness::Args;

fn main() {
    let Args {
        scale, out, wn1, ..
    } = Args::from_env();
    let table = fig10::run(scale, VectorMode::from_flag(wn1));
    println!("{table}");
    println!(
        "(paper geomeans: WN1-GIPPR 0.952, WN1-2-DGIPPR 0.965, WN1-4-DGIPPR 0.910, MIN 0.675)"
    );
    if let Some(dir) = out {
        let path = format!("{dir}/fig10.csv");
        table.write_csv(&path).expect("write CSV");
        println!("wrote {path}");
    }
}
