//! Regenerates Figure 1: random exploration of the IPV design space.
//!
//! Usage: `fig01-random-space [--scale quick|medium|paper] [--out DIR]`

use harness::experiments::fig01;
use harness::Args;

fn main() {
    let Args { scale, out, .. } = Args::from_env();
    let table = fig01::run(scale);
    let (worst, best, geomean, better) = fig01::summary(scale);
    println!("{table}");
    println!(
        "worst {worst:.3}x, best {best:.3}x, geomean {geomean:.3}x, {:.1}% of samples beat LRU",
        better * 100.0
    );
    println!(
        "(paper: random sampling ranges from significant slowdowns to ~1.028x, \
              with most samples inferior to LRU)"
    );
    if let Some(dir) = out {
        let path = format!("{dir}/fig01.csv");
        table.write_csv(&path).expect("write CSV");
        println!("wrote {path}");
    }
}
