//! Measures replay-engine throughput — the monomorphized engine against
//! the frozen seed (v0) dyn-dispatch engine, plus the sharded single-pass
//! batch engine — and emits `BENCH_replay.json`.
//!
//! Usage: `bench-replay [--scale micro|quick|medium|paper] [--json PATH]`
//!        `bench-replay --smoke`
//!
//! For each policy the same captured LLC stream is replayed through five
//! engines:
//!
//! * `seed` — [`harness::seed_replay::replay_llc_seed`], a verbatim copy
//!   of the v0 engine (boxed policy, early-exit double scan). This is the
//!   denominator of `speedup`, so the number tracks total engine progress
//!   across PRs.
//! * `dyn` — [`mem_model::replay_llc`], today's engine driving a
//!   `Box<dyn ReplacementPolicy>` (the `PolicyFactory` compatibility path).
//! * `mono` — [`mem_model::replay_llc_mono`] at the concrete policy type
//!   (the GA fitness fast path; no virtual dispatch).
//! * `sharded` — [`mem_model::replay_many_sharded`], the set-sharded
//!   batch engine replaying (policy × shard) units on the worker pool.
//!   Only set-local policies have a sharded engine: the batch dispatcher
//!   routes global-state rosters (DRRIP, DGIPPR) straight to the
//!   whole-stream path with no routing pre-pass, so their row reports
//!   the mono rate (`sharded_speedup` exactly 1.0 by construction)
//!   rather than timing a phantom engine.
//! * `slice` — [`mem_model::replay_llc_sliced`], the bit-sliced kernel
//!   engine (4 PLRU trees per `u64`, SWAR stacks/RRPV arrays). Only
//!   policies that describe themselves as a [`sim_core::SliceKernel`]
//!   have this column; global-state policies report `null`.
//!
//! The roster is also replayed as one [`mem_model::replay_many`] batch —
//! routing pre-pass included in the timed region — reported as the
//! aggregate `batched_accesses_per_sec`.
//!
//! Reported rates are accesses per second over the best of several timed
//! repetitions. `--smoke` skips capture and timing sweeps: it replays a
//! tiny synthetic stream, asserts the batch engine matches the sequential
//! engine stat-for-stat across the roster, and applies a generous
//! throughput floor — a CI-speed guard that the fast path stays both
//! correct and fast-ish.

use baselines::{DrripPolicy, TrueLru};
use gippr::{DgipprPolicy, GipprPolicy, PlruPolicy};
use harness::seed_replay::replay_llc_seed;
use harness::{policies, Scale};
use mem_model::cpi::WindowPerfModel;
use mem_model::{replay_llc, replay_llc_mono, replay_many, replay_many_sharded, LlcRunResult};
use sim_core::{
    Access, CacheGeometry, PolicyFactory, ReplacementPolicy, ShardAffinity, ShardedStream,
    SliceKernel,
};
use std::time::Instant;
use traces::spec2006::Spec2006;

/// Timed rounds per measurement; each round runs every engine once
/// (interleaved, so background noise lands on all engines alike) and the
/// fastest round per engine is reported.
const ROUNDS: usize = 9;

fn timed<F: FnOnce() -> LlcRunResult>(run: F) -> (f64, u64) {
    let start = Instant::now();
    let result = run();
    (start.elapsed().as_secs_f64(), result.stats.misses)
}

struct Row {
    name: &'static str,
    seed_rate: f64,
    dyn_rate: f64,
    mono_rate: f64,
    sharded_rate: f64,
    /// Bit-sliced engine rate; `None` for policies without a `SliceKernel`.
    slice_rate: Option<f64>,
    /// Sets packed per state word by the policy's kernel (`None` without one).
    lanes: Option<usize>,
    /// Why `lanes` is what it is — carried in the JSON so a reader does
    /// not mistake the stack kernel's genuine `lanes: 1` for a packing
    /// regression.
    lanes_reason: Option<&'static str>,
}

/// Human-readable justification for a kernel's lane count. The PLRU
/// family is the bit-slicing headline (`64 / ways` trees per word); the
/// nibble-vector kernels fill the whole word with a single 16-entry
/// structure, so one lane is correct, not a bug.
fn lanes_reason(kernel: &SliceKernel) -> &'static str {
    match kernel {
        SliceKernel::PlruIpv { .. } => "plru family packs 64/ways tree lanes per u64 word",
        SliceKernel::StackIpv { .. } => {
            "nibble recency stack fills the u64 word with one set; one lane is correct"
        }
        SliceKernel::RripIpv { .. } => {
            "nibble rrpv array fills the u64 word with one set; one lane is correct"
        }
    }
}

impl Row {
    /// The tracked number: monomorphized engine over the seed engine.
    fn speedup(&self) -> f64 {
        self.mono_rate / self.seed_rate
    }

    /// The sharded batch engine over the mono engine.
    fn sharded_speedup(&self) -> f64 {
        self.sharded_rate / self.mono_rate
    }

    /// The bit-sliced engine over the mono engine (this PR's number).
    fn slice_speedup(&self) -> Option<f64> {
        self.slice_rate.map(|s| s / self.mono_rate)
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = values.fold((0.0, 0usize), |(s, n), v| (s + v.ln(), n + 1));
    (sum / n.max(1) as f64).exp()
}

/// Compile-time SIMD/bit-manipulation features the binary was built with —
/// recorded as provenance so rates in `BENCH_replay.json` are comparable
/// across hosts (a `target-cpu=native` build on an AVX2 host is not the
/// same benchmark as a baseline x86-64 build).
fn target_features() -> Vec<&'static str> {
    let mut features = Vec::new();
    if cfg!(target_feature = "sse2") {
        features.push("sse2");
    }
    if cfg!(target_feature = "sse4.2") {
        features.push("sse4.2");
    }
    if cfg!(target_feature = "avx") {
        features.push("avx");
    }
    if cfg!(target_feature = "avx2") {
        features.push("avx2");
    }
    if cfg!(target_feature = "avx512f") {
        features.push("avx512f");
    }
    if cfg!(target_feature = "popcnt") {
        features.push("popcnt");
    }
    if cfg!(target_feature = "bmi1") {
        features.push("bmi1");
    }
    if cfg!(target_feature = "bmi2") {
        features.push("bmi2");
    }
    if cfg!(target_feature = "neon") {
        features.push("neon");
    }
    features
}

fn measure<P, M>(
    name: &'static str,
    stream: &[Access],
    sharded: &ShardedStream,
    geom: CacheGeometry,
    warmup: usize,
    factory: &PolicyFactory,
    make_mono: M,
) -> Row
where
    P: ReplacementPolicy,
    M: Fn(&CacheGeometry) -> P,
{
    // `black_box` stops LTO from tracing the boxed policy back to its
    // concrete type and devirtualizing the dyn paths — in real sweeps the
    // factory is picked from a runtime table, so that optimization is not
    // available. The mono policy is boxed-in-value only: its concrete
    // type (and thus inlining) is unaffected.
    let perf = WindowPerfModel::default();
    let probe = factory(&geom);
    let kernel = probe.slice_kernel();
    let set_local = probe.shard_affinity() == ShardAffinity::SetLocal;
    let (mut seed_best, mut dyn_best, mut mono_best, mut sharded_best, mut slice_best) = (
        f64::INFINITY,
        f64::INFINITY,
        f64::INFINITY,
        f64::INFINITY,
        f64::INFINITY,
    );
    for _ in 0..ROUNDS {
        let (t, seed_misses) = timed(|| {
            replay_llc_seed(
                stream,
                geom,
                std::hint::black_box(factory(&geom)),
                warmup,
                &perf,
            )
        });
        seed_best = seed_best.min(t);
        let (t, dyn_misses) = timed(|| {
            replay_llc(
                stream,
                geom,
                std::hint::black_box(factory(&geom)),
                warmup,
                &perf,
            )
        });
        dyn_best = dyn_best.min(t);
        let (t, mono_misses) = timed(|| {
            replay_llc_mono(
                stream,
                geom,
                std::hint::black_box(make_mono(&geom)),
                warmup,
                &perf,
            )
        });
        mono_best = mono_best.min(t);
        // Per-policy sharded rate, set-local policies only: they reuse
        // the roster's routing pre-pass (its one-off cost is charged to
        // the aggregate batch measurement below, where it is actually
        // paid once per roster). Global-affinity policies never reach a
        // sharded engine — the dispatcher sends them down the very
        // whole-stream path the mono column already times — so their
        // sharded column reuses the mono timing after the loop.
        if set_local {
            let start = Instant::now();
            let out = replay_many_sharded(stream, sharded, &[std::hint::black_box(factory)], &perf);
            sharded_best = sharded_best.min(start.elapsed().as_secs_f64());
            assert_eq!(
                mono_misses, out[0].stats.misses,
                "{name}: sharded engine must agree before being compared"
            );
        }
        assert_eq!(
            seed_misses, dyn_misses,
            "{name}: engines must agree before being compared"
        );
        assert_eq!(
            dyn_misses, mono_misses,
            "{name}: paths must agree before being compared"
        );
        if let Some(k) = &kernel {
            let (t, slice_misses) = timed(|| {
                mem_model::replay_llc_sliced(stream, geom, std::hint::black_box(k), warmup, &perf)
                    .expect("qualifying kernels support the bench geometry")
            });
            slice_best = slice_best.min(t);
            assert_eq!(
                mono_misses, slice_misses,
                "{name}: bit-sliced engine must agree before being compared"
            );
        }
    }
    if !set_local {
        sharded_best = mono_best;
    }
    let rate = |best: f64| stream.len() as f64 / best.max(1e-12);
    Row {
        name,
        seed_rate: rate(seed_best),
        dyn_rate: rate(dyn_best),
        mono_rate: rate(mono_best),
        sharded_rate: rate(sharded_best),
        slice_rate: kernel.as_ref().map(|_| rate(slice_best)),
        lanes: kernel.as_ref().map(|k| k.lanes(geom.ways())),
        lanes_reason: kernel.as_ref().map(lanes_reason),
    }
}

/// Builds the 5-policy benchmark roster as dyn factories.
fn roster() -> Vec<(&'static str, PolicyFactory)> {
    let quad = gippr::vectors::wi_4dgippr().to_vec();
    vec![
        ("LRU", policies::lru()),
        ("PseudoLRU", policies::plru()),
        (
            "WI-GIPPR",
            policies::gippr(gippr::vectors::wi_gippr(), "WI-GIPPR"),
        ),
        ("WI-4-DGIPPR", policies::dgippr(quad, "WI-4-DGIPPR")),
        ("DRRIP", policies::drrip()),
    ]
}

/// `--smoke`: a fast correctness-plus-sanity gate for CI. Replays a tiny
/// synthetic stream through `replay_many`, a pinned 8-shard batch, the
/// bit-sliced engine (for every kernel-carrying policy), and the
/// sequential engine for the whole roster, asserting exact result
/// equality, then checks the batch engine clears a deliberately generous
/// throughput floor.
fn smoke() {
    let geom = Scale::Micro.hierarchy().llc;
    let perf = WindowPerfModel::default();
    // A mixed hot/scan stream over 4x the cache's block capacity.
    let blocks = (geom.sets() * geom.ways() * 4) as u64;
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let stream: Vec<Access> = (0..40_000usize)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let block = if i % 4 == 0 {
                state % (blocks / 8).max(1)
            } else {
                state % blocks
            };
            let addr = block * geom.line_bytes();
            let a = if state & 3 == 0 {
                Access::write(addr, state % 512)
            } else {
                Access::read(addr, state % 512)
            };
            a.with_icount_delta((state % 9) as u32 + 1)
        })
        .collect();
    let warmup = mem_model::llc::default_warmup(stream.len());
    let named = roster();
    let refs: Vec<&PolicyFactory> = named.iter().map(|(_, f)| f).collect();

    let start = Instant::now();
    let batched = replay_many(&stream, geom, &refs, warmup, &perf);
    let elapsed = start.elapsed().as_secs_f64();

    // A pinned 8-shard routing exercises the shard-and-merge path even on
    // hosts whose worker budget degenerates the default routing to one
    // shard (where replay_many falls back to sequential replays).
    let pinned = ShardedStream::build(&stream, &geom, warmup, 8);
    let batched_pinned = replay_many_sharded(&stream, &pinned, &refs, &perf);
    let mut sliced_checked = 0;
    for (((name, factory), got), got_pinned) in named.iter().zip(&batched).zip(&batched_pinned) {
        let want = replay_llc(&stream, geom, factory(&geom), warmup, &perf);
        assert_eq!(
            *got, want,
            "{name}: sharded batch result diverged from sequential replay"
        );
        assert_eq!(
            *got_pinned, want,
            "{name}: 8-shard batch result diverged from sequential replay"
        );
        // Pinned bit-identity for the sliced engine: every policy that
        // advertises a kernel must reproduce the sequential result exactly.
        if let Some(kernel) = factory(&geom).slice_kernel() {
            let sliced = mem_model::replay_llc_sliced(&stream, geom, &kernel, warmup, &perf)
                .expect("smoke geometry is a supported associativity");
            assert_eq!(
                sliced, want,
                "{name}: bit-sliced result diverged from sequential replay"
            );
            sliced_checked += 1;
        }
    }
    // LRU, PseudoLRU, and WI-GIPPR carry kernels in this roster.
    assert!(
        sliced_checked >= 3,
        "expected >=3 sliced-kernel policies in the smoke roster, got {sliced_checked}"
    );
    // Lane accounting is part of the reported schema. Pin it here so a
    // future kernel change cannot silently alter the packing story: the
    // LRU row's `lanes: 1` is genuinely correct — its stack kernel fills
    // the whole u64 word with one 16-entry nibble stack — while the PLRU
    // family packs `64 / ways` tree lanes per word.
    for (name, factory) in &named {
        let Some(kernel) = factory(&geom).slice_kernel() else {
            continue;
        };
        let lanes = kernel.lanes(geom.ways());
        let reason = lanes_reason(&kernel);
        match kernel {
            SliceKernel::PlruIpv { .. } => {
                assert_eq!(lanes, 64 / geom.ways(), "{name}: plru lane packing");
                assert!(reason.contains("64/ways"), "{name}: {reason}");
            }
            SliceKernel::StackIpv { .. } | SliceKernel::RripIpv { .. } => {
                assert_eq!(lanes, 1, "{name}: nibble-vector kernels are single-lane");
                assert!(reason.contains("one lane is correct"), "{name}: {reason}");
            }
        }
    }
    let lru_kernel = policies::lru()(&geom)
        .slice_kernel()
        .expect("LRU advertises its stack kernel");
    assert_eq!(
        lru_kernel.lanes(geom.ways()),
        1,
        "LRU lanes: a 16-entry stack fills the word; 1 lane is the documented truth"
    );
    let rate = (stream.len() * refs.len()) as f64 / elapsed.max(1e-12);
    // Floor is ~100x below a release-build single-core replay rate: it
    // only trips on catastrophic regressions (accidental debug logic,
    // quadratic routing), not on runner noise.
    assert!(
        rate > 1.0e6,
        "batched throughput sanity floor: {rate:.0} accesses/sec"
    );
    smoke_sharded_speedup(geom, &perf);
    println!(
        "smoke OK: {} policies x {} accesses, batch == sequential, \
         {sliced_checked} sliced kernels bit-identical, {:.1}M acc/s aggregate",
        refs.len(),
        stream.len(),
        rate / 1.0e6
    );
}

/// On a multi-core host, the sharded batch engine must actually beat the
/// sequential mono engine for at least one set-local policy — the whole
/// point of sharding. Single-core hosts (and hosts whose worker budget
/// degenerates the routing to one shard) skip the assertion: there is no
/// parallelism to validate there, and CI provides the >1-core runner.
fn smoke_sharded_speedup(geom: CacheGeometry, perf: &WindowPerfModel) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // A longer stream than the correctness smoke: the speedup check needs
    // the per-shard work to dominate pool dispatch overhead.
    let blocks = (geom.sets() * geom.ways() * 4) as u64;
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let stream: Vec<Access> = (0..800_000usize)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Access::read((state % blocks) * geom.line_bytes(), state % 512)
                .with_icount_delta((state % 9) as u32 + 1)
        })
        .collect();
    let warmup = mem_model::llc::default_warmup(stream.len());
    let sharded =
        ShardedStream::for_parallelism(&stream, &geom, warmup, sim_core::pool::global().cap());
    if cores < 2 || sharded.shards() < 2 {
        println!(
            "smoke: sharded>mono speedup check skipped ({cores} core(s), {} shard(s))",
            sharded.shards()
        );
        return;
    }
    #[allow(clippy::too_many_arguments)]
    fn speedup_of<P, M>(
        name: &str,
        stream: &[Access],
        sharded: &ShardedStream,
        geom: CacheGeometry,
        warmup: usize,
        factory: &PolicyFactory,
        make_mono: M,
        perf: &WindowPerfModel,
    ) -> f64
    where
        P: ReplacementPolicy,
        M: Fn(&CacheGeometry) -> P,
    {
        assert_eq!(
            factory(&geom).shard_affinity(),
            ShardAffinity::SetLocal,
            "{name}: the speedup check only makes sense for set-local policies"
        );
        let (mut mono_best, mut sharded_best) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..5 {
            let start = Instant::now();
            let mono = replay_llc_mono(
                stream,
                geom,
                std::hint::black_box(make_mono(&geom)),
                warmup,
                perf,
            );
            mono_best = mono_best.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            let out = replay_many_sharded(stream, sharded, &[std::hint::black_box(factory)], perf);
            sharded_best = sharded_best.min(start.elapsed().as_secs_f64());
            assert_eq!(
                mono.stats.misses, out[0].stats.misses,
                "{name}: engines agree"
            );
        }
        mono_best / sharded_best.max(1e-12)
    }

    let results = [
        (
            "PseudoLRU",
            speedup_of(
                "PseudoLRU",
                &stream,
                &sharded,
                geom,
                warmup,
                &policies::plru(),
                PlruPolicy::new,
                perf,
            ),
        ),
        (
            "WI-GIPPR",
            speedup_of(
                "WI-GIPPR",
                &stream,
                &sharded,
                geom,
                warmup,
                &policies::gippr(gippr::vectors::wi_gippr(), "WI-GIPPR"),
                |g| {
                    GipprPolicy::with_name(g, gippr::vectors::wi_gippr(), "WI-GIPPR")
                        .expect("assoc matches")
                },
                perf,
            ),
        ),
    ];
    for (name, speedup) in &results {
        println!(
            "smoke: {name} sharded/mono speedup {speedup:.2}x ({} shards on {cores} cores)",
            sharded.shards()
        );
    }
    let best = results
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("two candidates");
    assert!(
        best.1 > 1.0,
        "on a {cores}-core host the sharded engine must beat the mono engine \
         for at least one set-local policy; best was {} at {:.2}x",
        best.0,
        best.1
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut json_path = "BENCH_replay.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(args.get(i).map(String::as_str).unwrap_or(""))
                    .expect("--scale micro|quick|medium|paper");
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned().expect("--json PATH");
            }
            "--smoke" => {
                smoke();
                return;
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    // One representative stream: a thrash-heavy benchmark keeps the
    // replacement policy busy (every access updates policy state; misses
    // exercise victim selection).
    let bench = Spec2006::Libquantum;
    let workload = harness::workload_cache().workload(scale, bench);
    let stream: Vec<Access> = workload
        .simpoints
        .iter()
        .flat_map(|sp| sp.stream.iter().copied())
        .collect();
    let geom = scale.hierarchy().llc;
    let warmup = mem_model::llc::default_warmup(stream.len());
    let leaders = policies::leaders_for(&geom);
    let sharded =
        ShardedStream::for_parallelism(&stream, &geom, warmup, sim_core::pool::global().cap());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "replaying {} LLC accesses ({bench}, {scale} scale, {} sets x {} ways, \
         {} shards on {cores} core(s))",
        stream.len(),
        geom.sets(),
        geom.ways(),
        sharded.shards()
    );

    let quad = gippr::vectors::wi_4dgippr().to_vec();
    let rows = vec![
        measure(
            "LRU",
            &stream,
            &sharded,
            geom,
            warmup,
            &policies::lru(),
            TrueLru::new,
        ),
        measure(
            "PseudoLRU",
            &stream,
            &sharded,
            geom,
            warmup,
            &policies::plru(),
            PlruPolicy::new,
        ),
        measure(
            "WI-GIPPR",
            &stream,
            &sharded,
            geom,
            warmup,
            &policies::gippr(gippr::vectors::wi_gippr(), "WI-GIPPR"),
            |g| {
                GipprPolicy::with_name(g, gippr::vectors::wi_gippr(), "WI-GIPPR")
                    .expect("assoc matches")
            },
        ),
        measure(
            "WI-4-DGIPPR",
            &stream,
            &sharded,
            geom,
            warmup,
            &policies::dgippr(quad.clone(), "WI-4-DGIPPR"),
            |g| {
                DgipprPolicy::with_config(g, quad.clone(), leaders, "WI-4-DGIPPR")
                    .expect("valid config")
            },
        ),
        measure(
            "DRRIP",
            &stream,
            &sharded,
            geom,
            warmup,
            &policies::drrip(),
            |g| DrripPolicy::with_config(g, leaders, 10).expect("geometry fits DRRIP"),
        ),
    ];

    // The aggregate batch: the whole roster through one `replay_many` per
    // round, routing pre-pass inside the timed region — the shape the
    // figure harness actually runs.
    let named = roster();
    let refs: Vec<&PolicyFactory> = named.iter().map(|(_, f)| f).collect();
    let perf = WindowPerfModel::default();
    let mut batched_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        let out = replay_many(&stream, geom, &refs, warmup, &perf);
        batched_best = batched_best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    let batched_rate = (stream.len() * refs.len()) as f64 / batched_best.max(1e-12);

    let mono_geomean = geomean(rows.iter().map(Row::speedup));
    let sharded_geomean = geomean(rows.iter().map(Row::sharded_speedup));
    let slice_geomean = geomean(rows.iter().filter_map(Row::slice_speedup));
    // The aggregate row: geomean accesses/sec per engine column, the
    // one-line per-engine summary a reader (or a regression diff) wants
    // before the per-policy detail. `slice` covers the kernel-carrying
    // subset of the roster only.
    let geomean_seed_rate = geomean(rows.iter().map(|r| r.seed_rate));
    let geomean_dyn_rate = geomean(rows.iter().map(|r| r.dyn_rate));
    let geomean_mono_rate = geomean(rows.iter().map(|r| r.mono_rate));
    let geomean_sharded_rate = geomean(rows.iter().map(|r| r.sharded_rate));
    let geomean_slice_rate = if rows.iter().any(|r| r.slice_rate.is_some()) {
        Some(geomean(rows.iter().filter_map(|r| r.slice_rate)))
    } else {
        None
    };
    for r in &rows {
        let slice_col = match (r.slice_rate, r.slice_speedup()) {
            (Some(rate), Some(x)) => format!("slice {rate:>11.0} acc/s ({x:.2}x)"),
            _ => format!("slice {:>11} (no kernel)", "-"),
        };
        println!(
            "  {:<12} seed {:>11.0} acc/s   dyn {:>11.0} acc/s   mono {:>11.0} acc/s   \
             sharded {:>11.0} acc/s   {slice_col}   mono/seed {:.2}x   sharded/mono {:.2}x",
            r.name,
            r.seed_rate,
            r.dyn_rate,
            r.mono_rate,
            r.sharded_rate,
            r.speedup(),
            r.sharded_speedup()
        );
    }
    println!(
        "  geomean rates: seed {geomean_seed_rate:.0}  dyn {geomean_dyn_rate:.0}  \
         mono {geomean_mono_rate:.0}  sharded {geomean_sharded_rate:.0}  slice {} acc/s",
        geomean_slice_rate.map_or("n/a".to_string(), |r| format!("{r:.0}"))
    );
    println!("  geomean speedup (mono over seed engine): {mono_geomean:.2}x");
    println!("  geomean speedup (sharded over mono engine): {sharded_geomean:.2}x");
    println!("  geomean speedup (sliced over mono engine, qualifying roster): {slice_geomean:.2}x");
    println!(
        "  aggregate batched roster rate (routing included): {:.0} acc/s",
        batched_rate
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    json.push_str(&format!("  \"benchmark\": \"{bench}\",\n"));
    json.push_str(&format!("  \"stream_accesses\": {},\n", stream.len()));
    json.push_str(&format!("  \"shards\": {},\n", sharded.shards()));
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!(
        "  \"host\": {{\"cores\": {cores}, \"target_arch\": \"{}\", \"target_features\": [{}]}},\n",
        std::env::consts::ARCH,
        target_features()
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"baseline\": \"seed (v0) dyn-dispatch replay engine\",\n");
    json.push_str("  \"policies\": [\n");
    let opt_num = |v: Option<f64>, digits: usize| match v {
        Some(x) => format!("{x:.digits$}"),
        None => "null".to_string(),
    };
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"seed_accesses_per_sec\": {:.0}, \
             \"dyn_accesses_per_sec\": {:.0}, \"mono_accesses_per_sec\": {:.0}, \
             \"sharded_accesses_per_sec\": {:.0}, \"slice_accesses_per_sec\": {}, \
             \"lanes\": {}, \"lanes_reason\": {}, \"speedup\": {:.4}, \
             \"sharded_speedup\": {:.4}, \"slice_speedup\": {}}}{}\n",
            r.name,
            r.seed_rate,
            r.dyn_rate,
            r.mono_rate,
            r.sharded_rate,
            opt_num(r.slice_rate, 0),
            r.lanes.map_or("null".to_string(), |l| l.to_string()),
            r.lanes_reason
                .map_or("null".to_string(), |s| format!("\"{s}\"")),
            r.speedup(),
            r.sharded_speedup(),
            opt_num(r.slice_speedup(), 4),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"geomean_rates\": {{\"seed_accesses_per_sec\": {geomean_seed_rate:.0}, \
         \"dyn_accesses_per_sec\": {geomean_dyn_rate:.0}, \
         \"mono_accesses_per_sec\": {geomean_mono_rate:.0}, \
         \"sharded_accesses_per_sec\": {geomean_sharded_rate:.0}, \
         \"slice_accesses_per_sec\": {}}},\n",
        opt_num(geomean_slice_rate, 0)
    ));
    json.push_str(&format!(
        "  \"batched_accesses_per_sec\": {batched_rate:.0},\n"
    ));
    json.push_str(&format!("  \"geomean_speedup\": {mono_geomean:.4},\n"));
    json.push_str(&format!(
        "  \"geomean_sharded_speedup\": {sharded_geomean:.4},\n"
    ));
    json.push_str(&format!(
        "  \"geomean_slice_speedup\": {slice_geomean:.4}\n"
    ));
    json.push_str("}\n");
    sim_core::persist::atomic_write(std::path::Path::new(&json_path), json.as_bytes())
        .expect("write json output");
    println!("wrote {json_path}");
}
