//! Measures replay-engine throughput — the monomorphized engine against
//! the frozen seed (v0) dyn-dispatch engine — and emits `BENCH_replay.json`.
//!
//! Usage: `bench-replay [--scale micro|quick|medium|paper] [--json PATH]`
//!
//! For each policy the same captured LLC stream is replayed through three
//! engines:
//!
//! * `seed` — [`harness::seed_replay::replay_llc_seed`], a verbatim copy
//!   of the v0 engine (boxed policy, early-exit double scan). This is the
//!   denominator of `speedup`, so the number tracks total engine progress
//!   across PRs.
//! * `dyn` — [`mem_model::replay_llc`], today's engine driving a
//!   `Box<dyn ReplacementPolicy>` (the `PolicyFactory` compatibility path).
//! * `mono` — [`mem_model::replay_llc_mono`] at the concrete policy type
//!   (the GA fitness fast path; no virtual dispatch).
//!
//! Reported rates are accesses per second over the best of several timed
//! repetitions.

use baselines::{DrripPolicy, TrueLru};
use gippr::{DgipprPolicy, GipprPolicy, PlruPolicy};
use harness::seed_replay::replay_llc_seed;
use harness::{policies, Scale};
use mem_model::cpi::WindowPerfModel;
use mem_model::{replay_llc, replay_llc_mono, LlcRunResult};
use sim_core::{Access, CacheGeometry, PolicyFactory, ReplacementPolicy};
use std::io::Write;
use std::time::Instant;
use traces::spec2006::Spec2006;

/// Timed rounds per measurement; each round runs every engine once
/// (interleaved, so background noise lands on all engines alike) and the
/// fastest round per engine is reported.
const ROUNDS: usize = 9;

fn timed<F: FnOnce() -> LlcRunResult>(run: F) -> (f64, u64) {
    let start = Instant::now();
    let result = run();
    (start.elapsed().as_secs_f64(), result.stats.misses)
}

struct Row {
    name: &'static str,
    seed_rate: f64,
    dyn_rate: f64,
    mono_rate: f64,
}

impl Row {
    /// The tracked number: monomorphized engine over the seed engine.
    fn speedup(&self) -> f64 {
        self.mono_rate / self.seed_rate
    }
}

fn measure<P, M>(
    name: &'static str,
    stream: &[Access],
    geom: CacheGeometry,
    warmup: usize,
    factory: &PolicyFactory,
    make_mono: M,
) -> Row
where
    P: ReplacementPolicy,
    M: Fn(&CacheGeometry) -> P,
{
    // `black_box` stops LTO from tracing the boxed policy back to its
    // concrete type and devirtualizing the dyn paths — in real sweeps the
    // factory is picked from a runtime table, so that optimization is not
    // available. The mono policy is boxed-in-value only: its concrete
    // type (and thus inlining) is unaffected.
    let perf = WindowPerfModel::default();
    let (mut seed_best, mut dyn_best, mut mono_best) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        let (t, seed_misses) = timed(|| {
            replay_llc_seed(
                stream,
                geom,
                std::hint::black_box(factory(&geom)),
                warmup,
                &perf,
            )
        });
        seed_best = seed_best.min(t);
        let (t, dyn_misses) = timed(|| {
            replay_llc(
                stream,
                geom,
                std::hint::black_box(factory(&geom)),
                warmup,
                &perf,
            )
        });
        dyn_best = dyn_best.min(t);
        let (t, mono_misses) = timed(|| {
            replay_llc_mono(
                stream,
                geom,
                std::hint::black_box(make_mono(&geom)),
                warmup,
                &perf,
            )
        });
        mono_best = mono_best.min(t);
        assert_eq!(
            seed_misses, dyn_misses,
            "{name}: engines must agree before being compared"
        );
        assert_eq!(
            dyn_misses, mono_misses,
            "{name}: paths must agree before being compared"
        );
    }
    let rate = |best: f64| stream.len() as f64 / best.max(1e-12);
    Row {
        name,
        seed_rate: rate(seed_best),
        dyn_rate: rate(dyn_best),
        mono_rate: rate(mono_best),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut json_path = "BENCH_replay.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(args.get(i).map(String::as_str).unwrap_or(""))
                    .expect("--scale micro|quick|medium|paper");
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned().expect("--json PATH");
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    // One representative stream: a thrash-heavy benchmark keeps the
    // replacement policy busy (every access updates policy state; misses
    // exercise victim selection).
    let bench = Spec2006::Libquantum;
    let workload = harness::workload_cache().workload(scale, bench);
    let stream: Vec<Access> = workload
        .simpoints
        .iter()
        .flat_map(|sp| sp.stream.iter().copied())
        .collect();
    let geom = scale.hierarchy().llc;
    let warmup = mem_model::llc::default_warmup(stream.len());
    let leaders = policies::leaders_for(&geom);
    println!(
        "replaying {} LLC accesses ({bench}, {scale} scale, {} sets x {} ways)",
        stream.len(),
        geom.sets(),
        geom.ways()
    );

    let quad = gippr::vectors::wi_4dgippr().to_vec();
    let rows = vec![
        measure("LRU", &stream, geom, warmup, &policies::lru(), |g| {
            TrueLru::new(g)
        }),
        measure("PseudoLRU", &stream, geom, warmup, &policies::plru(), |g| {
            PlruPolicy::new(g)
        }),
        measure(
            "WI-GIPPR",
            &stream,
            geom,
            warmup,
            &policies::gippr(gippr::vectors::wi_gippr(), "WI-GIPPR"),
            |g| {
                GipprPolicy::with_name(g, gippr::vectors::wi_gippr(), "WI-GIPPR")
                    .expect("assoc matches")
            },
        ),
        measure(
            "WI-4-DGIPPR",
            &stream,
            geom,
            warmup,
            &policies::dgippr(quad.clone(), "WI-4-DGIPPR"),
            |g| {
                DgipprPolicy::with_config(g, quad.clone(), leaders, "WI-4-DGIPPR")
                    .expect("valid config")
            },
        ),
        measure("DRRIP", &stream, geom, warmup, &policies::drrip(), |g| {
            DrripPolicy::with_config(g, leaders, 10).expect("geometry fits DRRIP")
        }),
    ];

    let geomean = rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len() as f64;
    let geomean = geomean.exp();
    for r in &rows {
        println!(
            "  {:<12} seed {:>11.0} acc/s   dyn {:>11.0} acc/s   mono {:>11.0} acc/s   mono/seed {:.2}x",
            r.name, r.seed_rate, r.dyn_rate, r.mono_rate,
            r.speedup()
        );
    }
    println!("  geomean speedup (mono over seed engine): {geomean:.2}x");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    json.push_str(&format!("  \"benchmark\": \"{bench}\",\n"));
    json.push_str(&format!("  \"stream_accesses\": {},\n", stream.len()));
    json.push_str("  \"baseline\": \"seed (v0) dyn-dispatch replay engine\",\n");
    json.push_str("  \"policies\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"seed_accesses_per_sec\": {:.0}, \
             \"dyn_accesses_per_sec\": {:.0}, \"mono_accesses_per_sec\": {:.0}, \
             \"speedup\": {:.4}}}{}\n",
            r.name,
            r.seed_rate,
            r.dyn_rate,
            r.mono_rate,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"geomean_speedup\": {geomean:.4}\n"));
    json.push_str("}\n");
    let mut f = std::fs::File::create(&json_path).expect("create json output");
    f.write_all(json.as_bytes()).expect("write json output");
    println!("wrote {json_path}");
}
