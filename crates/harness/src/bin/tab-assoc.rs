//! Associativity sweep at fixed capacity (future-work item 6).
//!
//! Usage: `tab-assoc [--scale quick|medium|paper] [--out DIR]`

use harness::experiments::assoc_sweep;
use harness::Args;

fn main() {
    let Args { scale, out, .. } = Args::from_env();
    let table = assoc_sweep::run(scale);
    println!("{table}");
    println!(
        "(PLRU's cost advantage over LRU grows as log2(ways); the IPV mechanism is \
              defined at every associativity)"
    );
    if let Some(dir) = out {
        let path = format!("{dir}/tab-assoc.csv");
        table.write_csv(&path).expect("write CSV");
        println!("wrote {path}");
    }
}
