//! Island-model GA driver: process-parallel evolution with the
//! multi-fidelity fitness ladder — the paper's 200-CPU cluster search
//! run as a resumable fleet of worker processes on one box.
//!
//! Usage:
//!
//! ```text
//! evolve-islands [--scale micro|quick|medium|paper] [--out DIR] [--resume]
//!                [--islands N] [--migration-every E] [--migrants M]
//!                [--mbx-timeout SECS] [--attempts K] [--seed S]
//!                [--smoke] [--bench]
//! ```
//!
//! The parent process spawns one worker per island (`--worker I`, an
//! internal flag: the worker re-executes this same binary). Each worker
//! runs its own selection/crossover loop over `population` genomes,
//! climbing the fitness ladder every generation — `sim-lint` viability →
//! zero-replay profile score → set-sampled replay → full replay for the
//! promoted few — and exchanges full-fidelity elites with its ring
//! neighbor through crash-safe atomic mailbox files at every epoch
//! boundary. At `--scale paper --islands 8` the fleet evolves 8 x 2000 =
//! 16 000 initial genomes.
//!
//! Everything is coordinated through `<out>`: a `manifest.json` (the
//! `run-all` manifest format, mode `islands`) records per-island
//! progress, `checkpoints/` holds each island's generation-boundary
//! snapshot, `mailboxes/` the migration traffic, and `island-I.res` each
//! worker's result. A worker that dies — crash, SIGKILL, injected fault —
//! is respawned with bounded backoff up to `--attempts` times and resumes
//! **bit-identically** from its last checkpoint; `--resume` does the same
//! across parent invocations. The final `evolved-islands.txt` artifact
//! contains only deterministic content (genomes, fitness, ladder
//! accounting), never timings, so an interrupted-and-resumed run is
//! byte-for-byte equal to an uninterrupted one.
//!
//! `--smoke` is the CI preset (micro scale, 2 islands, tiny GA).
//! `--bench` instead runs the single-fidelity baseline (every viable
//! genome full-replayed, same code path) against the laddered ring
//! in-process and writes `BENCH_evolve.json` with both
//! fitness-vs-wallclock curves, the time-to-equal-fitness speedup, and
//! the number of full replays the ladder avoided.

use evolve::island::mailbox_dir;
use evolve::{
    run_ipv_island, Checkpointing, FitnessContext, IslandConfig, IslandOutcome, LadderConfig,
    LadderStats, Substrate,
};
use gippr::Ipv;
use harness::manifest::{digest, Manifest, Status};
use harness::pipeline::retry_backoff;
use harness::Scale;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};
use traces::spec2006::Spec2006;

/// Result-file format tag (first line of `island-I.res`).
const RESULT_MAGIC: &str = "PLRUISR1";

#[derive(Clone)]
struct Opts {
    scale: Scale,
    out: String,
    resume: bool,
    islands: usize,
    migration_every: Option<usize>,
    migrants: Option<usize>,
    mbx_timeout_secs: u64,
    attempts: u64,
    seed: u64,
    worker: Option<usize>,
    bench: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: Scale::Quick,
            out: "results/islands".to_string(),
            resume: false,
            islands: 4,
            migration_every: None,
            migrants: None,
            mbx_timeout_secs: 300,
            attempts: 3,
            seed: 0xE41,
            worker: None,
            bench: false,
        }
    }
}

fn usage() -> ! {
    panic!(
        "usage: evolve-islands [--scale micro|quick|medium|paper] [--out DIR] [--resume] \
         [--islands N] [--migration-every E] [--migrants M] [--mbx-timeout SECS] \
         [--attempts K] [--seed S] [--smoke] [--bench]"
    )
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts::default();
    let mut i = 0;
    let num = |args: &[String], i: usize, flag: &str| -> u64 {
        args.get(i)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{flag} needs a number"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                o.scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                o.out = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--resume" => o.resume = true,
            "--islands" => {
                i += 1;
                o.islands = num(args, i, "--islands").max(1) as usize;
            }
            "--migration-every" => {
                i += 1;
                o.migration_every = Some(num(args, i, "--migration-every").max(1) as usize);
            }
            "--migrants" => {
                i += 1;
                o.migrants = Some(num(args, i, "--migrants").max(1) as usize);
            }
            "--mbx-timeout" => {
                i += 1;
                o.mbx_timeout_secs = num(args, i, "--mbx-timeout");
            }
            "--attempts" => {
                i += 1;
                o.attempts = num(args, i, "--attempts").max(1);
            }
            "--seed" => {
                i += 1;
                o.seed = num(args, i, "--seed");
            }
            "--worker" => {
                i += 1;
                o.worker = Some(num(args, i, "--worker") as usize);
            }
            "--smoke" => {
                o.scale = Scale::Micro;
                o.islands = 2;
                o.migration_every = Some(1);
                o.migrants = Some(1);
            }
            "--bench" => o.bench = true,
            _ => usage(),
        }
        i += 1;
    }
    o
}

fn island_cfg(o: &Opts) -> IslandConfig {
    let ga = o.scale.ga(o.seed);
    let migration_every = o
        .migration_every
        .unwrap_or_else(|| (ga.generations / 3).clamp(1, 10));
    IslandConfig {
        islands: o.islands,
        migration_every,
        migrants: o.migrants.unwrap_or(ga.elitism.max(1)),
        mailbox_timeout: Duration::from_secs(o.mbx_timeout_secs),
        ga,
        ladder: LadderConfig::balanced(),
    }
}

fn fitness_ctx(o: &Opts) -> FitnessContext {
    FitnessContext::for_benchmarks(
        &Spec2006::all(),
        o.scale.simpoints(),
        o.scale.ga_accesses(),
        o.scale.fitness(),
    )
}

fn island_name(i: usize) -> String {
    format!("island-{i}")
}

fn result_file(i: usize) -> String {
    format!("island-{i}.res")
}

// ---------------------------------------------------------------------------
// Worker result files
// ---------------------------------------------------------------------------

/// Text encoding of a worker's [`IslandOutcome`]. Fitness values are
/// carried as exact `f64` bit patterns; the human-readable digits are
/// comments.
fn encode_result(island: usize, outcome: &IslandOutcome<Ipv>) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{RESULT_MAGIC}");
    let _ = writeln!(s, "island {island}");
    let _ = writeln!(
        s,
        "best {:016x} {} # fitness {:.4}",
        outcome.result.best_fitness.to_bits(),
        outcome.result.best,
        outcome.result.best_fitness
    );
    let _ = writeln!(
        s,
        "history {}",
        outcome
            .result
            .history
            .iter()
            .map(|f| format!("{:016x}", f.to_bits()))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let st = &outcome.stats;
    let _ = writeln!(
        s,
        "stats {} {} {} {} {}",
        st.profile_evals, st.sampled_evals, st.full_evals, st.pruned, st.full_saved
    );
    let _ = writeln!(
        s,
        "wall_ms {}",
        outcome
            .gen_wall_ms
            .iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    s
}

struct WorkerResult {
    best: Ipv,
    best_fitness: f64,
    stats: LadderStats,
}

fn parse_result(text: &str, assoc: usize) -> Option<WorkerResult> {
    let mut lines = text.lines();
    if lines.next()? != RESULT_MAGIC {
        return None;
    }
    let mut best: Option<(Ipv, f64)> = None;
    let mut stats = LadderStats::default();
    for line in lines {
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some("best") => {
                let bits = u64::from_str_radix(tok.next()?, 16).ok()?;
                let entries: Vec<&str> = tok.take_while(|t| *t != "#").collect();
                let ipv: Ipv = entries.join(" ").parse().ok()?;
                if ipv.assoc() != assoc {
                    return None;
                }
                best = Some((ipv, f64::from_bits(bits)));
            }
            Some("stats") => {
                let mut n = || tok.next().and_then(|t| t.parse::<u64>().ok());
                stats = LadderStats {
                    profile_evals: n()?,
                    sampled_evals: n()?,
                    full_evals: n()?,
                    pruned: n()?,
                    full_saved: n()?,
                };
            }
            _ => {}
        }
    }
    let (best, best_fitness) = best?;
    Some(WorkerResult {
        best,
        best_fitness,
        stats,
    })
}

// ---------------------------------------------------------------------------
// Worker mode
// ---------------------------------------------------------------------------

fn worker_main(o: &Opts, island: usize) {
    let cfg = island_cfg(o);
    assert!(island < cfg.islands, "--worker {island} out of range");
    let out = PathBuf::from(&o.out);
    let ckpt = Checkpointing::in_dir(out.join("checkpoints"));
    println!(
        "[island-{island}] capturing fitness streams at {} scale...",
        o.scale
    );
    let ctx = fitness_ctx(o);
    let outcome = match run_ipv_island(
        &ctx,
        &cfg,
        island,
        &ckpt,
        &mailbox_dir(&out),
        Substrate::Plru,
    ) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("[island-{island}] failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "[island-{island}] best {} fitness {:.4} ({} full replays, {} avoided)",
        outcome.result.best,
        outcome.result.best_fitness,
        outcome.stats.full_evals,
        outcome.stats.full_saved
    );
    let text = encode_result(island, &outcome);
    sim_core::persist::atomic_write(&out.join(result_file(island)), text.as_bytes())
        .expect("write island result");
}

// ---------------------------------------------------------------------------
// Parent mode
// ---------------------------------------------------------------------------

/// Whether `entry` for file `file` is done and its artifact on disk still
/// matches the recorded digest.
fn verified_done(out: &Path, manifest: &Manifest, name: &str) -> bool {
    manifest.entry(name).is_some_and(|e| {
        e.status == Status::Done
            && std::fs::read(out.join(&e.file)).is_ok_and(|bytes| digest(&bytes) == e.digest)
    })
}

fn spawn_worker(
    o: &Opts,
    cfg: &IslandConfig,
    island: usize,
) -> std::io::Result<std::process::Child> {
    let exe = std::env::current_exe().expect("own executable path");
    Command::new(exe)
        .args([
            "--scale",
            &o.scale.to_string(),
            "--out",
            &o.out,
            "--islands",
            &cfg.islands.to_string(),
            "--migration-every",
            &cfg.migration_every.to_string(),
            "--migrants",
            &cfg.migrants.to_string(),
            "--mbx-timeout",
            &o.mbx_timeout_secs.to_string(),
            "--seed",
            &o.seed.to_string(),
            "--worker",
            &island.to_string(),
        ])
        .spawn()
}

fn parent_main(o: &Opts) {
    let cfg = island_cfg(o);
    let out = PathBuf::from(&o.out);
    let scale_str = o.scale.to_string();
    let manifest_path = out.join("manifest.json");
    let artifact_name = "evolved-islands.txt";
    let ckpt = Checkpointing::in_dir(out.join("checkpoints"));

    let mut manifest = if o.resume {
        match Manifest::load(&manifest_path) {
            Some(m) if m.scale == scale_str && m.mode == "islands" => {
                println!("resuming islands run in {}", out.display());
                m
            }
            Some(m) => {
                eprintln!(
                    "evolve-islands: --resume ignored: manifest was recorded at scale={} \
                     mode={} but this run uses scale={scale_str} mode=islands; starting fresh",
                    m.scale, m.mode
                );
                Manifest::new(&scale_str, "islands")
            }
            None => Manifest::new(&scale_str, "islands"),
        }
    } else {
        Manifest::new(&scale_str, "islands")
    };
    if !o.resume {
        // Start clean: stale checkpoints, mailboxes, or results from an
        // earlier configuration must never leak into this run.
        ckpt.clear();
        let _ = std::fs::remove_dir_all(mailbox_dir(&out));
        for i in 0..cfg.islands {
            let _ = std::fs::remove_file(out.join(result_file(i)));
        }
        let _ = std::fs::remove_file(out.join(artifact_name));
    }
    for i in 0..cfg.islands {
        manifest.entry_mut(&island_name(i), &result_file(i));
    }
    manifest.entry_mut("summary", artifact_name);
    let persist = |m: &Manifest| {
        if let Err(e) = m.save(&manifest_path) {
            eprintln!("evolve-islands: could not persist manifest: {e}");
        }
    };
    persist(&manifest);

    if o.resume && verified_done(&out, &manifest, "summary") {
        println!("already done, skipping (--resume)");
        return;
    }

    println!(
        "evolving {} islands x {} genomes for {} generations at {} scale \
         (migrate {} every {} gens, ladder {:.3}/{:.3} min {})",
        cfg.islands,
        cfg.ga.population,
        cfg.ga.generations,
        o.scale,
        cfg.migrants,
        cfg.migration_every,
        cfg.ladder.sampled_frac,
        cfg.ladder.full_frac,
        cfg.ladder.min_full,
    );

    let mut pending: Vec<usize> = (0..cfg.islands)
        .filter(|&i| !(o.resume && verified_done(&out, &manifest, &island_name(i))))
        .collect();
    for i in (0..cfg.islands).filter(|i| !pending.contains(i)) {
        println!("[island-{i}] already done, skipping (--resume)");
    }

    for attempt in 0..o.attempts {
        if pending.is_empty() {
            break;
        }
        if attempt > 0 {
            let wait = retry_backoff(attempt - 1);
            eprintln!(
                "respawning {} island worker(s) in {wait:?} (attempt {})",
                pending.len(),
                attempt + 1
            );
            std::thread::sleep(wait);
        }
        for &i in &pending {
            let entry = manifest.entry_mut(&island_name(i), &result_file(i));
            entry.status = Status::Running;
            entry.attempts += 1;
        }
        persist(&manifest);

        let children: Vec<(usize, std::io::Result<std::process::Child>)> = pending
            .iter()
            .map(|&i| (i, spawn_worker(o, &cfg, i)))
            .collect();
        let mut still_pending = Vec::new();
        for (i, child) in children {
            let failure = match child.and_then(|mut c| c.wait()) {
                Ok(status) if status.success() => match std::fs::read(out.join(result_file(i))) {
                    Ok(bytes)
                        if parse_result(&String::from_utf8_lossy(&bytes), llc_assoc(o))
                            .is_some() =>
                    {
                        let entry = manifest.entry_mut(&island_name(i), &result_file(i));
                        entry.status = Status::Done;
                        entry.digest = digest(&bytes);
                        entry.error.clear();
                        None
                    }
                    Ok(_) => Some("worker exited 0 but its result file is unreadable".to_string()),
                    Err(e) => Some(format!("worker exited 0 without a result file: {e}")),
                },
                Ok(status) => Some(format!("worker exited with {status}")),
                Err(e) => Some(format!("could not run worker: {e}")),
            };
            if let Some(err) = failure {
                eprintln!("[island-{i}] {err}");
                let entry = manifest.entry_mut(&island_name(i), &result_file(i));
                entry.status = Status::Failed;
                entry.error = err;
                still_pending.push(i);
            }
        }
        persist(&manifest);
        pending = still_pending;
    }
    if !pending.is_empty() {
        eprintln!(
            "evolve-islands: {} island(s) failed after {} attempt(s); \
             re-run with --resume to continue from their checkpoints",
            pending.len(),
            o.attempts
        );
        std::process::exit(1);
    }

    // All islands done: compose the deterministic artifact.
    let assoc = llc_assoc(o);
    let results: Vec<WorkerResult> = (0..cfg.islands)
        .map(|i| {
            let text = std::fs::read_to_string(out.join(result_file(i)))
                .expect("island result file exists");
            parse_result(&text, assoc).expect("island result file parses")
        })
        .collect();
    let mut totals = LadderStats::default();
    for r in &results {
        totals.absorb(&r.stats);
    }
    let global = results
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| {
            a.best_fitness
                .partial_cmp(&b.best_fitness)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ib.cmp(ia))
        })
        .expect("at least one island");

    let mut artifact = String::new();
    let _ = writeln!(
        artifact,
        "# islands evolved at {scale_str} scale: {} islands x {} pop, {} gens, \
         migrate {} every {} (fitness = mean linear-CPI speedup over LRU)",
        cfg.islands, cfg.ga.population, cfg.ga.generations, cfg.migrants, cfg.migration_every
    );
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            artifact,
            "ISLAND[{i}] {} # fitness {:.4}",
            r.best, r.best_fitness
        );
    }
    let _ = writeln!(
        artifact,
        "BEST {} # fitness {:.4} (island {})",
        global.1.best, global.1.best_fitness, global.0
    );
    let _ = writeln!(
        artifact,
        "# ladder: {} full replays, {} avoided, {} sampled, {} profile-only, {} pruned",
        totals.full_evals,
        totals.full_saved,
        totals.sampled_evals,
        totals.profile_evals,
        totals.pruned
    );
    print!("\n{artifact}");
    let artifact_path = out.join(artifact_name);
    sim_core::persist::atomic_write(&artifact_path, artifact.as_bytes()).expect("write artifact");
    println!("wrote {}", artifact_path.display());
    {
        let entry = manifest.entry_mut("summary", artifact_name);
        entry.status = Status::Done;
        entry.digest = digest(artifact.as_bytes());
    }
    persist(&manifest);
    // The artifact is safely on disk; the coordination state has served
    // its purpose.
    ckpt.clear();
    let _ = std::fs::remove_dir_all(mailbox_dir(&out));
}

/// The genome associativity for this run (the LLC's ways at this scale) —
/// needed to parse result files without capturing streams.
fn llc_assoc(o: &Opts) -> usize {
    o.scale.hierarchy().llc.ways()
}

// ---------------------------------------------------------------------------
// Bench mode
// ---------------------------------------------------------------------------

/// One in-process ring (threads, not processes: the comparison is about
/// evaluation cost, and in-process keeps both sides' measurement
/// identical). Returns the per-island outcomes plus the ring's wall time.
fn bench_ring(
    ctx: &FitnessContext,
    cfg: &IslandConfig,
    dir: &Path,
) -> (Vec<IslandOutcome<Ipv>>, Duration) {
    let _ = std::fs::remove_dir_all(dir);
    let ckpt = Checkpointing::in_dir(dir.join("checkpoints"));
    let mbx = mailbox_dir(dir);
    let start = Instant::now();
    let outcomes = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.islands)
            .map(|i| {
                let ckpt = ckpt.clone();
                let mbx = mbx.clone();
                s.spawn(move || {
                    run_ipv_island(ctx, cfg, i, &ckpt, &mbx, Substrate::Plru)
                        .expect("bench island completes")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench island thread"))
            .collect::<Vec<_>>()
    });
    let wall = start.elapsed();
    let _ = std::fs::remove_dir_all(dir);
    (outcomes, wall)
}

/// Fitness-vs-wallclock curve of a ring: after generation `g`, the best
/// full-fidelity fitness anywhere in the ring against the slowest
/// island's cumulative wall time (islands run concurrently).
fn ring_curve(outcomes: &[IslandOutcome<Ipv>], generations: usize) -> Vec<(u64, f64)> {
    (0..generations)
        .map(|g| {
            let best = outcomes
                .iter()
                .filter_map(|o| o.result.history.get(g).copied())
                .fold(f64::NEG_INFINITY, f64::max);
            let cum_ms = outcomes
                .iter()
                .map(|o| o.gen_wall_ms.iter().take(g + 1).sum::<u64>())
                .max()
                .unwrap_or(0);
            (cum_ms, best)
        })
        .collect()
}

fn ms_to_reach(curve: &[(u64, f64)], target: f64) -> Option<u64> {
    curve
        .iter()
        .find(|(_, best)| *best >= target - 1e-12)
        .map(|(ms, _)| *ms)
}

fn curve_json(curve: &[(u64, f64)]) -> String {
    curve
        .iter()
        .enumerate()
        .map(|(g, (ms, best))| format!("{{\"gen\": {g}, \"cum_ms\": {ms}, \"best\": {best:.6}}}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn side_json(
    name: &str,
    ladder: &str,
    outcomes: &[IslandOutcome<Ipv>],
    wall: Duration,
    generations: usize,
) -> String {
    let mut stats = LadderStats::default();
    for o in outcomes {
        stats.absorb(&o.stats);
    }
    let best = outcomes
        .iter()
        .map(|o| o.result.best_fitness)
        .fold(f64::NEG_INFINITY, f64::max);
    format!(
        "  \"{name}\": {{\n    \"ladder\": \"{ladder}\",\n    \"wall_ms\": {},\n    \
         \"best_fitness\": {best:.6},\n    \"profile_evals\": {},\n    \
         \"sampled_evals\": {},\n    \"full_evals\": {},\n    \"pruned\": {},\n    \
         \"full_saved\": {},\n    \"curve\": [{}]\n  }}",
        wall.as_millis(),
        stats.profile_evals,
        stats.sampled_evals,
        stats.full_evals,
        stats.pruned,
        stats.full_saved,
        curve_json(&ring_curve(outcomes, generations)),
    )
}

fn bench_main(o: &Opts) {
    let cfg = island_cfg(o);
    let baseline_cfg = IslandConfig {
        ladder: LadderConfig::full_only(),
        ..cfg
    };
    let out = PathBuf::from(&o.out);
    println!(
        "bench: capturing fitness streams at {} scale ({} islands x {} pop x {} gens)...",
        o.scale, cfg.islands, cfg.ga.population, cfg.ga.generations
    );
    let ctx = fitness_ctx(o);
    println!("bench: single-fidelity baseline (every viable genome full-replayed)...");
    let (base, base_wall) = bench_ring(&ctx, &baseline_cfg, &out.join("bench-baseline"));
    println!("bench: multi-fidelity ladder...");
    let (ladder, ladder_wall) = bench_ring(&ctx, &cfg, &out.join("bench-ladder"));

    let gens = cfg.ga.generations;
    let base_curve = ring_curve(&base, gens);
    let ladder_curve = ring_curve(&ladder, gens);
    let base_best = base
        .iter()
        .map(|o| o.result.best_fitness)
        .fold(f64::NEG_INFINITY, f64::max);
    let ladder_best = ladder
        .iter()
        .map(|o| o.result.best_fitness)
        .fold(f64::NEG_INFINITY, f64::max);
    // Equal-fitness comparison: time for each side to reach the weaker
    // side's final best (both curves provably get there).
    let target = base_best.min(ladder_best);
    let base_ms = ms_to_reach(&base_curve, target).unwrap_or(base_wall.as_millis() as u64);
    let ladder_ms = ms_to_reach(&ladder_curve, target).unwrap_or(ladder_wall.as_millis() as u64);
    let speedup = base_ms.max(1) as f64 / ladder_ms.max(1) as f64;
    let full_saved: u64 = ladder.iter().map(|o| o.stats.full_saved).sum();

    println!(
        "bench: baseline best {base_best:.4} in {} ms, laddered best {ladder_best:.4} in {} ms",
        base_wall.as_millis(),
        ladder_wall.as_millis()
    );
    println!(
        "bench: time to equal fitness {target:.4}: baseline {base_ms} ms, \
         laddered {ladder_ms} ms -> {speedup:.2}x; {full_saved} full replays avoided"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"scale\": \"{}\",", o.scale);
    let _ = writeln!(json, "  \"islands\": {},", cfg.islands);
    let _ = writeln!(json, "  \"population_per_island\": {},", cfg.ga.population);
    let _ = writeln!(
        json,
        "  \"initial_population_per_island\": {},",
        cfg.ga.initial_population
    );
    let _ = writeln!(json, "  \"generations\": {},", cfg.ga.generations);
    let _ = writeln!(json, "  \"migration_every\": {},", cfg.migration_every);
    let _ = writeln!(json, "  \"migrants\": {},", cfg.migrants);
    let _ = writeln!(
        json,
        "  \"cores\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    json.push_str(&side_json(
        "baseline",
        "full-only (single fidelity)",
        &base,
        base_wall,
        gens,
    ));
    json.push_str(",\n");
    json.push_str(&side_json(
        "laddered",
        &format!(
            "viability -> profile -> sampled {:.3} -> full {:.3} (min {})",
            cfg.ladder.sampled_frac, cfg.ladder.full_frac, cfg.ladder.min_full
        ),
        &ladder,
        ladder_wall,
        gens,
    ));
    json.push_str(",\n");
    let _ = writeln!(json, "  \"target_fitness\": {target:.6},");
    let _ = writeln!(json, "  \"baseline_ms_to_target\": {base_ms},");
    let _ = writeln!(json, "  \"laddered_ms_to_target\": {ladder_ms},");
    let _ = writeln!(
        json,
        "  \"wallclock_speedup_at_equal_fitness\": {speedup:.4},"
    );
    let _ = writeln!(json, "  \"full_replays_saved\": {full_saved}");
    json.push_str("}\n");
    let path = out.join("BENCH_evolve.json");
    sim_core::persist::atomic_write(&path, json.as_bytes()).expect("write bench json");
    println!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = parse_opts(&args);
    if let Some(island) = o.worker {
        worker_main(&o, island);
    } else if o.bench {
        bench_main(&o);
    } else {
        parent_main(&o);
    }
}
