//! Regenerates Figure 13: speedup over LRU for DRRIP, PDP, and 4-vector
//! DGIPPR, including the memory-intensive subset summary.
//!
//! Usage: `fig13-speedup [--scale quick|medium|paper] [--wn1] [--out DIR]`

use harness::experiments::{fig13, VectorMode};
use harness::Args;

fn main() {
    let Args {
        scale, out, wn1, ..
    } = Args::from_env();
    let fig = fig13::run(scale, VectorMode::from_flag(wn1));
    println!("{}", fig.table);
    println!(
        "memory-intensive subset (DRRIP speedup > 1%): {}",
        fig.memory_intensive
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "(paper: all-SPEC geomeans DRRIP +5.4%, PDP +5.7%, WN1-4-DGIPPR +5.6%; \
              memory-intensive +15.6%, +16.4%, +15.6%)"
    );
    if let Some(dir) = out {
        let path = format!("{dir}/fig13.csv");
        fig.table.write_csv(&path).expect("write CSV");
        println!("wrote {path}");
    }
}
