//! Regenerates the Section 3.6 storage-overhead comparison.
//!
//! Usage: `tab-overhead [--out DIR]` (overheads are scale-independent).

use harness::experiments::overhead;
use harness::Args;

fn main() {
    let Args { out, .. } = Args::from_env();
    let table = overhead::run();
    println!("{table}");
    println!(
        "(paper: GIPPR/DGIPPR 15 bits/set = 7 KB; LRU 32 KB; DRRIP 16 KB; \
              PDP 24-32 KB plus a ~10K-NAND-gate microcontroller)"
    );
    if let Some(dir) = out {
        let path = format!("{dir}/tab-overhead.csv");
        table.write_csv(&path).expect("write CSV");
        println!("wrote {path}");
    }
}
