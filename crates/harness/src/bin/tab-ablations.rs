//! Ablations of the design choices: leader count, PSEL width, vector
//! count, substrate, bypass extension, RRIP-IPV extension.
//!
//! Usage: `tab-ablations [--scale quick|medium|paper] [--out DIR]`

use harness::experiments::ablations;
use harness::report::parse_args;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, out, _) = parse_args(&args);
    let table = ablations::run(scale);
    println!("{table}");
    if let Some(dir) = out {
        let path = format!("{dir}/tab-ablations.csv");
        table.write_csv(&path).expect("write CSV");
        println!("wrote {path}");
    }
}
