//! Ablations of the design choices: leader count, PSEL width, vector
//! count, substrate, bypass extension, RRIP-IPV extension.
//!
//! Usage: `tab-ablations [--scale quick|medium|paper] [--out DIR]`

use harness::experiments::ablations;
use harness::Args;

fn main() {
    let Args { scale, out, .. } = Args::from_env();
    let table = ablations::run(scale);
    println!("{table}");
    if let Some(dir) = out {
        let path = format!("{dir}/tab-ablations.csv");
        table.write_csv(&path).expect("write CSV");
        println!("wrote {path}");
    }
}
