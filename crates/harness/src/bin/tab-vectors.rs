//! Prints the Section 5.3 published-vector inventory.
//!
//! Usage: `tab-vectors [--out DIR]`

use harness::experiments::vectors_tab;
use harness::Args;

fn main() {
    let Args { out, .. } = Args::from_env();
    let table = vectors_tab::run();
    println!("{table}");
    if let Some(dir) = out {
        let path = format!("{dir}/tab-vectors.csv");
        table.write_csv(&path).expect("write CSV");
        println!("wrote {path}");
    }
}
