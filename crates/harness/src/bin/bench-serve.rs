//! Serving-path throughput benchmark — measures end-to-end accesses/sec
//! through the real TCP protocol (framing, CRC, ingest queue, pool
//! fan-out, delta outbox) against the in-process reference replay, and
//! emits `BENCH_serve.json`.
//!
//! Usage: `bench-serve [--accesses N] [--tenants T] [--json PATH]`
//!        `bench-serve --smoke`
//!
//! `--smoke` is the CI guard: a small stream, a correctness gate (served
//! stats must be byte-identical to the reference), and a generous
//! throughput floor so a catastrophic serving-path regression fails fast
//! without making CI flaky on slow runners.

use harness::policies;
use sim_core::persist::atomic_write;
use sim_core::{Access, AccessKind};
use sim_serve::protocol::{ClientFrame, GeometrySpec, Hello, ServerFrame};
use sim_serve::session::{canonical_stats, reference_delta, Roster};
use sim_serve::{Server, ServerConfig, PROTOCOL_VERSION};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn spec() -> GeometrySpec {
    GeometrySpec {
        size_bytes: 256 * 1024,
        ways: 16,
        line_bytes: 64,
    }
}

fn roster() -> Roster {
    policies::baseline_roster(0xC0FFEE)
        .into_iter()
        .map(|(n, f)| (n.to_string(), f))
        .collect()
}

fn stream(n: usize, seed: u64) -> Vec<Access> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Access {
                addr: (state % 16384) * 64,
                pc: (i as u64) * 4,
                kind: if state % 5 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                icount_delta: (state % 7) as u32 + 1,
            }
        })
        .collect()
}

/// Streams `accesses` into tenant `name` and returns (canonical stats,
/// wall time of the streaming + finalization).
fn drive_tenant(addr: std::net::SocketAddr, name: &str, accesses: &[Access]) -> (String, Duration) {
    let mut sock = TcpStream::connect(addr).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    sock.set_nodelay(true).unwrap();
    sim_serve::protocol::send_client(
        &mut sock,
        &ClientFrame::Hello(Hello {
            version: PROTOCOL_VERSION,
            tenant: name.to_string(),
            resume: false,
            kv_mode: false,
            geometry: spec(),
            roster: Vec::new(),
            delta_every: 0,
        }),
    )
    .unwrap();
    assert!(matches!(
        sim_serve::protocol::recv_server(&mut sock).unwrap(),
        ServerFrame::HelloAck { .. }
    ));
    let start = Instant::now();
    for chunk in accesses.chunks(512) {
        sim_serve::protocol::send_client(&mut sock, &ClientFrame::Accesses(chunk.to_vec()))
            .unwrap();
    }
    sim_serve::protocol::send_client(&mut sock, &ClientFrame::Finish).unwrap();
    let delta = loop {
        match sim_serve::protocol::recv_server(&mut sock).unwrap() {
            ServerFrame::Final { delta, .. } => break delta,
            ServerFrame::Delta(_) | ServerFrame::Throttled { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
    };
    let elapsed = start.elapsed();
    let _ = sim_serve::protocol::send_client(&mut sock, &ClientFrame::Bye);
    (canonical_stats(&delta), elapsed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut n_accesses = 100_000usize;
    let mut tenants = 4usize;
    let mut json_path = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                n_accesses = 20_000;
                tenants = 2;
            }
            "--accesses" => {
                i += 1;
                n_accesses = args[i].parse().expect("--accesses N");
            }
            "--tenants" => {
                i += 1;
                tenants = args[i].parse().expect("--tenants T");
            }
            "--json" => {
                i += 1;
                json_path = args[i].clone();
            }
            other => {
                eprintln!("bench-serve: unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let server = Server::bind_tcp("127.0.0.1:0", roster(), ServerConfig::default())
        .expect("bind bench server");
    let addr = server.local_addr().unwrap();

    // Concurrent tenants hammer the daemon; each thread reports its own
    // wall time and final stats.
    let per_tenant: Vec<(String, Duration, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..tenants)
            .map(|t| {
                scope.spawn(move || {
                    let name = format!("bench-{t}");
                    let accesses = stream(n_accesses, 100 + t as u64);
                    let (stats, elapsed) = drive_tenant(addr, &name, &accesses);
                    (name, elapsed, stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Correctness gate: every tenant's served stats equal the reference.
    let reg = roster();
    for (t, (name, _, stats)) in per_tenant.iter().enumerate() {
        let accesses = stream(n_accesses, 100 + t as u64);
        let reference = reference_delta(&accesses, &[], &reg, spec()).expect("reference");
        assert_eq!(
            stats,
            &canonical_stats(&reference),
            "served stats for {name} diverged from reference"
        );
    }

    let total_accesses = (n_accesses * tenants) as f64;
    let slowest = per_tenant
        .iter()
        .map(|(_, d, _)| d.as_secs_f64())
        .fold(0.0f64, f64::max);
    let rate = total_accesses / slowest;
    println!(
        "bench-serve: {tenants} tenants x {n_accesses} accesses x {} policies: \
         {rate:.0} acc/s end-to-end (slowest tenant {slowest:.3}s)",
        reg.len()
    );

    if smoke {
        // Floor is deliberately 100x under typical debug-build rates:
        // catches "serving path became quadratic", not machine noise.
        assert!(
            rate > 1_000.0,
            "serving throughput collapsed: {rate:.0} acc/s"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"benchmark\": \"serve\",\n  \"smoke\": {smoke},\n  \"tenants\": {tenants},\n"
    ));
    json.push_str(&format!(
        "  \"accesses_per_tenant\": {n_accesses},\n  \"roster_policies\": {},\n",
        reg.len()
    ));
    json.push_str(&format!(
        "  \"end_to_end_accesses_per_sec\": {rate:.0},\n  \"stats_match_reference\": true,\n"
    ));
    json.push_str("  \"per_tenant\": [\n");
    for (i, (name, d, _)) in per_tenant.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tenant\": \"{name}\", \"seconds\": {:.4}}}{}\n",
            d.as_secs_f64(),
            if i + 1 < per_tenant.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    atomic_write(std::path::Path::new(&json_path), json.as_bytes()).expect("write json");
    println!("bench-serve: wrote {json_path}");

    server.shutdown();
}
