//! Regenerates Figures 2 and 3: the transition graphs of classic LRU and
//! the evolved GIPLR vector, as Graphviz DOT (pipe into `dot -Tsvg`).
//!
//! Usage: `fig02-03-transitions [--out DIR]`

use gippr::graph::to_dot;
use gippr::Ipv;
use harness::Args;

fn main() {
    let Args { out, .. } = Args::from_env();
    let fig2 = to_dot(&Ipv::lru(16), "Figure 2: Transition Graph for LRU");
    let fig3 = to_dot(
        &gippr::vectors::giplr_best(),
        "Figure 3: Transition Graph for [0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13]",
    );
    println!("{fig2}");
    println!("{fig3}");
    if let Some(dir) = out {
        let write = |name: &str, text: &str| {
            sim_core::persist::atomic_write(
                &std::path::Path::new(&dir).join(name),
                text.as_bytes(),
            )
            .unwrap_or_else(|e| panic!("write {name}: {e}"));
        };
        write("fig02.dot", &fig2);
        write("fig03.dot", &fig3);
        println!("wrote {dir}/fig02.dot and {dir}/fig03.dot");
    }
}
