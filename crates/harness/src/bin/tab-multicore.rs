//! The multi-core extension: two-core multiprogrammed mixes over a shared
//! LLC, weighted speedup versus shared LRU.
//!
//! Usage: `tab-multicore [--scale quick|medium|paper] [--out DIR]`

use harness::experiments::multicore_tab;
use harness::report::parse_args;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, out, _) = parse_args(&args);
    let table = multicore_tab::run(scale);
    println!("{table}");
    if let Some(dir) = out {
        let path = format!("{dir}/tab-multicore.csv");
        table.write_csv(&path).expect("write CSV");
        println!("wrote {path}");
    }
}
