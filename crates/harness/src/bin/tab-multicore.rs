//! The multi-core extension: two-core multiprogrammed mixes over a shared
//! LLC, weighted speedup versus shared LRU.
//!
//! Usage: `tab-multicore [--scale quick|medium|paper] [--out DIR]`

use harness::experiments::multicore_tab;
use harness::Args;

fn main() {
    let Args { scale, out, .. } = Args::from_env();
    let table = multicore_tab::run(scale);
    println!("{table}");
    if let Some(dir) = out {
        let path = format!("{dir}/tab-multicore.csv");
        table.write_csv(&path).expect("write CSV");
        println!("wrote {path}");
    }
}
