//! Regenerates the paper's complete evaluation in one command: every
//! figure and table, printed and (with `--out`) written as CSV.
//!
//! Usage: `run-all [--scale quick|medium|paper] [--wn1] [--out DIR]
//! [--resume] [--only NAME[,NAME...]]`
//!
//! Each experiment runs fail-soft with a bounded retry budget; progress is
//! recorded in `<out>/manifest.json` after every experiment, so an
//! interrupted run (crash, kill, power loss) picks up where it left off
//! with `--resume` — completed experiments are skipped after their CSV
//! artifacts are verified against the manifest's digests. If any
//! experiment still fails after retries, the remaining ones run anyway, a
//! failure summary is printed, and the exit code is nonzero.
//!
//! Note: Figure 12 runs 3 + 87 genetic algorithms and dominates the run
//! time; everything else finishes in seconds at quick scale.

use harness::experiments::{
    ablations, assoc_sweep, fig01, fig04, fig10, fig11, fig12, fig13, multicore_tab, overhead,
    vectors_tab, VectorMode,
};
use harness::{Args, Experiment, Pipeline};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::from_env();
    let scale = args.scale;
    let mode = VectorMode::from_flag(args.wn1);
    println!(
        "regenerating the full evaluation at {scale} scale ({} vectors)\n",
        mode.label()
    );

    // Captured workloads spill to disk so repeated runs skip the L1/L2
    // simulation entirely; workload_cache() resolves the directory
    // (SIM_CACHE_DIR, then PLRU_CACHE_DIR, then results/cache/) and
    // prunes stale spill files once at initialization.
    let cache = harness::workload_cache();

    let experiments = vec![
        Experiment::new("tab-vectors", "tab-vectors.csv", vectors_tab::run),
        Experiment::new("tab-overhead", "tab-overhead.csv", overhead::run),
        Experiment::new("fig01", "fig01.csv", move || fig01::run(scale)),
        Experiment::new("fig04", "fig04.csv", move || fig04::run(scale)),
        Experiment::new("fig10", "fig10.csv", move || fig10::run(scale, mode)),
        Experiment::new("fig11", "fig11.csv", move || fig11::run(scale, mode)),
        Experiment::new("fig13", "fig13.csv", move || fig13::run(scale, mode).table),
        Experiment::new("tab-ablations", "tab-ablations.csv", move || {
            ablations::run(scale)
        }),
        Experiment::new("tab-assoc", "tab-assoc.csv", move || {
            assoc_sweep::run(scale)
        }),
        Experiment::new("tab-multicore", "tab-multicore.csv", move || {
            multicore_tab::run(scale)
        }),
        Experiment::new("fig12", "fig12.csv", move || fig12::run(scale)),
    ];

    let report = Pipeline::new(&args).run(&experiments, &scale.to_string(), mode.label());

    println!(
        "done: {} completed, {} skipped, {} failed. workload cache: {} fresh captures, \
         {} loaded from disk ({}).",
        report.completed.len(),
        report.skipped.len(),
        report.failed.len(),
        cache.captures(),
        cache.disk_loads(),
        cache
            .disk_dir()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "no spill dir".into()),
    );
    if report.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
