//! Regenerates the paper's complete evaluation in one command: every
//! figure and table, printed and (with `--out`) written as CSV.
//!
//! Usage: `run-all [--scale quick|medium|paper] [--wn1] [--out DIR]`
//!
//! Note: Figure 12 runs 3 + 87 genetic algorithms and dominates the run
//! time; everything else finishes in seconds at quick scale.

use harness::experiments::{
    ablations, assoc_sweep, fig01, fig04, fig10, fig11, fig12, fig13, multicore_tab, overhead,
    vectors_tab, VectorMode,
};
use harness::report::parse_args;
use harness::Table;

fn emit(table: &Table, out: &Option<String>, file: &str) {
    println!("{table}");
    if let Some(dir) = out {
        let path = format!("{dir}/{file}");
        table.write_csv(&path).expect("write CSV");
        println!("wrote {path}\n");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, out, wn1) = parse_args(&args);
    let mode = VectorMode::from_flag(wn1);
    println!(
        "regenerating the full evaluation at {scale} scale ({} vectors)\n",
        mode.label()
    );

    // Captured workloads spill to disk so repeated runs skip the L1/L2
    // simulation entirely; workload_cache() resolves the directory
    // (SIM_CACHE_DIR, then PLRU_CACHE_DIR, then results/cache/) and
    // prunes stale spill files once at initialization.
    let cache = harness::workload_cache();

    emit(&vectors_tab::run(), &out, "tab-vectors.csv");
    emit(&overhead::run(), &out, "tab-overhead.csv");
    emit(&fig01::run(scale), &out, "fig01.csv");
    emit(&fig04::run(scale), &out, "fig04.csv");
    emit(&fig10::run(scale, mode), &out, "fig10.csv");
    emit(&fig11::run(scale, mode), &out, "fig11.csv");
    let f13 = fig13::run(scale, mode);
    emit(&f13.table, &out, "fig13.csv");
    emit(&ablations::run(scale), &out, "tab-ablations.csv");
    emit(&assoc_sweep::run(scale), &out, "tab-assoc.csv");
    emit(&multicore_tab::run(scale), &out, "tab-multicore.csv");
    emit(&fig12::run(scale), &out, "fig12.csv");

    println!(
        "done. workload cache: {} fresh captures, {} loaded from disk ({}).",
        cache.captures(),
        cache.disk_loads(),
        cache
            .disk_dir()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "no spill dir".into()),
    );
}
