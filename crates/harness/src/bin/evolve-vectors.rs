//! Evolves a fresh set of vectors with the paper's two-stage methodology
//! and writes them (plus their scores) to a text artifact — the workflow
//! the paper's authors ran on their 200-CPU cluster, at your chosen scale.
//!
//! Usage: `evolve-vectors [--scale quick|medium|paper] [--out DIR]`

use evolve::{FitnessContext, Ga, Substrate, VectorSet};
use harness::report::parse_args;
use std::fmt::Write as _;
use traces::spec2006::Spec2006;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, out, _) = parse_args(&args);
    println!("capturing fitness streams for all 29 benchmarks at {scale} scale...");
    let ctx = FitnessContext::for_benchmarks(
        &Spec2006::all(),
        scale.simpoints(),
        scale.ga_accesses(),
        scale.fitness(),
    );
    let ga = Ga::new(scale.ga(0xE40));

    println!("stage 1 + 2: evolving a single GIPPR vector (two-stage GA)...");
    let single = ga.run_two_stage_single(&ctx, Substrate::Plru, 4);
    println!(
        "  best: {}  fitness {:.4}",
        single.best, single.best_fitness
    );

    println!("evolving a 2-vector duel (seeded with the published pair)...");
    let pair = ga.run_set(
        &ctx,
        2,
        vec![VectorSet::new(gippr::vectors::wi_2dgippr().to_vec())],
    );
    println!("  fitness {:.4}\n{}", pair.best_fitness, pair.best);

    println!("evolving a 4-vector duel (seeded with the published quad)...");
    let quad = ga.run_set(
        &ctx,
        4,
        vec![VectorSet::new(gippr::vectors::wi_4dgippr().to_vec())],
    );
    println!("  fitness {:.4}\n{}", quad.best_fitness, quad.best);

    let mut artifact = String::new();
    let _ = writeln!(
        artifact,
        "# vectors evolved at {scale} scale (fitness = mean linear-CPI speedup over LRU)"
    );
    let _ = writeln!(
        artifact,
        "GIPPR {} # fitness {:.4}",
        single.best, single.best_fitness
    );
    for (i, v) in pair.best.vectors().iter().enumerate() {
        let _ = writeln!(
            artifact,
            "2-DGIPPR[{i}] {v} # set fitness {:.4}",
            pair.best_fitness
        );
    }
    for (i, v) in quad.best.vectors().iter().enumerate() {
        let _ = writeln!(
            artifact,
            "4-DGIPPR[{i}] {v} # set fitness {:.4}",
            quad.best_fitness
        );
    }
    print!("\n{artifact}");
    if let Some(dir) = out {
        std::fs::create_dir_all(&dir).expect("create output dir");
        let path = format!("{dir}/evolved-vectors.txt");
        std::fs::write(&path, artifact).expect("write vectors");
        println!("wrote {path}");
    }
}
