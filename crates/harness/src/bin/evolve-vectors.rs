//! Evolves a fresh set of vectors with the paper's two-stage methodology
//! and writes them (plus their scores) to a text artifact — the workflow
//! the paper's authors ran on their 200-CPU cluster, at your chosen scale.
//!
//! Usage: `evolve-vectors [--scale quick|medium|paper] [--out DIR]
//! [--resume]`
//!
//! Every GA stage checkpoints its full loop state (generation,
//! population, RNG state, fitness memo) to `<out>/checkpoints/` through
//! atomic writes, so a crashed or killed run continues **bit-identically**
//! with `--resume`: completed stages short-circuit off their final
//! markers, the interrupted stage resumes at its last snapshot, and the
//! final artifact is byte-for-byte what an uninterrupted run produces.
//! Without `--resume`, stale checkpoints are cleared and the run starts
//! fresh.

use evolve::{Checkpointing, FitnessContext, Ga, Substrate, VectorSet};
use harness::Args;
use std::fmt::Write as _;
use std::path::PathBuf;
use traces::spec2006::Spec2006;

fn main() {
    let args = Args::from_env();
    let scale = args.scale;
    let out_dir = args.out.clone().unwrap_or_else(|| "results".to_string());
    let ckpt = Checkpointing::in_dir(PathBuf::from(&out_dir).join("checkpoints"));
    if args.resume {
        println!("resuming from checkpoints in {}", ckpt.dir.display());
    } else {
        ckpt.clear();
    }

    println!("capturing fitness streams for all 29 benchmarks at {scale} scale...");
    let ctx = FitnessContext::for_benchmarks(
        &Spec2006::all(),
        scale.simpoints(),
        scale.ga_accesses(),
        scale.fitness(),
    );
    let ga = Ga::new(scale.ga(0xE40));

    println!("stage 1 + 2: evolving a single GIPPR vector (two-stage GA)...");
    let single =
        ga.run_two_stage_single_checkpointed(&ctx, Substrate::Plru, 4, Some((&ckpt, "gippr")));
    println!(
        "  best: {}  fitness {:.4}",
        single.best, single.best_fitness
    );

    println!("evolving a 2-vector duel (seeded with the published pair)...");
    let pair = ga.run_set_checkpointed(
        &ctx,
        2,
        vec![VectorSet::new(gippr::vectors::wi_2dgippr().to_vec())],
        Some((&ckpt, "dgippr2")),
    );
    println!("  fitness {:.4}\n{}", pair.best_fitness, pair.best);

    println!("evolving a 4-vector duel (seeded with the published quad)...");
    let quad = ga.run_set_checkpointed(
        &ctx,
        4,
        vec![VectorSet::new(gippr::vectors::wi_4dgippr().to_vec())],
        Some((&ckpt, "dgippr4")),
    );
    println!("  fitness {:.4}\n{}", quad.best_fitness, quad.best);

    let mut artifact = String::new();
    let _ = writeln!(
        artifact,
        "# vectors evolved at {scale} scale (fitness = mean linear-CPI speedup over LRU)"
    );
    let _ = writeln!(
        artifact,
        "GIPPR {} # fitness {:.4}",
        single.best, single.best_fitness
    );
    for (i, v) in pair.best.vectors().iter().enumerate() {
        let _ = writeln!(
            artifact,
            "2-DGIPPR[{i}] {v} # set fitness {:.4}",
            pair.best_fitness
        );
    }
    for (i, v) in quad.best.vectors().iter().enumerate() {
        let _ = writeln!(
            artifact,
            "4-DGIPPR[{i}] {v} # set fitness {:.4}",
            quad.best_fitness
        );
    }
    print!("\n{artifact}");
    if args.out.is_some() {
        let path = PathBuf::from(&out_dir).join("evolved-vectors.txt");
        sim_core::persist::atomic_write(&path, artifact.as_bytes()).expect("write vectors");
        println!("wrote {}", path.display());
    }
    // The artifact is safely on disk (or printed); the checkpoints have
    // served their purpose.
    ckpt.clear();
}
