//! A named registry of every policy the experiments compare.

use baselines::{
    ArcPolicy, AwrpPolicy, DipPolicy, DrripPolicy, EhcPolicy, FifoPolicy, PdpPolicy, RandomPolicy,
    ShipPolicy, SrripPolicy, TrueLru,
};
use gippr::{DgipprPolicy, GiplrPolicy, GipprPolicy, Ipv, PlruPolicy};
use sim_core::policy::factory;
use sim_core::{CacheGeometry, PolicyFactory};

/// Leader sets per dueling candidate, shrunk for small scaled caches while
/// keeping the paper's 32 at full size.
pub fn leaders_for(geom: &CacheGeometry) -> usize {
    (geom.sets() / 64).clamp(4, 32)
}

/// Factory for true LRU.
pub fn lru() -> PolicyFactory {
    factory(|g| Box::new(TrueLru::new(g)))
}

/// Factory for plain tree PseudoLRU.
pub fn plru() -> PolicyFactory {
    factory(|g| Box::new(PlruPolicy::new(g)))
}

/// Factory for seeded random replacement.
pub fn random(seed: u64) -> PolicyFactory {
    factory(move |g| Box::new(RandomPolicy::with_seed(g, seed)))
}

/// Factory for FIFO.
pub fn fifo() -> PolicyFactory {
    factory(|g| Box::new(FifoPolicy::new(g)))
}

/// Factory for DIP.
pub fn dip() -> PolicyFactory {
    factory(|g| Box::new(DipPolicy::with_config(g, leaders_for(g), 10).expect("geometry fits DIP")))
}

/// Factory for SRRIP.
pub fn srrip() -> PolicyFactory {
    factory(|g| Box::new(SrripPolicy::new(g)))
}

/// Factory for DRRIP.
pub fn drrip() -> PolicyFactory {
    factory(|g| {
        Box::new(DrripPolicy::with_config(g, leaders_for(g), 10).expect("geometry fits DRRIP"))
    })
}

/// Factory for PDP (no-bypass configuration).
pub fn pdp() -> PolicyFactory {
    factory(|g| Box::new(PdpPolicy::new(g)))
}

/// Factory for SHiP-PC.
pub fn ship() -> PolicyFactory {
    factory(|g| Box::new(ShipPolicy::new(g)))
}

/// Factory for EHC (Expected-Hit-Count).
pub fn ehc() -> PolicyFactory {
    factory(|g| Box::new(EhcPolicy::new(g)))
}

/// Factory for AWRP (Adaptive Weight Ranking Policy).
pub fn awrp() -> PolicyFactory {
    factory(|g| Box::new(AwrpPolicy::new(g)))
}

/// Factory for the ARC-style adaptive baseline.
pub fn arc() -> PolicyFactory {
    factory(|g| Box::new(ArcPolicy::new(g)))
}

/// Factory for GIPLR (true-LRU stacks driven by `ipv`).
pub fn giplr(ipv: Ipv, name: &str) -> PolicyFactory {
    let name = name.to_string();
    factory(move |g| {
        Box::new(GiplrPolicy::with_name(g, ipv.clone(), &name).expect("assoc matches"))
    })
}

/// Factory for GIPPR (PseudoLRU driven by `ipv`).
pub fn gippr(ipv: Ipv, name: &str) -> PolicyFactory {
    let name = name.to_string();
    factory(move |g| {
        Box::new(GipprPolicy::with_name(g, ipv.clone(), &name).expect("assoc matches"))
    })
}

/// Factory for DGIPPR dueling `vectors` (2 or 4 of them).
pub fn dgippr(vectors: Vec<Ipv>, name: &str) -> PolicyFactory {
    let name = name.to_string();
    factory(move |g| {
        Box::new(
            DgipprPolicy::with_config(g, vectors.clone(), leaders_for(g), &name)
                .expect("valid DGIPPR configuration"),
        )
    })
}

/// The baseline roster of `(name, factory)` pairs used by shoot-out style
/// experiments and examples.
pub fn baseline_roster(seed: u64) -> Vec<(&'static str, PolicyFactory)> {
    vec![
        ("LRU", lru()),
        ("PseudoLRU", plru()),
        ("Random", random(seed)),
        ("FIFO", fifo()),
        ("DIP", dip()),
        ("SRRIP", srrip()),
        ("DRRIP", drrip()),
        ("PDP", pdp()),
        ("SHiP", ship()),
        ("EHC", ehc()),
        ("AWRP", awrp()),
        ("ARC", arc()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_factory_constructs_on_paper_geometry() {
        let g = CacheGeometry::new(4 * 1024 * 1024, 16, 64).unwrap();
        for (name, f) in baseline_roster(1) {
            let p = f(&g);
            assert_eq!(p.name(), name);
        }
        let _ = gippr(gippr::vectors::wi_gippr(), "WI-GIPPR")(&g);
        let _ = giplr(gippr::vectors::giplr_best(), "GIPLR")(&g);
        let _ = dgippr(gippr::vectors::wi_4dgippr().to_vec(), "WI-4-DGIPPR")(&g);
    }

    #[test]
    fn factories_construct_on_small_geometry() {
        // The quick-scale LLC: 128 KB, 16-way, 128 sets.
        let g = CacheGeometry::new(128 * 1024, 16, 64).unwrap();
        for (_, f) in baseline_roster(1) {
            let _ = f(&g);
        }
        let _ = dgippr(gippr::vectors::wi_2dgippr().to_vec(), "WI-2-DGIPPR")(&g);
        assert_eq!(leaders_for(&g), 4, "leader count shrinks with the cache");
    }

    #[test]
    fn named_policies_report_names() {
        let g = CacheGeometry::new(128 * 1024, 16, 64).unwrap();
        let p = gippr(gippr::vectors::wi_gippr(), "WI-GIPPR")(&g);
        assert_eq!(p.name(), "WI-GIPPR");
    }
}
