//! Island-fleet kill-and-resume integration tests: drive the real
//! `evolve-islands` binary, kill a worker process mid-migration with a
//! deterministic injected fault (`SIM_FAULT=exit@...` terminates the
//! process with exit code 86 at the targeted mailbox write, tmp file
//! flushed but not committed), resume the fleet with `--resume`, and
//! require the final artifact — best genomes and ladder accounting — to
//! be **byte-identical** to an uninterrupted reference run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// `sim_core::persist::FAULT_EXIT_CODE`: the injected-crash exit status.
const FAULT_EXIT: i32 = 86;

fn temp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plru-islands-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn islands(out: &Path, fault: Option<&str>, resume: bool, attempts: &str) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_evolve-islands"));
    cmd.args([
        "--smoke",
        "--mbx-timeout",
        "20",
        "--attempts",
        attempts,
        "--out",
    ])
    .arg(out)
    .env("SIM_RETRY_BASE_MS", "0")
    .env_remove("SIM_FAULT");
    if let Some(f) = fault {
        cmd.env("SIM_FAULT", f);
    }
    if resume {
        cmd.arg("--resume");
    }
    cmd.output().expect("spawn evolve-islands")
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Kill island 1's worker process while it commits its epoch-0 migration
/// mailbox; the fleet must fail visibly, then `--resume` must finish the
/// run bit-identically to an uninterrupted reference.
#[test]
fn killed_island_worker_resumes_bit_identical() {
    let ref_out = temp("ref");
    let out = temp("crash");

    let reference = islands(&ref_out, None, false, "3");
    assert!(
        reference.status.success(),
        "reference fleet must pass; stderr: {}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let want = std::fs::read(ref_out.join("evolved-islands.txt")).expect("reference artifact");

    // Crash: island 1's worker exits (code 86) while committing its
    // epoch-0 mailbox — after the tmp file is flushed, before the rename —
    // so island 0 starves on the missing mailbox and the whole fleet
    // fails. `--attempts 1` keeps the parent from healing it in-run.
    let crashed = islands(&out, Some("exit@mbx-island-1-epoch-0"), false, "1");
    assert!(
        !crashed.status.success(),
        "a killed worker must fail the fleet (is fault injection compiled in?)"
    );
    assert_ne!(
        crashed.status.code(),
        Some(FAULT_EXIT),
        "the parent reports the failure; only the worker dies at the fault"
    );
    assert!(
        !out.join("evolved-islands.txt").exists(),
        "no artifact from a failed fleet"
    );
    assert!(
        !evolve::island::mailbox_dir(&out)
            .join("mbx-island-1-epoch-0.mbx")
            .exists(),
        "the interrupted mailbox must not be committed"
    );
    let manifest =
        harness::manifest::Manifest::load(&out.join("manifest.json")).expect("manifest survives");
    assert_eq!(
        manifest.entry("island-1").unwrap().status,
        harness::manifest::Status::Failed,
        "the manifest names the dead worker"
    );

    // Resume: the workers respawn, island 1 re-runs from its seed (its
    // crash predates its first snapshot), island 0 resumes from its
    // checkpoint, and the ring replays to the identical result.
    let resumed = islands(&out, None, true, "3");
    assert!(
        resumed.status.success(),
        "resume must succeed; stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let got = std::fs::read(out.join("evolved-islands.txt")).expect("resumed artifact");
    assert_eq!(
        got, want,
        "resumed fleet must match the uninterrupted run byte-for-byte"
    );

    // A second resume short-circuits on the verified summary.
    let replayed = islands(&out, None, true, "3");
    assert!(replayed.status.success());
    assert!(
        stdout_of(&replayed).contains("already done, skipping"),
        "a finished fleet must not re-run"
    );

    for dir in [&ref_out, &out] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// A fresh (non-`--resume`) invocation after a crash starts clean rather
/// than trusting stale fleet state: the artifact still matches the
/// reference because the run is deterministic from its seed.
#[test]
fn fresh_rerun_after_crash_starts_clean_and_matches() {
    let ref_out = temp("fresh-ref");
    let out = temp("fresh");

    let reference = islands(&ref_out, None, false, "3");
    assert!(reference.status.success());
    let want = std::fs::read(ref_out.join("evolved-islands.txt")).expect("reference artifact");

    let crashed = islands(&out, Some("exit@mbx-island-1-epoch-0"), false, "1");
    assert!(!crashed.status.success());

    // No --resume: checkpoints and mailboxes from the crashed run are
    // cleared, the fleet re-runs from the seed, and the deterministic
    // artifact comes out identical anyway.
    let rerun = islands(&out, None, false, "3");
    assert!(
        rerun.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&rerun.stderr)
    );
    let got = std::fs::read(out.join("evolved-islands.txt")).expect("rerun artifact");
    assert_eq!(got, want, "a fresh rerun reproduces the reference exactly");

    for dir in [&ref_out, &out] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
