//! End-to-end fault drills for the experiment pipeline: the real
//! `run-all` binary under injected write faults and worker-spawn
//! failures. Complements the per-module injection tests (persist, pool,
//! cache, report, pipeline) by proving the recovery behavior composes
//! through a whole process run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const SUBSET: &str = "tab-vectors,tab-overhead";

fn temp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plru-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_all(out: &Path, cache: &Path, fault: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_run-all"));
    cmd.args(["--scale", "micro", "--only", SUBSET, "--out"])
        .arg(out)
        .env("SIM_CACHE_DIR", cache)
        .env("SIM_RETRY_BASE_MS", "0")
        .env_remove("SIM_FAULT");
    if let Some(f) = fault {
        cmd.env("SIM_FAULT", f);
    }
    cmd.output().expect("spawn run-all")
}

#[test]
fn torn_csv_write_is_retried_to_success() {
    let cache = temp("cache-torn");
    let out = temp("torn");
    let output = run_all(&out, &cache, Some("torn@tab-vectors.csv:n=1"));
    assert!(
        output.status.success(),
        "one torn write is absorbed by a retry; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(out.join("tab-vectors.csv").exists());
    assert!(
        !out.join("tab-vectors.csv.tmp").exists(),
        "no orphan temp file"
    );
    let manifest = harness::manifest::Manifest::load(&out.join("manifest.json")).unwrap();
    assert_eq!(
        manifest.entry("tab-vectors").unwrap().status,
        harness::manifest::Status::Done
    );
    assert_eq!(
        manifest.entry("tab-vectors").unwrap().attempts,
        2,
        "the manifest records the extra attempt"
    );
    for dir in [&cache, &out] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn unwritable_manifest_does_not_stop_the_run() {
    let cache = temp("cache-manifest");
    let out = temp("manifest");
    // Every manifest write fails; the experiments themselves must still
    // run to completion and their CSVs commit.
    let output = run_all(&out, &cache, Some("enospc@manifest.json:sticky"));
    assert!(
        output.status.success(),
        "manifest persistence is best-effort; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(out.join("tab-vectors.csv").exists());
    assert!(out.join("tab-overhead.csv").exists());
    assert!(
        !out.join("manifest.json").exists(),
        "the injected fault kept every manifest write out"
    );
    for dir in [&cache, &out] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn worker_spawn_failure_degrades_without_changing_results() {
    let cache_a = temp("cache-spawn-a");
    let cache_b = temp("cache-spawn-b");
    let ref_out = temp("spawn-ref");
    let out = temp("spawn");

    let reference = run_all(&ref_out, &cache_a, None);
    assert!(reference.status.success());

    // Every worker spawn fails: the pool degrades to caller-only
    // sequential execution, the run still completes, and — the replay
    // being deterministic — produces byte-identical artifacts.
    let degraded = run_all(&out, &cache_b, Some("spawn-fail:sticky"));
    assert!(
        degraded.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&degraded.stderr)
    );
    for file in ["tab-vectors.csv", "tab-overhead.csv"] {
        let want = std::fs::read(ref_out.join(file)).unwrap();
        let got = std::fs::read(out.join(file)).unwrap();
        assert_eq!(got, want, "{file} must not depend on worker count");
    }

    for dir in [&cache_a, &cache_b, &ref_out, &out] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
