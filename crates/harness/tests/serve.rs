//! The serving-mode chaos drill (PR 10 acceptance): real processes, real
//! sockets, real SIGKILL.
//!
//! Topology: one daemon, three concurrent client processes (tenants a, b,
//! c). Client `b` is SIGKILLed mid-stream; client `c` is pathologically
//! slow. The daemon must stay available throughout: `a` and `c` finish
//! with stats byte-identical to the single-process reference. Then the
//! *daemon* is SIGKILLed, restarted over the same snapshot directory, and
//! tenant `b` resumes and completes — also byte-identical to an
//! uninterrupted reference run.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SERVE: &str = env!("CARGO_BIN_EXE_serve");

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("serve-drill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills the child on drop so a failing assertion never leaks a daemon.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_daemon(dir: &TempDir, port_file: &str) -> (Reaper, String) {
    let child = Command::new(SERVE)
        .args([
            "--listen",
            "127.0.0.1:0",
            "--snapshot-dir",
            dir.join("snaps").to_str().unwrap(),
            "--snapshot-every",
            "64",
            "--port-file",
            dir.join(port_file).to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    let addr = wait_for_port(&dir.join(port_file));
    (Reaper(child), addr)
}

fn wait_for_port(path: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(s) = std::fs::read_to_string(path) {
            let s = s.trim();
            if !s.is_empty() {
                return s.to_string();
            }
        }
        assert!(Instant::now() < deadline, "daemon never published its port");
        std::thread::sleep(Duration::from_millis(20));
    }
}

struct ClientSpec<'a> {
    tenant: &'a str,
    accesses: u32,
    seed: u64,
    batch: u32,
    slow_ms: u32,
    resume: bool,
    kv: bool,
}

fn client_cmd(addr: &str, dir: &TempDir, s: &ClientSpec) -> Command {
    let mut cmd = Command::new(SERVE);
    cmd.args([
        "--client",
        "--connect",
        addr,
        "--tenant",
        s.tenant,
        "--accesses",
        &s.accesses.to_string(),
        "--seed",
        &s.seed.to_string(),
        "--batch",
        &s.batch.to_string(),
        "--slow-ms",
        &s.slow_ms.to_string(),
        "--out",
        dir.join(&format!("{}.txt", s.tenant)).to_str().unwrap(),
    ]);
    if s.resume {
        cmd.arg("--resume");
    }
    if s.kv {
        cmd.arg("--kv");
    }
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    cmd
}

fn reference(dir: &TempDir, tenant: &str, accesses: u32, seed: u64, kv: bool) -> String {
    let out = dir.join(&format!("{tenant}.ref.txt"));
    let mut cmd = Command::new(SERVE);
    cmd.args([
        "--reference",
        "--accesses",
        &accesses.to_string(),
        "--seed",
        &seed.to_string(),
        "--out",
        out.to_str().unwrap(),
    ]);
    if kv {
        cmd.arg("--kv");
    }
    let status = cmd.status().expect("run reference");
    assert!(status.success());
    std::fs::read_to_string(&out).unwrap()
}

fn client_output(dir: &TempDir, tenant: &str) -> String {
    std::fs::read_to_string(dir.join(&format!("{tenant}.txt"))).unwrap()
}

#[test]
fn chaos_drill() {
    let dir = TempDir::new("chaos");
    let (daemon, addr) = spawn_daemon(&dir, "port1.txt");

    // Three tenants in flight at once. `c` trickles (pathologically slow
    // peer); `b` streams in small batches so there is plenty of mid-stream
    // to be killed in.
    let a_spec = ClientSpec {
        tenant: "a",
        accesses: 1500,
        seed: 11,
        batch: 50,
        slow_ms: 0,
        resume: false,
        kv: false,
    };
    let b_spec = ClientSpec {
        tenant: "b",
        accesses: 2000,
        seed: 22,
        batch: 10,
        slow_ms: 5,
        resume: false,
        kv: false,
    };
    let c_spec = ClientSpec {
        tenant: "c",
        accesses: 600,
        seed: 33,
        batch: 20,
        slow_ms: 3,
        resume: false,
        kv: true,
    };
    let a = client_cmd(&addr, &dir, &a_spec).spawn().unwrap();
    let mut b = client_cmd(&addr, &dir, &b_spec).spawn().unwrap();
    let c = client_cmd(&addr, &dir, &c_spec).spawn().unwrap();

    // SIGKILL client b mid-stream (it needs ~2000/10*5ms = 1s; kill at
    // ~300ms so a meaningful prefix is in but nowhere near all of it).
    std::thread::sleep(Duration::from_millis(300));
    b.kill().expect("kill client b");
    b.wait().unwrap();

    // The daemon must stay available: the healthy tenants finish and
    // match their single-process references exactly.
    let a_status = a.wait_with_output().unwrap();
    let c_status = c.wait_with_output().unwrap();
    assert!(a_status.status.success(), "client a failed");
    assert!(c_status.status.success(), "slow client c failed");
    assert_eq!(
        client_output(&dir, "a"),
        reference(&dir, "a", 1500, 11, false),
        "tenant a diverged from reference"
    );
    assert_eq!(
        client_output(&dir, "c"),
        reference(&dir, "c", 600, 33, true),
        "slow KV tenant c diverged from reference"
    );

    // Give the daemon a beat to park + snapshot b's dead session, then
    // SIGKILL the daemon itself.
    std::thread::sleep(Duration::from_millis(400));
    drop(daemon); // Reaper: SIGKILL + reap

    // Restart over the same snapshot directory. Tenant b resumes from
    // whatever the snapshot holds and completes; the result must be
    // byte-identical to a run that was never interrupted at all.
    let (daemon2, addr2) = spawn_daemon(&dir, "port2.txt");
    let b2 = client_cmd(
        &addr2,
        &dir,
        &ClientSpec {
            resume: true,
            slow_ms: 0,
            ..b_spec
        },
    )
    .spawn()
    .unwrap();
    let b2_status = b2.wait_with_output().unwrap();
    assert!(b2_status.status.success(), "resumed client b failed");
    assert_eq!(
        client_output(&dir, "b"),
        reference(&dir, "b", 2000, 22, false),
        "resumed tenant b diverged: daemon did not restore bit-identically"
    );
    drop(daemon2);
}

#[test]
fn daemon_restart_without_clients_restores_sessions() {
    // A thinner restart check that doesn't depend on kill timing: run a
    // client partway (kill it), bounce the daemon, and confirm the parked
    // session count survives into the restarted process via a resume.
    let dir = TempDir::new("restart");
    let (daemon, addr) = spawn_daemon(&dir, "port1.txt");
    let mut b = client_cmd(
        &addr,
        &dir,
        &ClientSpec {
            tenant: "t",
            accesses: 4000,
            seed: 5,
            batch: 8,
            slow_ms: 4,
            resume: false,
            kv: false,
        },
    )
    .spawn()
    .unwrap();
    std::thread::sleep(Duration::from_millis(250));
    b.kill().unwrap();
    b.wait().unwrap();
    std::thread::sleep(Duration::from_millis(400));
    drop(daemon);

    let (daemon2, addr2) = spawn_daemon(&dir, "port2.txt");
    let done = client_cmd(
        &addr2,
        &dir,
        &ClientSpec {
            tenant: "t",
            accesses: 4000,
            seed: 5,
            batch: 64,
            slow_ms: 0,
            resume: true,
            kv: false,
        },
    )
    .status()
    .unwrap();
    assert!(done.success());
    assert_eq!(
        client_output(&dir, "t"),
        reference(&dir, "t", 4000, 5, false)
    );
    drop(daemon2);
}
