//! The monomorphized replay fast path must be behaviorally identical to
//! the boxed (`Box<dyn ReplacementPolicy>`) compatibility path: same hits,
//! misses, and evictions at the cache level, and bit-identical
//! `PolicyMeasurement`s at the harness level. The fast path only removes
//! virtual dispatch — never semantics.

use baselines::{DrripPolicy, TrueLru};
use gippr::DgipprPolicy;
use harness::stats::weighted_mean;
use harness::{
    measure_policy, policies, prepare_workloads, PolicyMeasurement, Scale, WorkloadData,
};
use mem_model::cpi::WindowPerfModel;
use mem_model::{replay_llc, replay_llc_mono};
use sim_core::{Access, CacheGeometry, ReplacementPolicy, SetAssocCache};

/// A deterministic stream mixing a cache-resident loop with a streaming
/// sweep — exercises hits, misses, and evictions.
fn mixed_stream(n: usize) -> Vec<Access> {
    (0..n)
        .map(|i| {
            let addr = if i % 2 == 0 {
                (i as u64 % 512) * 64
            } else {
                0x10_0000 + i as u64 * 64
            };
            Access::read(addr, 0x400).with_icount_delta(3)
        })
        .collect()
}

fn leaders(geom: &CacheGeometry) -> usize {
    (geom.sets() / 64).clamp(4, 32)
}

#[test]
fn generic_cache_matches_boxed_cache_step_by_step() {
    let geom = CacheGeometry::from_sets(64, 16, 64).unwrap();
    let mut mono = SetAssocCache::with_policy(geom, TrueLru::new(&geom));
    let mut boxed = SetAssocCache::new(geom, Box::new(TrueLru::new(&geom)));
    for a in mixed_stream(20_000) {
        let m = mono.access(&a);
        let b = boxed.access(&a);
        assert_eq!(m, b, "per-access outcome diverged at {a:?}");
    }
    assert_eq!(
        mono.stats(),
        boxed.stats(),
        "hits/misses/evictions must match"
    );
}

#[test]
fn replay_llc_mono_matches_dyn_for_each_policy() {
    let geom = CacheGeometry::from_sets(128, 16, 64).unwrap();
    let stream = mixed_stream(30_000);
    let warmup = mem_model::llc::default_warmup(stream.len());
    let perf = WindowPerfModel::default();

    type MonoRun<'a> = Box<dyn Fn() -> mem_model::LlcRunResult + 'a>;
    let checks: Vec<(&str, MonoRun)> = vec![
        (
            "LRU",
            Box::new(|| replay_llc_mono(&stream, geom, TrueLru::new(&geom), warmup, &perf)),
        ),
        (
            "DRRIP",
            Box::new(|| {
                replay_llc_mono(
                    &stream,
                    geom,
                    DrripPolicy::with_config(&geom, leaders(&geom), 10).unwrap(),
                    warmup,
                    &perf,
                )
            }),
        ),
        (
            "WN1-4-DGIPPR",
            Box::new(|| {
                replay_llc_mono(
                    &stream,
                    geom,
                    DgipprPolicy::with_config(
                        &geom,
                        gippr::vectors::wi_4dgippr().to_vec(),
                        leaders(&geom),
                        "WN1-4-DGIPPR",
                    )
                    .unwrap(),
                    warmup,
                    &perf,
                )
            }),
        ),
    ];
    let dyn_factories = [policies::lru(), policies::drrip(), {
        let vs = gippr::vectors::wi_4dgippr().to_vec();
        policies::dgippr(vs, "WN1-4-DGIPPR")
    }];

    for ((name, mono), factory) in checks.iter().zip(&dyn_factories) {
        let mono_run = mono();
        let dyn_run = replay_llc(&stream, geom, factory(&geom), warmup, &perf);
        assert_eq!(
            mono_run, dyn_run,
            "{name}: mono and dyn replay must be identical"
        );
        assert!(mono_run.stats.accesses > 0);
    }
}

/// `measure_policy` recomputed through the monomorphized path, for
/// comparison against the `PolicyFactory` (boxed) path.
fn measure_mono<P: ReplacementPolicy, F: Fn(&CacheGeometry) -> P>(
    workload: &WorkloadData,
    make: F,
    geom: CacheGeometry,
) -> PolicyMeasurement {
    let perf = WindowPerfModel::default();
    let mut mpki = Vec::new();
    let mut cycles = Vec::new();
    let mut misses = Vec::new();
    for sp in &workload.simpoints {
        let run = replay_llc_mono(&sp.stream, geom, make(&geom), sp.warmup, &perf);
        mpki.push((run.mpki(), sp.weight));
        cycles.push((run.cycles, sp.weight));
        misses.push((run.stats.misses as f64, sp.weight));
    }
    PolicyMeasurement {
        mpki: weighted_mean(&mpki, 0.0),
        cycles: weighted_mean(&cycles, 1.0),
        misses: weighted_mean(&misses, 0.0),
    }
}

#[test]
fn policy_measurements_identical_on_captured_workloads() {
    let workloads = prepare_workloads(
        Scale::Quick,
        &[
            traces::spec2006::Spec2006::Libquantum,
            traces::spec2006::Spec2006::Mcf,
        ],
    );
    let geom = Scale::Quick.hierarchy().llc;
    for w in &workloads {
        let lru_dyn = measure_policy(w, &policies::lru(), geom);
        let lru_mono = measure_mono(w, TrueLru::new, geom);
        assert_eq!(lru_dyn, lru_mono, "{}: LRU", w.bench);

        let drrip_dyn = measure_policy(w, &policies::drrip(), geom);
        let drrip_mono = measure_mono(
            w,
            |g| DrripPolicy::with_config(g, leaders(g), 10).unwrap(),
            geom,
        );
        assert_eq!(drrip_dyn, drrip_mono, "{}: DRRIP", w.bench);

        let vs = gippr::vectors::wi_4dgippr().to_vec();
        let quad_dyn = measure_policy(w, &policies::dgippr(vs.clone(), "WN1-4-DGIPPR"), geom);
        let quad_mono = measure_mono(
            w,
            |g| DgipprPolicy::with_config(g, vs.clone(), leaders(g), "WN1-4-DGIPPR").unwrap(),
            geom,
        );
        assert_eq!(quad_dyn, quad_mono, "{}: 4-DGIPPR", w.bench);
    }
}

#[test]
fn workload_cache_returns_byte_identical_streams() {
    let cache = harness::WorkloadCache::new();
    let bench = traces::spec2006::Spec2006::Sphinx3;
    let cached = cache.workload(Scale::Micro, bench);
    let fresh = harness::cache::capture_workload(Scale::Micro, bench);
    assert_eq!(cached.simpoints.len(), fresh.simpoints.len());
    for (c, f) in cached.simpoints.iter().zip(&fresh.simpoints) {
        assert_eq!(
            *c.stream, *f.stream,
            "cached stream must equal a fresh capture"
        );
    }
    // And asking again must not capture again.
    let before = cache.captures();
    let again = cache.workload(Scale::Micro, bench);
    assert_eq!(cache.captures(), before);
    assert!(std::sync::Arc::ptr_eq(&cached, &again));
}
