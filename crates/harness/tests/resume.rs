//! Kill-and-resume integration tests: drive the real `run-all` and
//! `evolve-vectors` binaries, crash them mid-run with deterministic
//! injected faults (`SIM_FAULT=exit@...` terminates the process with exit
//! code 86 at the targeted write, tmp file flushed but not committed),
//! resume with `--resume`, and require the final artifacts to be
//! **byte-identical** to an uninterrupted reference run.
//!
//! The binaries are compiled with fault injection here because cargo
//! unifies this test target's `sim-fault/injection` dev-dependency
//! feature into the whole build graph; release builds keep the no-op
//! hooks.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// `sim_core::persist::FAULT_EXIT_CODE`: the injected-crash exit status.
const FAULT_EXIT: i32 = 86;

/// Cheap experiment subset: no GA, no hierarchy captures, a few seconds
/// at micro scale. `tab-overhead` sits between the other two so a crash
/// on it leaves work both before (to skip) and after (to run) on resume.
const SUBSET: &str = "tab-vectors,tab-overhead,fig01";

fn temp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plru-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_all(out: &Path, cache: &Path, fault: Option<&str>, resume: bool) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_run-all"));
    cmd.args(["--scale", "micro", "--only", SUBSET, "--out"])
        .arg(out)
        .env("SIM_CACHE_DIR", cache)
        .env("SIM_RETRY_BASE_MS", "0")
        .env_remove("SIM_FAULT");
    if let Some(f) = fault {
        cmd.env("SIM_FAULT", f);
    }
    if resume {
        cmd.arg("--resume");
    }
    cmd.output().expect("spawn run-all")
}

fn evolve(out: &Path, fault: Option<&str>, resume: bool) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_evolve-vectors"));
    cmd.args(["--scale", "micro", "--out"])
        .arg(out)
        .env_remove("SIM_FAULT");
    if let Some(f) = fault {
        cmd.env("SIM_FAULT", f);
    }
    if resume {
        cmd.arg("--resume");
    }
    cmd.output().expect("spawn evolve-vectors")
}

/// Every `*.csv` in `dir`, by file name.
fn csvs(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("output dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "csv") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.insert(name, std::fs::read(&path).expect("readable csv"));
        }
    }
    out
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn crashed_run_all_resumes_byte_identical() {
    let cache = temp("cache-a");
    let ref_out = temp("ref-a");
    let out = temp("crash-a");

    let reference = run_all(&ref_out, &cache, None, false);
    assert!(reference.status.success(), "reference run must pass");
    let want = csvs(&ref_out);
    assert_eq!(want.len(), 3, "reference produced the whole subset");

    // Crash: the process exits (code 86) while committing tab-overhead's
    // CSV — after the tmp file is flushed, before the rename.
    let crashed = run_all(&out, &cache, Some("exit@tab-overhead.csv"), false);
    assert_eq!(
        crashed.status.code(),
        Some(FAULT_EXIT),
        "injected exit fault must terminate the run (is fault injection \
         compiled in?); stderr: {}",
        String::from_utf8_lossy(&crashed.stderr)
    );
    assert!(
        !out.join("tab-overhead.csv").exists(),
        "interrupted artifact must not be committed"
    );
    let manifest = harness::manifest::Manifest::load(&out.join("manifest.json"))
        .expect("manifest survives the crash");
    assert_eq!(
        manifest.entry("tab-vectors").unwrap().status,
        harness::manifest::Status::Done
    );
    assert_eq!(
        manifest.entry("tab-overhead").unwrap().status,
        harness::manifest::Status::Running,
        "the manifest names the interrupted experiment"
    );

    // Resume: completed work is skipped, the interrupted experiment and
    // everything after it runs, and the results match the reference
    // byte for byte.
    let resumed = run_all(&out, &cache, None, true);
    assert!(
        resumed.status.success(),
        "resume must succeed; stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let log = stdout_of(&resumed);
    assert!(
        log.contains("[tab-vectors] already done, skipping"),
        "resume must skip completed experiments; stdout: {log}"
    );
    assert_eq!(csvs(&out), want, "resumed run must be byte-identical");

    for dir in [&cache, &ref_out, &out] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn exhausted_retries_fail_soft_then_resume_recovers() {
    let cache = temp("cache-b");
    let out = temp("failsoft-b");

    // A sticky ENOSPC on fig01's artifact burns all retry attempts; the
    // run must still finish the other experiments and exit nonzero.
    let failed = run_all(&out, &cache, Some("enospc@fig01.csv:sticky"), false);
    assert!(!failed.status.success(), "a failed experiment is reported");
    assert_ne!(
        failed.status.code(),
        Some(FAULT_EXIT),
        "fail-soft, not a crash"
    );
    let manifest = harness::manifest::Manifest::load(&out.join("manifest.json")).unwrap();
    assert_eq!(
        manifest.entry("fig01").unwrap().status,
        harness::manifest::Status::Failed
    );
    assert_eq!(manifest.entry("fig01").unwrap().attempts, 3);
    assert_eq!(
        manifest.entry("tab-vectors").unwrap().status,
        harness::manifest::Status::Done,
        "unaffected experiments still complete"
    );

    // With the fault gone, a resume re-runs exactly the failed experiment.
    let resumed = run_all(&out, &cache, None, true);
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let log = stdout_of(&resumed);
    assert!(log.contains("[tab-vectors] already done, skipping"));
    assert!(out.join("fig01.csv").exists());
    let manifest = harness::manifest::Manifest::load(&out.join("manifest.json")).unwrap();
    assert_eq!(
        manifest.entry("fig01").unwrap().status,
        harness::manifest::Status::Done
    );

    for dir in [&cache, &out] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn crashed_evolve_vectors_resumes_bit_identical() {
    let ref_out = temp("ev-ref");
    let out = temp("ev-crash");

    let reference = evolve(&ref_out, None, false);
    assert!(
        reference.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let want = std::fs::read(ref_out.join("evolved-vectors.txt")).expect("reference artifact");

    // Crash during the fourth checkpoint commit, deep inside the GA
    // stages.
    let crashed = evolve(&out, Some("exit@.ckpt:n=4"), false);
    assert_eq!(
        crashed.status.code(),
        Some(FAULT_EXIT),
        "injected exit fault must terminate the run; stderr: {}",
        String::from_utf8_lossy(&crashed.stderr)
    );
    assert!(
        !out.join("evolved-vectors.txt").exists(),
        "no artifact yet at crash time"
    );
    assert!(
        std::fs::read_dir(out.join("checkpoints"))
            .map(|rd| rd.count() > 0)
            .unwrap_or(false),
        "checkpoints exist for the resume"
    );

    // The resumed run must continue the interrupted GA bit-identically:
    // same best vectors, same fitness digits, byte-for-byte artifact.
    let resumed = evolve(&out, None, true);
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert!(stdout_of(&resumed).contains("resuming from checkpoints"));
    let got = std::fs::read(out.join("evolved-vectors.txt")).expect("resumed artifact");
    assert_eq!(
        got, want,
        "resumed evolve-vectors must match the uninterrupted run byte-for-byte"
    );
    assert!(
        std::fs::read_dir(out.join("checkpoints"))
            .map(|rd| rd.count() == 0)
            .unwrap_or(true),
        "checkpoints are cleared after a successful run"
    );

    for dir in [&ref_out, &out] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
