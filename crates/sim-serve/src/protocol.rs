//! The serving wire protocol: small, length-prefixed, CRC-framed binary
//! frames over any byte stream (TCP or Unix sockets).
//!
//! Every frame is laid out as (all integers little-endian):
//!
//! ```text
//! [payload_len u32][kind u8][payload bytes][crc32 u32]
//! ```
//!
//! where the CRC-32 (same IEEE-reflected polynomial as the `traces`
//! container) covers the kind byte plus the payload, so a corrupted or
//! torn frame is always detected before it is interpreted. Access batches
//! reuse the `traces` container **record layout** verbatim — 21 bytes per
//! record: kind `u8`, addr `u64`, pc `u64`, icount_delta `u32` — so a
//! captured container body can be streamed without re-encoding.
//!
//! The protocol is versioned through the `Hello` frame; a server that
//! cannot speak the client's version answers with a typed
//! [`ErrorCode::BadHello`] and closes. Malformed input of any kind —
//! oversized length prefix, CRC mismatch, truncated stream, unknown frame
//! kind, bad record bytes — decodes to a typed [`ProtoError`], never a
//! panic.

use sim_core::{Access, AccessKind, CacheStats};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};
use traces::format::Crc32;

/// Protocol version spoken by this build (carried in `Hello`).
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on a frame's payload length. A length prefix above this is
/// rejected before any allocation happens, so a hostile or corrupted
/// 4-byte prefix can never balloon server memory.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// One record of the `traces` container layout on the wire.
pub const RECORD_BYTES: usize = 21;

// Client->server frame kinds.
const K_HELLO: u8 = 0x01;
const K_ACCESSES: u8 = 0x02;
const K_KV_BATCH: u8 = 0x03;
const K_FINISH: u8 = 0x04;
const K_BYE: u8 = 0x05;

// Server->client frame kinds.
const K_HELLO_ACK: u8 = 0x81;
const K_DELTA: u8 = 0x82;
const K_THROTTLED: u8 = 0x83;
const K_WARNING: u8 = 0x84;
const K_ERROR: u8 = 0x85;
const K_FINAL: u8 = 0x86;
const K_SRV_BYE: u8 = 0x87;

/// Error decoding or transporting a frame.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying I/O failure (includes injected connection faults).
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge {
        /// Claimed payload length.
        len: usize,
    },
    /// The frame CRC disagrees with the received bytes.
    BadCrc {
        /// CRC carried by the frame.
        expected: u32,
        /// CRC computed over the received kind+payload.
        got: u32,
    },
    /// The stream ended mid-frame.
    Truncated,
    /// Unknown frame kind byte.
    BadKind(u8),
    /// The payload did not decode as the frame kind requires.
    BadPayload(&'static str),
    /// The peer speaks an unsupported protocol version.
    BadVersion(u32),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "connection error: {e}"),
            ProtoError::TooLarge { len } => {
                write!(f, "frame payload of {len} bytes exceeds {MAX_FRAME_LEN}")
            }
            ProtoError::BadCrc { expected, got } => {
                write!(
                    f,
                    "frame crc mismatch: header {expected:#010x}, computed {got:#010x}"
                )
            }
            ProtoError::Truncated => write!(f, "stream ended mid-frame"),
            ProtoError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtoError::BadPayload(what) => write!(f, "malformed frame payload: {what}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
        }
    }
}

impl Error for ProtoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        // An EOF mid-read is a truncation, not a generic I/O failure: the
        // distinction matters for half-open detection and typed replies.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated
        } else {
            ProtoError::Io(e)
        }
    }
}

/// Typed error codes the server can answer with (the [`ServerFrame::Error`]
/// payload). Stable on the wire: new codes append, existing values never
/// change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame could not be decoded (bad kind, bad payload, truncation).
    BadFrame,
    /// The frame CRC did not match.
    BadCrc,
    /// The frame length prefix exceeded the cap.
    TooLarge,
    /// The `Hello` was malformed, out of order, or version-incompatible.
    BadHello,
    /// The `Hello` named a policy the server's roster does not have.
    UnknownPolicy,
    /// An access record carried an invalid kind byte.
    BadRecord,
    /// A frame arrived that the session state does not allow.
    Protocol,
    /// The tenant already has a live connection.
    SessionBusy,
    /// Internal server failure.
    Internal,
}

impl ErrorCode {
    /// Wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::BadCrc => 2,
            ErrorCode::TooLarge => 3,
            ErrorCode::BadHello => 4,
            ErrorCode::UnknownPolicy => 5,
            ErrorCode::BadRecord => 6,
            ErrorCode::Protocol => 7,
            ErrorCode::SessionBusy => 8,
            ErrorCode::Internal => 9,
        }
    }

    /// Decodes a wire value.
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadCrc,
            3 => ErrorCode::TooLarge,
            4 => ErrorCode::BadHello,
            5 => ErrorCode::UnknownPolicy,
            6 => ErrorCode::BadRecord,
            7 => ErrorCode::Protocol,
            8 => ErrorCode::SessionBusy,
            9 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// Warning codes carried by [`ServerFrame::Warning`].
pub mod warning {
    /// Session snapshots failed persistently; the session continues
    /// **ephemeral** (a daemon restart will not resume it).
    pub const SNAPSHOT_DEGRADED: u8 = 1;
}

/// The cache dimensions a tenant asks for, as carried by `Hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometrySpec {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
}

/// Session-opening handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version the client speaks.
    pub version: u32,
    /// Tenant identity; sessions and snapshots are keyed by it.
    pub tenant: String,
    /// Resume the tenant's snapshotted session instead of starting fresh.
    pub resume: bool,
    /// Interpret ingest as KV operations ([`ClientFrame::KvBatch`]).
    pub kv_mode: bool,
    /// Requested cache dimensions.
    pub geometry: GeometrySpec,
    /// Roster subset to evaluate; empty means the server default.
    pub roster: Vec<String>,
    /// Push a stats delta every this many ingested accesses (0 = server
    /// default).
    pub delta_every: u64,
}

/// One KV-mode operation: a string key, read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvOp {
    /// True for a put (maps to a write access).
    pub write: bool,
    /// The key; hashed to a line address server-side.
    pub key: String,
}

/// Per-policy cumulative counters inside a [`Delta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRow {
    /// Roster policy name.
    pub name: String,
    /// Cumulative cache statistics since session start.
    pub stats: CacheStats,
}

/// An incremental (cumulative-counter) stats push.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Monotonic delta sequence number within the session.
    pub seq: u64,
    /// First access index this delta's increment covers.
    pub covered_from: u64,
    /// One past the last covered access index (cumulative counters run
    /// from access 0 to here).
    pub covered_to: u64,
    /// Cumulative instructions represented by the stream so far.
    pub instructions: u64,
    /// Cumulative per-policy counters, in session roster order.
    pub rows: Vec<PolicyRow>,
}

impl Delta {
    /// Misses per thousand instructions for row `i`.
    pub fn mpki(&self, i: usize) -> f64 {
        self.rows[i].stats.mpki(self.instructions)
    }
}

/// One tenant's entry on the cross-tenant leaderboard.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderboardRow {
    /// Tenant identity.
    pub tenant: String,
    /// The roster policy with the lowest MPKI on this tenant's traffic.
    pub best_policy: String,
    /// Accesses the verdict is based on.
    pub accesses: u64,
    /// The winning policy's MPKI.
    pub mpki: f64,
}

/// Frames a client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Open (or resume) a session.
    Hello(Hello),
    /// A batch of accesses in `traces` record layout.
    Accesses(Vec<Access>),
    /// A batch of KV operations (KV-mode sessions only).
    KvBatch(Vec<KvOp>),
    /// Flush: push a final delta and the leaderboard, snapshot the session.
    Finish,
    /// Close the connection (the session stays resumable).
    Bye,
}

/// Frames a server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// Session opened. `resumed` is the number of accesses already
    /// ingested (0 for a fresh session); a resuming client skips that
    /// prefix of its stream.
    HelloAck {
        /// Server-assigned session id.
        session: u64,
        /// Accesses already ingested into the (resumed) session.
        resumed: u64,
        /// The resolved roster the session evaluates.
        roster: Vec<String>,
    },
    /// Incremental stats push.
    Delta(Delta),
    /// The client was too slow to drain deltas: `coalesced` pushes were
    /// merged into the delta sent just before this frame.
    Throttled {
        /// Number of deltas merged away since the last drained one.
        coalesced: u64,
    },
    /// Non-fatal degradation notice (see [`warning`]).
    Warning {
        /// Warning code.
        code: u8,
        /// Human-readable context.
        message: String,
    },
    /// Typed error. Fatal for the connection unless stated otherwise.
    Error {
        /// Error class.
        code: ErrorCode,
        /// Human-readable context.
        message: String,
    },
    /// Answer to `Finish`: the final cumulative delta plus the
    /// cross-tenant leaderboard.
    Final {
        /// Final cumulative stats.
        delta: Delta,
        /// Cross-tenant standings at the time of the flush.
        leaderboard: Vec<LeaderboardRow>,
    },
    /// Server-side close.
    Bye,
}

// ---------------------------------------------------------------------------
// Encoding primitives.

pub(crate) fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize, "string too long for wire");
    put_u16(buf, bytes.len() as u16);
    buf.extend_from_slice(bytes);
}

/// Bounds-checked, panic-free payload cursor.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProtoError::BadPayload("short payload"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadPayload("invalid utf-8"))
    }

    pub(crate) fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::BadPayload("trailing bytes"))
        }
    }
}

fn put_access(buf: &mut Vec<u8>, a: &Access) {
    // The `traces` container record layout, byte for byte.
    buf.push(match a.kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::Writeback => 2,
    });
    put_u64(buf, a.addr);
    put_u64(buf, a.pc);
    put_u32(buf, a.icount_delta);
}

fn get_access(c: &mut Cursor<'_>) -> Result<Access, ProtoError> {
    let kind = match c.u8()? {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        2 => AccessKind::Writeback,
        other => return Err(ProtoError::BadKind(other)),
    };
    Ok(Access {
        kind,
        addr: c.u64()?,
        pc: c.u64()?,
        icount_delta: c.u32()?,
    })
}

fn put_stats(buf: &mut Vec<u8>, s: &CacheStats) {
    put_u64(buf, s.accesses);
    put_u64(buf, s.hits);
    put_u64(buf, s.misses);
    put_u64(buf, s.evictions);
    put_u64(buf, s.writebacks);
    put_u64(buf, s.bypasses);
}

fn get_stats(c: &mut Cursor<'_>) -> Result<CacheStats, ProtoError> {
    Ok(CacheStats {
        accesses: c.u64()?,
        hits: c.u64()?,
        misses: c.u64()?,
        evictions: c.u64()?,
        writebacks: c.u64()?,
        bypasses: c.u64()?,
    })
}

fn put_delta(buf: &mut Vec<u8>, d: &Delta) {
    put_u64(buf, d.seq);
    put_u64(buf, d.covered_from);
    put_u64(buf, d.covered_to);
    put_u64(buf, d.instructions);
    put_u16(buf, d.rows.len() as u16);
    for row in &d.rows {
        put_str(buf, &row.name);
        put_stats(buf, &row.stats);
    }
}

fn get_delta(c: &mut Cursor<'_>) -> Result<Delta, ProtoError> {
    let seq = c.u64()?;
    let covered_from = c.u64()?;
    let covered_to = c.u64()?;
    let instructions = c.u64()?;
    let n = c.u16()? as usize;
    let mut rows = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        rows.push(PolicyRow {
            name: c.string()?,
            stats: get_stats(c)?,
        });
    }
    Ok(Delta {
        seq,
        covered_from,
        covered_to,
        instructions,
        rows,
    })
}

// ---------------------------------------------------------------------------
// Frame transport.

/// Writes one frame (length prefix, kind, payload, CRC).
///
/// # Errors
///
/// Propagates sink I/O failures.
pub fn write_frame(w: &mut dyn Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN, "oversized frame built");
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(payload);
    // One buffered write per frame so a frame is never interleaved with
    // another thread's partial write at the `Write` level.
    let mut out = Vec::with_capacity(9 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    out.push(kind);
    out.extend_from_slice(payload);
    put_u32(&mut out, crc.finish());
    w.write_all(&out)?;
    w.flush()
}

/// Reads one frame, verifying the length cap and CRC. Returns the kind
/// byte and payload.
///
/// # Errors
///
/// Typed [`ProtoError`] for any malformed input; never panics.
pub fn read_frame(r: &mut dyn Read) -> Result<(u8, Vec<u8>), ProtoError> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::TooLarge { len });
    }
    let kind = head[4];
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut tail = [0u8; 4];
    r.read_exact(&mut tail)?;
    let expected = u32::from_le_bytes(tail);
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(&payload);
    let got = crc.finish();
    if expected != got {
        return Err(ProtoError::BadCrc { expected, got });
    }
    Ok((kind, payload))
}

impl ClientFrame {
    /// Encodes into (kind, payload).
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut buf = Vec::new();
        match self {
            ClientFrame::Hello(h) => {
                put_u32(&mut buf, h.version);
                let flags = u8::from(h.resume) | (u8::from(h.kv_mode) << 1);
                buf.push(flags);
                put_u64(&mut buf, h.geometry.size_bytes);
                put_u32(&mut buf, h.geometry.ways);
                put_u32(&mut buf, h.geometry.line_bytes);
                put_u64(&mut buf, h.delta_every);
                put_str(&mut buf, &h.tenant);
                put_u16(&mut buf, h.roster.len() as u16);
                for name in &h.roster {
                    put_str(&mut buf, name);
                }
                (K_HELLO, buf)
            }
            ClientFrame::Accesses(batch) => {
                put_u32(&mut buf, batch.len() as u32);
                for a in batch {
                    put_access(&mut buf, a);
                }
                (K_ACCESSES, buf)
            }
            ClientFrame::KvBatch(ops) => {
                put_u32(&mut buf, ops.len() as u32);
                for op in ops {
                    buf.push(u8::from(op.write));
                    put_str(&mut buf, &op.key);
                }
                (K_KV_BATCH, buf)
            }
            ClientFrame::Finish => (K_FINISH, buf),
            ClientFrame::Bye => (K_BYE, buf),
        }
    }

    /// Decodes from (kind, payload).
    ///
    /// # Errors
    ///
    /// Typed [`ProtoError`] for malformed payloads; never panics.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<ClientFrame, ProtoError> {
        let mut c = Cursor::new(payload);
        let frame = match kind {
            K_HELLO => {
                let version = c.u32()?;
                let flags = c.u8()?;
                let geometry = GeometrySpec {
                    size_bytes: c.u64()?,
                    ways: c.u32()?,
                    line_bytes: c.u32()?,
                };
                let delta_every = c.u64()?;
                let tenant = c.string()?;
                let n = c.u16()? as usize;
                let mut roster = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    roster.push(c.string()?);
                }
                ClientFrame::Hello(Hello {
                    version,
                    tenant,
                    resume: flags & 1 != 0,
                    kv_mode: flags & 2 != 0,
                    geometry,
                    roster,
                    delta_every,
                })
            }
            K_ACCESSES => {
                let n = c.u32()? as usize;
                // The count must be consistent with the payload length
                // before anything is allocated for it.
                if n.checked_mul(RECORD_BYTES) != Some(payload.len().saturating_sub(4)) {
                    return Err(ProtoError::BadPayload("record count disagrees with length"));
                }
                let mut batch = Vec::with_capacity(n);
                for _ in 0..n {
                    batch.push(get_access(&mut c)?);
                }
                ClientFrame::Accesses(batch)
            }
            K_KV_BATCH => {
                let n = c.u32()? as usize;
                let mut ops = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let write = match c.u8()? {
                        0 => false,
                        1 => true,
                        other => return Err(ProtoError::BadKind(other)),
                    };
                    ops.push(KvOp {
                        write,
                        key: c.string()?,
                    });
                }
                ClientFrame::KvBatch(ops)
            }
            K_FINISH => ClientFrame::Finish,
            K_BYE => ClientFrame::Bye,
            other => return Err(ProtoError::BadKind(other)),
        };
        c.finish()?;
        Ok(frame)
    }
}

impl ServerFrame {
    /// Encodes into (kind, payload).
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut buf = Vec::new();
        match self {
            ServerFrame::HelloAck {
                session,
                resumed,
                roster,
            } => {
                put_u64(&mut buf, *session);
                put_u64(&mut buf, *resumed);
                put_u16(&mut buf, roster.len() as u16);
                for name in roster {
                    put_str(&mut buf, name);
                }
                (K_HELLO_ACK, buf)
            }
            ServerFrame::Delta(d) => {
                put_delta(&mut buf, d);
                (K_DELTA, buf)
            }
            ServerFrame::Throttled { coalesced } => {
                put_u64(&mut buf, *coalesced);
                (K_THROTTLED, buf)
            }
            ServerFrame::Warning { code, message } => {
                buf.push(*code);
                put_str(&mut buf, message);
                (K_WARNING, buf)
            }
            ServerFrame::Error { code, message } => {
                buf.push(code.to_u8());
                put_str(&mut buf, message);
                (K_ERROR, buf)
            }
            ServerFrame::Final { delta, leaderboard } => {
                put_delta(&mut buf, delta);
                put_u16(&mut buf, leaderboard.len() as u16);
                for row in leaderboard {
                    put_str(&mut buf, &row.tenant);
                    put_str(&mut buf, &row.best_policy);
                    put_u64(&mut buf, row.accesses);
                    put_u64(&mut buf, row.mpki.to_bits());
                }
                (K_FINAL, buf)
            }
            ServerFrame::Bye => (K_SRV_BYE, buf),
        }
    }

    /// Decodes from (kind, payload).
    ///
    /// # Errors
    ///
    /// Typed [`ProtoError`] for malformed payloads; never panics.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<ServerFrame, ProtoError> {
        let mut c = Cursor::new(payload);
        let frame = match kind {
            K_HELLO_ACK => {
                let session = c.u64()?;
                let resumed = c.u64()?;
                let n = c.u16()? as usize;
                let mut roster = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    roster.push(c.string()?);
                }
                ServerFrame::HelloAck {
                    session,
                    resumed,
                    roster,
                }
            }
            K_DELTA => ServerFrame::Delta(get_delta(&mut c)?),
            K_THROTTLED => ServerFrame::Throttled {
                coalesced: c.u64()?,
            },
            K_WARNING => ServerFrame::Warning {
                code: c.u8()?,
                message: c.string()?,
            },
            K_ERROR => {
                let code = ErrorCode::from_u8(c.u8()?)
                    .ok_or(ProtoError::BadPayload("unknown error code"))?;
                ServerFrame::Error {
                    code,
                    message: c.string()?,
                }
            }
            K_FINAL => {
                let delta = get_delta(&mut c)?;
                let n = c.u16()? as usize;
                let mut leaderboard = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    leaderboard.push(LeaderboardRow {
                        tenant: c.string()?,
                        best_policy: c.string()?,
                        accesses: c.u64()?,
                        mpki: c.f64()?,
                    });
                }
                ServerFrame::Final { delta, leaderboard }
            }
            K_SRV_BYE => ServerFrame::Bye,
            other => return Err(ProtoError::BadKind(other)),
        };
        c.finish()?;
        Ok(frame)
    }
}

/// Writes a client frame to `w`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn send_client(w: &mut dyn Write, frame: &ClientFrame) -> io::Result<()> {
    let (kind, payload) = frame.encode();
    write_frame(w, kind, &payload)
}

/// Writes a server frame to `w`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn send_server(w: &mut dyn Write, frame: &ServerFrame) -> io::Result<()> {
    let (kind, payload) = frame.encode();
    write_frame(w, kind, &payload)
}

/// Reads and decodes one client frame.
///
/// # Errors
///
/// Typed [`ProtoError`] for malformed input; never panics.
pub fn recv_client(r: &mut dyn Read) -> Result<ClientFrame, ProtoError> {
    let (kind, payload) = read_frame(r)?;
    ClientFrame::decode(kind, &payload)
}

/// Reads and decodes one server frame.
///
/// # Errors
///
/// Typed [`ProtoError`] for malformed input; never panics.
pub fn recv_server(r: &mut dyn Read) -> Result<ServerFrame, ProtoError> {
    let (kind, payload) = read_frame(r)?;
    ServerFrame::decode(kind, &payload)
}

/// Maps a decode error onto the typed wire error code a server answers
/// with.
pub fn error_code_for(e: &ProtoError) -> ErrorCode {
    match e {
        ProtoError::TooLarge { .. } => ErrorCode::TooLarge,
        ProtoError::BadCrc { .. } => ErrorCode::BadCrc,
        ProtoError::BadVersion(_) => ErrorCode::BadHello,
        ProtoError::BadKind(k) if *k <= 2 => ErrorCode::BadRecord,
        _ => ErrorCode::BadFrame,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_delta() -> Delta {
        Delta {
            seq: 7,
            covered_from: 1000,
            covered_to: 2000,
            instructions: 12345,
            rows: vec![
                PolicyRow {
                    name: "LRU".into(),
                    stats: CacheStats {
                        accesses: 2000,
                        hits: 1500,
                        misses: 500,
                        evictions: 400,
                        writebacks: 100,
                        bypasses: 0,
                    },
                },
                PolicyRow {
                    name: "WI-GIPPR".into(),
                    stats: CacheStats::new(),
                },
            ],
        }
    }

    fn roundtrip_client(frame: ClientFrame) {
        let mut buf = Vec::new();
        send_client(&mut buf, &frame).unwrap();
        let decoded = recv_client(&mut &buf[..]).unwrap();
        assert_eq!(decoded, frame);
    }

    fn roundtrip_server(frame: ServerFrame) {
        let mut buf = Vec::new();
        send_server(&mut buf, &frame).unwrap();
        let decoded = recv_server(&mut &buf[..]).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn client_frames_round_trip() {
        roundtrip_client(ClientFrame::Hello(Hello {
            version: PROTOCOL_VERSION,
            tenant: "tenant-a".into(),
            resume: true,
            kv_mode: false,
            geometry: GeometrySpec {
                size_bytes: 128 * 1024,
                ways: 16,
                line_bytes: 64,
            },
            roster: vec!["LRU".into(), "PseudoLRU".into()],
            delta_every: 4096,
        }));
        roundtrip_client(ClientFrame::Accesses(vec![
            Access::read(0x1000, 0x400).with_icount_delta(3),
            Access::write(0xdead_beef, 0x404),
            Access {
                addr: !63,
                pc: 0,
                kind: AccessKind::Writeback,
                icount_delta: 0,
            },
        ]));
        roundtrip_client(ClientFrame::Accesses(Vec::new()));
        roundtrip_client(ClientFrame::KvBatch(vec![
            KvOp {
                write: false,
                key: "user:123".into(),
            },
            KvOp {
                write: true,
                key: "session:abc".into(),
            },
        ]));
        roundtrip_client(ClientFrame::Finish);
        roundtrip_client(ClientFrame::Bye);
    }

    #[test]
    fn server_frames_round_trip() {
        roundtrip_server(ServerFrame::HelloAck {
            session: 42,
            resumed: 9999,
            roster: vec!["LRU".into()],
        });
        roundtrip_server(ServerFrame::Delta(sample_delta()));
        roundtrip_server(ServerFrame::Throttled { coalesced: 17 });
        roundtrip_server(ServerFrame::Warning {
            code: warning::SNAPSHOT_DEGRADED,
            message: "snapshots failing; session now ephemeral".into(),
        });
        roundtrip_server(ServerFrame::Error {
            code: ErrorCode::UnknownPolicy,
            message: "no such policy \"XYZ\"".into(),
        });
        roundtrip_server(ServerFrame::Final {
            delta: sample_delta(),
            leaderboard: vec![LeaderboardRow {
                tenant: "tenant-a".into(),
                best_policy: "WI-GIPPR".into(),
                accesses: 100_000,
                mpki: 12.375,
            }],
        });
        roundtrip_server(ServerFrame::Bye);
    }

    #[test]
    fn access_record_layout_matches_traces_container() {
        // The wire batch body must be byte-identical to the container's
        // record bytes, so captured traces stream without re-encoding.
        let accesses = vec![
            Access::read(0x1000, 0x400).with_icount_delta(3),
            Access::write(0xdead_beef, 0x404).with_icount_delta(1),
        ];
        let mut container = Vec::new();
        let mut w = traces::TraceWriter::new(&mut container).unwrap();
        for a in &accesses {
            w.write(a).unwrap();
        }
        w.finish().unwrap();
        let record_bytes = &container[12..12 + accesses.len() * RECORD_BYTES];

        let (_, payload) = ClientFrame::Accesses(accesses).encode();
        assert_eq!(&payload[4..], record_bytes);
    }

    #[test]
    fn crc_damage_is_detected() {
        let mut buf = Vec::new();
        send_client(&mut buf, &ClientFrame::Finish).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x10;
        assert!(matches!(
            recv_client(&mut &buf[..]),
            Err(ProtoError::BadCrc { .. }) | Err(ProtoError::BadKind(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        buf.push(K_FINISH);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, ProtoError::TooLarge { .. }), "{err}");
    }

    #[test]
    fn truncation_is_typed() {
        let mut buf = Vec::new();
        send_client(&mut buf, &ClientFrame::Accesses(vec![Access::read(0, 0)])).unwrap();
        for cut in 0..buf.len() {
            let err = recv_client(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtoError::Truncated),
                "cut at {cut}: unexpected {err}"
            );
        }
    }

    #[test]
    fn record_count_must_match_payload_length() {
        let (kind, mut payload) = ClientFrame::Accesses(vec![Access::read(0, 0)]).encode();
        // Lie about the count: claims 2 records but carries 1.
        payload[0..4].copy_from_slice(&2u32.to_le_bytes());
        let err = ClientFrame::decode(kind, &payload).unwrap_err();
        assert!(matches!(err, ProtoError::BadPayload(_)), "{err}");
        // An absurd count must be rejected without allocating for it.
        payload[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = ClientFrame::decode(kind, &payload).unwrap_err();
        assert!(matches!(err, ProtoError::BadPayload(_)), "{err}");
    }

    #[test]
    fn unknown_kind_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x7f, b"").unwrap();
        assert!(matches!(
            recv_client(&mut &buf[..]),
            Err(ProtoError::BadKind(0x7f))
        ));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ProtoError::Io(io::Error::other("x")),
            ProtoError::TooLarge { len: 1 },
            ProtoError::BadCrc {
                expected: 1,
                got: 2,
            },
            ProtoError::Truncated,
            ProtoError::BadKind(9),
            ProtoError::BadPayload("p"),
            ProtoError::BadVersion(3),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_codes_round_trip() {
        for v in 1..=9u8 {
            let code = ErrorCode::from_u8(v).unwrap();
            assert_eq!(code.to_u8(), v);
        }
        assert!(ErrorCode::from_u8(0).is_none());
        assert!(ErrorCode::from_u8(10).is_none());
    }
}
