//! Hashed timing wheel for connection deadlines.
//!
//! The server gives every connection an idle deadline: each ingest frame
//! pushes it out, and a connection whose deadline passes — an idle client,
//! or the half-open remnant of a peer that vanished without a FIN — gets
//! its socket shut down, which unblocks the reader thread and tears the
//! connection down through the normal error path.
//!
//! The wheel is **tick-based and pure**: it knows nothing about wall
//! clocks or threads, so tests drive it deterministically. The server maps
//! real time onto ticks in its sweeper loop. Rescheduling is lazy: a
//! reschedule just records the new deadline and drops a new cookie into
//! the wheel; stale cookies from earlier deadlines are recognized and
//! discarded when their slot comes around, which keeps `schedule` O(1)
//! instead of hunting through slots to remove the old entry.

use std::collections::HashMap;

/// Cookie stored in a slot: who, and for which deadline the cookie was
/// minted (stale cookies are detected by comparing against the live
/// deadline).
#[derive(Debug, Clone, Copy)]
struct Cookie {
    id: u64,
    deadline: u64,
}

/// A hashed timing wheel over abstract ticks.
#[derive(Debug)]
pub struct DeadlineWheel {
    slots: Vec<Vec<Cookie>>,
    /// The live deadline per id; the single source of truth.
    armed: HashMap<u64, u64>,
    /// Last tick fully processed by [`DeadlineWheel::advance`].
    now: u64,
}

impl DeadlineWheel {
    /// A wheel with `slots` buckets (minimum 1). More slots means fewer
    /// stale-cookie rescans for long deadlines; correctness never depends
    /// on the count.
    pub fn new(slots: usize) -> Self {
        DeadlineWheel {
            slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
            armed: HashMap::new(),
            now: 0,
        }
    }

    /// Last processed tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of armed deadlines.
    pub fn armed_len(&self) -> usize {
        self.armed.len()
    }

    /// Arms (or re-arms) `id` to expire at `deadline`. A deadline at or
    /// before the current tick fires on the next [`DeadlineWheel::advance`]
    /// call.
    pub fn schedule(&mut self, id: u64, deadline: u64) {
        // A deadline already behind the wheel would land in a slot the
        // cursor has passed; clamp it to the next tick so it still fires.
        let deadline = deadline.max(self.now + 1);
        self.armed.insert(id, deadline);
        let slot = (deadline % self.slots.len() as u64) as usize;
        self.slots[slot].push(Cookie { id, deadline });
    }

    /// Disarms `id`; any cookies it left in the wheel become stale.
    pub fn cancel(&mut self, id: u64) {
        self.armed.remove(&id);
    }

    /// Advances the wheel to `now`, returning every id whose live deadline
    /// fell in `(previous now, now]`. Ids fire at most once per arming.
    pub fn advance(&mut self, now: u64) -> Vec<u64> {
        let mut expired = Vec::new();
        while self.now < now {
            self.now += 1;
            let tick = self.now;
            let slot = (tick % self.slots.len() as u64) as usize;
            self.slots[slot].retain(|cookie| {
                if cookie.deadline > tick {
                    // A later rotation's cookie; keep it spinning.
                    return true;
                }
                // This cookie's moment. It fires only if it is still the
                // live deadline; reschedules and cancels made it stale.
                if self.armed.get(&cookie.id) == Some(&cookie.deadline) {
                    self.armed.remove(&cookie.id);
                    expired.push(cookie.id);
                }
                false
            });
        }
        expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expires_at_exact_tick() {
        let mut w = DeadlineWheel::new(8);
        w.schedule(1, 5);
        assert!(w.advance(4).is_empty());
        assert_eq!(w.advance(5), vec![1]);
        assert_eq!(w.armed_len(), 0);
        assert!(w.advance(100).is_empty());
    }

    #[test]
    fn reschedule_pushes_deadline_out() {
        let mut w = DeadlineWheel::new(8);
        w.schedule(1, 3);
        w.schedule(1, 10); // activity arrived; idle deadline moves
        assert!(w.advance(9).is_empty(), "stale cookie must not fire");
        assert_eq!(w.advance(10), vec![1]);
    }

    #[test]
    fn cancel_disarms() {
        let mut w = DeadlineWheel::new(8);
        w.schedule(1, 3);
        w.cancel(1);
        assert!(w.advance(20).is_empty());
    }

    #[test]
    fn multi_rotation_deadlines_survive() {
        // Deadline far beyond one rotation of a tiny wheel: the cookie
        // must ride through several scans of its slot untouched.
        let mut w = DeadlineWheel::new(4);
        w.schedule(1, 19);
        assert!(w.advance(18).is_empty());
        assert_eq!(w.advance(19), vec![1]);
    }

    #[test]
    fn many_ids_fire_in_deadline_order() {
        let mut w = DeadlineWheel::new(4);
        for id in 0..10u64 {
            w.schedule(id, 1 + id);
        }
        let mut fired = Vec::new();
        for tick in 1..=10 {
            fired.extend(w.advance(tick));
        }
        assert_eq!(fired, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn past_deadline_clamps_to_next_tick() {
        let mut w = DeadlineWheel::new(8);
        w.advance(50);
        w.schedule(1, 10); // already in the past
        assert_eq!(w.advance(51), vec![1]);
    }

    #[test]
    fn rearm_after_fire_works() {
        let mut w = DeadlineWheel::new(8);
        w.schedule(1, 2);
        assert_eq!(w.advance(2), vec![1]);
        w.schedule(1, 6);
        assert_eq!(w.advance(6), vec![1]);
    }
}
