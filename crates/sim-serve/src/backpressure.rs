//! Bounded per-session delta outbox with explicit backpressure.
//!
//! Stats deltas are **cumulative**, which is what makes backpressure safe:
//! two adjacent deltas can be merged by keeping the later counters and
//! widening the covered access range, losing nothing but intermediate
//! granularity. The outbox holds at most `bound` queued deltas plus one
//! coalesced slot; a consumer too slow to drain gets the merged delta
//! followed by a clean [`ServerFrame::Throttled`] frame telling it how
//! many pushes were folded away. Memory is O(bound) per session no matter
//! how slow the peer is — never unbounded growth, never a silent drop.
//!
//! Control frames (warnings, errors, finals) are exempt from coalescing:
//! they are rare, bounded by session state, and must never be merged away.

use crate::protocol::{Delta, ServerFrame};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Pure (single-threaded) bounded outbox. [`SharedOutbox`] wraps it for
/// the server's writer threads; the pure form exists so property tests
/// can drive arbitrary push/pop interleavings deterministically.
#[derive(Debug)]
pub struct DeltaOutbox {
    bound: usize,
    deltas: VecDeque<Delta>,
    /// Merged overflow delta plus the number of pushes folded into it.
    coalesced: Option<(Delta, u64)>,
    /// A `Throttled` owed to the consumer right after a coalesced delta.
    pending_throttle: Option<u64>,
    control: VecDeque<ServerFrame>,
    closed: bool,
}

/// Merges cumulative delta `next` over `prev`: later counters win, the
/// covered range widens to span both.
fn merge(prev: &Delta, next: Delta) -> Delta {
    Delta {
        covered_from: prev.covered_from.min(next.covered_from),
        ..next
    }
}

impl DeltaOutbox {
    /// An outbox admitting at most `bound` queued deltas (minimum 1).
    pub fn new(bound: usize) -> Self {
        DeltaOutbox {
            bound: bound.max(1),
            deltas: VecDeque::new(),
            coalesced: None,
            pending_throttle: None,
            control: VecDeque::new(),
            closed: false,
        }
    }

    /// Number of individually queued deltas (never exceeds the bound).
    pub fn occupancy(&self) -> usize {
        self.deltas.len()
    }

    /// Configured delta bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// True when nothing is waiting to be sent.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
            && self.coalesced.is_none()
            && self.pending_throttle.is_none()
            && self.control.is_empty()
    }

    /// Enqueues a delta, coalescing instead of growing past the bound.
    pub fn push_delta(&mut self, d: Delta) {
        match self.coalesced.take() {
            // Once coalescing has started it keeps absorbing pushes until
            // the consumer drains; feeding the queue again first would
            // reorder the merged range behind newer deltas.
            Some((held, n)) => self.coalesced = Some((merge(&held, d), n + 1)),
            None => {
                if self.deltas.len() < self.bound {
                    self.deltas.push_back(d);
                } else {
                    self.coalesced = Some((d, 1));
                }
            }
        }
    }

    /// Enqueues a control frame (never coalesced or dropped).
    pub fn push_control(&mut self, f: ServerFrame) {
        self.control.push_back(f);
    }

    /// Marks the outbox closed; [`DeltaOutbox::pop`] drains what remains.
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// True once closed *and* fully drained.
    pub fn finished(&self) -> bool {
        self.closed && self.is_empty()
    }

    /// Takes the next frame to send, oldest work first: queued deltas,
    /// then the coalesced delta (immediately followed by its `Throttled`
    /// notice), then control frames.
    pub fn pop(&mut self) -> Option<ServerFrame> {
        if let Some(n) = self.pending_throttle.take() {
            return Some(ServerFrame::Throttled { coalesced: n });
        }
        if let Some(d) = self.deltas.pop_front() {
            return Some(ServerFrame::Delta(d));
        }
        if let Some((d, n)) = self.coalesced.take() {
            self.pending_throttle = Some(n);
            return Some(ServerFrame::Delta(d));
        }
        self.control.pop_front()
    }
}

/// Thread-safe outbox: the session thread pushes, the connection's writer
/// thread blocks on [`SharedOutbox::pop_wait`].
#[derive(Debug)]
pub struct SharedOutbox {
    inner: Mutex<DeltaOutbox>,
    ready: Condvar,
}

impl SharedOutbox {
    /// A shared outbox with the given delta bound.
    pub fn new(bound: usize) -> Self {
        SharedOutbox {
            inner: Mutex::new(DeltaOutbox::new(bound)),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DeltaOutbox> {
        // A poisoned outbox mutex means a pushing thread panicked; the
        // queue itself is still structurally sound, so keep draining.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues a delta (coalescing under pressure) and wakes the writer.
    pub fn push_delta(&self, d: Delta) {
        self.lock().push_delta(d);
        self.ready.notify_all();
    }

    /// Enqueues a control frame and wakes the writer.
    pub fn push_control(&self, f: ServerFrame) {
        self.lock().push_control(f);
        self.ready.notify_all();
    }

    /// Closes the outbox; the writer exits once it has drained.
    pub fn close(&self) {
        self.lock().close();
        self.ready.notify_all();
    }

    /// Blocks up to `patience` for the next frame. `None` means either
    /// closed-and-drained (check [`SharedOutbox::finished`]) or a timeout
    /// with nothing queued.
    pub fn pop_wait(&self, patience: Duration) -> Option<ServerFrame> {
        let mut guard = self.lock();
        loop {
            if let Some(frame) = guard.pop() {
                return Some(frame);
            }
            if guard.closed {
                return None;
            }
            let (g, timeout) = self
                .ready
                .wait_timeout(guard, patience)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
            if timeout.timed_out() {
                return guard.pop();
            }
        }
    }

    /// True once closed and drained.
    pub fn finished(&self) -> bool {
        self.lock().finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PolicyRow;
    use sim_core::CacheStats;

    /// A cumulative delta covering accesses `[from, to)` with counters
    /// derived from `to` so merged counters can be checked exactly.
    fn delta(seq: u64, from: u64, to: u64) -> Delta {
        Delta {
            seq,
            covered_from: from,
            covered_to: to,
            instructions: to * 10,
            rows: vec![PolicyRow {
                name: "LRU".into(),
                stats: CacheStats {
                    accesses: to,
                    hits: to / 2,
                    misses: to - to / 2,
                    evictions: 0,
                    writebacks: 0,
                    bypasses: 0,
                },
            }],
        }
    }

    #[test]
    fn fifo_below_bound() {
        let mut ob = DeltaOutbox::new(4);
        for i in 0..3 {
            ob.push_delta(delta(i, i * 10, (i + 1) * 10));
        }
        for i in 0..3 {
            match ob.pop() {
                Some(ServerFrame::Delta(d)) => assert_eq!(d.seq, i),
                other => panic!("expected delta, got {other:?}"),
            }
        }
        assert!(ob.pop().is_none());
    }

    #[test]
    fn overflow_coalesces_and_throttles() {
        let mut ob = DeltaOutbox::new(2);
        for i in 0..5 {
            ob.push_delta(delta(i, i * 10, (i + 1) * 10));
        }
        assert_eq!(ob.occupancy(), 2);

        // Two queued deltas come out intact.
        for i in 0..2 {
            match ob.pop() {
                Some(ServerFrame::Delta(d)) => assert_eq!(d.seq, i),
                other => panic!("{other:?}"),
            }
        }
        // Then the merge of deltas 2..=4: latest counters, widened range.
        match ob.pop() {
            Some(ServerFrame::Delta(d)) => {
                assert_eq!(d.seq, 4);
                assert_eq!(d.covered_from, 20);
                assert_eq!(d.covered_to, 50);
                assert_eq!(d.rows[0].stats.accesses, 50);
            }
            other => panic!("{other:?}"),
        }
        // And the clean throttle notice: 3 pushes were folded together.
        match ob.pop() {
            Some(ServerFrame::Throttled { coalesced }) => assert_eq!(coalesced, 3),
            other => panic!("{other:?}"),
        }
        assert!(ob.pop().is_none());
    }

    #[test]
    fn coalescing_persists_until_drained() {
        let mut ob = DeltaOutbox::new(1);
        ob.push_delta(delta(0, 0, 10));
        ob.push_delta(delta(1, 10, 20)); // starts coalescing
                                         // Pop the queued delta; slot stays in coalesced mode...
        assert!(matches!(ob.pop(), Some(ServerFrame::Delta(d)) if d.seq == 0));
        // ...so this push merges rather than re-entering the queue out of
        // order.
        ob.push_delta(delta(2, 20, 30));
        match ob.pop() {
            Some(ServerFrame::Delta(d)) => {
                assert_eq!(d.seq, 2);
                assert_eq!((d.covered_from, d.covered_to), (10, 30));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            ob.pop(),
            Some(ServerFrame::Throttled { coalesced: 2 })
        ));
    }

    #[test]
    fn control_frames_survive_pressure() {
        let mut ob = DeltaOutbox::new(1);
        for i in 0..10 {
            ob.push_delta(delta(i, i, i + 1));
        }
        ob.push_control(ServerFrame::Warning {
            code: 1,
            message: "w".into(),
        });
        ob.push_control(ServerFrame::Bye);
        let mut kinds = Vec::new();
        while let Some(f) = ob.pop() {
            kinds.push(match f {
                ServerFrame::Delta(_) => "delta",
                ServerFrame::Throttled { .. } => "throttled",
                ServerFrame::Warning { .. } => "warning",
                ServerFrame::Bye => "bye",
                _ => "other",
            });
        }
        assert_eq!(kinds, ["delta", "delta", "throttled", "warning", "bye"]);
    }

    #[test]
    fn shared_outbox_close_drains() {
        let ob = SharedOutbox::new(2);
        ob.push_delta(delta(0, 0, 10));
        ob.close();
        assert!(matches!(
            ob.pop_wait(Duration::from_millis(10)),
            Some(ServerFrame::Delta(_))
        ));
        assert!(ob.pop_wait(Duration::from_millis(10)).is_none());
        assert!(ob.finished());
    }
}
