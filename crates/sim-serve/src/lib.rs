#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Online policy-evaluation serving for the PseudoLRU/IPV roster.
//!
//! This crate turns the batch replay engine into a long-running daemon
//! (ROADMAP item 2): clients stream accesses — or memcached-style KV
//! operations — over a small CRC-framed binary protocol into per-tenant
//! replay sessions; each session fans a roster subset across the worker
//! pool, pushes incremental per-policy stats deltas back, and contributes
//! to a cross-tenant leaderboard of which policy wins on whose traffic.
//!
//! Robustness is the design center, not a feature:
//!
//! * **Backpressure** — per-session outboxes are bounded; a slow consumer
//!   gets coalesced deltas and a clean `Throttled` frame, never unbounded
//!   server memory ([`backpressure`]).
//! * **Timeouts** — idle and half-open connections are expired by a
//!   deterministic deadline wheel ([`wheel`]).
//! * **Crash safety** — sessions snapshot through
//!   `persist::atomic_write` with retry-and-backoff; a killed daemon
//!   resumes every session bit-identically by journal replay
//!   ([`session`]).
//! * **Graceful degradation** — persistent snapshot failure downgrades a
//!   session to ephemeral with a warning frame instead of killing the
//!   tenant.
//! * **Typed failure** — malformed frames, damaged snapshots, and bad
//!   session requests all decode to typed errors; no input can panic the
//!   daemon ([`protocol`]).
//!
//! Every failure mode above is exercised deterministically through
//! `sim-fault`'s connection-level fault points and the harness chaos
//! drill.

pub mod backpressure;
pub mod kv;
pub mod protocol;
pub mod server;
pub mod session;
pub mod wheel;

pub use backpressure::{DeltaOutbox, SharedOutbox};
pub use protocol::{
    ClientFrame, Delta, ErrorCode, GeometrySpec, Hello, KvOp, LeaderboardRow, PolicyRow,
    ProtoError, ServerFrame, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::{
    canonical_stats, default_roster, reference_delta, write_snapshot, BackoffFn, Roster, Session,
    SessionConfig, SessionError, SnapshotError,
};
pub use wheel::DeadlineWheel;
