//! Per-tenant replay sessions: roster fan-out, incremental stats, and
//! crash-safe snapshots.
//!
//! A session owns one cache engine per roster policy and streams every
//! ingested access through all of them, fanned across the global worker
//! pool (each policy is an independent deterministic machine, so parallel
//! fan-out is bit-identical to a sequential loop). Cumulative stats are
//! cut into [`Delta`]s every `delta_every` accesses.
//!
//! # Snapshot model: journal replay
//!
//! Policies are deliberately opaque (`Box<dyn ReplacementPolicy>` with no
//! serialization surface), so a snapshot does not try to freeze engine
//! state. Instead it records the session *inputs*: the config plus the
//! full access journal, embedded as a standard `traces` container (CRC'd,
//! length-checked) behind a CRC'd meta block. Restoring replays the
//! journal through freshly built engines — determinism then guarantees the
//! restored session is **bit-identical** to the one that was killed, at
//! the cost of replay time and journal memory. That trade is the right
//! one for a what-if analysis daemon: correctness is observable, and the
//! journal doubles as the tenant's captured trace.
//!
//! Snapshots are written through [`sim_core::persist::atomic_write`] with
//! retry-and-backoff, so a torn write can never destroy the previous good
//! snapshot and a transient `ENOSPC` is ridden out rather than fatal.

use crate::kv;
use crate::protocol::{put_str, put_u16, put_u32, put_u64};
use crate::protocol::{Cursor, Delta, GeometrySpec, KvOp, PolicyRow, ProtoError};
use sim_core::persist::atomic_write;
use sim_core::{pool, Access, CacheGeometry, PolicyFactory, SetAssocCache};
use std::error::Error;
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;
use traces::{TraceReader, TraceWriter};

/// Snapshot file magic (the `.ssn` sibling of the `PLRUTRC1` container).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PLRUSSN1";

/// Snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Backoff schedule used between snapshot write retries; the harness
/// passes `pipeline::retry_backoff` so the daemon shares the pipeline's
/// tunable (`SIM_RETRY_BASE_MS`) schedule.
pub type BackoffFn = fn(u64) -> Duration;

/// A named-policy registry: the roster a server can evaluate.
pub type Roster = Vec<(String, PolicyFactory)>;

/// A compact default roster for in-crate tests and embedded use. The
/// harness `serve` binary passes its full 12-policy roster instead.
pub fn default_roster() -> Roster {
    use sim_core::policy::factory;
    let entries: Vec<(&str, PolicyFactory)> = vec![
        ("LRU", factory(|g| Box::new(baselines::TrueLru::new(g)))),
        (
            "PseudoLRU",
            factory(|g| Box::new(gippr::PlruPolicy::new(g))),
        ),
        ("FIFO", factory(|g| Box::new(baselines::FifoPolicy::new(g)))),
        (
            "SRRIP",
            factory(|g| Box::new(baselines::SrripPolicy::new(g))),
        ),
        (
            "WI-GIPPR",
            factory(|g| {
                Box::new(
                    gippr::GipprPolicy::with_name(g, gippr::vectors::wi_gippr(), "WI-GIPPR")
                        .expect("16-way IPV fits 16-way geometry"),
                )
            }),
        ),
    ];
    entries
        .into_iter()
        .map(|(n, f)| (n.to_string(), f))
        .collect()
}

/// Why a session could not be opened.
#[derive(Debug)]
pub enum SessionError {
    /// The requested geometry is not a valid cache shape.
    BadGeometry(String),
    /// A requested policy name is not in the server roster.
    UnknownPolicy(String),
    /// A policy factory rejected (panicked on) the requested geometry.
    PolicyConstruction(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::BadGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            SessionError::UnknownPolicy(name) => write!(f, "unknown policy {name:?}"),
            SessionError::PolicyConstruction(name) => {
                write!(f, "policy {name:?} cannot be built for this geometry")
            }
        }
    }
}

impl Error for SessionError {}

/// Why a snapshot could not be restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file is not a snapshot.
    BadMagic,
    /// Unsupported snapshot format version.
    BadVersion(u32),
    /// The file ended inside the header or meta block.
    Truncated,
    /// The meta block fails its CRC.
    MetaCrc,
    /// The meta block decodes to nonsense.
    BadMeta(&'static str),
    /// The embedded journal container is damaged.
    Journal(traces::TraceError),
    /// The config is valid but the session cannot be rebuilt (e.g. the
    /// roster changed across daemon builds).
    Session(SessionError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a session snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::MetaCrc => write!(f, "snapshot meta block fails its crc"),
            SnapshotError::BadMeta(what) => write!(f, "snapshot meta malformed: {what}"),
            SnapshotError::Journal(e) => write!(f, "snapshot journal damaged: {e}"),
            SnapshotError::Session(e) => write!(f, "snapshot cannot be rebuilt: {e}"),
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::Journal(e) => Some(e),
            SnapshotError::Session(e) => Some(e),
            _ => None,
        }
    }
}

/// Immutable per-session configuration (everything a snapshot must
/// remember besides the journal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionConfig {
    /// Tenant identity (snapshot files are keyed by it).
    pub tenant: String,
    /// Cache shape every roster engine is built with.
    pub geometry: GeometrySpec,
    /// KV-mode flag (affects only how frames are lowered, but recorded so
    /// a resumed session keeps rejecting the wrong frame kind).
    pub kv_mode: bool,
    /// Cut a delta every this many accesses.
    pub delta_every: u64,
    /// Resolved roster names, in evaluation order.
    pub roster: Vec<String>,
}

/// One tenant's live replay session.
pub struct Session {
    config: SessionConfig,
    engines: Vec<Mutex<SetAssocCache>>,
    /// Every access ever ingested, in order — the snapshot payload.
    journal: Vec<Access>,
    instructions: u64,
    delta_seq: u64,
    /// Accesses covered by the last cut delta (`covered_from` of the next).
    last_delta_at: u64,
    /// True once snapshots have been given up on (degraded mode).
    ephemeral: bool,
}

fn build_engines(
    names: &[String],
    registry: &Roster,
    geom: &CacheGeometry,
) -> Result<Vec<Mutex<SetAssocCache>>, SessionError> {
    names
        .iter()
        .map(|name| {
            let factory = registry
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, f)| f)
                .ok_or_else(|| SessionError::UnknownPolicy(name.clone()))?;
            // Factories assert geometry compatibility by panicking (they
            // are built for trusted batch configs); a serving daemon must
            // turn that into a typed per-session error instead.
            let policy = catch_unwind(AssertUnwindSafe(|| factory(geom)))
                .map_err(|_| SessionError::PolicyConstruction(name.clone()))?;
            Ok(Mutex::new(SetAssocCache::new(*geom, policy)))
        })
        .collect()
}

fn geometry_of(spec: &GeometrySpec) -> Result<CacheGeometry, SessionError> {
    CacheGeometry::new(
        spec.size_bytes,
        spec.ways as usize,
        u64::from(spec.line_bytes),
    )
    .map_err(|e| SessionError::BadGeometry(e.to_string()))
}

impl Session {
    /// Opens a fresh session. An empty `roster` request resolves to the
    /// full registry.
    pub fn new(
        tenant: &str,
        spec: GeometrySpec,
        kv_mode: bool,
        delta_every: u64,
        requested: &[String],
        registry: &Roster,
    ) -> Result<Session, SessionError> {
        let geom = geometry_of(&spec)?;
        let roster: Vec<String> = if requested.is_empty() {
            registry.iter().map(|(n, _)| n.clone()).collect()
        } else {
            requested.to_vec()
        };
        let engines = build_engines(&roster, registry, &geom)?;
        Ok(Session {
            config: SessionConfig {
                tenant: tenant.to_string(),
                geometry: spec,
                kv_mode,
                delta_every: delta_every.max(1),
                roster,
            },
            engines,
            journal: Vec::new(),
            instructions: 0,
            delta_seq: 0,
            last_delta_at: 0,
            ephemeral: false,
        })
    }

    /// Session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Total accesses ingested (the resume point a client skips to).
    pub fn ingested(&self) -> u64 {
        self.journal.len() as u64
    }

    /// True once the session has degraded to ephemeral (no snapshots).
    pub fn is_ephemeral(&self) -> bool {
        self.ephemeral
    }

    /// Degrades the session: snapshots are abandoned, everything else
    /// keeps working.
    pub fn degrade_to_ephemeral(&mut self) {
        self.ephemeral = true;
    }

    /// Runs `batch` through every engine and appends it to the journal.
    fn apply(&mut self, batch: &[Access]) {
        if batch.is_empty() {
            return;
        }
        self.instructions += batch.iter().map(|a| u64::from(a.icount_delta)).sum::<u64>();
        self.journal.extend_from_slice(batch);
        let engines = &self.engines;
        pool::global().run_labeled(engines.len(), engines.len(), "serve", |i| {
            let mut eng = engines[i].lock().unwrap_or_else(|e| e.into_inner());
            for a in batch {
                eng.access_fast(a);
            }
        });
    }

    /// Ingests a batch of raw accesses; returns a delta when the
    /// `delta_every` boundary was crossed.
    pub fn ingest(&mut self, batch: &[Access]) -> Option<Delta> {
        self.apply(batch);
        if self.ingested() - self.last_delta_at >= self.config.delta_every {
            Some(self.cut_delta())
        } else {
            None
        }
    }

    /// Ingests a KV-mode batch (keys lowered to line addresses).
    pub fn ingest_kv(&mut self, ops: &[KvOp]) -> Option<Delta> {
        let line = u64::from(self.config.geometry.line_bytes);
        let batch: Vec<Access> = ops.iter().map(|op| kv::op_to_access(op, line)).collect();
        self.ingest(&batch)
    }

    /// The cumulative stats as they stand, without cutting a delta.
    pub fn current_delta(&self) -> Delta {
        Delta {
            seq: self.delta_seq,
            covered_from: self.last_delta_at,
            covered_to: self.ingested(),
            instructions: self.instructions,
            rows: self
                .config
                .roster
                .iter()
                .zip(&self.engines)
                .map(|(name, eng)| PolicyRow {
                    name: name.clone(),
                    stats: *eng.lock().unwrap_or_else(|e| e.into_inner()).stats(),
                })
                .collect(),
        }
    }

    /// Cuts a delta: returns the cumulative stats and advances the
    /// sequence / coverage watermark.
    pub fn cut_delta(&mut self) -> Delta {
        let d = self.current_delta();
        self.delta_seq += 1;
        self.last_delta_at = self.ingested();
        d
    }

    /// The roster entry with the lowest MPKI right now.
    pub fn best(&self) -> Option<(String, f64)> {
        let d = self.current_delta();
        (0..d.rows.len())
            .map(|i| (d.rows[i].name.clone(), d.mpki(i)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    // -- snapshots ---------------------------------------------------------

    /// Serializes the session (config + journal) into snapshot bytes.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        put_u32(&mut meta, SNAPSHOT_VERSION);
        put_str(&mut meta, &self.config.tenant);
        meta.push(u8::from(self.config.kv_mode));
        put_u64(&mut meta, self.config.geometry.size_bytes);
        put_u32(&mut meta, self.config.geometry.ways);
        put_u32(&mut meta, self.config.geometry.line_bytes);
        put_u64(&mut meta, self.config.delta_every);
        put_u64(&mut meta, self.delta_seq);
        put_u16(&mut meta, self.config.roster.len() as u16);
        for name in &self.config.roster {
            put_str(&mut meta, name);
        }

        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        put_u32(&mut out, meta.len() as u32);
        out.extend_from_slice(&meta);
        let mut crc = traces::format::Crc32::new();
        crc.update(&meta);
        put_u32(&mut out, crc.finish());

        let mut w = TraceWriter::new(&mut out).expect("vec sink cannot fail");
        for a in &self.journal {
            w.write(a).expect("vec sink cannot fail");
        }
        w.finish().expect("vec sink cannot fail");
        out
    }

    /// Rebuilds a session from snapshot bytes by replaying the journal
    /// through fresh engines. Deterministic engines make the result
    /// bit-identical to the snapshotted session.
    ///
    /// # Errors
    ///
    /// Typed [`SnapshotError`] for any damage; never panics on malformed
    /// input.
    pub fn restore(bytes: &[u8], registry: &Roster) -> Result<Session, SnapshotError> {
        if bytes.len() < 12 {
            return Err(SnapshotError::Truncated);
        }
        if &bytes[0..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let meta_len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let meta_end = 12usize
            .checked_add(meta_len)
            .filter(|&e| e + 4 <= bytes.len())
            .ok_or(SnapshotError::Truncated)?;
        let meta = &bytes[12..meta_end];
        let stored_crc =
            u32::from_le_bytes(bytes[meta_end..meta_end + 4].try_into().expect("4 bytes"));
        let mut crc = traces::format::Crc32::new();
        crc.update(meta);
        if crc.finish() != stored_crc {
            return Err(SnapshotError::MetaCrc);
        }

        let bad = |e: ProtoError| match e {
            ProtoError::BadPayload(what) => SnapshotError::BadMeta(what),
            _ => SnapshotError::BadMeta("undecodable field"),
        };
        let mut c = Cursor::new(meta);
        let version = c.u32().map_err(bad)?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let tenant = c.string().map_err(bad)?;
        let kv_mode = match c.u8().map_err(bad)? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::BadMeta("kv flag")),
        };
        let spec = GeometrySpec {
            size_bytes: c.u64().map_err(bad)?,
            ways: c.u32().map_err(bad)?,
            line_bytes: c.u32().map_err(bad)?,
        };
        let delta_every = c.u64().map_err(bad)?;
        let delta_seq = c.u64().map_err(bad)?;
        let n = c.u16().map_err(bad)? as usize;
        let mut roster = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            roster.push(c.string().map_err(bad)?);
        }
        c.finish().map_err(bad)?;
        if roster.is_empty() {
            return Err(SnapshotError::BadMeta("empty roster"));
        }

        let journal: Vec<Access> = TraceReader::new(&bytes[meta_end + 4..])
            .map_err(SnapshotError::Journal)?
            .collect::<Result<_, _>>()
            .map_err(SnapshotError::Journal)?;

        let mut session = Session::new(&tenant, spec, kv_mode, delta_every, &roster, registry)
            .map_err(SnapshotError::Session)?;
        session.apply(&journal);
        // The resumed session owes no delta for the replayed prefix; the
        // next delta covers post-resume traffic and continues the stored
        // sequence numbering.
        session.delta_seq = delta_seq;
        session.last_delta_at = session.ingested();
        Ok(session)
    }
}

/// Writes snapshot bytes to `path` atomically, retrying transient
/// failures (the `ENOSPC` case) up to `attempts` times with `backoff`
/// sleeps in between.
///
/// # Errors
///
/// The last write error once every attempt is exhausted; the previous
/// snapshot at `path`, if any, is untouched in that case.
pub fn write_snapshot(
    path: &Path,
    bytes: &[u8],
    backoff: BackoffFn,
    attempts: u32,
) -> io::Result<()> {
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        match atomic_write(path, bytes) {
            Ok(()) => return Ok(()),
            Err(e) => {
                last = Some(e);
                if attempt + 1 < attempts {
                    std::thread::sleep(backoff(u64::from(attempt)));
                }
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("snapshot write made no attempts")))
}

/// Canonical stats rendering used for byte-for-byte comparison between a
/// served session and a single-process reference run. Excludes delta
/// sequence numbers (which depend on push cadence); includes every
/// counter and the exact MPKI bits.
pub fn canonical_stats(d: &Delta) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "accesses={} instructions={}",
        d.covered_to, d.instructions
    );
    for (i, row) in d.rows.iter().enumerate() {
        let s = &row.stats;
        let _ = writeln!(
            out,
            "{} accesses={} hits={} misses={} evictions={} writebacks={} bypasses={} mpki_bits={:016x}",
            row.name, s.accesses, s.hits, s.misses, s.evictions, s.writebacks, s.bypasses,
            d.mpki(i).to_bits()
        );
    }
    out
}

/// Single-threaded, single-process reference replay: the ground truth the
/// chaos drill compares daemon output against. Intentionally avoids the
/// worker pool and the session plumbing.
///
/// # Errors
///
/// [`SessionError`] if the geometry or roster cannot be built.
pub fn reference_delta(
    accesses: &[Access],
    requested: &[String],
    registry: &Roster,
    spec: GeometrySpec,
) -> Result<Delta, SessionError> {
    let geom = geometry_of(&spec)?;
    let roster: Vec<String> = if requested.is_empty() {
        registry.iter().map(|(n, _)| n.clone()).collect()
    } else {
        requested.to_vec()
    };
    let engines = build_engines(&roster, registry, &geom)?;
    let mut rows = Vec::with_capacity(engines.len());
    for (name, eng) in roster.iter().zip(engines) {
        let mut eng = eng.into_inner().unwrap_or_else(|e| e.into_inner());
        for a in accesses {
            eng.access_fast(a);
        }
        rows.push(PolicyRow {
            name: name.clone(),
            stats: *eng.stats(),
        });
    }
    Ok(Delta {
        seq: 0,
        covered_from: 0,
        covered_to: accesses.len() as u64,
        instructions: accesses.iter().map(|a| u64::from(a.icount_delta)).sum(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::AccessKind;

    fn spec() -> GeometrySpec {
        GeometrySpec {
            size_bytes: 64 * 1024,
            ways: 16,
            line_bytes: 64,
        }
    }

    /// Deterministic access stream mixing hits, misses, and writebacks.
    fn stream(n: usize, seed: u64) -> Vec<Access> {
        let mut state = seed | 1;
        (0..n)
            .map(|i| {
                // xorshift64
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let addr = (state % 4096) * 64;
                let kind = match state % 5 {
                    0 => AccessKind::Write,
                    4 => AccessKind::Writeback,
                    _ => AccessKind::Read,
                };
                Access {
                    addr,
                    pc: (i as u64) * 4,
                    kind,
                    icount_delta: (state % 7) as u32 + 1,
                }
            })
            .collect()
    }

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_policy_is_typed() {
        let reg = default_roster();
        let err = Session::new("t", spec(), false, 100, &names(&["NoSuch"]), &reg)
            .err()
            .unwrap();
        assert!(matches!(err, SessionError::UnknownPolicy(_)), "{err}");
    }

    #[test]
    fn bad_geometry_is_typed() {
        let reg = default_roster();
        let bad = GeometrySpec {
            size_bytes: 1000, // not a power of two
            ways: 16,
            line_bytes: 64,
        };
        let err = Session::new("t", bad, false, 100, &[], &reg).err().unwrap();
        assert!(matches!(err, SessionError::BadGeometry(_)), "{err}");
    }

    #[test]
    fn incompatible_policy_geometry_is_typed_not_a_panic() {
        let reg = default_roster();
        // WI-GIPPR's IPV is 16-way; an 8-way geometry makes its factory
        // panic, which the session must absorb into a typed error.
        let eight_way = GeometrySpec {
            size_bytes: 64 * 1024,
            ways: 8,
            line_bytes: 64,
        };
        let err = Session::new("t", eight_way, false, 100, &names(&["WI-GIPPR"]), &reg)
            .err()
            .unwrap();
        assert!(matches!(err, SessionError::PolicyConstruction(_)), "{err}");
    }

    #[test]
    fn deltas_cut_on_boundary_and_match_reference() {
        let reg = default_roster();
        let mut s = Session::new("t", spec(), false, 100, &[], &reg).unwrap();
        let accesses = stream(250, 7);
        let mut deltas = Vec::new();
        for chunk in accesses.chunks(50) {
            if let Some(d) = s.ingest(chunk) {
                deltas.push(d);
            }
        }
        // 250 accesses at delta_every=100: deltas after 100 and 200.
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].seq, 0);
        assert_eq!((deltas[0].covered_from, deltas[0].covered_to), (0, 100));
        assert_eq!((deltas[1].covered_from, deltas[1].covered_to), (100, 200));

        let final_delta = s.cut_delta();
        assert_eq!(final_delta.covered_to, 250);
        let reference = reference_delta(&accesses, &[], &reg, spec()).unwrap();
        assert_eq!(
            canonical_stats(&final_delta),
            canonical_stats(&reference),
            "pooled fan-out must equal the sequential reference"
        );
    }

    #[test]
    fn kv_mode_matches_hand_lowered_stream() {
        let reg = default_roster();
        let roster = names(&["LRU", "PseudoLRU"]);
        let mut s = Session::new("t", spec(), true, 1000, &roster, &reg).unwrap();
        let ops: Vec<KvOp> = (0..200)
            .map(|i| KvOp {
                write: i % 3 == 0,
                key: format!("user:{}", i % 40),
            })
            .collect();
        s.ingest_kv(&ops);
        let lowered: Vec<Access> = ops.iter().map(|op| kv::op_to_access(op, 64)).collect();
        let reference = reference_delta(&lowered, &roster, &reg, spec()).unwrap();
        assert_eq!(canonical_stats(&s.cut_delta()), canonical_stats(&reference));
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let reg = default_roster();
        let accesses = stream(300, 42);
        let (head, tail) = accesses.split_at(180);

        // Uninterrupted session.
        let mut full = Session::new("t", spec(), false, 64, &[], &reg).unwrap();
        full.ingest(head);
        let snap = full.snapshot_bytes();
        full.ingest(tail);

        // Killed-and-restored session finishing the same stream.
        let mut resumed = Session::restore(&snap, &reg).unwrap();
        assert_eq!(resumed.ingested(), 180);
        assert_eq!(resumed.config().tenant, "t");
        resumed.ingest(tail);

        assert_eq!(
            canonical_stats(&full.cut_delta()),
            canonical_stats(&resumed.cut_delta())
        );
        // Stronger: the snapshots the two sessions would write next are
        // byte-identical too.
        assert_eq!(full.snapshot_bytes(), resumed.snapshot_bytes());
    }

    #[test]
    fn malformed_snapshots_are_typed_never_panic() {
        let reg = default_roster();
        let mut s = Session::new("t", spec(), false, 64, &names(&["LRU"]), &reg).unwrap();
        s.ingest(&stream(50, 3));
        let good = s.snapshot_bytes();

        // Truncations at every prefix length.
        for cut in 0..good.len() {
            let _ = Session::restore(&good[..cut], &reg);
        }
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            Session::restore(&bad, &reg),
            Err(SnapshotError::BadMagic)
        ));
        // Meta corruption trips the meta CRC.
        let mut bad = good.clone();
        bad[14] ^= 0x01;
        assert!(matches!(
            Session::restore(&bad, &reg),
            Err(SnapshotError::MetaCrc)
        ));
        // Journal corruption trips the container CRC chain.
        let mut bad = good.clone();
        let late = good.len() - 20;
        bad[late] ^= 0x01;
        assert!(matches!(
            Session::restore(&bad, &reg),
            Err(SnapshotError::Journal(_))
        ));
        // Single-bit flips anywhere must never panic and never restore a
        // session that then lies about its length.
        for i in 0..good.len() {
            let mut flipped = good.clone();
            flipped[i] ^= 0x04;
            let _ = Session::restore(&flipped, &reg);
        }
    }

    #[test]
    fn snapshot_roster_mismatch_is_typed() {
        let reg = default_roster();
        let mut s = Session::new("t", spec(), false, 64, &names(&["LRU"]), &reg).unwrap();
        s.ingest(&stream(10, 3));
        let snap = s.snapshot_bytes();
        let empty: Roster = Vec::new();
        assert!(matches!(
            Session::restore(&snap, &empty),
            Err(SnapshotError::Session(SessionError::UnknownPolicy(_)))
        ));
    }

    #[test]
    fn write_snapshot_retries_then_succeeds() {
        if !sim_fault::COMPILED_IN {
            return;
        }
        let dir = std::env::temp_dir().join(format!("sim-serve-retry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tenant.ssn");
        let zero = |_attempt: u64| Duration::from_millis(0);
        sim_fault::with_plan("enospc@tenant.ssn:n=1;enospc@tenant.ssn:n=2", || {
            write_snapshot(&path, b"payload", zero, 4).unwrap();
        });
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_snapshot_sticky_enospc_exhausts_and_preserves_old() {
        if !sim_fault::COMPILED_IN {
            return;
        }
        let dir = std::env::temp_dir().join(format!("sim-serve-enospc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tenant.ssn");
        std::fs::write(&path, b"old-good-snapshot").unwrap(); // lint: direct-write (test fixture)
        let zero = |_attempt: u64| Duration::from_millis(0);
        sim_fault::with_plan("enospc@tenant.ssn:sticky", || {
            let err = write_snapshot(&path, b"new", zero, 3).unwrap_err();
            assert!(err.to_string().contains("no space left"), "{err}");
        });
        assert_eq!(std::fs::read(&path).unwrap(), b"old-good-snapshot");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn best_policy_is_reported() {
        let reg = default_roster();
        let mut s = Session::new("t", spec(), false, 1000, &[], &reg).unwrap();
        s.ingest(&stream(500, 11));
        let (name, mpki) = s.best().unwrap();
        assert!(s.config().roster.contains(&name));
        assert!(mpki.is_finite());
    }
}
