//! KV front-end: memcached-style string keys mapped onto cache lines.
//!
//! ROADMAP item 2 (and the Multi-step LRU framing) treats an LLC policy as
//! a stand-in for a key-value cache's eviction policy. A KV-mode session
//! streams `(get|put, key)` pairs instead of pre-converted line addresses;
//! the server hashes each key with FNV-1a 64 and aligns the hash down to a
//! line boundary, so one key maps to one line and the whole roster sees
//! the identical address stream. Each operation counts as one
//! "instruction", making reported MPKI read as *misses per thousand
//! operations*.
//!
//! The hash is a fixed, documented function — not `DefaultHasher`, whose
//! output may change across Rust releases — because snapshots replay the
//! original key bytes through it and the resume bit-identity guarantee
//! must hold across daemon builds.

use crate::protocol::KvOp;
use sim_core::Access;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over the key bytes.
pub fn hash_key(key: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Maps a key to its line-aligned address for a cache with `line_bytes`
/// lines (a power of two, as `CacheGeometry` requires).
pub fn key_to_addr(key: &str, line_bytes: u64) -> u64 {
    hash_key(key.as_bytes()) & !(line_bytes - 1)
}

/// Lowers one KV operation to the access every policy replays: a read for
/// a get, a write for a put, one instruction per operation.
pub fn op_to_access(op: &KvOp, line_bytes: u64) -> Access {
    let addr = key_to_addr(&op.key, line_bytes);
    let a = if op.write {
        Access::write(addr, 0)
    } else {
        Access::read(addr, 0)
    };
    a.with_icount_delta(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::AccessKind;

    #[test]
    fn hash_is_the_documented_fnv1a() {
        // Published FNV-1a 64 vectors; the constants above are wrong if
        // any of these drift.
        assert_eq!(hash_key(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_key(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_key(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn addresses_are_line_aligned_and_stable() {
        for key in ["user:1", "user:2", "session:abc", ""] {
            let addr = key_to_addr(key, 64);
            assert_eq!(addr % 64, 0, "{key}");
            assert_eq!(addr, key_to_addr(key, 64), "hash must be pure");
        }
        assert_ne!(key_to_addr("user:1", 64), key_to_addr("user:2", 64));
    }

    #[test]
    fn ops_lower_to_reads_and_writes() {
        let get = op_to_access(
            &KvOp {
                write: false,
                key: "k".into(),
            },
            64,
        );
        assert_eq!(get.kind, AccessKind::Read);
        assert_eq!(get.icount_delta, 1);
        let put = op_to_access(
            &KvOp {
                write: true,
                key: "k".into(),
            },
            64,
        );
        assert_eq!(put.kind, AccessKind::Write);
        assert_eq!(put.addr, get.addr, "same key, same line");
    }
}
