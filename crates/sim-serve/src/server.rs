//! The serving daemon: listeners, per-connection threads, the session
//! registry, and the cross-tenant leaderboard.
//!
//! # Connection anatomy
//!
//! Every accepted connection gets three threads:
//!
//! * a **reader** that decodes frames and resolves the session, feeding
//!   access batches into a *bounded* ingest channel (`sync_channel`) —
//!   when replay falls behind, the reader blocks, the socket stops being
//!   drained, and TCP pushes back on the client: explicit end-to-end
//!   backpressure with O(bound) memory;
//! * a **replayer** that owns the tenant's [`Session`], fans batches
//!   across the worker pool, cuts deltas into the bounded
//!   [`SharedOutbox`], and writes periodic snapshots;
//! * a **writer** that drains the outbox onto the socket. A slow client
//!   leaves the writer blocked, the outbox coalesces, and the client
//!   eventually sees a merged delta plus a `Throttled` frame.
//!
//! # Failure behavior
//!
//! Malformed frames are answered with typed `Error` frames; socket-level
//! failures (including injected `sim-fault` connection faults) tear down
//! only that connection, after which the replayer parks the session back
//! in the registry and snapshots it — so a mid-stream disconnect costs the
//! tenant nothing but the partial batch in flight. Idle and half-open
//! connections are expired by the deadline wheel. Accept failures are
//! logged and survived. Snapshot write failures retry with backoff; a
//! persistently failing disk degrades the session to ephemeral with a
//! `Warning` frame instead of killing the tenant.

use crate::backpressure::SharedOutbox;
use crate::protocol::{
    error_code_for, recv_client, send_server, warning, ClientFrame, ErrorCode, Hello,
    LeaderboardRow, ProtoError, ServerFrame, PROTOCOL_VERSION,
};
use crate::session::{write_snapshot, Roster, Session, SnapshotError};
use sim_core::Access;
use sim_fault::{ConnFault, ConnOp};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default snapshot-retry backoff: 10 ms doubling, capped at 640 ms. The
/// harness daemon passes `pipeline::retry_backoff` instead so the whole
/// pipeline shares one tunable schedule.
fn default_backoff(attempt: u64) -> Duration {
    Duration::from_millis(10u64.saturating_mul(1 << attempt.min(6)))
}

/// Tunables for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Label prefix for this server's fault-injection points: connection
    /// I/O is labeled `{label}.conn{N}`, so fault plans (and tests sharing
    /// a process) can target one server instance precisely.
    pub label: String,
    /// Directory for per-tenant session snapshots; `None` disables
    /// persistence entirely (all sessions ephemeral).
    pub snapshot_dir: Option<PathBuf>,
    /// Backoff schedule between snapshot write retries.
    pub backoff: crate::session::BackoffFn,
    /// Snapshot write attempts before a session degrades to ephemeral.
    pub snapshot_attempts: u32,
    /// Snapshot every N ingested accesses per session (0 = only on
    /// finish/disconnect).
    pub snapshot_every: u64,
    /// Delta cadence for sessions whose `Hello` asked for the default.
    pub default_delta_every: u64,
    /// Bound on each session's delta outbox (deltas queued before
    /// coalescing starts).
    pub outbox_bound: usize,
    /// Bound on each connection's ingest channel (batches in flight
    /// between reader and replayer).
    pub ingest_bound: usize,
    /// Idle/half-open connection timeout.
    pub idle_timeout: Duration,
    /// Deadline-wheel tick length (timeout granularity).
    pub tick: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            label: "serve".to_string(),
            snapshot_dir: None,
            backoff: default_backoff,
            snapshot_attempts: 5,
            snapshot_every: 0,
            default_delta_every: 4096,
            outbox_bound: 8,
            ingest_bound: 16,
            idle_timeout: Duration::from_secs(30),
            tick: Duration::from_millis(20),
        }
    }
}

// ---------------------------------------------------------------------------
// Socket abstraction (TCP or Unix) with fault-injected I/O.

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Socket wrapper consulting the `sim-fault` connection points before
/// every read and write, so short reads/writes, mid-frame disconnects,
/// and stalls are injectable deterministically. Once a fault breaks the
/// stream it stays broken, like a real severed connection.
struct FaultStream {
    inner: Stream,
    label: String,
    broken: bool,
}

impl FaultStream {
    fn new(inner: Stream, label: String) -> Self {
        FaultStream {
            inner,
            label,
            broken: false,
        }
    }

    fn sever(&mut self) -> io::Error {
        self.broken = true;
        self.inner.shutdown();
        io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("injected connection fault ({})", self.label),
        )
    }
}

impl Read for FaultStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.broken {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "connection previously severed",
            ));
        }
        match sim_fault::on_conn(ConnOp::Read, &self.label) {
            ConnFault::None => self.inner.read(buf),
            ConnFault::Short(keep) => {
                // Deliver a prefix, then the line goes dead: the classic
                // half-frame a robust reader must treat as truncation.
                let keep = keep.unwrap_or(buf.len() / 2).min(buf.len());
                if keep == 0 {
                    return Err(self.sever());
                }
                let n = self.inner.read(&mut buf[..keep])?;
                self.broken = true;
                self.inner.shutdown();
                Ok(n)
            }
            ConnFault::Disconnect => Err(self.sever()),
            ConnFault::Stall(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.read(buf)
            }
        }
    }
}

impl Write for FaultStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.broken {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection previously severed",
            ));
        }
        match sim_fault::on_conn(ConnOp::Write, &self.label) {
            ConnFault::None => self.inner.write(buf),
            ConnFault::Short(keep) => {
                let keep = keep.unwrap_or(buf.len() / 2).min(buf.len());
                if keep == 0 {
                    return Err(self.sever());
                }
                let n = self.inner.write(&buf[..keep])?;
                self.broken = true;
                self.inner.shutdown();
                Ok(n)
            }
            ConnFault::Disconnect => Err(self.sever()),
            ConnFault::Stall(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.write(buf)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------------
// Shared server state.

/// A tenant's slot in the session registry.
enum Slot {
    /// A connection currently owns the session.
    Attached,
    /// Parked between connections, ready to resume.
    Detached(Box<Session>),
}

struct Shared {
    registry: Roster,
    config: ServerConfig,
    sessions: Mutex<HashMap<String, Slot>>,
    leaderboard: Mutex<HashMap<String, LeaderboardRow>>,
    wheel: Mutex<crate::wheel::DeadlineWheel>,
    /// Live connections, keyed by connection id: the deadline wheel and
    /// server shutdown sever sockets through this map.
    conns: Mutex<HashMap<u64, Stream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
    next_session: AtomicU64,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    fn tick_now(&self) -> u64 {
        (self.started.elapsed().as_nanos() / self.config.tick.as_nanos().max(1)) as u64
    }

    fn idle_ticks(&self) -> u64 {
        let t = self.config.tick.as_nanos().max(1);
        self.config.idle_timeout.as_nanos().div_ceil(t) as u64 + 1
    }

    /// Records activity on `conn_id`: its idle deadline moves out.
    fn touch(&self, conn_id: u64) {
        let deadline = self.tick_now() + self.idle_ticks();
        lock(&self.wheel).schedule(conn_id, deadline);
    }

    fn snapshot_path(&self, tenant: &str) -> Option<PathBuf> {
        let dir = self.config.snapshot_dir.as_ref()?;
        let safe: String = tenant
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        Some(dir.join(format!("{safe}.ssn")))
    }

    /// Writes `session`'s snapshot with retry; on exhaustion degrades the
    /// session to ephemeral and reports the degradation through `outbox`
    /// (when a connection is attached to hear it).
    fn snapshot_session(&self, session: &mut Session, outbox: Option<&SharedOutbox>) {
        if session.is_ephemeral() {
            return;
        }
        let Some(path) = self.snapshot_path(session.config().tenant.as_str()) else {
            return;
        };
        let bytes = session.snapshot_bytes();
        match write_snapshot(
            &path,
            &bytes,
            self.config.backoff,
            self.config.snapshot_attempts,
        ) {
            Ok(()) => {}
            Err(e) => {
                // Graceful degradation: the tenant keeps streaming, only
                // crash-resumability is lost — and the client is told.
                session.degrade_to_ephemeral();
                eprintln!(
                    "sim-serve: snapshot of tenant {:?} failed after {} attempts ({e}); session now ephemeral",
                    session.config().tenant,
                    self.config.snapshot_attempts
                );
                if let Some(outbox) = outbox {
                    outbox.push_control(ServerFrame::Warning {
                        code: warning::SNAPSHOT_DEGRADED,
                        message: format!(
                            "snapshots failing ({e}); session is now ephemeral and will not survive a daemon restart"
                        ),
                    });
                }
            }
        }
    }

    fn update_leaderboard(&self, session: &Session) {
        if let Some((best_policy, mpki)) = session.best() {
            let tenant = session.config().tenant.clone();
            lock(&self.leaderboard).insert(
                tenant.clone(),
                LeaderboardRow {
                    tenant,
                    best_policy,
                    accesses: session.ingested(),
                    mpki,
                },
            );
        }
    }

    fn leaderboard_rows(&self) -> Vec<LeaderboardRow> {
        let mut rows: Vec<LeaderboardRow> = lock(&self.leaderboard).values().cloned().collect();
        rows.sort_by(|a, b| a.mpki.total_cmp(&b.mpki).then(a.tenant.cmp(&b.tenant)));
        rows
    }

    /// Parks a session back into the registry (and persists it).
    fn detach(&self, mut session: Box<Session>, outbox: Option<&SharedOutbox>) {
        self.update_leaderboard(&session);
        self.snapshot_session(&mut session, outbox);
        let tenant = session.config().tenant.clone();
        lock(&self.sessions).insert(tenant, Slot::Detached(session));
    }
}

/// Locks a mutex, surviving poisoning (a panicked connection thread must
/// not wedge the whole daemon).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// The server proper.

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// Entry point: bind a listener and run the daemon threads.
pub struct Server;

impl Server {
    /// Binds a TCP listener (use port 0 for an ephemeral port) and starts
    /// serving `registry` under `config`.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn bind_tcp(
        addr: &str,
        registry: Roster,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr().ok();
        Self::start(Listener::Tcp(listener), local, registry, config)
    }

    /// Binds a Unix-domain listener at `path`.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn bind_unix(
        path: &Path,
        registry: Roster,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        Self::start(Listener::Unix(listener), None, registry, config)
    }

    fn start(
        listener: Listener,
        local: Option<SocketAddr>,
        registry: Roster,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let mut sessions = HashMap::new();
        if let Some(dir) = &config.snapshot_dir {
            std::fs::create_dir_all(dir)?;
            restore_sessions(dir, &registry, &mut sessions);
        }
        let shared = Arc::new(Shared {
            registry,
            config,
            sessions: Mutex::new(sessions),
            leaderboard: Mutex::new(HashMap::new()),
            wheel: Mutex::new(crate::wheel::DeadlineWheel::new(256)),
            conns: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(1),
            next_session: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        let sweeper = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || sweep_loop(shared))
        };
        Ok(ServerHandle {
            shared,
            local,
            threads: vec![accept, sweeper],
        })
    }
}

/// Loads every `*.ssn` snapshot in `dir` as a detached session. Damaged
/// snapshots are reported and skipped — one bad file must not take the
/// daemon down.
fn restore_sessions(dir: &Path, registry: &Roster, sessions: &mut HashMap<String, Slot>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("sim-serve: cannot scan snapshot dir {}: {e}", dir.display());
            return;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("ssn") {
            continue;
        }
        let restore = std::fs::read(&path)
            .map_err(|e| SnapshotError::Journal(traces::TraceError::Io(e)))
            .and_then(|bytes| Session::restore(&bytes, registry));
        match restore {
            Ok(session) => {
                let tenant = session.config().tenant.clone();
                eprintln!(
                    "sim-serve: resumed session for tenant {:?} at {} accesses",
                    tenant,
                    session.ingested()
                );
                sessions.insert(tenant, Slot::Detached(Box::new(session)));
            }
            Err(e) => {
                eprintln!(
                    "sim-serve: skipping damaged snapshot {}: {e}",
                    path.display()
                );
            }
        }
    }
}

/// A running server: address, registry access, and shutdown.
pub struct ServerHandle {
    shared: Arc<Shared>,
    local: Option<SocketAddr>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP address (None for Unix listeners).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local
    }

    /// Number of sessions currently in the registry (attached or parked).
    pub fn session_count(&self) -> usize {
        lock(&self.shared.sessions).len()
    }

    /// Current cross-tenant leaderboard, best MPKI first.
    pub fn leaderboard(&self) -> Vec<LeaderboardRow> {
        self.shared.leaderboard_rows()
    }

    /// Stops accepting, severs live connections, parks and snapshots
    /// every session, and joins all daemon threads.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for (_, stream) in lock(&self.shared.conns).drain() {
            stream.shutdown();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let handlers: Vec<_> = lock(&self.shared.handlers).drain(..).collect();
        for t in handlers {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        let accepted: io::Result<Stream> = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        };
        match accepted {
            Ok(stream) => {
                let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
                let label = format!("{}.conn{conn_id}", shared.config.label);
                if sim_fault::on_accept(&label) {
                    // Injected accept failure: drop the connection on the
                    // floor and keep serving everyone else.
                    eprintln!("sim-serve: injected accept failure for {label}");
                    continue;
                }
                if let Stream::Tcp(s) = &stream {
                    let _ = s.set_nodelay(true);
                }
                let shared2 = Arc::clone(&shared);
                let handle =
                    std::thread::spawn(move || handle_connection(stream, conn_id, label, shared2));
                lock(&shared.handlers).push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                // Real accept failure (EMFILE and friends): log, breathe,
                // keep the daemon alive for existing sessions.
                eprintln!("sim-serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn sweep_loop(shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(shared.config.tick);
        let now = shared.tick_now();
        let expired = lock(&shared.wheel).advance(now);
        for conn_id in expired {
            if let Some(stream) = lock(&shared.conns).remove(&conn_id) {
                eprintln!("sim-serve: closing idle/half-open connection {conn_id}");
                stream.shutdown();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-connection machinery.

/// What the reader hands the replayer through the bounded ingest channel.
enum Ingest {
    Batch(Vec<Access>),
    Kv(Vec<crate::protocol::KvOp>),
    /// Client asked for a flush: final delta + leaderboard + snapshot.
    Finish,
}

fn handle_connection(stream: Stream, conn_id: u64, label: String, shared: Arc<Shared>) {
    // Register for deadline-wheel shutdown and arm the idle timeout.
    match stream.try_clone() {
        Ok(clone) => {
            lock(&shared.conns).insert(conn_id, clone);
        }
        Err(e) => {
            eprintln!("sim-serve: cannot clone {label}: {e}");
            return;
        }
    }
    shared.touch(conn_id);

    let result = serve_connection(&stream, &label, conn_id, &shared);
    if let Err(e) = result {
        eprintln!("sim-serve: {label} closed: {e}");
    }
    lock(&shared.conns).remove(&conn_id);
    lock(&shared.wheel).cancel(conn_id);
    stream.shutdown();
}

/// Runs one connection to completion. The returned error is for the log;
/// every client-visible failure has already been answered with a typed
/// frame where the socket allowed it.
fn serve_connection(
    stream: &Stream,
    label: &str,
    conn_id: u64,
    shared: &Arc<Shared>,
) -> Result<(), ProtoError> {
    // Distinct read/write labels so fault plans can hit one direction
    // (e.g. stall only server->client writes to force coalescing).
    let mut reader = FaultStream::new(
        stream.try_clone().map_err(ProtoError::Io)?,
        format!("{label}.r"),
    );
    let writer = FaultStream::new(
        stream.try_clone().map_err(ProtoError::Io)?,
        format!("{label}.w"),
    );

    let outbox = Arc::new(SharedOutbox::new(shared.config.outbox_bound));
    let writer_thread = {
        let outbox = Arc::clone(&outbox);
        std::thread::spawn(move || writer_loop(writer, outbox))
    };
    // Everything below must close the outbox on exit so the writer thread
    // terminates; a drop guard survives every early return.
    struct CloseOnDrop(Arc<SharedOutbox>, Option<JoinHandle<()>>);
    impl Drop for CloseOnDrop {
        fn drop(&mut self) {
            self.0.close();
            if let Some(t) = self.1.take() {
                let _ = t.join();
            }
        }
    }
    let _closer = CloseOnDrop(Arc::clone(&outbox), Some(writer_thread));

    // --- Handshake -------------------------------------------------------
    let hello = match recv_client(&mut reader) {
        Ok(ClientFrame::Hello(h)) => h,
        Ok(_) => {
            outbox.push_control(ServerFrame::Error {
                code: ErrorCode::Protocol,
                message: "expected Hello".into(),
            });
            return Ok(());
        }
        Err(e) => {
            outbox.push_control(ServerFrame::Error {
                code: error_code_for(&e),
                message: e.to_string(),
            });
            return Err(e);
        }
    };
    shared.touch(conn_id);

    let (session, resumed) = match open_session(shared, &hello) {
        Ok(pair) => pair,
        Err((code, message)) => {
            outbox.push_control(ServerFrame::Error { code, message });
            return Ok(());
        }
    };
    let session_id = shared.next_session.fetch_add(1, Ordering::SeqCst);
    outbox.push_control(ServerFrame::HelloAck {
        session: session_id,
        resumed,
        roster: session.config().roster.clone(),
    });

    // --- Replayer --------------------------------------------------------
    let (tx, rx): (SyncSender<Ingest>, Receiver<Ingest>) =
        sync_channel(shared.config.ingest_bound.max(1));
    let replayer = {
        let shared = Arc::clone(shared);
        let outbox = Arc::clone(&outbox);
        std::thread::spawn(move || replay_loop(session, rx, outbox, shared))
    };

    // --- Read loop -------------------------------------------------------
    let mut result = Ok(());
    loop {
        match recv_client(&mut reader) {
            Ok(ClientFrame::Accesses(batch)) => {
                shared.touch(conn_id);
                if tx.send(Ingest::Batch(batch)).is_err() {
                    break; // replayer gone (panic); connection is over
                }
            }
            Ok(ClientFrame::KvBatch(ops)) => {
                shared.touch(conn_id);
                if tx.send(Ingest::Kv(ops)).is_err() {
                    break;
                }
            }
            Ok(ClientFrame::Finish) => {
                shared.touch(conn_id);
                if tx.send(Ingest::Finish).is_err() {
                    break;
                }
            }
            Ok(ClientFrame::Bye) => {
                outbox.push_control(ServerFrame::Bye);
                break;
            }
            Ok(ClientFrame::Hello(_)) => {
                outbox.push_control(ServerFrame::Error {
                    code: ErrorCode::Protocol,
                    message: "session already open".into(),
                });
                break;
            }
            Err(e @ (ProtoError::Io(_) | ProtoError::Truncated)) => {
                // The socket is gone (or mid-frame dead): nothing to
                // answer; the replayer will park and snapshot the session.
                result = Err(e);
                break;
            }
            Err(e) => {
                // Malformed but transport-intact input: typed error, then
                // close. Never a panic, never a hang.
                outbox.push_control(ServerFrame::Error {
                    code: error_code_for(&e),
                    message: e.to_string(),
                });
                result = Err(e);
                break;
            }
        }
    }
    drop(tx); // replayer drains the channel, then parks the session
    let _ = replayer.join();
    result
}

/// Resolves a `Hello` into a session: resume a parked one, or build a
/// fresh one. Attached sessions reject a second connection.
fn open_session(
    shared: &Shared,
    hello: &Hello,
) -> Result<(Box<Session>, u64), (ErrorCode, String)> {
    if hello.version != PROTOCOL_VERSION {
        return Err((
            ErrorCode::BadHello,
            format!(
                "protocol version {} unsupported (server speaks {PROTOCOL_VERSION})",
                hello.version
            ),
        ));
    }
    if hello.tenant.is_empty() {
        return Err((ErrorCode::BadHello, "empty tenant".into()));
    }
    let mut sessions = lock(&shared.sessions);
    match sessions.get(&hello.tenant) {
        Some(Slot::Attached) => {
            return Err((
                ErrorCode::SessionBusy,
                format!("tenant {:?} already has a live connection", hello.tenant),
            ));
        }
        Some(Slot::Detached(_)) if hello.resume => {
            let Some(Slot::Detached(session)) =
                sessions.insert(hello.tenant.clone(), Slot::Attached)
            else {
                unreachable!("slot checked above");
            };
            if session.config().kv_mode != hello.kv_mode {
                // Put it back; resuming under a different mode would make
                // the journal lie.
                let msg = format!(
                    "session was {} mode",
                    if session.config().kv_mode {
                        "kv"
                    } else {
                        "address"
                    }
                );
                sessions.insert(hello.tenant.clone(), Slot::Detached(session));
                return Err((ErrorCode::BadHello, msg));
            }
            let resumed = session.ingested();
            return Ok((session, resumed));
        }
        _ => {}
    }
    // Fresh session (an unresumed parked one is discarded: the tenant
    // explicitly started over).
    let delta_every = if hello.delta_every == 0 {
        shared.config.default_delta_every
    } else {
        hello.delta_every
    };
    let session = Session::new(
        &hello.tenant,
        hello.geometry,
        hello.kv_mode,
        delta_every,
        &hello.roster,
        &shared.registry,
    )
    .map_err(|e| {
        let code = match e {
            crate::session::SessionError::UnknownPolicy(_) => ErrorCode::UnknownPolicy,
            _ => ErrorCode::BadHello,
        };
        (code, e.to_string())
    })?;
    sessions.insert(hello.tenant.clone(), Slot::Attached);
    Ok((Box::new(session), 0))
}

/// Owns the session for the life of the connection: replays batches, cuts
/// deltas, snapshots, and parks the session on the way out.
fn replay_loop(
    mut session: Box<Session>,
    rx: Receiver<Ingest>,
    outbox: Arc<SharedOutbox>,
    shared: Arc<Shared>,
) {
    let tenant = session.config().tenant.clone();
    let mut last_snapshot_at = session.ingested();
    let mut panicked = false;
    while let Ok(msg) = rx.recv() {
        let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            replay_step(&mut session, msg, &outbox, &shared, &mut last_snapshot_at)
        }));
        if step.is_err() {
            panicked = true;
            break;
        }
    }
    if panicked {
        // A policy panicked mid-replay: free the tenant's slot so a
        // reconnect starts fresh instead of wedging on Attached.
        eprintln!("sim-serve: replay for tenant {tenant:?} panicked; session dropped");
        lock(&shared.sessions).remove(&tenant);
    } else {
        shared.detach(session, Some(&outbox));
    }
    outbox.close();
}

fn replay_step(
    session: &mut Session,
    msg: Ingest,
    outbox: &SharedOutbox,
    shared: &Shared,
    last_snapshot_at: &mut u64,
) {
    let delta = match msg {
        Ingest::Batch(batch) => session.ingest(&batch),
        Ingest::Kv(ops) => {
            if !session.config().kv_mode {
                outbox.push_control(ServerFrame::Error {
                    code: ErrorCode::Protocol,
                    message: "KvBatch on a non-kv session".into(),
                });
                return;
            }
            session.ingest_kv(&ops)
        }
        Ingest::Finish => {
            let delta = session.cut_delta();
            shared.update_leaderboard(session);
            shared.snapshot_session(session, Some(outbox));
            *last_snapshot_at = session.ingested();
            outbox.push_control(ServerFrame::Final {
                delta,
                leaderboard: shared.leaderboard_rows(),
            });
            return;
        }
    };
    if let Some(d) = delta {
        outbox.push_delta(d);
    }
    let every = shared.config.snapshot_every;
    if every > 0 && session.ingested() - *last_snapshot_at >= every {
        shared.snapshot_session(session, Some(outbox));
        *last_snapshot_at = session.ingested();
    }
}

/// Drains the outbox onto the socket until closed-and-empty or the socket
/// dies.
fn writer_loop(mut sink: FaultStream, outbox: Arc<SharedOutbox>) {
    loop {
        match outbox.pop_wait(Duration::from_millis(50)) {
            Some(frame) => {
                if send_server(&mut sink, &frame).is_err() {
                    // Socket dead: stop draining; the reader side tears
                    // the connection down and parks the session.
                    return;
                }
            }
            None => {
                if outbox.finished() {
                    return;
                }
            }
        }
    }
}
