//! End-to-end daemon tests over real TCP loopback sockets: the happy
//! path, typed rejection of malformed input, restart-resume bit-identity,
//! idle expiry, and — with `sim-fault` injection — mid-stream
//! disconnects, accept failures, forced backpressure coalescing, and
//! snapshot disk faults.

use sim_core::{Access, AccessKind};
use sim_serve::protocol::{
    recv_server, send_client, write_frame, ClientFrame, ErrorCode, GeometrySpec, Hello, KvOp,
    ServerFrame,
};
use sim_serve::server::{Server, ServerConfig, ServerHandle};
use sim_serve::session::{canonical_stats, default_roster, reference_delta};
use sim_serve::PROTOCOL_VERSION;
use std::net::TcpStream;
use std::time::Duration;

fn spec() -> GeometrySpec {
    GeometrySpec {
        size_bytes: 64 * 1024,
        ways: 16,
        line_bytes: 64,
    }
}

/// Deterministic access stream (same construction as the session tests).
fn stream(n: usize, seed: u64) -> Vec<Access> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let addr = (state % 4096) * 64;
            let kind = match state % 5 {
                0 => AccessKind::Write,
                4 => AccessKind::Writeback,
                _ => AccessKind::Read,
            };
            Access {
                addr,
                pc: (i as u64) * 4,
                kind,
                icount_delta: (state % 7) as u32 + 1,
            }
        })
        .collect()
}

struct Client {
    sock: TcpStream,
}

impl Client {
    fn connect(server: &ServerHandle) -> Client {
        let addr = server.local_addr().expect("tcp server has an address");
        let sock = TcpStream::connect(addr).expect("connect");
        sock.set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        sock.set_nodelay(true).unwrap();
        Client { sock }
    }

    fn send(&mut self, frame: &ClientFrame) -> std::io::Result<()> {
        send_client(&mut self.sock, frame)
    }

    fn recv(&mut self) -> ServerFrame {
        recv_server(&mut self.sock).expect("server frame")
    }

    fn try_recv(&mut self) -> Result<ServerFrame, sim_serve::ProtoError> {
        recv_server(&mut self.sock)
    }

    fn hello(&mut self, tenant: &str, resume: bool, kv: bool, delta_every: u64) -> ServerFrame {
        self.send(&ClientFrame::Hello(Hello {
            version: PROTOCOL_VERSION,
            tenant: tenant.into(),
            resume,
            kv_mode: kv,
            geometry: spec(),
            roster: Vec::new(),
            delta_every,
        }))
        .expect("send hello");
        self.recv()
    }

    /// Reads frames until `Final`, returning (deltas, throttles, warnings,
    /// final).
    fn drain_to_final(&mut self) -> (Vec<sim_serve::Delta>, u64, Vec<(u8, String)>, ServerFrame) {
        let mut deltas = Vec::new();
        let mut throttles = 0u64;
        let mut warnings = Vec::new();
        loop {
            match self.recv() {
                ServerFrame::Delta(d) => deltas.push(d),
                ServerFrame::Throttled { coalesced } => throttles += coalesced,
                ServerFrame::Warning { code, message } => warnings.push((code, message)),
                f @ ServerFrame::Final { .. } => return (deltas, throttles, warnings, f),
                other => panic!("unexpected frame before Final: {other:?}"),
            }
        }
    }
}

fn serve(config: ServerConfig) -> ServerHandle {
    Server::bind_tcp("127.0.0.1:0", default_roster(), config).expect("bind")
}

#[test]
fn end_to_end_session_matches_reference() {
    let server = serve(ServerConfig::default());
    let accesses = stream(300, 9);

    let mut c = Client::connect(&server);
    match c.hello("tenant-e2e", false, false, 64) {
        ServerFrame::HelloAck {
            resumed, roster, ..
        } => {
            assert_eq!(resumed, 0);
            assert_eq!(roster.len(), default_roster().len());
        }
        other => panic!("expected HelloAck, got {other:?}"),
    }
    for chunk in accesses.chunks(37) {
        c.send(&ClientFrame::Accesses(chunk.to_vec())).unwrap();
    }
    c.send(&ClientFrame::Finish).unwrap();
    let (deltas, _throttled, warnings, fin) = c.drain_to_final();
    assert!(warnings.is_empty(), "{warnings:?}");

    // Periodic deltas: monotonically increasing seq, contiguous coverage.
    let mut expect_from = 0;
    for (i, d) in deltas.iter().enumerate() {
        assert_eq!(d.seq, i as u64);
        assert_eq!(d.covered_from, expect_from);
        expect_from = d.covered_to;
    }

    let ServerFrame::Final { delta, leaderboard } = fin else {
        panic!("not final");
    };
    let reference = reference_delta(&accesses, &[], &default_roster(), spec()).unwrap();
    assert_eq!(canonical_stats(&delta), canonical_stats(&reference));
    assert_eq!(leaderboard.len(), 1);
    assert_eq!(leaderboard[0].tenant, "tenant-e2e");
    assert_eq!(leaderboard[0].accesses, 300);

    c.send(&ClientFrame::Bye).unwrap();
    assert!(matches!(c.recv(), ServerFrame::Bye));
    server.shutdown();
}

#[test]
fn kv_session_matches_hand_lowered_reference() {
    let server = serve(ServerConfig::default());
    let ops: Vec<KvOp> = (0..240)
        .map(|i| KvOp {
            write: i % 4 == 0,
            key: format!("item:{}", i % 53),
        })
        .collect();

    let mut c = Client::connect(&server);
    assert!(matches!(
        c.hello("tenant-kv", false, true, 1000),
        ServerFrame::HelloAck { .. }
    ));
    for chunk in ops.chunks(50) {
        c.send(&ClientFrame::KvBatch(chunk.to_vec())).unwrap();
    }
    c.send(&ClientFrame::Finish).unwrap();
    let (_, _, _, fin) = c.drain_to_final();
    let ServerFrame::Final { delta, .. } = fin else {
        panic!("not final");
    };

    let lowered: Vec<Access> = ops
        .iter()
        .map(|op| sim_serve::kv::op_to_access(op, 64))
        .collect();
    let reference = reference_delta(&lowered, &[], &default_roster(), spec()).unwrap();
    assert_eq!(canonical_stats(&delta), canonical_stats(&reference));
    server.shutdown();
}

#[test]
fn malformed_frames_get_typed_errors_and_daemon_survives() {
    use std::io::Write as _;
    let server = serve(ServerConfig::default());

    // Unknown frame kind (valid CRC): typed BadFrame error.
    let mut c = Client::connect(&server);
    write_frame(&mut c.sock, 0x7f, b"junk").unwrap();
    match c.recv() {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected typed error, got {other:?}"),
    }

    // Corrupted CRC: typed BadCrc error.
    let mut c = Client::connect(&server);
    let (kind, payload) = ClientFrame::Finish.encode();
    let mut buf = Vec::new();
    write_frame(&mut buf, kind, &payload).unwrap();
    let last = buf.len() - 1;
    buf[last] ^= 0xff;
    c.sock.write_all(&buf).unwrap();
    match c.recv() {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::BadCrc),
        other => panic!("expected BadCrc, got {other:?}"),
    }

    // Oversized length prefix: typed TooLarge error, no allocation blowup.
    let mut c = Client::connect(&server);
    c.sock.write_all(&u32::MAX.to_le_bytes()).unwrap();
    c.sock.write_all(&[0x01]).unwrap();
    match c.recv() {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::TooLarge),
        other => panic!("expected TooLarge, got {other:?}"),
    }

    // A session opened after all that abuse still works end to end.
    let mut c = Client::connect(&server);
    assert!(matches!(
        c.hello("tenant-after-abuse", false, false, 1000),
        ServerFrame::HelloAck { .. }
    ));
    c.send(&ClientFrame::Accesses(stream(50, 3))).unwrap();
    c.send(&ClientFrame::Finish).unwrap();
    let (_, _, _, fin) = c.drain_to_final();
    assert!(matches!(fin, ServerFrame::Final { .. }));
    server.shutdown();
}

#[test]
fn bad_hello_and_busy_sessions_are_typed() {
    let server = serve(ServerConfig::default());

    // Unknown policy.
    let mut c = Client::connect(&server);
    c.send(&ClientFrame::Hello(Hello {
        version: PROTOCOL_VERSION,
        tenant: "t".into(),
        resume: false,
        kv_mode: false,
        geometry: spec(),
        roster: vec!["NoSuchPolicy".into()],
        delta_every: 0,
    }))
    .unwrap();
    match c.recv() {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownPolicy),
        other => panic!("{other:?}"),
    }

    // Wrong protocol version.
    let mut c = Client::connect(&server);
    c.send(&ClientFrame::Hello(Hello {
        version: 999,
        tenant: "t".into(),
        resume: false,
        kv_mode: false,
        geometry: spec(),
        roster: Vec::new(),
        delta_every: 0,
    }))
    .unwrap();
    match c.recv() {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::BadHello),
        other => panic!("{other:?}"),
    }

    // Second connection for an attached tenant: SessionBusy.
    let mut a = Client::connect(&server);
    assert!(matches!(
        a.hello("tenant-busy", false, false, 0),
        ServerFrame::HelloAck { .. }
    ));
    let mut b = Client::connect(&server);
    match b.hello("tenant-busy", false, false, 0) {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::SessionBusy),
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn daemon_restart_resumes_sessions_bit_identically() {
    let dir = std::env::temp_dir().join(format!("sim-serve-e2e-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let accesses = stream(300, 21);
    let (head, tail) = accesses.split_at(180);

    // First daemon: stream the head, then leave (Bye parks + snapshots).
    let server = serve(config.clone());
    let mut c = Client::connect(&server);
    assert!(matches!(
        c.hello("tenant-r", false, false, 64),
        ServerFrame::HelloAck { .. }
    ));
    for chunk in head.chunks(41) {
        c.send(&ClientFrame::Accesses(chunk.to_vec())).unwrap();
    }
    c.send(&ClientFrame::Bye).unwrap();
    // Drain until Bye so ingest is fully acknowledged before shutdown.
    loop {
        match c.recv() {
            ServerFrame::Bye => break,
            ServerFrame::Delta(_) | ServerFrame::Throttled { .. } => {}
            other => panic!("{other:?}"),
        }
    }
    server.shutdown(); // the "kill": daemon gone, snapshot on disk

    // Second daemon, same snapshot dir: the session must come back.
    let server = serve(config);
    assert_eq!(server.session_count(), 1, "snapshot restored at startup");
    let mut c = Client::connect(&server);
    match c.hello("tenant-r", true, false, 64) {
        ServerFrame::HelloAck { resumed, .. } => assert_eq!(resumed, 180),
        other => panic!("{other:?}"),
    }
    for chunk in tail.chunks(41) {
        c.send(&ClientFrame::Accesses(chunk.to_vec())).unwrap();
    }
    c.send(&ClientFrame::Finish).unwrap();
    let (_, _, _, fin) = c.drain_to_final();
    let ServerFrame::Final { delta, .. } = fin else {
        panic!("not final");
    };
    let reference = reference_delta(&accesses, &[], &default_roster(), spec()).unwrap();
    assert_eq!(
        canonical_stats(&delta),
        canonical_stats(&reference),
        "killed-and-restarted daemon must reproduce the uninterrupted run"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_connection_expires_but_session_survives() {
    let server = serve(ServerConfig {
        idle_timeout: Duration::from_millis(120),
        tick: Duration::from_millis(10),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(&server);
    assert!(matches!(
        c.hello("tenant-idle", false, false, 0),
        ServerFrame::HelloAck { .. }
    ));
    c.send(&ClientFrame::Accesses(stream(40, 5))).unwrap();
    // Go quiet. The deadline wheel must sever this connection.
    let died = c.try_recv().is_err();
    assert!(died, "idle connection should be shut down by the server");

    // The tenant is not lost: a resume picks the session back up.
    let mut c = Client::connect(&server);
    match c.hello("tenant-idle", true, false, 0) {
        ServerFrame::HelloAck { resumed, .. } => assert_eq!(resumed, 40),
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Injected connection/disk faults (need the `injection` feature, which
// `cargo test` enables through dev-dependency feature unification).

#[test]
fn injected_midstream_disconnect_spares_the_session() {
    if !sim_fault::COMPILED_IN {
        return;
    }
    let server = serve(ServerConfig {
        label: "dsrv-disc".into(),
        ..ServerConfig::default()
    });
    let accesses = stream(200, 33);

    // Sever the first connection's socket from the 25th server-side I/O
    // operation onward: a mid-frame disconnect somewhere in the stream.
    let resumed = sim_fault::with_plan("disconnect@dsrv-disc.conn1:n=25:sticky", || {
        let mut c = Client::connect(&server);
        assert!(matches!(
            c.hello("tenant-d", false, false, 1_000_000),
            ServerFrame::HelloAck { .. }
        ));
        for chunk in accesses.chunks(10) {
            if c.send(&ClientFrame::Accesses(chunk.to_vec())).is_err() {
                break;
            }
        }
        // The connection is dead (possibly after the whole send loop, if
        // the kernel buffered our writes); wait for the server to park
        // the session, then ask how far it got.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let mut c = Client::connect(&server);
            match c.hello("tenant-d", true, false, 1_000_000) {
                ServerFrame::HelloAck { resumed, .. } => {
                    c.send(&ClientFrame::Bye).unwrap();
                    return resumed;
                }
                ServerFrame::Error {
                    code: ErrorCode::SessionBusy,
                    ..
                } => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "session never detached"
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
                other => panic!("{other:?}"),
            }
        }
    });
    // The server kept a whole-batch prefix of the stream: nothing torn,
    // nothing duplicated.
    assert!(resumed <= 200, "kept {resumed}");
    assert_eq!(resumed % 10, 0, "partial batches must not be ingested");

    // Resume from exactly there and finish: bit-identical to a clean run.
    let mut c = Client::connect(&server);
    match c.hello("tenant-d", true, false, 1_000_000) {
        ServerFrame::HelloAck { resumed: r, .. } => assert_eq!(r, resumed),
        other => panic!("{other:?}"),
    }
    for chunk in accesses[resumed as usize..].chunks(10) {
        c.send(&ClientFrame::Accesses(chunk.to_vec())).unwrap();
    }
    c.send(&ClientFrame::Finish).unwrap();
    let (_, _, _, fin) = c.drain_to_final();
    let ServerFrame::Final { delta, .. } = fin else {
        panic!("not final");
    };
    let reference = reference_delta(&accesses, &[], &default_roster(), spec()).unwrap();
    assert_eq!(canonical_stats(&delta), canonical_stats(&reference));
    server.shutdown();
}

#[test]
fn injected_accept_failure_is_survived() {
    if !sim_fault::COMPILED_IN {
        return;
    }
    let server = serve(ServerConfig {
        label: "asrv-acc".into(),
        ..ServerConfig::default()
    });
    sim_fault::with_plan("accept-fail@asrv-acc:n=1", || {
        // First connection is dropped at accept: the client sees the
        // socket close (or reset) without ever receiving a frame.
        let mut c = Client::connect(&server);
        let _ = c.send(&ClientFrame::Hello(Hello {
            version: PROTOCOL_VERSION,
            tenant: "tenant-a".into(),
            resume: false,
            kv_mode: false,
            geometry: spec(),
            roster: Vec::new(),
            delta_every: 0,
        }));
        assert!(
            c.try_recv().is_err(),
            "dropped-at-accept connection must not produce a frame"
        );
    });
    // What matters is that the NEXT connection works.
    let mut c = Client::connect(&server);
    assert!(matches!(
        c.hello("tenant-a2", false, false, 0),
        ServerFrame::HelloAck { .. }
    ));
    c.send(&ClientFrame::Accesses(stream(30, 2))).unwrap();
    c.send(&ClientFrame::Finish).unwrap();
    let (_, _, _, fin) = c.drain_to_final();
    assert!(matches!(fin, ServerFrame::Final { .. }));
    server.shutdown();
}

#[test]
fn stalled_writer_forces_coalescing_and_throttle_frame() {
    if !sim_fault::COMPILED_IN {
        return;
    }
    let server = serve(ServerConfig {
        label: "tsrv-slow".into(),
        outbox_bound: 2,
        ..ServerConfig::default()
    });
    // Stall only the server->client direction: replay runs at full speed,
    // the writer crawls, the outbox must coalesce instead of growing.
    let n = 60u64;
    let (deltas, throttled, fin) =
        sim_fault::with_plan("conn-stall@tsrv-slow.conn1.w:ms=40:sticky", || {
            let mut c = Client::connect(&server);
            assert!(matches!(
                c.hello("tenant-slow", false, false, 1),
                ServerFrame::HelloAck { .. }
            ));
            // One access per batch, delta_every=1: every batch births a
            // delta, two orders of magnitude faster than the writer.
            for a in stream(n as usize, 77) {
                c.send(&ClientFrame::Accesses(vec![a])).unwrap();
            }
            c.send(&ClientFrame::Finish).unwrap();
            let (d, t, _, f) = c.drain_to_final();
            (d, t, f)
        });

    assert!(
        throttled > 0,
        "a slow consumer must be told about coalescing"
    );
    assert!(
        (deltas.len() as u64) < n,
        "coalescing must shrink the delta stream ({} of {n} arrived)",
        deltas.len()
    );
    // Exactly-once delivery despite coalescing: contiguous, gap-free
    // coverage from 0 to n across the deltas that did arrive.
    let mut expect_from = 0;
    for d in &deltas {
        assert_eq!(d.covered_from, expect_from, "gap or overlap in coverage");
        expect_from = d.covered_to;
    }
    let ServerFrame::Final { delta, .. } = fin else {
        panic!("not final");
    };
    assert_eq!(delta.covered_from, expect_from, "final covers the rest");
    assert_eq!(delta.covered_to, n);
    server.shutdown();
}

#[test]
fn snapshot_disk_fault_degrades_session_with_warning() {
    if !sim_fault::COMPILED_IN {
        return;
    }
    let dir = std::env::temp_dir().join(format!("sim-serve-e2e-deg-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    fn no_backoff(_attempt: u64) -> Duration {
        Duration::from_millis(0)
    }
    let server = serve(ServerConfig {
        snapshot_dir: Some(dir.clone()),
        snapshot_every: 50,
        snapshot_attempts: 2,
        backoff: no_backoff,
        ..ServerConfig::default()
    });
    let accesses = stream(160, 55);

    let (warnings, fin) = sim_fault::with_plan("enospc@tenant-deg.ssn:sticky", || {
        let mut c = Client::connect(&server);
        assert!(matches!(
            c.hello("tenant-deg", false, false, 1_000_000),
            ServerFrame::HelloAck { .. }
        ));
        for chunk in accesses.chunks(20) {
            c.send(&ClientFrame::Accesses(chunk.to_vec())).unwrap();
        }
        c.send(&ClientFrame::Finish).unwrap();
        let (_, _, w, f) = c.drain_to_final();
        (w, f)
    });

    // Exactly one degradation warning (ephemeral sessions stop retrying).
    assert_eq!(warnings.len(), 1, "{warnings:?}");
    assert_eq!(
        warnings[0].0,
        sim_serve::protocol::warning::SNAPSHOT_DEGRADED
    );
    // The tenant's replay was not harmed by the dying disk.
    let ServerFrame::Final { delta, .. } = fin else {
        panic!("not final");
    };
    let reference = reference_delta(&accesses, &[], &default_roster(), spec()).unwrap();
    assert_eq!(canonical_stats(&delta), canonical_stats(&reference));
    // And no snapshot file exists (the writes all failed atomically).
    assert!(!dir.join("tenant-deg.ssn").exists());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unix_socket_listener_works() {
    let dir = std::env::temp_dir().join(format!("sim-serve-uds-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve.sock");
    let server = Server::bind_unix(&path, default_roster(), ServerConfig::default()).unwrap();

    let mut sock = std::os::unix::net::UnixStream::connect(&path).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    send_client(
        &mut sock,
        &ClientFrame::Hello(Hello {
            version: PROTOCOL_VERSION,
            tenant: "tenant-uds".into(),
            resume: false,
            kv_mode: false,
            geometry: spec(),
            roster: Vec::new(),
            delta_every: 0,
        }),
    )
    .unwrap();
    assert!(matches!(
        recv_server(&mut sock).unwrap(),
        ServerFrame::HelloAck { .. }
    ));
    send_client(&mut sock, &ClientFrame::Accesses(stream(25, 1))).unwrap();
    send_client(&mut sock, &ClientFrame::Finish).unwrap();
    loop {
        match recv_server(&mut sock).unwrap() {
            ServerFrame::Final { .. } => break,
            ServerFrame::Delta(_) | ServerFrame::Throttled { .. } => {}
            other => panic!("{other:?}"),
        }
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
