//! Property tests for the backpressure math (satellite of PR 10).
//!
//! Two invariants, checked over arbitrary push/pop interleavings:
//!
//! 1. **Bounded memory** — the number of frames the outbox holds never
//!    exceeds `bound + 2 + |control|` (queued deltas, one coalesced slot,
//!    one owed `Throttled`, rare control frames), no matter how slow the
//!    consumer is.
//! 2. **Exactly-once coverage** — a consumer that eventually drains
//!    receives deltas whose covered ranges tile `[0, total)` contiguously
//!    with no gap, no overlap, and no reordering, and every `Throttled`
//!    frame's count equals the number of pushes folded into the delta
//!    immediately preceding it.

use proptest::prelude::*;
use sim_core::CacheStats;
use sim_serve::protocol::{Delta, PolicyRow, ServerFrame};
use sim_serve::DeltaOutbox;

/// Cumulative delta covering `[from, to)`; counters derive from `to` so a
/// merged delta's counters are exactly the latest constituent's.
fn delta(seq: u64, from: u64, to: u64) -> Delta {
    Delta {
        seq,
        covered_from: from,
        covered_to: to,
        instructions: to * 3,
        rows: vec![PolicyRow {
            name: "PLRU".into(),
            stats: CacheStats {
                accesses: to,
                hits: to / 3,
                misses: to - to / 3,
                evictions: 0,
                writebacks: 0,
                bypasses: 0,
            },
        }],
    }
}

/// One step of a producer/consumer schedule: `true` = the producer pushes
/// the next delta in sequence, `false` = the consumer pops one frame.
fn schedule() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 1..200)
}

proptest! {
    /// Invariant 1: occupancy stays bounded under arbitrary interleavings
    /// and any bound.
    #[test]
    fn occupancy_never_exceeds_bound(steps in schedule(), bound in 1usize..8) {
        let mut ob = DeltaOutbox::new(bound);
        let mut seq = 0u64;
        let mut cursor = 0u64;
        for push in steps {
            if push {
                let next = cursor + 1 + seq % 5;
                ob.push_delta(delta(seq, cursor, next));
                (seq, cursor) = (seq + 1, next);
            } else {
                let _ = ob.pop();
            }
            prop_assert!(
                ob.occupancy() <= ob.bound(),
                "queued {} > bound {}",
                ob.occupancy(),
                ob.bound()
            );
        }
    }

    /// Invariant 2: draining after an arbitrary interleaving yields
    /// contiguous, exactly-once coverage of everything pushed, with each
    /// Throttled count matching the folds in the delta right before it.
    #[test]
    fn drained_consumer_sees_every_delta_exactly_once(
        steps in schedule(),
        bound in 1usize..8,
    ) {
        let mut ob = DeltaOutbox::new(bound);
        let mut seq = 0u64;
        let mut cursor = 0u64;
        let mut received: Vec<ServerFrame> = Vec::new();
        for push in steps {
            if push {
                let next = cursor + 1 + seq % 5;
                ob.push_delta(delta(seq, cursor, next));
                (seq, cursor) = (seq + 1, next);
            } else if let Some(f) = ob.pop() {
                received.push(f);
            }
        }
        while let Some(f) = ob.pop() {
            received.push(f);
        }
        prop_assert!(ob.is_empty());

        // Tile check: covered ranges are contiguous from 0 to the last
        // pushed boundary; seqs strictly increase; counters always match
        // the range end (cumulative semantics survive merging).
        let mut expect_from = 0u64;
        let mut last_seq = None;
        let mut last_delta_span: Option<(u64, u64)> = None; // (first_seq_possible, seq)
        let mut folded_total = 0u64;
        for f in &received {
            match f {
                ServerFrame::Delta(d) => {
                    prop_assert_eq!(d.covered_from, expect_from, "gap or overlap");
                    prop_assert!(d.covered_to > d.covered_from);
                    if let Some(prev) = last_seq {
                        prop_assert!(d.seq > prev, "reordered deltas");
                    }
                    prop_assert_eq!(d.rows[0].stats.accesses, d.covered_to);
                    expect_from = d.covered_to;
                    last_delta_span = Some((last_seq.map_or(0, |s| s + 1), d.seq));
                    last_seq = Some(d.seq);
                }
                ServerFrame::Throttled { coalesced } => {
                    // A Throttled frame always directly follows the merged
                    // delta and counts exactly the pushes folded into it.
                    let (first, last) = last_delta_span
                        .take()
                        .expect("Throttled without a preceding delta");
                    // (`coalesced == 1` is legal: one push routed through
                    // the overflow slot and drained before a second merge.)
                    prop_assert_eq!(*coalesced, last - first + 1);
                    folded_total += *coalesced;
                }
                other => prop_assert!(false, "unexpected frame {:?}", other),
            }
        }
        // Everything pushed is accounted for: full coverage up to the
        // producer's cursor, and every push is either its own delta or
        // folded into a throttle-announced merge.
        prop_assert_eq!(expect_from, cursor, "coverage must reach the last push");
        let delivered_individually = received
            .iter()
            .filter(|f| matches!(f, ServerFrame::Delta(_)))
            .count() as u64;
        // Each Throttled accounts for `coalesced` pushes delivered as one
        // delta, i.e. (coalesced - 1) pushes that did NOT get their own.
        let throttles = received
            .iter()
            .filter(|f| matches!(f, ServerFrame::Throttled { .. }))
            .count() as u64;
        prop_assert_eq!(
            delivered_individually + folded_total - throttles,
            seq,
            "every push delivered exactly once"
        );
    }
}
