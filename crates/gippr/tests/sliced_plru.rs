//! Property tests proving the bit-sliced PLRU tree (`sim_core::slice`)
//! and the reference `PlruTree` are the same state machine: identical
//! victim, identical position reads, and identical tree bits after any
//! `set_position`, for every supported associativity, at every lane
//! offset of the packed word.

use gippr::PlruTree;
use proptest::prelude::*;
use sim_core::SlicedTree;

fn ways_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(4usize), Just(8), Just(16)]
}

proptest! {
    /// Starting from the same raw bits, the packed tree agrees with
    /// `PlruTree::from_raw_bits` on victim and on every way's position —
    /// in every lane of the word.
    #[test]
    fn sliced_tree_reads_match_plru_tree(
        ways in ways_strategy(),
        bits in any::<u64>(),
    ) {
        let bits = bits & ((1u64 << (ways - 1)) - 1);
        let reference = PlruTree::from_raw_bits(ways, bits);
        for lane in 0..64 / ways {
            let sliced = SlicedTree::at_lane(ways, bits, lane);
            prop_assert_eq!(sliced.victim(), reference.victim(), "lane {}", lane);
            for way in 0..ways {
                prop_assert_eq!(
                    sliced.position(way),
                    reference.position(way),
                    "lane {} way {}", lane, way
                );
            }
        }
    }

    /// After an arbitrary sequence of `set_position` writes, the packed
    /// tree's lane bits equal the reference tree's raw bits (and sibling
    /// lanes stay untouched — `tree_bits` asserts poison integrity).
    #[test]
    fn sliced_tree_writes_match_plru_tree(
        ways in ways_strategy(),
        bits in any::<u64>(),
        ops in proptest::collection::vec((0usize..64, 0usize..64), 1..48),
    ) {
        let bits = bits & ((1u64 << (ways - 1)) - 1);
        for lane in 0..64 / ways {
            let mut sliced = SlicedTree::at_lane(ways, bits, lane);
            let mut reference = PlruTree::from_raw_bits(ways, bits);
            for &(w, p) in &ops {
                sliced.set_position(w % ways, p % ways);
                reference.set_position(w % ways, p % ways);
            }
            prop_assert_eq!(sliced.tree_bits(), reference.raw_bits(), "lane {}", lane);
            prop_assert_eq!(sliced.victim(), reference.victim(), "lane {}", lane);
        }
    }

    /// Position round-trip through the packed tree: writing a position and
    /// reading it back is the identity, at every lane offset.
    #[test]
    fn sliced_tree_position_round_trips(
        ways in ways_strategy(),
        bits in any::<u64>(),
        way in 0usize..64,
        pos in 0usize..64,
    ) {
        let bits = bits & ((1u64 << (ways - 1)) - 1);
        let (way, pos) = (way % ways, pos % ways);
        for lane in 0..64 / ways {
            let mut sliced = SlicedTree::at_lane(ways, bits, lane);
            sliced.set_position(way, pos);
            prop_assert_eq!(sliced.position(way), pos, "lane {}", lane);
        }
    }
}
