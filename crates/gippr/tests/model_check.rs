//! Exhaustive model checking of the production [`PlruTree`].
//!
//! The `sim-lint` checker is generic over its tree substrate, so these
//! tests prove the invariants — victim totality, the position↔tree
//! bijection, valid-mask prefix closure, promotion convergence — for the
//! bit-packed tree the simulator actually ships, not a model of it.
//! Debug-profile tests stop at 8 ways to stay fast; `cargo xtask
//! model-check` runs the same sweeps at 16 ways in release.

use gippr::{vectors, PlruTree};
use sim_lint::{cross_check, MirrorTree, ModelChecker, PromotionRule};

#[test]
fn plain_plru_is_clean_on_the_production_tree() {
    for ways in [2usize, 4, 8] {
        let report = ModelChecker::new(ways, PromotionRule::Plru)
            .run::<PlruTree>()
            .unwrap_or_else(|ce| panic!("counterexample at {ways} ways:\n{ce}"));
        assert_eq!(report.tree_states, 1u64 << (ways - 1));
    }
}

#[test]
fn classic_vectors_are_clean_on_the_production_tree() {
    for ways in [2usize, 4, 8] {
        // LRU: promote to MRU, insert at MRU.
        let lru = vec![0u8; ways + 1];
        // LIP: promote to MRU, insert at the victim position.
        let mut lip = vec![0u8; ways + 1];
        lip[ways] = (ways - 1) as u8;
        for ipv in [lru, lip] {
            ModelChecker::new(ways, PromotionRule::Ipv(ipv.clone()))
                .run::<PlruTree>()
                .unwrap_or_else(|ce| panic!("counterexample for {ipv:?} at {ways} ways:\n{ce}"));
        }
    }
}

#[test]
fn paper_vectors_are_clean_when_rescaled_to_8_ways() {
    // The published vectors target 16 ways; `rescaled` maps them down so
    // the debug-profile exhaustive sweep stays cheap. The 16-way originals
    // run under `cargo xtask model-check` in release.
    for ipv in [
        vectors::giplr_best(),
        vectors::wi_gippr(),
        vectors::perlbench_wn1(),
    ] {
        let small = ipv.rescaled(8).expect("16 -> 8 rescale is valid");
        ModelChecker::new(8, PromotionRule::Ipv(small.entries().to_vec()))
            .run::<PlruTree>()
            .unwrap_or_else(|ce| panic!("counterexample for {small}:\n{ce}"));
    }
}

#[test]
fn production_tree_matches_naive_mirror_exhaustively() {
    // Complete-state-space differential check: every tree state, every
    // (way, position) write, both substrates must agree bit for bit.
    for ways in [2usize, 4, 8, 16] {
        let states = cross_check::<PlruTree, MirrorTree>(ways)
            .unwrap_or_else(|ce| panic!("substrate disagreement at {ways} ways:\n{ce}"));
        assert_eq!(states, 1u64 << (ways - 1));
    }
}
