//! Property-based tests for the PLRU position algebra, the recency stack,
//! and the IPV-driven policies.

use gippr::{DgipprPolicy, GiplrPolicy, GipprPolicy, Ipv, PlruTree, RecencyStack};
use proptest::prelude::*;
use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy, SetAssocCache};

fn assoc_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(2usize), Just(4), Just(8), Just(16), Just(32), Just(64)]
}

proptest! {
    /// set_position followed by position reads back the same value, for any
    /// prior tree state.
    #[test]
    fn plru_set_position_round_trips(
        assoc in assoc_strategy(),
        seed_ops in proptest::collection::vec((0usize..64, 0usize..64), 0..32),
        way in 0usize..64,
        pos in 0usize..64,
    ) {
        let way = way % assoc;
        let pos = pos % assoc;
        let mut t = PlruTree::new(assoc);
        for &(w, p) in &seed_ops {
            t.set_position(w % assoc, p % assoc);
        }
        t.set_position(way, pos);
        prop_assert_eq!(t.position(way), pos);
    }

    /// PLRU positions always form a permutation of 0..k, whatever sequence
    /// of writes occurred.
    #[test]
    fn plru_positions_always_a_permutation(
        assoc in assoc_strategy(),
        ops in proptest::collection::vec((0usize..64, 0usize..64), 0..64),
    ) {
        let mut t = PlruTree::new(assoc);
        for &(w, p) in &ops {
            t.set_position(w % assoc, p % assoc);
            let mut ps = t.positions();
            ps.sort_unstable();
            prop_assert_eq!(ps, (0..assoc).collect::<Vec<_>>());
        }
    }

    /// The PLRU victim always sits at position k-1 (all plru bits lead to
    /// it), and promote() always takes a block to position 0.
    #[test]
    fn plru_victim_and_promote_extremes(
        assoc in assoc_strategy(),
        ops in proptest::collection::vec((0usize..64, 0usize..64), 0..64),
        touch in 0usize..64,
    ) {
        let mut t = PlruTree::new(assoc);
        for &(w, p) in &ops {
            t.set_position(w % assoc, p % assoc);
        }
        prop_assert_eq!(t.position(t.victim()), assoc - 1);
        t.promote(touch % assoc);
        prop_assert_eq!(t.position(touch % assoc), 0);
        prop_assert_ne!(t.victim(), touch % assoc);
    }

    /// The recency stack remains a permutation under arbitrary IPV moves,
    /// and the moved block always lands exactly at its target.
    #[test]
    fn recency_stack_moves_preserve_permutation(
        assoc in assoc_strategy(),
        moves in proptest::collection::vec((0usize..64, 0usize..64), 1..64),
    ) {
        let mut s = RecencyStack::new(assoc);
        for &(w, target) in &moves {
            let (w, target) = (w % assoc, target % assoc);
            s.move_to(w, target);
            prop_assert_eq!(s.position(w), target);
            prop_assert!(s.is_permutation());
        }
    }

    /// RecencyStack::move_to only displaces blocks between source and
    /// target, each by exactly one position.
    #[test]
    fn recency_stack_shift_locality(
        assoc in assoc_strategy(),
        w in 0usize..64,
        target in 0usize..64,
    ) {
        let (w, target) = (w % assoc, target % assoc);
        let mut s = RecencyStack::new(assoc);
        let before: Vec<usize> = (0..assoc).map(|x| s.position(x)).collect();
        s.move_to(w, target);
        let src = before[w];
        for other in (0..assoc).filter(|&o| o != w) {
            let b = before[other];
            let a = s.position(other);
            let delta = a as i64 - b as i64;
            if target <= src && (target..src).contains(&b) {
                prop_assert_eq!(delta, 1);
            } else if target > src && b > src && b <= target {
                prop_assert_eq!(delta, -1);
            } else {
                prop_assert_eq!(delta, 0);
            }
        }
    }

    /// GIPLR with the all-zero vector is bit-exact classic LRU on any block
    /// stream (cross-checked against a reference list-based model).
    #[test]
    fn giplr_zero_vector_is_lru(
        blocks in proptest::collection::vec(0u64..64, 1..300),
    ) {
        let geom = CacheGeometry::from_sets(2, 4, 64).unwrap();
        let policy = GiplrPolicy::new(&geom, Ipv::lru(4)).unwrap();
        let mut cache = SetAssocCache::new(geom, Box::new(policy));
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); 2];
        for &blk in &blocks {
            let set = (blk % 2) as usize;
            let hit = model[set].contains(&blk);
            let out = cache.access_block(blk, &AccessContext::blank());
            prop_assert_eq!(out.hit, hit);
            if hit {
                model[set].retain(|&b| b != blk);
            } else if model[set].len() == 4 {
                let victim = model[set].remove(0);
                prop_assert_eq!(out.evicted.unwrap().block_addr, victim);
            }
            model[set].push(blk);
        }
    }

    /// Under any valid IPV, a GIPPR cache never stores duplicate blocks and
    /// never exceeds its associativity; fills land at the insertion
    /// position and hits land at the promotion target.
    #[test]
    fn gippr_respects_vector_semantics(
        entries in proptest::collection::vec(0u8..16, 17),
        blocks in proptest::collection::vec(0u64..256, 1..300),
    ) {
        let ipv = Ipv::new(entries, 16).unwrap();
        let geom = CacheGeometry::from_sets(4, 16, 64).unwrap();
        let mut policy = GipprPolicy::new(&geom, ipv.clone()).unwrap();
        // Drive the policy directly to observe positions.
        for (i, &blk) in blocks.iter().enumerate() {
            let set = (blk % 4) as usize;
            let way = (blk / 4 % 16) as usize;
            if i % 2 == 0 {
                policy.on_fill(set, way, &AccessContext::blank());
                prop_assert_eq!(policy.tree(set).position(way), ipv.insertion());
            } else {
                let pos = policy.tree(set).position(way);
                policy.on_hit(set, way, &AccessContext::blank());
                prop_assert_eq!(policy.tree(set).position(way), ipv.promotion(pos));
            }
            let v = policy.victim(set, &AccessContext::blank());
            prop_assert_eq!(policy.tree(set).position(v), 15);
        }
    }

    /// A cache under any IPV-driven policy holds at most `ways` distinct
    /// blocks per set and never duplicates a block.
    #[test]
    fn cache_invariants_under_random_ipv(
        entries in proptest::collection::vec(0u8..8, 9),
        blocks in proptest::collection::vec(0u64..128, 1..400),
    ) {
        let ipv = Ipv::new(entries, 8).unwrap();
        let geom = CacheGeometry::from_sets(4, 8, 64).unwrap();
        let policy = GipprPolicy::new(&geom, ipv).unwrap();
        let mut cache = SetAssocCache::new(geom, Box::new(policy));
        for &blk in &blocks {
            cache.access_block(blk, &AccessContext::blank());
            let set = (blk % 4) as usize;
            let resident = cache.resident_blocks(set);
            let mut dedup = resident.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), resident.len(), "no duplicate tags");
            prop_assert!(resident.len() <= 8);
            prop_assert!(cache.probe(blk), "just-accessed block is resident");
        }
    }

    /// DGIPPR's winner is always a valid vector index and its storage
    /// accounting never changes as the duel evolves.
    #[test]
    fn dgippr_winner_in_range(
        blocks in proptest::collection::vec(0u64..4096, 1..500),
        four in proptest::bool::ANY,
    ) {
        let geom = CacheGeometry::from_sets(512, 16, 64).unwrap();
        let policy = if four {
            DgipprPolicy::four_vector(&geom, gippr::vectors::wi_4dgippr()).unwrap()
        } else {
            DgipprPolicy::two_vector(&geom, gippr::vectors::wi_2dgippr()).unwrap()
        };
        let n = if four { 4 } else { 2 };
        let mut cache = SetAssocCache::new(geom, Box::new(policy));
        let bits = cache.replacement_bits();
        for &blk in &blocks {
            cache.access_block(blk, &AccessContext::blank());
        }
        prop_assert_eq!(cache.replacement_bits(), bits);
        // Downcast via the policy name to check winner validity.
        let _ = n;
    }

    /// Parsing an IPV's Display output yields the same IPV.
    #[test]
    fn ipv_display_parse_round_trip(
        assoc in assoc_strategy(),
        seed in proptest::num::u64::ANY,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let v = Ipv::random(assoc, &mut rng);
        let parsed: Ipv = v.to_string().parse().unwrap();
        prop_assert_eq!(parsed, v);
    }
}
