//! GIPPR and plain tree-PseudoLRU as [`ReplacementPolicy`] implementations.

use crate::ipv::{Ipv, IpvError};
use crate::plru::PlruTree;
use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy, ShardAffinity};

/// Plain tree PseudoLRU (Handy, 1993): promote to PMRU on hit and fill,
/// evict the PLRU block. `k - 1` bits per set.
///
/// # Example
///
/// ```
/// use gippr::PlruPolicy;
/// use sim_core::{Access, CacheGeometry, SetAssocCache};
///
/// # fn main() -> Result<(), sim_core::GeometryError> {
/// let geom = CacheGeometry::new(4 * 1024 * 1024, 16, 64)?;
/// let mut llc = SetAssocCache::new(geom, Box::new(PlruPolicy::new(&geom)));
/// llc.access(&Access::read(0x4000, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PlruPolicy {
    trees: Vec<PlruTree>,
}

impl PlruPolicy {
    /// Creates a plain PLRU policy for `geom`.
    ///
    /// # Panics
    ///
    /// Panics if the associativity is not a power of two in `2..=64`
    /// (geometry construction normally guarantees this).
    pub fn new(geom: &CacheGeometry) -> Self {
        PlruPolicy {
            trees: vec![PlruTree::new(geom.ways()); geom.sets()],
        }
    }

    /// The PLRU tree of `set` (test/diagnostic aid).
    pub fn tree(&self, set: usize) -> &PlruTree {
        &self.trees[set]
    }
}

impl ReplacementPolicy for PlruPolicy {
    fn name(&self) -> &str {
        "PseudoLRU"
    }

    #[inline]
    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        self.trees[set].victim()
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.trees[set].promote(way);
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.trees[set].promote(way);
    }

    fn bits_per_set(&self) -> u64 {
        self.trees[0].bit_count()
    }

    // One PLRU tree per set, nothing else.
    fn shard_affinity(&self) -> ShardAffinity {
        ShardAffinity::SetLocal
    }

    // Plain PLRU is the all-zero IPV: promote-to-MRU on hit and fill.
    fn slice_kernel(&self) -> Option<sim_core::slice::SliceKernel> {
        Some(sim_core::slice::SliceKernel::PlruIpv {
            ipv: vec![0; self.trees[0].ways() + 1],
        })
    }

    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        Some(self.trees[set].raw_bits().to_le_bytes().to_vec())
    }

    fn audit_invariants(&self) -> Result<(), String> {
        check_tree_bits(&self.trees)
    }
}

/// Shared invariant for tree-backed policies: every tree's raw bits fit in
/// its `ways - 1` node bits.
fn check_tree_bits(trees: &[PlruTree]) -> Result<(), String> {
    for (set, tree) in trees.iter().enumerate() {
        let nodes = tree.ways() as u32 - 1;
        if tree.raw_bits() >> nodes != 0 {
            return Err(format!(
                "PLRU tree in set {set} has bits {:#x} outside its {nodes} nodes",
                tree.raw_bits()
            ));
        }
    }
    Ok(())
}

/// GIPPR: Genetic Insertion and Promotion for PseudoLRU Replacement
/// (Section 3.4).
///
/// Keeps one PLRU tree per set; a hit on a block at pseudo-position `p`
/// rewrites its root-to-leaf path so it occupies position `V[p]`, and an
/// incoming block is written to position `V[k]`. Costs exactly the plain
/// PseudoLRU `k - 1` bits per set.
///
/// # Example
///
/// ```
/// use gippr::{GipprPolicy, vectors};
/// use sim_core::CacheGeometry;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let geom = CacheGeometry::new(4 * 1024 * 1024, 16, 64)?;
/// let gippr = GipprPolicy::new(&geom, vectors::wi_gippr())?;
/// # let _ = gippr;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GipprPolicy {
    ipv: Ipv,
    trees: Vec<PlruTree>,
    name: String,
}

impl GipprPolicy {
    /// Creates the policy for `geom`, validating the vector's associativity.
    ///
    /// # Errors
    ///
    /// Returns [`IpvError::WrongLength`] if `ipv.assoc() != geom.ways()`.
    pub fn new(geom: &CacheGeometry, ipv: Ipv) -> Result<Self, IpvError> {
        Self::with_name(geom, ipv, "GIPPR")
    }

    /// Like [`GipprPolicy::new`] with a custom display name.
    ///
    /// # Errors
    ///
    /// Returns [`IpvError::WrongLength`] if `ipv.assoc() != geom.ways()`.
    pub fn with_name(geom: &CacheGeometry, ipv: Ipv, name: &str) -> Result<Self, IpvError> {
        if ipv.assoc() != geom.ways() {
            return Err(IpvError::WrongLength {
                got: ipv.assoc() + 1,
                expected: geom.ways() + 1,
            });
        }
        Ok(GipprPolicy {
            ipv,
            trees: vec![PlruTree::new(geom.ways()); geom.sets()],
            name: name.to_string(),
        })
    }

    /// The vector in use.
    pub fn ipv(&self) -> &Ipv {
        &self.ipv
    }

    /// The PLRU tree of `set` (test/diagnostic aid).
    pub fn tree(&self, set: usize) -> &PlruTree {
        &self.trees[set]
    }
}

impl ReplacementPolicy for GipprPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        self.trees[set].victim()
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        let tree = &mut self.trees[set];
        let pos = tree.position(way);
        tree.set_position(way, self.ipv.promotion(pos));
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.trees[set].set_position(way, self.ipv.insertion());
    }

    fn bits_per_set(&self) -> u64 {
        self.trees[0].bit_count()
    }

    // The IPV is read-only; mutable state is one PLRU tree per set.
    fn shard_affinity(&self) -> ShardAffinity {
        ShardAffinity::SetLocal
    }

    fn slice_kernel(&self) -> Option<sim_core::slice::SliceKernel> {
        Some(sim_core::slice::SliceKernel::PlruIpv {
            ipv: self.ipv.entries().to_vec(),
        })
    }

    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        Some(self.trees[set].raw_bits().to_le_bytes().to_vec())
    }

    fn audit_invariants(&self) -> Result<(), String> {
        check_tree_bits(&self.trees)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom4() -> CacheGeometry {
        CacheGeometry::from_sets(4, 4, 64).unwrap()
    }

    fn geom16() -> CacheGeometry {
        CacheGeometry::from_sets(8, 16, 64).unwrap()
    }

    fn ctx() -> AccessContext {
        AccessContext::blank()
    }

    #[test]
    fn plru_promoted_block_is_never_victim() {
        let g = geom16();
        let mut p = PlruPolicy::new(&g);
        for w in 0..16 {
            p.on_hit(0, w, &ctx());
            assert_ne!(p.victim(0, &ctx()), w);
        }
    }

    #[test]
    fn plru_bits_per_set() {
        let p = PlruPolicy::new(&geom16());
        assert_eq!(p.bits_per_set(), 15);
        assert_eq!(p.global_bits(), 0);
    }

    #[test]
    fn gippr_rejects_mismatched_vector() {
        assert!(GipprPolicy::new(&geom4(), Ipv::lru(16)).is_err());
    }

    #[test]
    fn gippr_with_all_zero_vector_equals_plain_plru() {
        // V = [0,...,0]: insert at PMRU, promote to PMRU — exactly PLRU.
        let g = geom16();
        let mut gippr = GipprPolicy::new(&g, Ipv::lru(16)).unwrap();
        let mut plru = PlruPolicy::new(&g);
        let events: Vec<(bool, usize)> = (0..200)
            .map(|i| (i % 3 == 0, (i * 7 + i / 5) % 16))
            .collect();
        for (is_hit, way) in events {
            if is_hit {
                gippr.on_hit(2, way, &ctx());
                plru.on_hit(2, way, &ctx());
            } else {
                gippr.on_fill(2, way, &ctx());
                plru.on_fill(2, way, &ctx());
            }
            assert_eq!(gippr.victim(2, &ctx()), plru.victim(2, &ctx()));
        }
    }

    #[test]
    fn gippr_insertion_position_respected() {
        // Insert at PLRU position (k-1): a freshly filled block is
        // immediately the victim.
        let g = geom16();
        let mut p = GipprPolicy::new(&g, Ipv::lru_insertion(16)).unwrap();
        for w in [3usize, 11, 0, 15] {
            p.on_fill(0, w, &ctx());
            assert_eq!(p.victim(0, &ctx()), w);
        }
    }

    #[test]
    fn gippr_promotion_moves_to_vector_target() {
        let g = geom16();
        let ipv = crate::vectors::wi_gippr(); // [0 0 2 8 4 1 4 1 8 0 14 8 12 13 14 9 | 5]
        let mut p = GipprPolicy::new(&g, ipv.clone()).unwrap();
        // Fill a block: it must land at position V[16] = 5.
        p.on_fill(1, 7, &ctx());
        assert_eq!(p.tree(1).position(7), ipv.insertion());
        // Hit it: from position 5 it must move to V[5] = 1.
        p.on_hit(1, 7, &ctx());
        assert_eq!(p.tree(1).position(7), ipv.promotion(5));
    }

    #[test]
    fn gippr_victim_always_at_plru_position() {
        let g = geom16();
        let mut p = GipprPolicy::new(&g, crate::vectors::wi_gippr()).unwrap();
        for i in 0..100 {
            let way = (i * 5) % 16;
            if i % 2 == 0 {
                p.on_fill(3, way, &ctx());
            } else {
                p.on_hit(3, way, &ctx());
            }
            let v = p.victim(3, &ctx());
            assert_eq!(p.tree(3).position(v), 15);
        }
    }

    #[test]
    fn gippr_bits_match_plru() {
        let p = GipprPolicy::new(&geom16(), Ipv::lru(16)).unwrap();
        assert_eq!(p.bits_per_set(), 15, "GIPPR costs the same as PseudoLRU");
    }
}
