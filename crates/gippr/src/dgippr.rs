//! DGIPPR: dynamic GIPPR via set-dueling among evolved IPVs (Section 3.5).

use crate::ipv::Ipv;
use crate::plru::PlruTree;
use sim_core::dueling::{DuelController, DuelingError};
use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy};
use std::error::Error;
use std::fmt;

/// Number of leader sets dedicated to each candidate vector.
pub const DEFAULT_LEADERS_PER_VECTOR: usize = 32;

/// PSEL counter width used by the paper (Section 3.6: 11-bit counters).
pub const PSEL_BITS: u32 = 11;

/// Error constructing a [`DgipprPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DgipprError {
    /// The number of candidate vectors must be 2 or 4.
    BadVectorCount(usize),
    /// A vector's associativity differs from the cache's.
    AssocMismatch {
        /// Index of the offending vector.
        index: usize,
        /// Its associativity.
        got: usize,
        /// The cache's associativity.
        expected: usize,
    },
    /// The dueling configuration could not be built.
    Dueling(DuelingError),
}

impl fmt::Display for DgipprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DgipprError::BadVectorCount(n) => {
                write!(f, "DGIPPR duels between 2 or 4 vectors, got {n}")
            }
            DgipprError::AssocMismatch {
                index,
                got,
                expected,
            } => {
                write!(
                    f,
                    "vector {index} targets {got} ways but the cache has {expected}"
                )
            }
            DgipprError::Dueling(e) => write!(f, "dueling setup failed: {e}"),
        }
    }
}

impl Error for DgipprError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DgipprError::Dueling(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DuelingError> for DgipprError {
    fn from(e: DuelingError) -> Self {
        DgipprError::Dueling(e)
    }
}

/// Dynamic GIPPR: set-dueling among 2 (`2-DGIPPR`) or 4 (`4-DGIPPR`)
/// insertion/promotion vectors on shared PLRU state.
///
/// Per the paper:
///
/// * leader sets always apply their own candidate vector; follower sets
///   apply the current winner;
/// * a miss in a leader set feeds the PSEL counters (one 11-bit counter for
///   two vectors; two pair counters plus a meta counter for four);
/// * there is only **one** set of PseudoLRU bits per cache set regardless of
///   how many vectors duel, so storage stays at `k - 1` bits per set plus
///   11 or 33 counter bits for the whole cache.
///
/// # Example
///
/// ```
/// use gippr::{DgipprPolicy, vectors};
/// use sim_core::{CacheGeometry, ReplacementPolicy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let geom = CacheGeometry::new(4 * 1024 * 1024, 16, 64)?;
/// let two = DgipprPolicy::two_vector(&geom, vectors::wi_2dgippr())?;
/// assert_eq!(two.global_bits(), 11);
/// let four = DgipprPolicy::four_vector(&geom, vectors::wi_4dgippr())?;
/// assert_eq!(four.global_bits(), 33);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DgipprPolicy {
    vectors: Vec<Ipv>,
    trees: Vec<PlruTree>,
    duel: DuelController,
    /// Optional bypass duel (paper future-work item 1): when enabled, a
    /// second set-duel decides whether blocks that the active vector would
    /// insert at the PLRU position should bypass the cache entirely.
    bypass_duel: Option<DuelController>,
    /// PSEL counter width configured at construction; [`Self::with_bypass`]
    /// builds its duel at the same width so ablation sweeps vary both.
    psel_bits: u32,
    name: String,
}

impl DgipprPolicy {
    /// Creates a 2-vector DGIPPR with the paper's defaults (32 leader sets
    /// per vector, 11-bit PSEL).
    ///
    /// # Errors
    ///
    /// Returns [`DgipprError`] on associativity mismatch or an infeasible
    /// dueling layout.
    pub fn two_vector(geom: &CacheGeometry, vectors: [Ipv; 2]) -> Result<Self, DgipprError> {
        Self::with_config(
            geom,
            vectors.to_vec(),
            DEFAULT_LEADERS_PER_VECTOR,
            "2-DGIPPR",
        )
    }

    /// Creates a 4-vector DGIPPR with the paper's defaults.
    ///
    /// # Errors
    ///
    /// Returns [`DgipprError`] on associativity mismatch or an infeasible
    /// dueling layout.
    pub fn four_vector(geom: &CacheGeometry, vectors: [Ipv; 4]) -> Result<Self, DgipprError> {
        Self::with_config(
            geom,
            vectors.to_vec(),
            DEFAULT_LEADERS_PER_VECTOR,
            "4-DGIPPR",
        )
    }

    /// Fully configurable constructor.
    ///
    /// # Errors
    ///
    /// Returns [`DgipprError::BadVectorCount`] unless 2 or 4 vectors are
    /// given, [`DgipprError::AssocMismatch`] if any vector does not match
    /// the geometry, or [`DgipprError::Dueling`] if the leader layout does
    /// not fit the set count.
    pub fn with_config(
        geom: &CacheGeometry,
        vectors: Vec<Ipv>,
        leaders_per_vector: usize,
        name: &str,
    ) -> Result<Self, DgipprError> {
        Self::with_full_config(geom, vectors, leaders_per_vector, PSEL_BITS, name)
    }

    /// Like [`DgipprPolicy::with_config`] with an explicit PSEL counter
    /// width (the paper uses 11 bits; the ablation harness sweeps this).
    ///
    /// # Errors
    ///
    /// Same as [`DgipprPolicy::with_config`].
    pub fn with_full_config(
        geom: &CacheGeometry,
        vectors: Vec<Ipv>,
        leaders_per_vector: usize,
        psel_bits: u32,
        name: &str,
    ) -> Result<Self, DgipprError> {
        if vectors.len() != 2 && vectors.len() != 4 {
            return Err(DgipprError::BadVectorCount(vectors.len()));
        }
        for (index, v) in vectors.iter().enumerate() {
            if v.assoc() != geom.ways() {
                return Err(DgipprError::AssocMismatch {
                    index,
                    got: v.assoc(),
                    expected: geom.ways(),
                });
            }
        }
        let duel = if vectors.len() == 2 {
            DuelController::two(geom.sets(), leaders_per_vector, psel_bits)?
        } else {
            DuelController::four(geom.sets(), leaders_per_vector, psel_bits)?
        };
        Ok(DgipprPolicy {
            vectors,
            trees: vec![PlruTree::new(geom.ways()); geom.sets()],
            duel,
            bypass_duel: None,
            psel_bits,
            name: name.to_string(),
        })
    }

    /// Enables the bypass extension (paper Section 7, future-work item 1:
    /// "combining DGIPPR with a predictor that decides whether a block
    /// should bypass the cache").
    ///
    /// A second set-duel compares *bypassing* incoming blocks that the
    /// active vector would insert at the PLRU position (i.e. blocks the
    /// vector already predicts dead on arrival) against inserting them
    /// normally; followers adopt whichever side misses less. Costs one
    /// extra PSEL counter at the width configured at construction (11 bits
    /// at the paper's default). Note that bypass violates inclusion, so this
    /// configuration models a non-inclusive LLC (the same caveat the paper
    /// raises for PDP-with-bypass).
    ///
    /// # Errors
    ///
    /// Returns [`DgipprError::Dueling`] if the geometry cannot host the
    /// extra leader layout.
    pub fn with_bypass(mut self, leaders_per_side: usize) -> Result<Self, DgipprError> {
        let sets = self.trees.len();
        // Salted so the bypass leaders land on different sets than the
        // vector-duel leaders.
        self.bypass_duel = Some(DuelController::two_salted(
            sets,
            leaders_per_side,
            self.psel_bits,
            7,
        )?);
        self.name.push_str("+bypass");
        Ok(self)
    }

    /// The candidate vectors.
    pub fn vectors(&self) -> &[Ipv] {
        &self.vectors
    }

    /// Index of the vector follower sets currently adopt.
    pub fn winner(&self) -> usize {
        self.duel.winner()
    }

    /// The dueling mechanism (test/diagnostic aid).
    pub fn duel(&self) -> &DuelController {
        &self.duel
    }

    /// The bypass duel, if [`DgipprPolicy::with_bypass`] enabled it
    /// (test/diagnostic aid).
    pub fn bypass_duel(&self) -> Option<&DuelController> {
        self.bypass_duel.as_ref()
    }

    #[inline]
    fn active_vector(&self, set: usize) -> &Ipv {
        &self.vectors[self.duel.policy_for_set(set)]
    }
}

impl ReplacementPolicy for DgipprPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        self.trees[set].victim()
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        let target = {
            let tree = &self.trees[set];
            self.active_vector(set).promotion(tree.position(way))
        };
        self.trees[set].set_position(way, target);
    }

    #[inline]
    fn on_miss(&mut self, set: usize, _ctx: &AccessContext) {
        self.duel.record_miss(set);
        if let Some(d) = &mut self.bypass_duel {
            d.record_miss(set);
        }
    }

    #[inline]
    fn should_bypass(&mut self, set: usize, _ctx: &AccessContext) -> bool {
        let Some(d) = &self.bypass_duel else {
            return false;
        };
        // Side 0 of the bypass duel bypasses dead-on-arrival insertions;
        // side 1 never bypasses.
        let ways = self.trees[set].ways();
        d.policy_for_set(set) == 0 && self.active_vector(set).insertion() == ways - 1
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        let target = self.active_vector(set).insertion();
        self.trees[set].set_position(way, target);
    }

    fn bits_per_set(&self) -> u64 {
        self.trees[0].bit_count()
    }

    fn global_bits(&self) -> u64 {
        self.duel.counter_bits()
            + self
                .bypass_duel
                .as_ref()
                .map_or(0, DuelController::counter_bits)
    }

    // Explicitly `Global` (the trait default, restated for the record):
    // the PSEL counters are cache-global state fed by leader-set misses,
    // and *every* set — leader or follower — reads the duel winner on its
    // next fill. Replaying leader-set shards independently would let a
    // follower shard observe a stale winner relative to sequential PSEL
    // timing, so DGIPPR takes the sharded engine's sequential
    // whole-stream fallback, which preserves exact PSEL semantics.
    fn shard_affinity(&self) -> sim_core::ShardAffinity {
        sim_core::ShardAffinity::Global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors;
    use sim_core::dueling::SetRole;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(4 * 1024 * 1024, 16, 64).unwrap()
    }

    fn ctx() -> AccessContext {
        AccessContext::blank()
    }

    #[test]
    fn storage_matches_paper_claims() {
        let g = geom();
        let two = DgipprPolicy::two_vector(&g, vectors::wi_2dgippr()).unwrap();
        assert_eq!(two.bits_per_set(), 15);
        assert_eq!(two.global_bits(), 11, "2-DGIPPR: a single 11-bit counter");
        let four = DgipprPolicy::four_vector(&g, vectors::wi_4dgippr()).unwrap();
        assert_eq!(four.bits_per_set(), 15);
        assert_eq!(four.global_bits(), 33, "4-DGIPPR: three 11-bit counters");
    }

    #[test]
    fn rejects_bad_vector_counts() {
        let g = geom();
        let v = vectors::wi_gippr();
        assert!(matches!(
            DgipprPolicy::with_config(&g, vec![v.clone()], 32, "x"),
            Err(DgipprError::BadVectorCount(1))
        ));
        assert!(matches!(
            DgipprPolicy::with_config(&g, vec![v.clone(), v.clone(), v], 32, "x"),
            Err(DgipprError::BadVectorCount(3))
        ));
    }

    #[test]
    fn rejects_assoc_mismatch() {
        let g = geom();
        let bad = Ipv::lru(8);
        let good = vectors::wi_gippr();
        assert!(matches!(
            DgipprPolicy::with_config(&g, vec![good, bad], 32, "x"),
            Err(DgipprError::AssocMismatch {
                index: 1,
                got: 8,
                expected: 16
            })
        ));
    }

    #[test]
    fn leaders_use_their_own_vector() {
        let g = geom();
        // Vector 0 = PMRU insertion (position 0), vector 1 = PLRU insertion.
        let v0 = Ipv::lru(16);
        let v1 = Ipv::lru_insertion(16);
        let mut p = DgipprPolicy::with_config(&g, vec![v0, v1], 32, "test-2d").unwrap();
        let map = *p.duel().leader_map();
        let mut checked = [false, false];
        for set in 0..g.sets() {
            if let SetRole::Leader(v) = map.role(set) {
                p.on_fill(set, 5, &ctx());
                let pos = p.trees[set].position(5);
                if v == 0 {
                    assert_eq!(pos, 0, "leader of vector 0 inserts at PMRU");
                } else {
                    assert_eq!(pos, 15, "leader of vector 1 inserts at PLRU");
                }
                checked[v] = true;
            }
        }
        assert_eq!(checked, [true, true]);
    }

    #[test]
    fn followers_track_the_winner() {
        let g = geom();
        let v0 = Ipv::lru(16);
        let v1 = Ipv::lru_insertion(16);
        let mut p = DgipprPolicy::with_config(&g, vec![v0, v1], 32, "test-2d").unwrap();
        let map = *p.duel().leader_map();
        // Make vector 0's leaders miss a lot: winner flips to 1.
        for _ in 0..100 {
            for set in 0..g.sets() {
                if map.role(set) == SetRole::Leader(0) {
                    p.on_miss(set, &ctx());
                }
            }
        }
        assert_eq!(p.winner(), 1);
        // A follower set now inserts at PLRU (vector 1's insertion).
        let follower = (0..g.sets())
            .find(|&s| map.role(s) == SetRole::Follower)
            .unwrap();
        p.on_fill(follower, 2, &ctx());
        assert_eq!(p.trees[follower].position(2), 15);
    }

    #[test]
    fn follower_misses_do_not_move_counters() {
        let g = geom();
        let mut p = DgipprPolicy::two_vector(&g, vectors::wi_2dgippr()).unwrap();
        let map = *p.duel().leader_map();
        let before = p.winner();
        for set in 0..g.sets() {
            if map.role(set) == SetRole::Follower {
                p.on_miss(set, &ctx());
            }
        }
        assert_eq!(p.winner(), before);
    }

    #[test]
    fn four_vector_tournament_converges() {
        let g = geom();
        let mut p = DgipprPolicy::four_vector(&g, vectors::wi_4dgippr()).unwrap();
        let map = *p.duel().leader_map();
        // Everyone misses except vector 3's leaders.
        for _ in 0..100 {
            for set in 0..g.sets() {
                match map.role(set) {
                    SetRole::Leader(3) | SetRole::Follower => {}
                    SetRole::Leader(_) => p.on_miss(set, &ctx()),
                }
            }
        }
        assert_eq!(p.winner(), 3);
    }

    #[test]
    fn single_tree_shared_across_vectors() {
        // Changing the winner must not reset PLRU state: fill under one
        // vector, flip winner, and the block's position must be unchanged.
        let g = geom();
        let v0 = Ipv::lru(16);
        let v1 = Ipv::lru_insertion(16);
        let mut p = DgipprPolicy::with_config(&g, vec![v0, v1], 32, "t").unwrap();
        let map = *p.duel().leader_map();
        let follower = (0..g.sets())
            .find(|&s| map.role(s) == SetRole::Follower)
            .unwrap();
        p.on_fill(follower, 9, &ctx());
        let pos_before = p.trees[follower].position(9);
        for _ in 0..100 {
            for set in 0..g.sets() {
                if map.role(set) == SetRole::Leader(1) {
                    p.on_miss(set, &ctx());
                }
            }
        }
        assert_eq!(p.trees[follower].position(9), pos_before);
    }

    #[test]
    fn bypass_extension_storage_and_naming() {
        let g = geom();
        let p = DgipprPolicy::four_vector(&g, vectors::wi_4dgippr())
            .unwrap()
            .with_bypass(32)
            .unwrap();
        assert_eq!(
            p.global_bits(),
            44,
            "three duel counters plus one bypass counter"
        );
        assert_eq!(p.name(), "4-DGIPPR+bypass");
    }

    #[test]
    fn bypass_duel_inherits_configured_psel_width() {
        // Regression: `with_bypass` used to hardcode `PSEL_BITS`, so the
        // ablation PSEL-width sweep never varied the bypass counter.
        let g = geom();
        let vs = vectors::wi_4dgippr().to_vec();
        for bits in [5u32, 8, 11] {
            let p = DgipprPolicy::with_full_config(&g, vs.clone(), 32, bits, "4-DGIPPR")
                .unwrap()
                .with_bypass(32)
                .unwrap();
            assert_eq!(
                p.bypass_duel().unwrap().counter_bits(),
                u64::from(bits),
                "bypass duel must use the configured {bits}-bit width"
            );
            assert_eq!(
                p.global_bits(),
                u64::from(4 * bits),
                "three duel counters plus one bypass counter, all {bits}-bit"
            );
        }
    }

    #[test]
    fn bypass_duel_moves_only_on_bypass_leader_misses() {
        let g = geom();
        let mut p = DgipprPolicy::four_vector(&g, vectors::wi_4dgippr())
            .unwrap()
            .with_bypass(32)
            .unwrap();
        let bypass_map = *p.bypass_duel().unwrap().leader_map();
        // Misses in sets that are followers of the *bypass* duel must not
        // move its winner, no matter what role they play in the vector duel.
        let before = p.bypass_duel().unwrap().winner();
        for _ in 0..200 {
            for set in 0..g.sets() {
                if bypass_map.role(set) == SetRole::Follower {
                    p.on_miss(set, &ctx());
                }
            }
        }
        assert_eq!(
            p.bypass_duel().unwrap().winner(),
            before,
            "bypass-duel PSEL movement comes only from bypass leader sets"
        );
        // Hammering one side's bypass leaders through the public `on_miss`
        // path does flip it.
        for _ in 0..200 {
            for set in 0..g.sets() {
                if bypass_map.role(set) == SetRole::Leader(0) {
                    p.on_miss(set, &ctx());
                }
            }
        }
        assert_eq!(
            p.bypass_duel().unwrap().winner(),
            1,
            "bypass leader misses recorded via on_miss move the duel"
        );
    }

    #[test]
    fn bypass_is_noop_without_plru_insertion() {
        // If no candidate vector inserts at the PLRU position, the bypass
        // predicate can never fire, so the +bypass policy must replay
        // identically to the bypass-free one.
        use sim_core::SetAssocCache;
        let g = CacheGeometry::from_sets(256, 16, 64).unwrap();
        // Insertions at positions 0 and 8: neither is ways-1.
        let v0 = Ipv::lru(16);
        let mut v1 = Ipv::lru(16);
        v1.set_entry(16, 8).unwrap();
        let plain = DgipprPolicy::with_config(&g, vec![v0.clone(), v1.clone()], 4, "t").unwrap();
        let with_bypass = DgipprPolicy::with_config(&g, vec![v0, v1], 4, "t")
            .unwrap()
            .with_bypass(4)
            .unwrap();
        let mut a = SetAssocCache::new(g, Box::new(plain));
        let mut b = SetAssocCache::new(g, Box::new(with_bypass));
        // Mixed rereference + streaming traffic.
        let mut blk = 0u64;
        for i in 0..200_000u64 {
            let addr = if i % 3 == 0 {
                i % 4096
            } else {
                blk += 1;
                1 << 20 | blk
            };
            let oa = a.access_block(addr, &ctx());
            let ob = b.access_block(addr, &ctx());
            assert_eq!(oa.hit, ob.hit, "access {i}: hit/miss must match");
            assert!(!ob.bypassed, "access {i}: bypass must never fire");
            assert_eq!(oa.evicted, ob.evicted, "access {i}: victims must match");
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn bypass_only_triggers_on_plru_insertion() {
        let g = geom();
        // Vector 0 inserts at PMRU, vector 1 at PLRU.
        let v0 = Ipv::lru(16);
        let v1 = Ipv::lru_insertion(16);
        let mut p = DgipprPolicy::with_config(&g, vec![v0, v1], 32, "t")
            .unwrap()
            .with_bypass(32)
            .unwrap();
        let map = *p.duel().leader_map();
        // In a vector-0 leader set, insertion is at PMRU: never bypass.
        let v0_leader = (0..g.sets())
            .find(|&s| map.role(s) == SetRole::Leader(0))
            .unwrap();
        assert!(!p.should_bypass(v0_leader, &ctx()));
        // Flip the bypass duel toward side 0 by hammering side 1's leaders
        // with misses; then any vector-1 follower-or-leader set whose
        // bypass role resolves to side 0 must bypass.
        let bypass_map = *p.bypass_duel.as_ref().unwrap().leader_map();
        for _ in 0..100 {
            for s in 0..g.sets() {
                if bypass_map.role(s) == SetRole::Leader(1) {
                    p.bypass_duel.as_mut().unwrap().record_miss(s);
                }
            }
        }
        assert_eq!(p.bypass_duel.as_ref().unwrap().winner(), 0);
        let v1_set = (0..g.sets())
            .find(|&s| {
                map.role(s) == SetRole::Leader(1)
                    && p.bypass_duel.as_ref().unwrap().policy_for_set(s) == 0
            })
            .expect("some vector-1 leader resolves to the bypass side");
        assert!(p.should_bypass(v1_set, &ctx()));
    }

    #[test]
    fn bypassed_blocks_do_not_fill_the_cache() {
        use sim_core::SetAssocCache;
        let g = geom();
        let v0 = Ipv::lru_insertion(16);
        let v1 = Ipv::lru_insertion(16);
        let p = DgipprPolicy::with_config(&g, vec![v0, v1], 32, "t")
            .unwrap()
            .with_bypass(32)
            .unwrap();
        let mut cache = SetAssocCache::new(g, Box::new(p));
        let mut bypassed = 0u64;
        for blk in 0..100_000u64 {
            let out = cache.access_block(blk, &ctx());
            if out.bypassed {
                bypassed += 1;
                assert!(!cache.probe(blk), "bypassed block must not be resident");
            }
        }
        assert!(
            bypassed > 0,
            "streaming under PLRU insertion triggers bypass somewhere"
        );
    }

    #[test]
    fn error_display_and_source() {
        let e = DgipprError::BadVectorCount(3);
        assert!(!e.to_string().is_empty());
        let e: DgipprError = DuelingError::BadSetCount(3).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
