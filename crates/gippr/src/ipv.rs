//! Insertion/promotion vectors (IPVs), the paper's central abstraction.

use rand::Rng;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// An insertion/promotion vector for a `k`-way set-associative cache.
///
/// An IPV `V[0..k]` is a `k + 1`-entry vector of positions in `0..k-1`
/// (Section 2.3): `V[i]` for `i < k` is the position a block hit at recency
/// position `i` moves to; `V[k]` is the position an incoming block is
/// inserted at. Classic LRU is `V = [0, 0, …, 0]`; LRU-insertion (LIP) is
/// `V = [0, …, 0, k-1]`.
///
/// For 16 ways there are 16^17 ≈ 2.95 × 10^20 IPVs, which is why the paper
/// evolves them with a genetic algorithm rather than searching exhaustively.
///
/// # Example
///
/// ```
/// use gippr::Ipv;
///
/// let lru = Ipv::lru(16);
/// assert_eq!(lru.promotion(9), 0, "LRU promotes every hit to MRU");
/// assert_eq!(lru.insertion(), 0, "LRU inserts at MRU");
///
/// let evolved: Ipv = "0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13".parse()?;
/// assert_eq!(evolved.insertion(), 13);
/// assert_eq!(evolved.promotion(15), 11);
/// # Ok::<(), gippr::IpvError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ipv {
    entries: Vec<u8>,
    assoc: usize,
}

/// Error constructing or parsing an [`Ipv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpvError {
    /// The entry count does not equal associativity + 1.
    WrongLength {
        /// Entries supplied.
        got: usize,
        /// Entries required (`assoc + 1`).
        expected: usize,
    },
    /// An entry is not a valid position.
    PositionOutOfRange {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: u8,
        /// Exclusive upper bound (`assoc`).
        assoc: usize,
    },
    /// The associativity is unsupported (must be a power of two in 2..=64).
    BadAssociativity(usize),
    /// A token could not be parsed as an integer.
    Unparsable(String),
}

impl fmt::Display for IpvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpvError::WrongLength { got, expected } => {
                write!(f, "IPV needs {expected} entries (assoc + 1), got {got}")
            }
            IpvError::PositionOutOfRange {
                index,
                value,
                assoc,
            } => {
                write!(f, "IPV entry {index} is {value}, outside 0..{assoc}")
            }
            IpvError::BadAssociativity(k) => {
                write!(
                    f,
                    "associativity {k} unsupported (power of two in 2..=64 required)"
                )
            }
            IpvError::Unparsable(tok) => write!(f, "cannot parse IPV entry {tok:?}"),
        }
    }
}

impl Error for IpvError {}

impl Ipv {
    /// Creates an IPV from `assoc + 1` entries, validating every position.
    ///
    /// # Errors
    ///
    /// Returns [`IpvError`] if the associativity is unsupported, the length
    /// is not `assoc + 1`, or any entry is `>= assoc`.
    pub fn new(entries: Vec<u8>, assoc: usize) -> Result<Self, IpvError> {
        if !assoc.is_power_of_two() || !(2..=64).contains(&assoc) {
            return Err(IpvError::BadAssociativity(assoc));
        }
        if entries.len() != assoc + 1 {
            return Err(IpvError::WrongLength {
                got: entries.len(),
                expected: assoc + 1,
            });
        }
        if let Some((index, &value)) = entries
            .iter()
            .enumerate()
            .find(|(_, &v)| usize::from(v) >= assoc)
        {
            return Err(IpvError::PositionOutOfRange {
                index,
                value,
                assoc,
            });
        }
        Ok(Ipv { entries, assoc })
    }

    /// Convenience constructor from a slice literal.
    ///
    /// # Errors
    ///
    /// Same as [`Ipv::new`].
    pub fn from_slice(entries: &[u8]) -> Result<Self, IpvError> {
        if entries.is_empty() {
            return Err(IpvError::BadAssociativity(0));
        }
        Self::new(entries.to_vec(), entries.len() - 1)
    }

    /// The classic LRU vector: promote and insert at MRU (`[0, …, 0]`).
    pub fn lru(assoc: usize) -> Self {
        Ipv::new(vec![0; assoc + 1], assoc).expect("LRU vector is always valid")
    }

    /// The LRU-insertion vector of Qureshi et al.: `[0, …, 0, k-1]`.
    pub fn lru_insertion(assoc: usize) -> Self {
        let mut v = vec![0u8; assoc + 1];
        v[assoc] = (assoc - 1) as u8;
        Ipv::new(v, assoc).expect("LIP vector is always valid")
    }

    /// A uniformly random IPV (the paper's Figure 1 design-space sampling).
    pub fn random<R: Rng + ?Sized>(assoc: usize, rng: &mut R) -> Self {
        let entries = (0..=assoc).map(|_| rng.gen_range(0..assoc) as u8).collect();
        Ipv::new(entries, assoc).expect("sampled entries are in range by construction")
    }

    /// Associativity `k` this vector serves.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// The position a block hit at position `pos` is promoted to (`V[pos]`).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= assoc`.
    #[inline]
    pub fn promotion(&self, pos: usize) -> usize {
        assert!(
            pos < self.assoc,
            "position {pos} out of range for {}-way IPV",
            self.assoc
        );
        usize::from(self.entries[pos])
    }

    /// The position incoming blocks are inserted at (`V[k]`).
    #[inline]
    pub fn insertion(&self) -> usize {
        usize::from(self.entries[self.assoc])
    }

    /// All `k + 1` entries.
    pub fn entries(&self) -> &[u8] {
        &self.entries
    }

    /// Replaces entry `index` (a genetic-algorithm mutation step).
    ///
    /// # Errors
    ///
    /// Returns [`IpvError::PositionOutOfRange`] if `value >= assoc`.
    ///
    /// # Panics
    ///
    /// Panics if `index > assoc`.
    pub fn set_entry(&mut self, index: usize, value: u8) -> Result<(), IpvError> {
        assert!(index <= self.assoc, "IPV index {index} out of range");
        if usize::from(value) >= self.assoc {
            return Err(IpvError::PositionOutOfRange {
                index,
                value,
                assoc: self.assoc,
            });
        }
        self.entries[index] = value;
        Ok(())
    }

    /// Rescales this vector to a different associativity by mapping each
    /// position proportionally (`p * new / old`). Evolved vectors are
    /// associativity-specific; rescaling is a pragmatic way to carry a
    /// 16-way vector to other widths (used by the associativity-sweep
    /// experiment for the paper's future-work item 6). The paper itself
    /// does not define this mapping — treat rescaled vectors as heuristics.
    ///
    /// # Errors
    ///
    /// Returns [`IpvError::BadAssociativity`] if `new_assoc` is
    /// unsupported.
    pub fn rescaled(&self, new_assoc: usize) -> Result<Ipv, IpvError> {
        if !new_assoc.is_power_of_two() || !(2..=64).contains(&new_assoc) {
            return Err(IpvError::BadAssociativity(new_assoc));
        }
        if new_assoc == self.assoc {
            return Ok(self.clone());
        }
        let map = |p: usize| -> u8 { (p * new_assoc / self.assoc) as u8 };
        // Promotion entries: sample the old vector at proportional source
        // positions; insertion maps directly.
        let mut entries: Vec<u8> = (0..new_assoc)
            .map(|i| {
                let src = i * self.assoc / new_assoc;
                map(self.promotion(src))
            })
            .collect();
        entries.push(map(self.insertion()));
        Ipv::new(entries, new_assoc)
    }

    /// Whether this IPV is *degenerate* (paper footnote 1): the transition
    /// graph — access edges `i → V[i]` plus the shift edges they induce, and
    /// the insertion's shifts — contains no path from the insertion position
    /// to MRU (position 0), so no block could ever reach pseudo-MRU under
    /// true-LRU shifting semantics.
    ///
    /// Delegates to the `sim-lint` fixed-point analyzer, whose reachable
    /// set is property-tested against brute-force transition replay.
    pub fn is_degenerate(&self) -> bool {
        self.analysis().is_degenerate()
    }

    /// Full static analysis of this vector: reachable/dead/protected
    /// positions, advisory lints, and behavioural class.
    pub fn analysis(&self) -> sim_lint::IpvAnalysis {
        sim_lint::analyze(&self.entries)
            .expect("Ipv construction enforces the analyzer's well-formedness rules")
    }
}

impl fmt::Display for Ipv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

impl FromStr for Ipv {
    type Err = IpvError;

    /// Parses a whitespace-separated vector, optionally bracketed, in the
    /// paper's notation: `"[ 0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13 ]"`.
    fn from_str(s: &str) -> Result<Self, IpvError> {
        let cleaned = s.trim().trim_start_matches('[').trim_end_matches(']');
        let entries = cleaned
            .split_whitespace()
            .map(|tok| {
                tok.parse::<u8>()
                    .map_err(|_| IpvError::Unparsable(tok.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if entries.is_empty() {
            return Err(IpvError::Unparsable(s.to_string()));
        }
        Ipv::new(entries.clone(), entries.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lru_vector_is_all_zero() {
        let v = Ipv::lru(16);
        assert_eq!(v.entries(), &[0u8; 17][..]);
        assert!(!v.is_degenerate());
    }

    #[test]
    fn lip_vector_inserts_at_lru() {
        let v = Ipv::lru_insertion(16);
        assert_eq!(v.insertion(), 15);
        assert_eq!(v.promotion(15), 0);
        assert!(!v.is_degenerate(), "LIP promotes hits straight to MRU");
    }

    #[test]
    fn rejects_wrong_length() {
        assert_eq!(
            Ipv::new(vec![0; 16], 16),
            Err(IpvError::WrongLength {
                got: 16,
                expected: 17
            })
        );
    }

    #[test]
    fn rejects_out_of_range_entry() {
        let mut v = vec![0u8; 17];
        v[4] = 16;
        assert_eq!(
            Ipv::new(v, 16),
            Err(IpvError::PositionOutOfRange {
                index: 4,
                value: 16,
                assoc: 16
            })
        );
    }

    #[test]
    fn rejects_bad_associativity() {
        assert_eq!(
            Ipv::new(vec![0; 13], 12),
            Err(IpvError::BadAssociativity(12))
        );
        assert_eq!(Ipv::new(vec![0; 2], 1), Err(IpvError::BadAssociativity(1)));
    }

    #[test]
    fn parses_paper_notation() {
        let v: Ipv = "[ 0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13 ]".parse().unwrap();
        assert_eq!(v.assoc(), 16);
        assert_eq!(v.insertion(), 13);
        assert_eq!(v.promotion(0), 0);
        assert_eq!(v.promotion(10), 5);
        assert_eq!(v.to_string(), "[0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13]");
    }

    #[test]
    fn parse_errors_are_typed() {
        assert!(matches!(
            "0 0 x".parse::<Ipv>(),
            Err(IpvError::Unparsable(_))
        ));
        assert!(matches!("".parse::<Ipv>(), Err(IpvError::Unparsable(_))));
        assert!(matches!(
            "9 9 9".parse::<Ipv>(),
            Err(IpvError::PositionOutOfRange { .. })
        ));
    }

    #[test]
    fn set_entry_validates() {
        let mut v = Ipv::lru(8);
        v.set_entry(3, 7).unwrap();
        assert_eq!(v.promotion(3), 7);
        assert!(v.set_entry(3, 8).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_entry_panics_past_end() {
        let mut v = Ipv::lru(8);
        let _ = v.set_entry(9, 0);
    }

    #[test]
    fn degenerate_vector_detected() {
        // Insert at k-1 and never promote anything upward: a block can only
        // sit at k-1 (self-loop) — MRU is unreachable.
        let mut e = vec![0u8; 17];
        for (i, v) in e.iter_mut().enumerate().take(16) {
            *v = i as u8; // V[i] = i: hits leave blocks in place, no shifts
        }
        e[16] = 15;
        let v = Ipv::new(e, 16).unwrap();
        assert!(v.is_degenerate());
    }

    #[test]
    fn non_degenerate_via_shift_edges() {
        // V[i] = i except V[15] = 0: hitting at LRU jumps to MRU.
        let mut e: Vec<u8> = (0..16).collect();
        e[15] = 0;
        e.push(15);
        let v = Ipv::new(e, 16).unwrap();
        assert!(!v.is_degenerate());
    }

    #[test]
    fn random_vectors_are_valid_and_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va = Ipv::random(16, &mut a);
        let vb = Ipv::random(16, &mut b);
        assert_eq!(va, vb);
        assert!(va.entries().iter().all(|&e| e < 16));
    }

    #[test]
    fn from_slice_round_trip() {
        let v = Ipv::from_slice(&[0, 1, 0, 1, 2]).unwrap();
        assert_eq!(v.assoc(), 4);
        assert!(Ipv::from_slice(&[]).is_err());
    }

    #[test]
    fn rescale_identity_and_extremes() {
        let v = crate::vectors::wi_gippr();
        assert_eq!(v.rescaled(16).unwrap(), v);
        let down = v.rescaled(4).unwrap();
        assert_eq!(down.assoc(), 4);
        assert!(down.entries().iter().all(|&e| e < 4));
        let up = v.rescaled(64).unwrap();
        assert_eq!(up.assoc(), 64);
        assert!(up.entries().iter().all(|&e| e < 64));
        assert!(v.rescaled(3).is_err());
    }

    #[test]
    fn rescale_preserves_insertion_style() {
        // LIP stays LIP at any width; LRU stays LRU.
        for w in [4usize, 8, 32, 64] {
            let lip = Ipv::lru_insertion(16).rescaled(w).unwrap();
            assert_eq!(
                lip.insertion(),
                w * 15 / 16,
                "near-LRU insertion at {w} ways"
            );
            let lru = Ipv::lru(16).rescaled(w).unwrap();
            assert_eq!(lru.insertion(), 0);
            assert!(lru.entries().iter().all(|&e| e == 0));
        }
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            IpvError::WrongLength {
                got: 1,
                expected: 2,
            },
            IpvError::PositionOutOfRange {
                index: 0,
                value: 9,
                assoc: 4,
            },
            IpvError::BadAssociativity(3),
            IpvError::Unparsable("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
