#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The paper's contribution: insertion and promotion for tree-based
//! PseudoLRU last-level caches.
//!
//! Jiménez (MICRO 2013) observes that LRU-like policies have an implicit
//! *insertion and promotion policy* — insert at MRU, promote to MRU — and
//! generalizes it into an [`Ipv`] (insertion/promotion vector): a `k+1`-entry
//! vector over recency positions such that a block hit at position `i` moves
//! to position `V[i]` and an incoming block is inserted at position `V[k]`.
//!
//! This crate implements the whole stack of mechanisms from the paper:
//!
//! * [`PlruTree`] — the tree PseudoLRU bit vector with the paper's four
//!   algorithms (Figures 5, 6, 7, 9): find the PLRU victim, promote to PMRU,
//!   read a block's pseudo recency-stack *position*, and *set* a block's
//!   position by rewriting the root-to-leaf path.
//! * [`RecencyStack`] — a true-LRU recency stack with generalized
//!   insertion/promotion (Section 2.3's shifting semantics).
//! * [`GiplrPolicy`] — Genetic Insertion and Promotion for LRU Replacement
//!   (Section 2): a full LRU stack driven by an IPV.
//! * [`GipprPolicy`] — Genetic Insertion and Promotion for PseudoLRU
//!   Replacement (Section 3.4): a PLRU tree driven by an IPV.
//! * [`DgipprPolicy`] — the dynamic version (Section 3.5): set-dueling among
//!   2 or 4 evolved IPVs with 11-bit PSEL counters, one PLRU bit array per
//!   set shared across vectors.
//! * [`PlruPolicy`] — plain tree PseudoLRU (insert and promote to PMRU),
//!   the baseline the technique extends.
//! * [`vectors`] — every IPV published in the paper, as constants.
//!
//! # Quickstart
//!
//! ```
//! use gippr::{DgipprPolicy, vectors};
//! use sim_core::{Access, CacheGeometry, SetAssocCache};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's LLC: 4 MB, 16-way, with the published WI-4-DGIPPR vectors.
//! let geom = CacheGeometry::new(4 * 1024 * 1024, 16, 64)?;
//! let policy = DgipprPolicy::four_vector(&geom, vectors::wi_4dgippr())?;
//! let mut llc = SetAssocCache::new(geom, Box::new(policy));
//! for i in 0..10_000u64 {
//!     llc.access(&Access::read(i * 64 % (8 * 1024 * 1024), 0x400));
//! }
//! assert!(llc.stats().accesses == 10_000);
//! # Ok(())
//! # }
//! ```

pub mod dgippr;
pub mod giplr;
pub mod graph;
pub mod ipv;
pub mod plru;
pub mod policy;
pub mod stack;
pub mod vectors;

pub use dgippr::DgipprPolicy;
pub use giplr::GiplrPolicy;
pub use ipv::{Ipv, IpvError};
pub use plru::PlruTree;
pub use policy::{GipprPolicy, PlruPolicy};
pub use stack::RecencyStack;
