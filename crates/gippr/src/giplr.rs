//! GIPLR: Genetic Insertion and Promotion for LRU Replacement (Section 2).
//!
//! The proof-of-concept form of the technique: a *full* true-LRU recency
//! stack whose promotion and insertion targets come from an evolved
//! [`Ipv`] instead of always being MRU. It pays LRU's full
//! `k log2 k` bits per set — the paper uses it to demonstrate that the IPV
//! idea works before porting it to the cheap PseudoLRU substrate.

use crate::ipv::{Ipv, IpvError};
use crate::stack::RecencyStack;
use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy, ShardAffinity};

/// True-LRU recency stacks driven by an insertion/promotion vector.
///
/// With `Ipv::lru(k)` this is exactly the classic LRU policy; with the
/// paper's evolved vector `[0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13]` it is the
/// GIPLR configuration of Figure 4 (geometric-mean 3.1 % speedup over LRU).
///
/// # Example
///
/// ```
/// use gippr::{GiplrPolicy, vectors};
/// use sim_core::CacheGeometry;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let geom = CacheGeometry::new(4 * 1024 * 1024, 16, 64)?;
/// let policy = GiplrPolicy::new(&geom, vectors::giplr_best())?;
/// # let _ = policy;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GiplrPolicy {
    ipv: Ipv,
    stacks: Vec<RecencyStack>,
    name: String,
}

impl GiplrPolicy {
    /// Creates the policy for `geom`, validating that the vector matches the
    /// cache's associativity.
    ///
    /// # Errors
    ///
    /// Returns [`IpvError::WrongLength`] if `ipv.assoc() != geom.ways()`.
    pub fn new(geom: &CacheGeometry, ipv: Ipv) -> Result<Self, IpvError> {
        Self::with_name(geom, ipv, "GIPLR")
    }

    /// Like [`GiplrPolicy::new`] but with a custom display name (used by the
    /// harness to label configurations such as `"LRU"` when driven by the
    /// all-zero vector).
    ///
    /// # Errors
    ///
    /// Returns [`IpvError::WrongLength`] if `ipv.assoc() != geom.ways()`.
    pub fn with_name(geom: &CacheGeometry, ipv: Ipv, name: &str) -> Result<Self, IpvError> {
        if ipv.assoc() != geom.ways() {
            return Err(IpvError::WrongLength {
                got: ipv.assoc() + 1,
                expected: geom.ways() + 1,
            });
        }
        Ok(GiplrPolicy {
            ipv,
            stacks: vec![RecencyStack::new(geom.ways()); geom.sets()],
            name: name.to_string(),
        })
    }

    /// The vector in use.
    pub fn ipv(&self) -> &Ipv {
        &self.ipv
    }

    /// The recency stack of `set` (test/diagnostic aid).
    pub fn stack(&self, set: usize) -> &RecencyStack {
        &self.stacks[set]
    }
}

impl ReplacementPolicy for GiplrPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        self.stacks[set].lru_way()
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        let stack = &mut self.stacks[set];
        let pos = stack.position(way);
        stack.move_to(way, self.ipv.promotion(pos));
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        // The incoming block occupies the victim's slot (position k-1 for a
        // replacement, its cold position otherwise) and is then moved to the
        // insertion position V[k].
        self.stacks[set].move_to(way, self.ipv.insertion());
    }

    fn bits_per_set(&self) -> u64 {
        sim_core::overhead::lru_bits_per_set(self.stacks[0].ways())
    }

    // The IPV is read-only; mutable state is one recency stack per set.
    fn shard_affinity(&self) -> ShardAffinity {
        ShardAffinity::SetLocal
    }

    // The packed stack starts from the same identity permutation as
    // `RecencyStack::new`, so transitions line up from access zero.
    fn slice_kernel(&self) -> Option<sim_core::slice::SliceKernel> {
        Some(sim_core::slice::SliceKernel::StackIpv {
            ipv: self.ipv.entries().to_vec(),
        })
    }

    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        Some(self.stacks[set].positions().to_vec())
    }

    fn audit_invariants(&self) -> Result<(), String> {
        match self.stacks.iter().position(|s| !s.is_permutation()) {
            Some(set) => Err(format!(
                "GIPLR recency stack in set {set} is no longer a permutation"
            )),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SetAssocCache;

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sets(4, 4, 64).unwrap()
    }

    fn ctx() -> AccessContext {
        AccessContext::blank()
    }

    #[test]
    fn rejects_mismatched_vector() {
        let g = geom(); // 4-way
        let v = Ipv::lru(8);
        assert!(GiplrPolicy::new(&g, v).is_err());
    }

    #[test]
    fn lru_vector_reproduces_classic_lru() {
        let g = geom();
        let mut p = GiplrPolicy::new(&g, Ipv::lru(4)).unwrap();
        // Fill ways 0..3 in order; way 0 is LRU.
        for w in 0..4 {
            p.on_fill(0, w, &ctx());
        }
        assert_eq!(p.victim(0, &ctx()), 0);
        // Touch way 0 -> way 1 becomes LRU.
        p.on_hit(0, 0, &ctx());
        assert_eq!(p.victim(0, &ctx()), 1);
    }

    #[test]
    fn lip_vector_inserts_at_lru_position() {
        let g = geom();
        let mut p = GiplrPolicy::new(&g, Ipv::lru_insertion(4)).unwrap();
        for w in 0..4 {
            p.on_fill(0, w, &ctx());
        }
        // Every fill lands at LRU, so the most recent fill (way 3) is LRU.
        assert_eq!(p.victim(0, &ctx()), 3);
        // A hit promotes straight to MRU.
        p.on_hit(0, 3, &ctx());
        assert_eq!(p.victim(0, &ctx()), 2);
    }

    #[test]
    fn sets_are_independent() {
        let g = geom();
        let mut p = GiplrPolicy::new(&g, Ipv::lru(4)).unwrap();
        for w in 0..4 {
            p.on_fill(0, w, &ctx());
            p.on_fill(1, w, &ctx());
        }
        p.on_hit(0, 0, &ctx());
        assert_eq!(p.victim(0, &ctx()), 1);
        assert_eq!(p.victim(1, &ctx()), 0, "set 1 unaffected by set 0's hit");
    }

    #[test]
    fn against_reference_lru_in_full_cache() {
        // GIPLR with the all-zero vector must behave exactly like textbook
        // LRU on an arbitrary block stream.
        let g = CacheGeometry::from_sets(2, 4, 64).unwrap();
        let p = GiplrPolicy::with_name(&g, Ipv::lru(4), "LRU").unwrap();
        let mut cache = SetAssocCache::new(g, Box::new(p));
        // Reference model: per-set LRU lists of block addresses.
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); 2];
        let stream: Vec<u64> = vec![
            0, 2, 4, 6, 8, 0, 10, 12, 2, 14, 16, 1, 3, 5, 1, 7, 9, 3, 11, 0, 4, 8,
        ];
        for blk in stream {
            let set = (blk % 2) as usize;
            let hit_model = model[set].contains(&blk);
            let out = cache.access_block(blk, &ctx());
            assert_eq!(out.hit, hit_model, "block {blk}");
            if hit_model {
                model[set].retain(|&b| b != blk);
            } else if model[set].len() == 4 {
                let victim = model[set].remove(0);
                assert_eq!(out.evicted.unwrap().block_addr, victim, "block {blk}");
            }
            model[set].push(blk);
        }
    }

    #[test]
    fn bits_per_set_is_full_lru_cost() {
        let g = CacheGeometry::from_sets(4, 16, 64).unwrap();
        let p = GiplrPolicy::new(&g, Ipv::lru(16)).unwrap();
        assert_eq!(p.bits_per_set(), 64);
    }

    #[test]
    fn paper_vector_loads() {
        let g = CacheGeometry::from_sets(4, 16, 64).unwrap();
        let p = GiplrPolicy::new(&g, crate::vectors::giplr_best()).unwrap();
        assert_eq!(p.ipv().insertion(), 13);
    }
}
