//! Every insertion/promotion vector published in the paper (Section 5.3 and
//! Section 2.5), as ready-to-use constants.
//!
//! All vectors target the paper's 16-way LLC. The paper offers "all of the
//! vectors used for this study to any interested party"; these are the ones
//! printed in the text.

use crate::ipv::Ipv;

/// Runs every published vector through the `sim-lint` static analyzer on
/// construction (debug builds only): a typo in a constant that produced a
/// degenerate vector — one whose blocks can never reach pseudo-MRU — would
/// silently tank every experiment built on it. Advisory lints (some paper
/// vectors legitimately demote on hit or oscillate; see the module tests)
/// are *not* rejected here.
fn validated(ipv: Ipv) -> Ipv {
    debug_assert!(
        !ipv.analysis().is_degenerate(),
        "published vector {ipv} is degenerate — likely a transcription error"
    );
    ipv
}

/// Raw entries of the best GIPLR vector found by the genetic algorithm for
/// *true LRU* (Section 2.5): `[0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13]`.
pub const GIPLR_BEST_RAW: [u8; 17] = [0, 0, 1, 0, 3, 0, 1, 2, 1, 0, 5, 1, 0, 0, 1, 11, 13];

/// Raw entries of the workload-inclusive GIPPR vector (Section 5.3):
/// `[0 0 2 8 4 1 4 1 8 0 14 8 12 13 14 9 5]`.
pub const WI_GIPPR_RAW: [u8; 17] = [0, 0, 2, 8, 4, 1, 4, 1, 8, 0, 14, 8, 12, 13, 14, 9, 5];

/// Raw entries of the best workload-neutral vector for 400.perlbench
/// (Section 5.3): `[12 8 14 1 4 4 2 1 8 12 6 4 0 0 10 12 11]`.
pub const PERLBENCH_WN1_RAW: [u8; 17] = [12, 8, 14, 1, 4, 4, 2, 1, 8, 12, 6, 4, 0, 0, 10, 12, 11];

/// Raw entries of the WI-2-DGIPPR vector pair (Section 5.3). The paper
/// notes these duel between PLRU-position and PMRU-position insertion, the
/// first with a pessimistic promotion policy, the second nearly plain PLRU.
pub const WI_2DGIPPR_RAW: [[u8; 17]; 2] = [
    [8, 0, 2, 8, 12, 4, 6, 3, 0, 8, 10, 8, 4, 12, 14, 3, 15],
    [0, 0, 0, 0, 0, 0, 0, 0, 8, 8, 8, 8, 0, 0, 0, 0, 0],
];

/// Raw entries of the WI-4-DGIPPR vector quadruple (Section 5.3), switching
/// between PLRU, PMRU, close-to-PMRU, and "middle" insertion.
pub const WI_4DGIPPR_RAW: [[u8; 17]; 4] = [
    [14, 5, 6, 1, 10, 6, 8, 8, 15, 8, 8, 14, 12, 4, 12, 9, 8],
    [4, 12, 2, 8, 10, 0, 6, 8, 0, 8, 8, 0, 2, 4, 14, 11, 15],
    [0, 0, 2, 1, 4, 4, 6, 5, 8, 8, 10, 1, 12, 8, 2, 1, 3],
    [11, 12, 10, 0, 5, 0, 10, 4, 9, 8, 10, 0, 4, 4, 12, 0, 0],
];

/// The best GIPLR vector (Figure 4's configuration) as an [`Ipv`].
pub fn giplr_best() -> Ipv {
    validated(Ipv::from_slice(&GIPLR_BEST_RAW).expect("published vector is valid"))
}

/// The workload-inclusive GIPPR vector as an [`Ipv`].
pub fn wi_gippr() -> Ipv {
    validated(Ipv::from_slice(&WI_GIPPR_RAW).expect("published vector is valid"))
}

/// The 400.perlbench workload-neutral vector as an [`Ipv`].
pub fn perlbench_wn1() -> Ipv {
    validated(Ipv::from_slice(&PERLBENCH_WN1_RAW).expect("published vector is valid"))
}

/// The WI-2-DGIPPR pair as [`Ipv`]s.
pub fn wi_2dgippr() -> [Ipv; 2] {
    WI_2DGIPPR_RAW.map(|raw| validated(Ipv::from_slice(&raw).expect("published vector is valid")))
}

/// The WI-4-DGIPPR quadruple as [`Ipv`]s.
pub fn wi_4dgippr() -> [Ipv; 4] {
    WI_4DGIPPR_RAW.map(|raw| validated(Ipv::from_slice(&raw).expect("published vector is valid")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_published_vectors_are_valid() {
        let _ = giplr_best();
        let _ = wi_gippr();
        let _ = perlbench_wn1();
        let _ = wi_2dgippr();
        let _ = wi_4dgippr();
    }

    #[test]
    fn giplr_best_matches_paper_text() {
        let v = giplr_best();
        assert_eq!(
            v.insertion(),
            13,
            "incoming blocks inserted into position 13"
        );
        assert_eq!(v.promotion(15), 11, "a block referenced at LRU moves to 11");
        assert_eq!(
            v.promotion(2),
            1,
            "a block referenced in position 2 moves to 1"
        );
        assert_eq!(v.promotion(5), 0, "position 5 promotes to MRU");
        assert_eq!(v.promotion(4), 3, "position 4 promotes only to 3");
    }

    #[test]
    fn none_of_the_published_vectors_is_degenerate() {
        assert!(!giplr_best().is_degenerate());
        assert!(!wi_gippr().is_degenerate());
        assert!(!perlbench_wn1().is_degenerate());
        for v in wi_2dgippr() {
            assert!(!v.is_degenerate());
        }
        for v in wi_4dgippr() {
            assert!(!v.is_degenerate());
        }
    }

    #[test]
    fn wi_2dgippr_duels_insertion_extremes() {
        // Paper: the pair "clearly duel between PLRU and PMRU insertion".
        let [a, b] = wi_2dgippr();
        assert_eq!(a.insertion(), 15, "first vector inserts at PLRU");
        assert_eq!(b.insertion(), 0, "second vector inserts at PMRU");
    }

    #[test]
    fn wi_4dgippr_insertion_styles() {
        // Paper: "switch between PLRU, PMRU, close to PMRU, and middle".
        let vs = wi_4dgippr();
        let insertions: Vec<usize> = vs.iter().map(|v| v.insertion()).collect();
        assert_eq!(insertions, vec![8, 15, 3, 0]);
    }

    /// The static analyzer's advisory lints on the published vectors,
    /// pinned down so a future analyzer change that alters its verdict on
    /// the paper's own data is caught. These lints are paper-faithful,
    /// not bugs: the genetic algorithm deliberately evolved pessimistic
    /// (demoting) promotion and oscillating orbits.
    #[test]
    fn paper_vectors_trip_only_documented_lints() {
        use sim_lint::IpvLint;

        // GIPLR-best honours the classic promotion constraint V[i] <= i
        // everywhere and inserts mid-stack: no demotions.
        let giplr = giplr_best().analysis();
        assert!(
            !giplr
                .lints()
                .iter()
                .any(|l| matches!(l, IpvLint::DemotesOnHit { .. })),
            "GIPLR-best never demotes on hit"
        );

        // WI-GIPPR demotes on hit in several positions (e.g. V[3] = 8),
        // the paper's pessimistic-promotion design.
        let wi = wi_gippr().analysis();
        assert!(
            wi.lints().iter().any(|l| matches!(
                l,
                IpvLint::DemotesOnHit {
                    index: 3,
                    target: 8
                }
            )),
            "WI-GIPPR's V[3] = 8 demotion should be flagged"
        );

        // PERLBENCH-WN1 has the V[0] = 12, V[12] = 0 promotion cycle: a
        // block hit repeatedly at MRU bounces between positions 0 and 12
        // forever. Statically an oscillation; dynamically the mechanism
        // the GA evolved for that workload.
        let wn1 = perlbench_wn1().analysis();
        assert!(
            wn1.lints()
                .iter()
                .any(|l| matches!(l, IpvLint::OscillatingPromotion { .. })),
            "PERLBENCH-WN1's 0 <-> 12 orbit should be flagged"
        );
        assert!(!wn1.converges_to_fixpoint());

        // Nothing published is degenerate, so nothing trips the fatal lint.
        for analysis in [&giplr, &wi, &wn1] {
            assert!(
                !analysis
                    .lints()
                    .iter()
                    .any(|l| matches!(l, IpvLint::UnreachableMru)),
                "published vectors must not be degenerate"
            );
        }
    }

    /// Behavioural classes of the published vectors, as the analyzer sees
    /// them.
    #[test]
    fn paper_vector_classes() {
        use sim_lint::IpvClass;

        for (name, analysis) in [
            ("GIPLR-best", giplr_best().analysis()),
            ("WI-GIPPR", wi_gippr().analysis()),
            ("PERLBENCH-WN1", perlbench_wn1().analysis()),
        ] {
            assert_ne!(
                analysis.class(),
                IpvClass::Degenerate,
                "{name} must not classify as degenerate"
            );
        }
        // The second WI-2-DGIPPR vector is nearly plain PLRU: insertion at
        // MRU, promotion to MRU or position 8 — recency-dominated.
        let [_, plru_ish] = wi_2dgippr();
        assert_eq!(plru_ish.analysis().class(), IpvClass::LruLike);
    }

    #[test]
    fn round_trip_through_display_and_parse() {
        for v in [giplr_best(), wi_gippr(), perlbench_wn1()] {
            let parsed: Ipv = v.to_string().parse().unwrap();
            assert_eq!(parsed, v);
        }
    }
}
