//! Transition graphs of insertion/promotion vectors (paper Figures 2–3).
//!
//! The paper visualizes an IPV as a graph over recency-stack positions:
//! solid edges show where an accessed (or inserted) block moves, dashed
//! edges show where a resident block is *shifted* when another block takes
//! its position. This module derives that graph from any [`Ipv`] and
//! renders it as Graphviz DOT, reproducing Figure 2 (classic LRU) and
//! Figure 3 (the evolved GIPLR vector).

use crate::ipv::Ipv;
use std::fmt::Write as _;

/// The transition structure of an IPV over positions `0..k` (with the
/// paper's `insertion` and `eviction` pseudo-nodes implied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionGraph {
    /// Solid edges: `(from, to)` — an access at `from` moves the block to
    /// `to` (deduplicated, self-loops omitted).
    pub access: Vec<(usize, usize)>,
    /// Dashed edges: `(from, to)` — a block at `from` may be shifted to
    /// `to` to make room for another block's move (deduplicated).
    pub shift: Vec<(usize, usize)>,
    /// The insertion position (`V[k]`).
    pub insertion: usize,
    /// Associativity.
    pub assoc: usize,
}

/// Derives the transition graph of `ipv` under true-LRU shifting
/// semantics (the interpretation the paper draws).
pub fn transition_graph(ipv: &Ipv) -> TransitionGraph {
    let k = ipv.assoc();
    let mut access = Vec::new();
    let mut shift = Vec::new();
    let push_unique = |v: &mut Vec<(usize, usize)>, e: (usize, usize)| {
        if e.0 != e.1 && !v.contains(&e) {
            v.push(e);
        }
    };
    for i in 0..k {
        let to = ipv.promotion(i);
        push_unique(&mut access, (i, to));
        if to < i {
            for j in to..i {
                push_unique(&mut shift, (j, j + 1));
            }
        } else {
            for j in (i + 1)..=to {
                push_unique(&mut shift, (j, j - 1));
            }
        }
    }
    // Insertion shifts occupants of V[k]..k-2 down by one.
    for j in ipv.insertion()..k.saturating_sub(1) {
        push_unique(&mut shift, (j, j + 1));
    }
    TransitionGraph {
        access,
        shift,
        insertion: ipv.insertion(),
        assoc: k,
    }
}

/// Renders `ipv`'s transition graph as Graphviz DOT, in the visual
/// language of the paper's Figures 2 and 3 (solid = access/insertion
/// moves, dashed = shifts, plus `insertion` and `eviction` pseudo-nodes).
pub fn to_dot(ipv: &Ipv, title: &str) -> String {
    let g = transition_graph(ipv);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    let _ = writeln!(out, "  insertion [shape=plaintext];");
    let _ = writeln!(out, "  eviction [shape=plaintext];");
    let _ = writeln!(out, "  insertion -> {} [style=solid];", g.insertion);
    let _ = writeln!(out, "  {} -> eviction [style=solid];", g.assoc - 1);
    for (from, to) in &g.access {
        let _ = writeln!(out, "  {from} -> {to} [style=solid];");
    }
    for (from, to) in &g.shift {
        let _ = writeln!(out, "  {from} -> {to} [style=dashed];");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_lru_graph() {
        // Figure 2: classic LRU for k = 16. Every position's access edge
        // points to 0; shifts cascade downward.
        let g = transition_graph(&Ipv::lru(16));
        assert_eq!(g.insertion, 0);
        for i in 1..16 {
            assert!(g.access.contains(&(i, 0)), "access edge {i} -> 0");
        }
        for j in 0..15 {
            assert!(g.shift.contains(&(j, j + 1)), "shift edge {j} -> {}", j + 1);
        }
        assert!(!g.access.iter().any(|&(a, b)| a == b), "no self loops");
    }

    #[test]
    fn figure3_giplr_graph_spot_checks() {
        // Figure 3: the evolved vector [0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13].
        let g = transition_graph(&crate::vectors::giplr_best());
        assert_eq!(g.insertion, 13, "incoming blocks inserted into position 13");
        assert!(g.access.contains(&(15, 11)), "LRU hit promotes to 11");
        assert!(g.access.contains(&(10, 5)), "position 10 promotes to 5");
        assert!(g.access.contains(&(4, 3)), "position 4 moves only to 3");
        // Promotion 15 -> 11 shifts 11..14 down.
        for j in 11..15 {
            assert!(g.shift.contains(&(j, j + 1)));
        }
    }

    #[test]
    fn dot_output_is_wellformed() {
        let dot = to_dot(&Ipv::lru(4), "LRU");
        assert!(dot.starts_with("digraph \"LRU\" {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("insertion -> 0"));
        assert!(dot.contains("3 -> eviction"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn lip_graph_has_no_shift_from_insertion() {
        // LIP inserts at k-1: inserting displaces nobody.
        let g = transition_graph(&Ipv::lru_insertion(8));
        assert_eq!(g.insertion, 7);
        // The only shifts come from hit-promotions to 0.
        assert!(g.shift.iter().all(|&(a, b)| b == a + 1));
    }
}
