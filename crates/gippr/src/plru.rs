//! The tree PseudoLRU bit vector and the paper's position algebra.
//!
//! A `k`-way set keeps a complete binary tree with `k - 1` internal nodes,
//! each holding one *plru bit*. Walking from the root toward the bit
//! direction (0 = left, 1 = right) reaches the PseudoLRU victim. The paper's
//! key enabling observation (Section 3.2) is that this tree induces a
//! *pseudo recency stack*: each leaf occupies a distinct position in
//! `0..k-1`, where position 0 is pseudo-MRU and position `k - 1` (all plru
//! bits pointing at the block) is the PseudoLRU victim — and that a block's
//! position can be *written*, not just read, by rewriting the `log2 k` bits
//! on its root-to-leaf path (Figure 9). Writable positions are what make
//! arbitrary insertion/promotion vectors implementable on PLRU state.

use std::fmt;

/// A tree PseudoLRU state for one cache set of up to 64 ways.
///
/// Internal nodes are heap-indexed from 1 (the root); node `i` has children
/// `2i` and `2i + 1`, and way `w`'s leaf is node `k + w`. The bit for node
/// `i` is stored at bit `i - 1` of a `u64`, so a 16-way set consumes exactly
/// the paper's 15 bits.
///
/// # Example
///
/// ```
/// use gippr::PlruTree;
///
/// let mut t = PlruTree::new(16);
/// t.promote(3); // classic PLRU touch
/// assert_eq!(t.position(3), 0, "promoted block is pseudo-MRU");
/// assert_eq!(t.position(t.victim()), 15, "victim is pseudo-LRU");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlruTree {
    bits: u64,
    ways: usize,
}

impl PlruTree {
    /// Creates an all-zero tree for a `ways`-associative set.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` is a power of two in `2..=64`.
    pub fn new(ways: usize) -> Self {
        assert!(
            ways.is_power_of_two() && (2..=64).contains(&ways),
            "PLRU tree needs a power-of-two associativity in 2..=64, got {ways}"
        );
        PlruTree { bits: 0, ways }
    }

    /// Associativity this tree serves.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Tree depth (`log2 ways`), the number of bits in a position.
    pub fn levels(&self) -> u32 {
        self.ways.trailing_zeros()
    }

    /// Raw plru bits (bit `i - 1` holds node `i`), for diagnostics.
    pub fn raw_bits(&self) -> u64 {
        self.bits
    }

    /// Reconstructs a tree from raw plru bits (the inverse of
    /// [`raw_bits`](Self::raw_bits)), letting the `sim-lint` model checker
    /// enumerate the complete state space of *this* implementation.
    ///
    /// # Panics
    ///
    /// Panics on an unsupported `ways` (see [`PlruTree::new`]) or if `bits`
    /// sets a bit beyond the tree's `ways - 1` nodes.
    pub fn from_raw_bits(ways: usize, bits: u64) -> Self {
        let mut t = PlruTree::new(ways);
        assert!(
            bits >> t.bit_count() == 0,
            "bits {bits:#x} exceed the {} plru bits of a {ways}-way tree",
            t.bit_count()
        );
        t.bits = bits;
        t
    }

    /// Number of plru bits stored (`ways - 1`).
    pub fn bit_count(&self) -> u64 {
        self.ways as u64 - 1
    }

    #[inline]
    fn node_bit(&self, node: usize) -> bool {
        debug_assert!((1..self.ways).contains(&node));
        self.bits >> (node - 1) & 1 == 1
    }

    #[inline]
    fn set_node_bit(&mut self, node: usize, value: bool) {
        debug_assert!((1..self.ways).contains(&node));
        let mask = 1u64 << (node - 1);
        if value {
            self.bits |= mask;
        } else {
            self.bits &= !mask;
        }
    }

    /// Finds the PseudoLRU victim way (paper Figure 5): follow plru bits
    /// from the root, 0 = left, 1 = right.
    #[inline]
    pub fn victim(&self) -> usize {
        let mut node = 1;
        while node < self.ways {
            node = 2 * node + usize::from(self.node_bit(node));
        }
        node - self.ways
    }

    /// Promotes `way` to the pseudo-MRU position (paper Figure 6): set every
    /// bit on the leaf-to-root path to point away from the block.
    ///
    /// Equivalent to `set_position(way, 0)`.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    #[inline]
    pub fn promote(&mut self, way: usize) {
        self.set_position(way, 0);
    }

    /// Reads `way`'s position in the pseudo recency stack (paper Figure 7).
    ///
    /// Walking from the leaf upward, the `i`-th visited node contributes bit
    /// `i` of the position: the parent's plru bit if the node is a right
    /// child, its complement if a left child. Position `0` is pseudo-MRU;
    /// position `ways - 1` is the PseudoLRU victim.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    #[inline]
    pub fn position(&self, way: usize) -> usize {
        assert!(
            way < self.ways,
            "way {way} out of range for {}-way tree",
            self.ways
        );
        let mut node = self.ways + way;
        let mut pos = 0usize;
        let mut i = 0u32;
        while node > 1 {
            let parent = node / 2;
            let toward_block = if node % 2 == 1 {
                // Right child: a 1 bit leads here.
                self.node_bit(parent)
            } else {
                // Left child: a 0 bit leads here.
                !self.node_bit(parent)
            };
            if toward_block {
                pos |= 1 << i;
            }
            node = parent;
            i += 1;
        }
        pos
    }

    /// Writes `way`'s position in the pseudo recency stack (paper Figure 9),
    /// rewriting the `log2 ways` plru bits on its path to the root.
    ///
    /// As the paper notes, this changes *other* blocks' positions as a side
    /// effect — more drastically than true LRU shifting — which is why GIPPR
    /// vectors must be evolved specifically for PseudoLRU.
    ///
    /// # Panics
    ///
    /// Panics if `way` or `position` is out of range.
    #[inline]
    pub fn set_position(&mut self, way: usize, position: usize) {
        assert!(
            way < self.ways,
            "way {way} out of range for {}-way tree",
            self.ways
        );
        assert!(
            position < self.ways,
            "position {position} out of range for {}-way tree",
            self.ways
        );
        let mut node = self.ways + way;
        let mut i = 0u32;
        while node > 1 {
            let parent = node / 2;
            let bit = position >> i & 1 == 1;
            if node % 2 == 1 {
                self.set_node_bit(parent, bit);
            } else {
                self.set_node_bit(parent, !bit);
            }
            node = parent;
            i += 1;
        }
    }

    /// All ways' positions, indexed by way. Always a permutation of
    /// `0..ways` (each block holds a distinct pseudo recency position).
    pub fn positions(&self) -> Vec<usize> {
        (0..self.ways).map(|w| self.position(w)).collect()
    }
}

impl fmt::Debug for PlruTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PlruTree {{ ways: {}, bits: {:#b} }}",
            self.ways, self.bits
        )
    }
}

/// Exposes the production tree to the `sim-lint` exhaustive model checker,
/// so the invariants it proves (victim totality, position↔tree bijection,
/// promotion convergence) hold for *this* bit-packed implementation rather
/// than a model of it.
impl sim_lint::PlruState for PlruTree {
    fn from_bits(ways: usize, bits: u64) -> Self {
        PlruTree::from_raw_bits(ways, bits)
    }

    fn bits(&self) -> u64 {
        self.raw_bits()
    }

    fn ways(&self) -> usize {
        self.ways
    }

    fn victim(&self) -> usize {
        PlruTree::victim(self)
    }

    fn position(&self, way: usize) -> usize {
        PlruTree::position(self, way)
    }

    fn set_position(&mut self, way: usize, position: usize) {
        PlruTree::set_position(self, way, position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tree_victim_is_way_zero() {
        let t = PlruTree::new(16);
        assert_eq!(t.victim(), 0);
    }

    #[test]
    fn promote_points_victim_elsewhere() {
        let mut t = PlruTree::new(8);
        for w in 0..8 {
            t.promote(w);
            assert_ne!(t.victim(), w, "a just-promoted block is never the victim");
        }
    }

    #[test]
    fn victim_position_is_all_ones() {
        let mut t = PlruTree::new(16);
        // Arbitrary bit churn.
        for (i, w) in [3usize, 7, 1, 15, 8, 2, 9, 0, 12].iter().enumerate() {
            t.set_position(*w, (i * 5) % 16);
            assert_eq!(t.position(t.victim()), 15);
        }
    }

    #[test]
    fn positions_form_a_permutation() {
        let mut t = PlruTree::new(16);
        let churn = [(0usize, 13usize), (5, 2), (9, 9), (15, 0), (4, 7), (11, 15)];
        for &(w, p) in &churn {
            t.set_position(w, p);
            let mut ps = t.positions();
            ps.sort_unstable();
            assert_eq!(ps, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn set_position_round_trips() {
        let mut t = PlruTree::new(16);
        for w in 0..16 {
            for p in 0..16 {
                t.set_position(w, p);
                assert_eq!(
                    t.position(w),
                    p,
                    "set then read must agree (way {w}, pos {p})"
                );
            }
        }
    }

    #[test]
    fn promote_is_set_position_zero() {
        let mut a = PlruTree::new(32);
        let mut b = PlruTree::new(32);
        for w in [5usize, 31, 0, 17] {
            a.promote(w);
            b.set_position(w, 0);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn paper_figure8_example() {
        // Figure 8: a 16-way tree whose internal-node bits yield block
        // positions [5, 4, 7, 6, 1, 0, 2, 3, 11, 10, 8, 9, 14, 15, 13, 12].
        // Reconstruct the tree by setting each way's position, then check
        // the whole assignment is self-consistent.
        let fig8 = [5usize, 4, 7, 6, 1, 0, 2, 3, 11, 10, 8, 9, 14, 15, 13, 12];
        let mut t = PlruTree::new(16);
        for (w, &p) in fig8.iter().enumerate() {
            t.set_position(w, p);
        }
        assert_eq!(
            t.positions(),
            fig8,
            "figure 8's position assignment is realizable"
        );
        // The root bit in figure 8 is 1, so the victim lies in the right half.
        assert!(t.victim() >= 8);
        assert_eq!(t.position(t.victim()), 15);
    }

    #[test]
    fn two_way_tree_degenerates_to_single_bit() {
        let mut t = PlruTree::new(2);
        assert_eq!(t.victim(), 0);
        t.promote(0);
        assert_eq!(t.victim(), 1);
        t.promote(1);
        assert_eq!(t.victim(), 0);
        assert_eq!(t.bit_count(), 1);
    }

    #[test]
    fn sixty_four_way_tree_works() {
        let mut t = PlruTree::new(64);
        assert_eq!(t.bit_count(), 63);
        t.set_position(63, 0);
        assert_eq!(t.position(63), 0);
        assert_eq!(t.position(t.victim()), 63);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two_ways() {
        let _ = PlruTree::new(12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_way() {
        let t = PlruTree::new(8);
        let _ = t.position(8);
    }

    #[test]
    fn bit_budget_matches_paper() {
        assert_eq!(PlruTree::new(16).bit_count(), 15, "16-way: 15 bits per set");
    }
}
