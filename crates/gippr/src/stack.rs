//! A true-LRU recency stack with generalized insertion/promotion.
//!
//! Implements the paper's Section 2.1.2 representation: each way stores its
//! integer position in the recency stack (`log2 k` bits per block, `k log2 k`
//! per set), and Section 2.3's generalized move semantics: moving a block
//! from position `i` to `V[i]` shifts the intervening blocks by one to make
//! room.

use std::fmt;

/// The recency stack of a single set: `position[way]` is each way's rank,
/// 0 = MRU, `ways - 1` = LRU. Positions always form a permutation.
///
/// # Example
///
/// ```
/// use gippr::RecencyStack;
///
/// let mut s = RecencyStack::new(4); // positions [0, 1, 2, 3]
/// s.move_to(3, 0); // promote way 3 to MRU
/// assert_eq!(s.position(3), 0);
/// assert_eq!(s.lru_way(), 2, "way 2 slid down to LRU");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RecencyStack {
    position: Vec<u8>,
}

impl RecencyStack {
    /// Creates a stack where way `w` starts at position `w`.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` is in `2..=64`.
    pub fn new(ways: usize) -> Self {
        assert!(
            (2..=64).contains(&ways),
            "recency stack supports 2..=64 ways, got {ways}"
        );
        RecencyStack {
            position: (0..ways as u8).collect(),
        }
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.position.len()
    }

    /// The position of `way` (0 = MRU).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn position(&self, way: usize) -> usize {
        usize::from(self.position[way])
    }

    /// The way currently at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn way_at(&self, pos: usize) -> usize {
        assert!(pos < self.ways(), "position {pos} out of range");
        self.position
            .iter()
            .enumerate()
            .find(|(_, &p)| usize::from(p) == pos)
            .map(|(w, _)| w)
            .expect("positions form a permutation")
    }

    /// The way in the LRU position (`ways - 1`), i.e. the LRU victim.
    pub fn lru_way(&self) -> usize {
        self.way_at(self.ways() - 1)
    }

    /// Moves `way` to `target`, shifting intervening blocks by one
    /// (Section 2.3): if `target < current`, occupants of
    /// `target..current` slide down; if `target > current`, occupants of
    /// `current+1..=target` slide up.
    ///
    /// # Panics
    ///
    /// Panics if `way` or `target` is out of range.
    pub fn move_to(&mut self, way: usize, target: usize) {
        let ways = self.ways();
        assert!(way < ways, "way {way} out of range");
        assert!(target < ways, "target position {target} out of range");
        let current = usize::from(self.position[way]);
        if target < current {
            for p in self.position.iter_mut() {
                let v = usize::from(*p);
                if (target..current).contains(&v) {
                    *p += 1;
                }
            }
        } else {
            for p in self.position.iter_mut() {
                let v = usize::from(*p);
                if v > current && v <= target {
                    *p -= 1;
                }
            }
        }
        self.position[way] = target as u8;
    }

    /// All positions, indexed by way.
    pub fn positions(&self) -> &[u8] {
        &self.position
    }

    /// Debug invariant: positions are a permutation of `0..ways`.
    pub fn is_permutation(&self) -> bool {
        let mut seen = vec![false; self.ways()];
        for &p in &self.position {
            let p = usize::from(p);
            if p >= self.ways() || seen[p] {
                return false;
            }
            seen[p] = true;
        }
        true
    }
}

impl fmt::Debug for RecencyStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RecencyStack {{ position: {:?} }}", self.position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_at_start() {
        let s = RecencyStack::new(8);
        assert_eq!(s.positions(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(s.lru_way(), 7);
        assert!(s.is_permutation());
    }

    #[test]
    fn classic_lru_promotion() {
        let mut s = RecencyStack::new(4);
        s.move_to(2, 0); // touch way 2
        assert_eq!(s.positions(), &[1, 2, 0, 3]);
        s.move_to(3, 0); // touch way 3
        assert_eq!(s.positions(), &[2, 3, 1, 0]);
        assert_eq!(s.lru_way(), 1);
    }

    #[test]
    fn downward_move_shifts_up() {
        let mut s = RecencyStack::new(4);
        // Demote way 0 (MRU) to LRU: everyone else moves up one.
        s.move_to(0, 3);
        assert_eq!(s.positions(), &[3, 0, 1, 2]);
        assert!(s.is_permutation());
    }

    #[test]
    fn move_to_same_position_is_noop() {
        let mut s = RecencyStack::new(8);
        s.move_to(5, 5);
        assert_eq!(s.positions(), &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn mid_stack_moves() {
        let mut s = RecencyStack::new(8);
        s.move_to(6, 2); // from 6 to 2: positions 2..5 shift down
        assert_eq!(s.position(6), 2);
        assert_eq!(s.position(2), 3);
        assert_eq!(s.position(5), 6);
        assert_eq!(s.position(7), 7, "blocks outside the range untouched");
        assert!(s.is_permutation());
    }

    #[test]
    fn way_at_inverts_position() {
        let mut s = RecencyStack::new(16);
        s.move_to(9, 4);
        s.move_to(1, 13);
        for p in 0..16 {
            assert_eq!(s.position(s.way_at(p)), p);
        }
    }

    #[test]
    fn permutation_survives_chaotic_moves() {
        let mut s = RecencyStack::new(16);
        let moves = [
            (0usize, 15usize),
            (15, 0),
            (7, 7),
            (3, 12),
            (12, 3),
            (8, 1),
            (1, 14),
        ];
        for &(w, t) in &moves {
            s.move_to(w, t);
            assert!(
                s.is_permutation(),
                "after move {w}->{t}: {:?}",
                s.positions()
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target() {
        let mut s = RecencyStack::new(4);
        s.move_to(0, 4);
    }
}
