#![forbid(unsafe_code)]

//! Criterion benchmark crate. The benchmarks live in `benches/`:
//!
//! * `figures` — regenerates every paper figure/table at micro scale.
//! * `mechanisms` — microbenchmarks of the PLRU algebra, recency stack,
//!   IPV operations, Belady MIN, trace container, and stream capture.
//! * `policies` — cache-access throughput under every replacement policy,
//!   plus a DGIPPR leader-count ablation.
//!
//! The library target is intentionally empty; shared helpers live in the
//! `harness` crate.
