//! Policy update-path throughput: accesses per second through a full
//! set-associative cache under each replacement policy. This is the cost
//! the paper argues about in hardware terms (PLRU touches `log2 k` bits
//! per access; true LRU may touch `k log2 k`); in software it shows up as
//! per-access update work.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use harness::policies;
use sim_core::{Access, CacheGeometry, PolicyFactory, SetAssocCache};
use std::hint::black_box;

fn mixed_stream(n: usize) -> Vec<Access> {
    // A half-looping, half-streaming block stream that produces a healthy
    // mix of hits, misses, and evictions.
    (0..n as u64)
        .map(|i| {
            let addr = if i % 2 == 0 {
                (i % 4096) * 64 // loop
            } else {
                (1 << 30) + i * 64 // stream
            };
            Access::read(addr, 0x400 + (i % 13) * 4)
        })
        .collect()
}

fn bench_policy_throughput(c: &mut Criterion) {
    let geom = CacheGeometry::new(128 * 1024, 16, 64).unwrap();
    let stream = mixed_stream(50_000);
    let entries: Vec<(&str, PolicyFactory)> = vec![
        ("LRU", policies::lru()),
        ("PseudoLRU", policies::plru()),
        ("Random", policies::random(7)),
        ("FIFO", policies::fifo()),
        ("DIP", policies::dip()),
        ("SRRIP", policies::srrip()),
        ("DRRIP", policies::drrip()),
        ("PDP", policies::pdp()),
        ("SHiP", policies::ship()),
        (
            "GIPLR",
            policies::giplr(gippr::vectors::giplr_best(), "GIPLR"),
        ),
        (
            "GIPPR",
            policies::gippr(gippr::vectors::wi_gippr(), "GIPPR"),
        ),
        (
            "2-DGIPPR",
            policies::dgippr(gippr::vectors::wi_2dgippr().to_vec(), "2-DGIPPR"),
        ),
        (
            "4-DGIPPR",
            policies::dgippr(gippr::vectors::wi_4dgippr().to_vec(), "4-DGIPPR"),
        ),
    ];
    let mut g = c.benchmark_group("policy_throughput");
    g.throughput(Throughput::Elements(stream.len() as u64));
    for (name, factory) in entries {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cache = SetAssocCache::new(geom, factory(&geom));
                for a in &stream {
                    black_box(cache.access(a));
                }
                black_box(cache.stats().misses)
            })
        });
    }
    g.finish();
}

fn bench_dueling_ablation(c: &mut Criterion) {
    // Ablation: DGIPPR runtime cost versus leader-set count (the duel's
    // only tunable that touches the hot path via role lookups).
    let geom = CacheGeometry::new(128 * 1024, 16, 64).unwrap();
    let stream = mixed_stream(50_000);
    let mut g = c.benchmark_group("dgippr_leader_ablation");
    g.throughput(Throughput::Elements(stream.len() as u64));
    for leaders in [4usize, 8, 16, 32] {
        g.bench_function(format!("leaders_{leaders}"), |b| {
            b.iter(|| {
                let policy = gippr::DgipprPolicy::with_config(
                    &geom,
                    gippr::vectors::wi_4dgippr().to_vec(),
                    leaders,
                    "4-DGIPPR",
                )
                .unwrap();
                let mut cache = SetAssocCache::new(geom, Box::new(policy));
                for a in &stream {
                    black_box(cache.access(a));
                }
                black_box(cache.stats().misses)
            })
        });
    }
    g.finish();
}

criterion_group!(
    policies_bench,
    bench_policy_throughput,
    bench_dueling_ablation
);
criterion_main!(policies_bench);
