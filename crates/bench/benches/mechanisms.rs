//! Microbenchmarks of the core mechanisms: the PLRU position algebra, the
//! recency stack, IPV operations, Belady MIN, the trace container, and the
//! LLC-stream capture path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gippr::{Ipv, PlruTree, RecencyStack};
use mem_model::{capture_llc_stream, min_misses, HierarchyConfig};
use sim_core::{Access, CacheGeometry};
use std::hint::black_box;
use traces::spec2006::Spec2006;
use traces::{TraceReader, TraceWriter};

fn bench_plru_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("plru");
    g.throughput(Throughput::Elements(16));
    g.bench_function("victim_promote_16way", |b| {
        let mut t = PlruTree::new(16);
        b.iter(|| {
            for w in 0..16 {
                t.promote(black_box(w));
                black_box(t.victim());
            }
        })
    });
    g.bench_function("position_read_16way", |b| {
        let t = PlruTree::new(16);
        b.iter(|| {
            for w in 0..16 {
                black_box(t.position(black_box(w)));
            }
        })
    });
    g.bench_function("set_position_16way", |b| {
        let mut t = PlruTree::new(16);
        b.iter(|| {
            for w in 0..16 {
                t.set_position(black_box(w), black_box((w * 7) % 16));
            }
        })
    });
    g.finish();
}

fn bench_recency_stack(c: &mut Criterion) {
    let mut g = c.benchmark_group("recency_stack");
    g.throughput(Throughput::Elements(16));
    g.bench_function("move_to_16way", |b| {
        let mut s = RecencyStack::new(16);
        b.iter(|| {
            for w in 0..16 {
                s.move_to(black_box(w), black_box((w * 11) % 16));
            }
        })
    });
    g.finish();
}

fn bench_ipv(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipv");
    g.bench_function("parse", |b| {
        b.iter(|| {
            black_box(
                "0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13"
                    .parse::<Ipv>()
                    .unwrap(),
            )
        })
    });
    g.bench_function("degeneracy_check", |b| {
        let v = gippr::vectors::wi_gippr();
        b.iter(|| black_box(v.is_degenerate()))
    });
    g.finish();
}

fn bench_min(c: &mut Criterion) {
    let geom = CacheGeometry::from_sets(64, 16, 64).unwrap();
    let stream: Vec<Access> = (0..50_000u64)
        .map(|i| Access::read((i * 2654435761) % (1 << 22), 0))
        .collect();
    let mut g = c.benchmark_group("optimal");
    g.throughput(Throughput::Elements(stream.len() as u64));
    g.bench_function("belady_min_50k", |b| {
        b.iter(|| black_box(min_misses(&stream, geom, 0)))
    });
    g.finish();
}

fn bench_capture(c: &mut Criterion) {
    let config = HierarchyConfig::paper_scaled(6).unwrap();
    let spec = Spec2006::Mcf.workload().scaled_down(6);
    let mut g = c.benchmark_group("capture");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("llc_stream_20k", |b| {
        b.iter(|| black_box(capture_llc_stream(config, spec.generator(0).take(20_000))))
    });
    g.finish();
}

fn bench_trace_format(c: &mut Criterion) {
    let accesses: Vec<Access> = (0..10_000u64)
        .map(|i| Access::read(i * 64, 0x400).with_icount_delta(3))
        .collect();
    let mut encoded = Vec::new();
    let mut w = TraceWriter::new(&mut encoded).unwrap();
    for a in &accesses {
        w.write(a).unwrap();
    }
    w.finish().unwrap();

    let mut g = c.benchmark_group("trace_format");
    g.throughput(Throughput::Elements(accesses.len() as u64));
    g.bench_function("write_10k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            let mut w = TraceWriter::new(&mut buf).unwrap();
            for a in &accesses {
                w.write(a).unwrap();
            }
            w.finish().unwrap();
            black_box(buf)
        })
    });
    g.bench_function("read_10k", |b| {
        b.iter(|| {
            let n = TraceReader::new(&encoded[..]).unwrap().count();
            black_box(n)
        })
    });
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("synth");
    g.throughput(Throughput::Elements(10_000));
    for bench in [Spec2006::Libquantum, Spec2006::Mcf, Spec2006::Gcc] {
        g.bench_function(format!("generate_10k_{}", bench.name()), |b| {
            let spec = bench.workload();
            b.iter(|| {
                let sum: u64 = spec.generator(0).take(10_000).map(|a| a.addr).sum();
                black_box(sum)
            })
        });
    }
    g.finish();
}

criterion_group!(
    mechanisms,
    bench_plru_ops,
    bench_recency_stack,
    bench_ipv,
    bench_min,
    bench_capture,
    bench_trace_format,
    bench_workload_generation
);
criterion_main!(mechanisms);
