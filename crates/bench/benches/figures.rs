//! One benchmark per paper figure/table: each regenerates its artifact at
//! micro scale, so `cargo bench` demonstrates every experiment end-to-end
//! and tracks the harness's performance over time. Full-size regeneration
//! is done by the `harness` binaries (`--scale quick|medium|paper`).

use criterion::{criterion_group, criterion_main, Criterion};
use harness::experiments::{fig01, fig04, fig10, fig11, fig13, overhead, vectors_tab, VectorMode};
use harness::Scale;
use std::hint::black_box;

fn bench_fig01(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig01_random_design_space", |b| {
        b.iter(|| black_box(fig01::run(Scale::Micro)))
    });
    g.finish();
}

fn bench_fig04(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig04_giplr_speedup", |b| {
        b.iter(|| black_box(fig04::run(Scale::Micro)))
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig10_mpki_gippr_family", |b| {
        b.iter(|| black_box(fig10::run(Scale::Micro, VectorMode::Published)))
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig11_mpki_vs_drrip_pdp", |b| {
        b.iter(|| black_box(fig11::run(Scale::Micro, VectorMode::Published)))
    });
    g.finish();
}

fn bench_fig12_component(c: &mut Criterion) {
    // Full Figure 12 runs 3 + 87 genetic algorithms; here we benchmark its
    // workload-inclusive component (one GA run per vector count) at micro
    // scale. The binary `fig12-wn-vs-wi` regenerates the whole figure.
    use evolve::{FitnessContext, Ga, Substrate, VectorSet};
    use traces::spec2006::Spec2006;
    let scale = Scale::Micro;
    let ctx = FitnessContext::for_benchmarks(
        &[
            Spec2006::Libquantum,
            Spec2006::CactusADM,
            Spec2006::DealII,
            Spec2006::Mcf,
        ],
        1,
        scale.ga_accesses(),
        scale.fitness(),
    );
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig12_wi_ga_component", |b| {
        b.iter(|| {
            let ga = Ga::new(scale.ga(1));
            let single = ga.run_single(&ctx, Substrate::Plru);
            let pair = ga.run_set(
                &ctx,
                2,
                vec![VectorSet::new(gippr::vectors::wi_2dgippr().to_vec())],
            );
            black_box((single.best_fitness, pair.best_fitness))
        })
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig13_speedup_vs_drrip_pdp", |b| {
        b.iter(|| black_box(fig13::run(Scale::Micro, VectorMode::Published)))
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.bench_function("tab_overhead", |b| b.iter(|| black_box(overhead::run())));
    g.bench_function("tab_vectors", |b| b.iter(|| black_box(vectors_tab::run())));
    g.finish();
}

criterion_group!(
    figures,
    bench_fig01,
    bench_fig04,
    bench_fig10,
    bench_fig11,
    bench_fig12_component,
    bench_fig13,
    bench_tables
);
criterion_main!(figures);
