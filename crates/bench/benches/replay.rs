//! Replay-engine throughput: the frozen v0 engine (`harness::seed_replay`)
//! versus the live engine through dynamic dispatch (`replay_llc`),
//! monomorphized (`replay_llc_mono`), and bit-sliced
//! (`replay_llc_sliced`, 4 PLRU sets per `u64`). This is the Criterion
//! counterpart of the `bench-replay` binary; `BENCH_replay.json` is
//! produced by the binary, this bench exists for `cargo bench` regression
//! tracking with Criterion's statistics.
//!
//! The engines produce identical `LlcRunResult`s on the same stream
//! (asserted in `tests/replay_equivalence.rs` and the sim-verify
//! differentials); only their speed differs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use harness::seed_replay::replay_llc_seed;
use mem_model::{
    default_warmup, replay_llc, replay_llc_mono, replay_llc_sharded, replay_llc_sliced,
    replay_many_sharded, WindowPerfModel,
};
use sim_core::{Access, CacheGeometry, PolicyFactory, ReplacementPolicy, ShardedStream};
use std::hint::black_box;

fn mixed_stream(n: usize) -> Vec<Access> {
    // Same shape as the policies bench: half looping, half streaming, so
    // the replay loop sees a realistic mix of hits, misses, and evictions.
    (0..n as u64)
        .map(|i| {
            let addr = if i % 2 == 0 {
                (i % 4096) * 64
            } else {
                (1 << 30) + i * 64
            };
            Access::read(addr, 0x400 + (i % 13) * 4).with_icount_delta(3)
        })
        .collect()
}

fn bench_replay_engines(c: &mut Criterion) {
    let geom = CacheGeometry::new(128 * 1024, 16, 64).unwrap();
    let stream = mixed_stream(50_000);
    let warmup = default_warmup(stream.len());
    let perf = WindowPerfModel::default();

    let mut g = c.benchmark_group("replay_engine");
    g.throughput(Throughput::Elements((stream.len() - warmup) as u64));

    g.bench_function("seed_dyn/PseudoLRU", |b| {
        b.iter(|| {
            let policy: Box<dyn sim_core::ReplacementPolicy> =
                black_box(Box::new(gippr::PlruPolicy::new(&geom)));
            black_box(replay_llc_seed(&stream, geom, policy, warmup, &perf))
        })
    });

    g.bench_function("live_dyn/PseudoLRU", |b| {
        b.iter(|| {
            let policy: Box<dyn sim_core::ReplacementPolicy> =
                black_box(Box::new(gippr::PlruPolicy::new(&geom)));
            black_box(replay_llc(&stream, geom, policy, warmup, &perf))
        })
    });

    g.bench_function("live_mono/PseudoLRU", |b| {
        b.iter(|| {
            black_box(replay_llc_mono(
                &stream,
                geom,
                black_box(gippr::PlruPolicy::new(&geom)),
                warmup,
                &perf,
            ))
        })
    });

    g.bench_function("live_mono/WI-GIPPR", |b| {
        b.iter(|| {
            let policy = gippr::GipprPolicy::new(&geom, gippr::vectors::wi_gippr()).unwrap();
            black_box(replay_llc_mono(
                &stream,
                geom,
                black_box(policy),
                warmup,
                &perf,
            ))
        })
    });

    g.bench_function("live_mono/LRU", |b| {
        b.iter(|| {
            black_box(replay_llc_mono(
                &stream,
                geom,
                black_box(baselines::TrueLru::new(&geom)),
                warmup,
                &perf,
            ))
        })
    });

    g.finish();
}

fn bench_replay_sharded(c: &mut Criterion) {
    let geom = CacheGeometry::new(128 * 1024, 16, 64).unwrap();
    let stream = mixed_stream(50_000);
    let warmup = default_warmup(stream.len());
    let perf = WindowPerfModel::default();
    // A pinned 8-shard routing (independent of host core count) shared by
    // every measurement, like the figure harness shares one routing per
    // workload across its roster.
    let sharded = ShardedStream::build(&stream, &geom, warmup, 8);

    let mut g = c.benchmark_group("replay_sharded");
    g.throughput(Throughput::Elements((stream.len() - warmup) as u64));

    g.bench_function("route/8-shards", |b| {
        b.iter(|| black_box(ShardedStream::build(black_box(&stream), &geom, warmup, 8)))
    });

    g.bench_function("mono/PseudoLRU", |b| {
        b.iter(|| {
            black_box(replay_llc_sharded(
                &sharded,
                || gippr::PlruPolicy::new(&geom),
                &perf,
            ))
        })
    });

    g.bench_function("mono/LRU", |b| {
        b.iter(|| {
            black_box(replay_llc_sharded(
                &sharded,
                || baselines::TrueLru::new(&geom),
                &perf,
            ))
        })
    });

    // The full batch entry: three dyn policies through one pre-routed
    // stream, (policy x shard) units on the worker pool.
    let roster: Vec<PolicyFactory> = vec![
        sim_core::policy::factory(|g| Box::new(baselines::TrueLru::new(g))),
        sim_core::policy::factory(|g| Box::new(gippr::PlruPolicy::new(g))),
        sim_core::policy::factory(|g| {
            Box::new(gippr::GipprPolicy::new(g, gippr::vectors::wi_gippr()).unwrap())
        }),
    ];
    let refs: Vec<&PolicyFactory> = roster.iter().collect();
    g.bench_function("batch_dyn/3-policies", |b| {
        b.iter(|| black_box(replay_many_sharded(&stream, &sharded, &refs, &perf)))
    });

    g.finish();
}

fn bench_replay_sliced(c: &mut Criterion) {
    let geom = CacheGeometry::new(128 * 1024, 16, 64).unwrap();
    let stream = mixed_stream(50_000);
    let warmup = default_warmup(stream.len());
    let perf = WindowPerfModel::default();

    let mut g = c.benchmark_group("replay_sliced");
    g.throughput(Throughput::Elements((stream.len() - warmup) as u64));

    // Each pair below is (bit-sliced kernel, monomorphized baseline) for
    // the same policy; `tests/replay_equivalence.rs` and the sim-verify
    // differential prove the results bit-identical, so the delta here is
    // pure engine speed.
    let plru_kernel = gippr::PlruPolicy::new(&geom).slice_kernel().unwrap();
    g.bench_function("sliced/PseudoLRU", |b| {
        b.iter(|| {
            black_box(replay_llc_sliced(
                black_box(&stream),
                geom,
                &plru_kernel,
                warmup,
                &perf,
            ))
        })
    });

    let gippr_kernel = gippr::GipprPolicy::new(&geom, gippr::vectors::wi_gippr())
        .unwrap()
        .slice_kernel()
        .unwrap();
    g.bench_function("sliced/WI-GIPPR", |b| {
        b.iter(|| {
            black_box(replay_llc_sliced(
                black_box(&stream),
                geom,
                &gippr_kernel,
                warmup,
                &perf,
            ))
        })
    });

    let lru_kernel = baselines::TrueLru::new(&geom).slice_kernel().unwrap();
    g.bench_function("sliced/LRU", |b| {
        b.iter(|| {
            black_box(replay_llc_sliced(
                black_box(&stream),
                geom,
                &lru_kernel,
                warmup,
                &perf,
            ))
        })
    });

    g.finish();
}

criterion_group!(
    replay_bench,
    bench_replay_engines,
    bench_replay_sharded,
    bench_replay_sliced
);
criterion_main!(replay_bench);
