//! The differential driver: replay one stream through three models and
//! report the first access where they disagree.
//!
//! For every access the driver runs:
//!
//! 1. the optimized cache via the monomorphization-friendly
//!    [`SetAssocCache::access_fast`] entry point (hit/miss only),
//! 2. a second optimized cache via the full [`SetAssocCache::access`]
//!    outcome path, and
//! 3. the naive [`RefCache`] with the paired reference policy,
//!
//! and cross-checks hit/miss agreement, bypass decisions, victim identity
//! and dirtiness, and the touched set's resident blocks (in way order).
//! After the stream, the accumulated [`sim_core::CacheStats`] must match
//! field for field. The first disagreement is returned as a [`Divergence`]
//! carrying a greedily minimized repro stream.

use crate::refcache::RefCache;
use crate::refmodels::{
    RefAwrp, RefFifo, RefGiplr, RefGippr, RefLru, RefPdp, RefPlruPolicy, RefSrrip,
};
use baselines::{
    ArcPolicy, AwrpPolicy, BrripPolicy, DipPolicy, DrripPolicy, EhcPolicy, FifoPolicy, PdpPolicy,
    RandomPolicy, RripIpvPolicy, SdbpPolicy, ShipPolicy, SrripPolicy, TrueLru,
};
use gippr::{DgipprPolicy, GiplrPolicy, GipprPolicy, PlruPolicy};
use sim_core::policy::{factory, PolicyFactory};
use sim_core::{Access, CacheGeometry, SetAssocCache};
use std::fmt;

/// What disagreed on a given access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The fast path, outcome path, and reference disagreed on hit/miss.
    HitMiss {
        /// `access_fast`'s verdict.
        fast: bool,
        /// `access_block`'s verdict.
        block: bool,
        /// The reference cache's verdict.
        reference: bool,
    },
    /// Bypass decisions differed.
    Bypass {
        /// Optimized bypass decision.
        block: bool,
        /// Reference bypass decision.
        reference: bool,
    },
    /// Evicted block address/dirtiness differed.
    Eviction {
        /// Optimized `(block_addr, dirty)`, if it evicted.
        block: Option<(u64, bool)>,
        /// Reference `(block_addr, dirty)`, if it evicted.
        reference: Option<(u64, bool)>,
    },
    /// The touched set's resident blocks differed after the access.
    Contents {
        /// Optimized resident blocks in way order.
        block: Vec<u64>,
        /// Reference resident blocks in way order.
        reference: Vec<u64>,
    },
    /// Final statistics differed after an otherwise-clean replay.
    Stats {
        /// `(accesses, hits, misses, evictions, writebacks, bypasses)`
        /// optimized.
        block: [u64; 6],
        /// `(accesses, hits, misses, evictions, writebacks, bypasses)`
        /// reference.
        reference: [u64; 6],
    },
}

/// The first point where optimized and reference models disagreed.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Policy pair that diverged.
    pub policy: String,
    /// Index of the offending access in the original stream (stats
    /// divergences use the stream length).
    pub index: usize,
    /// The offending access, if the divergence is per-access.
    pub access: Option<Access>,
    /// What disagreed.
    pub kind: DivergenceKind,
    /// A greedily minimized stream that still reproduces a divergence.
    pub minimized: Vec<Access>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] divergence at access #{}: {:?}",
            self.policy, self.index, self.kind
        )?;
        if let Some(a) = &self.access {
            write!(f, " on {a}")?;
        }
        write!(f, "; minimized repro: {} accesses", self.minimized.len())?;
        for a in self.minimized.iter().take(16) {
            write!(f, "\n    {a}")?;
        }
        if self.minimized.len() > 16 {
            write!(f, "\n    … ({} more)", self.minimized.len() - 16)?;
        }
        Ok(())
    }
}

/// An optimized policy and its independently written reference twin.
pub struct PolicyPair {
    /// Display name.
    pub name: &'static str,
    /// Builds the optimized policy.
    pub optimized: PolicyFactory,
    /// Builds the reference policy.
    pub reference: PolicyFactory,
}

impl PolicyPair {
    fn new(name: &'static str, optimized: PolicyFactory, reference: PolicyFactory) -> Self {
        PolicyPair {
            name,
            optimized,
            reference,
        }
    }
}

fn stats_vec(s: &sim_core::CacheStats) -> [u64; 6] {
    [
        s.accesses,
        s.hits,
        s.misses,
        s.evictions,
        s.writebacks,
        s.bypasses,
    ]
}

/// Replays `stream` through the three models, returning `Err` with the
/// first divergence (minimized) or `Ok` with the agreed final stats.
// The Err variant carries the minimized repro and is only built on the
// failure path, so its size does not matter on the hot Ok path.
#[allow(clippy::result_large_err)]
pub fn diff_replay(
    pair: &PolicyPair,
    geom: CacheGeometry,
    stream: &[Access],
) -> Result<sim_core::CacheStats, Divergence> {
    match run_once(pair, geom, stream) {
        Ok(stats) => Ok(stats),
        Err(raw) => {
            let (index, access, kind) = *raw;
            let minimized = minimize(pair, geom, stream, index);
            Err(Divergence {
                policy: pair.name.to_string(),
                index,
                access,
                kind,
                minimized,
            })
        }
    }
}

type RawDivergence = Box<(usize, Option<Access>, DivergenceKind)>;

fn raw(index: usize, access: Option<Access>, kind: DivergenceKind) -> RawDivergence {
    Box::new((index, access, kind))
}

fn run_once(
    pair: &PolicyPair,
    geom: CacheGeometry,
    stream: &[Access],
) -> Result<sim_core::CacheStats, RawDivergence> {
    let mut fast = SetAssocCache::new(geom, (pair.optimized)(&geom));
    let mut block = SetAssocCache::new(geom, (pair.optimized)(&geom));
    let mut reference = RefCache::new(geom, (pair.reference)(&geom));

    for (i, a) in stream.iter().enumerate() {
        let fast_hit = fast.access_fast(a);
        let opt = block.access(a);
        let rf = reference.access(a);

        if fast_hit != opt.hit || opt.hit != rf.hit {
            return Err(raw(
                i,
                Some(*a),
                DivergenceKind::HitMiss {
                    fast: fast_hit,
                    block: opt.hit,
                    reference: rf.hit,
                },
            ));
        }
        if opt.bypassed != rf.bypassed {
            return Err(raw(
                i,
                Some(*a),
                DivergenceKind::Bypass {
                    block: opt.bypassed,
                    reference: rf.bypassed,
                },
            ));
        }
        let opt_evicted = opt.evicted.map(|e| (e.block_addr, e.dirty));
        if opt_evicted != rf.evicted {
            return Err(raw(
                i,
                Some(*a),
                DivergenceKind::Eviction {
                    block: opt_evicted,
                    reference: rf.evicted,
                },
            ));
        }
        let set = geom.set_of(a.addr);
        let opt_resident = block.resident_blocks(set);
        let ref_resident = reference.resident_blocks(set);
        if opt_resident != ref_resident {
            return Err(raw(
                i,
                Some(*a),
                DivergenceKind::Contents {
                    block: opt_resident,
                    reference: ref_resident,
                },
            ));
        }
    }

    let opt_stats = stats_vec(block.stats());
    let ref_stats = stats_vec(reference.stats());
    let fast_stats = stats_vec(fast.stats());
    if opt_stats != ref_stats || fast_stats != ref_stats {
        return Err(raw(
            stream.len(),
            None,
            DivergenceKind::Stats {
                block: opt_stats,
                reference: ref_stats,
            },
        ));
    }
    Ok(*block.stats())
}

/// Shrinks a diverging stream: truncate after the offending access, drop
/// accesses to other sets, then greedily drop remaining accesses from the
/// front while the (possibly different) divergence persists.
fn minimize(
    pair: &PolicyPair,
    geom: CacheGeometry,
    stream: &[Access],
    index: usize,
) -> Vec<Access> {
    let end = (index + 1).min(stream.len());
    let mut repro: Vec<Access> = stream[..end].to_vec();

    // Restricting to the divergent access's set usually keeps the repro
    // diverging (cache sets are independent for most policies; set-dueling
    // global state is the exception, which the greedy pass below handles by
    // falling back to the unfiltered stream).
    if let Some(last) = repro.last().copied() {
        let set = geom.set_of(last.addr);
        let filtered: Vec<Access> = repro
            .iter()
            .copied()
            .filter(|a| geom.set_of(a.addr) == set)
            .collect();
        if run_once(pair, geom, &filtered).is_err() {
            repro = filtered;
        }
    }

    // Greedy front-trimming: oldest accesses are the most likely to be
    // irrelevant warm-up.
    let mut i = 0;
    while i < repro.len() {
        let mut candidate = repro.clone();
        candidate.remove(i);
        if run_once(pair, geom, &candidate).is_err() {
            repro = candidate;
        } else {
            i += 1;
        }
    }
    repro
}

/// The verification roster.
///
/// Pairs with a truly independent reference implementation:
/// LRU, FIFO, PLRU, SRRIP, PDP, GIPPR, GIPLR, AWRP. The remaining policies are
/// *self-paired* (the same deterministic construction on both sides): they
/// cannot catch a policy-logic bug, but they still drive the packed
/// [`SetAssocCache`] against the naive [`RefCache`] tag store, which is
/// where the substrate bugs live.
pub fn roster(which: &str) -> Vec<PolicyPair> {
    let all: Vec<PolicyPair> = vec![
        PolicyPair::new(
            "lru",
            factory(|g| Box::new(TrueLru::new(g))),
            factory(|g| Box::new(RefLru::new(g))),
        ),
        PolicyPair::new(
            "fifo",
            factory(|g| Box::new(FifoPolicy::new(g))),
            factory(|g| Box::new(RefFifo::new(g))),
        ),
        PolicyPair::new(
            "plru",
            factory(|g| Box::new(PlruPolicy::new(g))),
            factory(|g| Box::new(RefPlruPolicy::new(g))),
        ),
        PolicyPair::new(
            "srrip",
            factory(|g| Box::new(SrripPolicy::new(g))),
            factory(|g| Box::new(RefSrrip::new(g))),
        ),
        PolicyPair::new(
            "pdp",
            factory(|g| Box::new(PdpPolicy::new(g))),
            factory(|g| Box::new(RefPdp::new(g))),
        ),
        PolicyPair::new(
            "gippr",
            factory(|g| Box::new(GipprPolicy::new(g, gippr::vectors::wi_gippr()).expect("16-way"))),
            factory(|g| Box::new(RefGippr::new(g, gippr::vectors::wi_gippr()))),
        ),
        PolicyPair::new(
            "giplr",
            factory(|g| {
                Box::new(GiplrPolicy::new(g, gippr::vectors::giplr_best()).expect("16-way"))
            }),
            factory(|g| Box::new(RefGiplr::new(g, gippr::vectors::giplr_best()))),
        ),
        PolicyPair::new(
            "awrp",
            factory(|g| Box::new(AwrpPolicy::new(g))),
            factory(|g| Box::new(RefAwrp::new(g))),
        ),
        // Self-paired substrate checks.
        PolicyPair::new(
            "random",
            factory(|g| Box::new(RandomPolicy::with_seed(g, 0xd1ff))),
            factory(|g| Box::new(RandomPolicy::with_seed(g, 0xd1ff))),
        ),
        PolicyPair::new(
            "brrip",
            factory(|g| Box::new(BrripPolicy::new(g))),
            factory(|g| Box::new(BrripPolicy::new(g))),
        ),
        PolicyPair::new(
            "drrip",
            factory(|g| Box::new(DrripPolicy::new(g).expect("geometry fits duel"))),
            factory(|g| Box::new(DrripPolicy::new(g).expect("geometry fits duel"))),
        ),
        PolicyPair::new(
            "dip",
            factory(|g| Box::new(DipPolicy::new(g).expect("geometry fits duel"))),
            factory(|g| Box::new(DipPolicy::new(g).expect("geometry fits duel"))),
        ),
        PolicyPair::new(
            "ship",
            factory(|g| Box::new(ShipPolicy::new(g))),
            factory(|g| Box::new(ShipPolicy::new(g))),
        ),
        PolicyPair::new(
            "sdbp",
            factory(|g| Box::new(SdbpPolicy::new(g))),
            factory(|g| Box::new(SdbpPolicy::new(g))),
        ),
        PolicyPair::new(
            "ehc",
            factory(|g| Box::new(EhcPolicy::new(g))),
            factory(|g| Box::new(EhcPolicy::new(g))),
        ),
        PolicyPair::new(
            "arc",
            factory(|g| Box::new(ArcPolicy::new(g))),
            factory(|g| Box::new(ArcPolicy::new(g))),
        ),
        PolicyPair::new(
            "rrip-ipv",
            factory(|g| Box::new(RripIpvPolicy::new(g, [0, 0, 1, 2, 3]).expect("5 entries"))),
            factory(|g| Box::new(RripIpvPolicy::new(g, [0, 0, 1, 2, 3]).expect("5 entries"))),
        ),
        PolicyPair::new(
            "dgippr2",
            factory(|g| {
                Box::new(DgipprPolicy::two_vector(g, gippr::vectors::wi_2dgippr()).expect("fits"))
            }),
            factory(|g| {
                Box::new(DgipprPolicy::two_vector(g, gippr::vectors::wi_2dgippr()).expect("fits"))
            }),
        ),
        PolicyPair::new(
            "dgippr4",
            factory(|g| {
                Box::new(DgipprPolicy::four_vector(g, gippr::vectors::wi_4dgippr()).expect("fits"))
            }),
            factory(|g| {
                Box::new(DgipprPolicy::four_vector(g, gippr::vectors::wi_4dgippr()).expect("fits"))
            }),
        ),
        PolicyPair::new(
            "dgippr4-bypass",
            factory(|g| {
                Box::new(
                    DgipprPolicy::four_vector(g, gippr::vectors::wi_4dgippr())
                        .and_then(|p| p.with_bypass(4))
                        .expect("fits"),
                )
            }),
            factory(|g| {
                Box::new(
                    DgipprPolicy::four_vector(g, gippr::vectors::wi_4dgippr())
                        .and_then(|p| p.with_bypass(4))
                        .expect("fits"),
                )
            }),
        ),
    ];
    if which == "all" {
        all
    } else {
        all.into_iter().filter(|p| p.name == which).collect()
    }
}

/// The geometry every oracle run uses: 1 MB, 16-way, 64-byte lines
/// (1024 sets — large enough for every duel's leader map, small enough
/// that 1M accesses see plenty of evictions).
pub fn oracle_geometry() -> CacheGeometry {
    CacheGeometry::from_sets(1024, 16, 64).expect("static geometry is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn roster_filters_by_name() {
        assert_eq!(roster("lru").len(), 1);
        assert_eq!(roster("no-such-policy").len(), 0);
        assert!(roster("all").len() >= 20);
        assert_eq!(roster("awrp").len(), 1);
        assert_eq!(roster("ehc").len(), 1);
        assert_eq!(roster("arc").len(), 1);
    }

    #[test]
    fn mismatched_pair_is_caught_and_minimized() {
        // LRU against a FIFO "reference" must diverge, and the minimized
        // repro must still reproduce a divergence.
        let bad = PolicyPair::new(
            "lru-vs-fifo",
            factory(|g| Box::new(TrueLru::new(g))),
            factory(|g| Box::new(RefFifo::new(g))),
        );
        let geom = CacheGeometry::from_sets(16, 4, 64).unwrap();
        let (_, stream) = &workloads::workloads(7, 20_000)[0];
        let d = diff_replay(&bad, geom, stream).expect_err("LRU is not FIFO");
        assert!(!d.minimized.is_empty());
        assert!(run_once(&bad, geom, &d.minimized).is_err());
        // Greedy minimization is idempotent by construction: dropping any
        // single access from the result no longer reproduces.
        if d.minimized.len() < 64 {
            for i in 0..d.minimized.len() {
                let mut c = d.minimized.clone();
                c.remove(i);
                assert!(
                    run_once(&bad, geom, &c).is_ok(),
                    "minimized repro still had a removable access at {i}"
                );
            }
        }
    }

    #[test]
    fn clean_pair_agrees_on_a_short_stream() {
        let geom = oracle_geometry();
        let (_, stream) = &workloads::workloads(3, 30_000)[1];
        for pair in roster("plru") {
            let stats = diff_replay(&pair, geom, stream).expect("plru must agree");
            assert_eq!(stats.accesses, stream.len() as u64);
        }
    }
}
