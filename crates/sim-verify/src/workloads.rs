//! Deterministic synthetic access streams for the differential oracle.
//!
//! Three generators with deliberately different replacement behaviour, so
//! that the oracle exercises hit-heavy promotion paths, eviction/writeback
//! churn, and duel flip-flopping rather than one regime:
//!
//! * `hot-cold` — a small hot region absorbs most references (hits and
//!   promotions dominate), a large cold region supplies misses; ~25 % of
//!   references are writes, so dirty evictions and writebacks occur.
//! * `scan-thrash` — a resident working-set loop interleaved with long
//!   streaming scans (the pattern that separates scan-resistant policies
//!   from LRU and keeps set-dueling PSELs moving).
//! * `pointer-chase` — a pseudo-random walk with low spatial locality and
//!   per-step varying PCs, stressing victim selection and PC-indexed state.

use rand::{rngs::StdRng, Rng, SeedableRng};
use sim_core::{Access, AccessKind};

/// Line-sized stride used by every generator (addresses are byte-level).
const LINE: u64 = 64;

fn access(rng: &mut StdRng, block: u64, pc: u64, write_chance: f64) -> Access {
    Access {
        addr: block * LINE + rng.gen_range(0..LINE / 8) * 8,
        pc,
        kind: if write_chance > 0.0 && rng.gen_bool(write_chance) {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        icount_delta: rng.gen_range(1..8),
    }
}

fn hot_cold(seed: u64, n: usize) -> Vec<Access> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0001);
    let hot_blocks = 4 * 1024u64; // ~256 KB: fits the oracle LLC easily
    let cold_blocks = 1 << 22; // 256 MB: mostly compulsory misses
    (0..n)
        .map(|i| {
            let pc = 0x400000 + (i as u64 % 37) * 4;
            if rng.gen_bool(0.9) {
                // Square-root of a uniform draw: a rough power-law that
                // concentrates references on low block numbers.
                let r = rng.gen_range(0..hot_blocks * hot_blocks);
                access(&mut rng, (r as f64).sqrt() as u64 % hot_blocks, pc, 0.25)
            } else {
                let cold = hot_blocks + rng.gen_range(0..cold_blocks);
                access(&mut rng, cold, pc, 0.25)
            }
        })
        .collect()
}

fn scan_thrash(seed: u64, n: usize) -> Vec<Access> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let ws_blocks = 12 * 1024u64; // ~75 % of the oracle LLC
    let mut out = Vec::with_capacity(n);
    let mut scan_base = 1u64 << 30;
    let mut ws_cursor = 0u64;
    while out.len() < n {
        // A stretch of working-set reuse…
        for _ in 0..rng.gen_range(64..512usize) {
            out.push(access(&mut rng, ws_cursor % ws_blocks, 0x500000, 0.1));
            ws_cursor += rng.gen_range(1..5);
        }
        // …then a streaming scan that would flush an LRU cache.
        for _ in 0..rng.gen_range(256..2048usize) {
            out.push(access(&mut rng, scan_base, 0x600000, 0.0));
            scan_base += 1;
        }
    }
    out.truncate(n);
    out
}

fn pointer_chase(seed: u64, n: usize) -> Vec<Access> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a5_e514);
    let heap_blocks = 64 * 1024u64; // 4 MB arena: 4x the oracle LLC
    let mut cursor = rng.gen_range(0..heap_blocks);
    (0..n)
        .map(|_| {
            // Next "pointer": a deterministic scramble of the current node,
            // occasionally re-rooted to model a new traversal.
            cursor = if rng.gen_bool(0.02) {
                rng.gen_range(0..heap_blocks)
            } else {
                cursor
                    .wrapping_mul(0x5851_f42d_4c95_7f2d)
                    .wrapping_add(0x1405_7b7e_f767_814f)
                    % heap_blocks
            };
            let pc = 0x700000 + (cursor % 61) * 4;
            access(&mut rng, cursor, pc, 0.05)
        })
        .collect()
}

/// Builds the three named oracle workloads at `n` accesses each.
pub fn workloads(seed: u64, n: usize) -> Vec<(String, Vec<Access>)> {
    vec![
        ("hot-cold".to_string(), hot_cold(seed, n)),
        ("scan-thrash".to_string(), scan_thrash(seed, n)),
        ("pointer-chase".to_string(), pointer_chase(seed, n)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = workloads(42, 1000);
        let b = workloads(42, 1000);
        let c = workloads(43, 1000);
        for ((na, sa), (nb, sb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(sa, sb);
        }
        assert_ne!(a[0].1, c[0].1, "different seed, different stream");
    }

    #[test]
    fn streams_mix_reads_and_writes() {
        for (name, stream) in workloads(1, 5000) {
            assert_eq!(stream.len(), 5000);
            let writes = stream.iter().filter(|a| a.is_write()).count();
            if name != "scan-thrash" {
                assert!(writes > 0, "{name} should contain writes");
            }
        }
    }
}
