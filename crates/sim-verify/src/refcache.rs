//! A naive set-associative cache used as the differential reference.
//!
//! [`RefCache`] stores tags, validity, and dirtiness as plain struct fields
//! in a `Vec` — no packed line words, no bit masks, no branchless scans.
//! Its lookup follows the [`sim_core::ReplacementPolicy`] callback protocol
//! exactly as documented (hit → `on_hit`; miss → `on_miss`, optional
//! bypass, invalid-way fill or `victim`/`on_evict`, then `on_fill`), so any
//! behavioural difference from [`sim_core::SetAssocCache`] is a bug in one
//! of the two.

use sim_core::{Access, AccessContext, CacheGeometry, CacheStats, ReplacementPolicy};

/// One cache line, unpacked.
#[derive(Debug, Clone, Copy, Default)]
struct RefLine {
    valid: bool,
    dirty: bool,
    tag: u64,
}

/// What a single reference lookup did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefOutcome {
    /// The block was resident.
    pub hit: bool,
    /// The policy declined to cache the missing block.
    pub bypassed: bool,
    /// Block address and dirtiness of the line this fill replaced, if any.
    pub evicted: Option<(u64, bool)>,
}

/// The reference cache: per-set `Vec<RefLine>` plus a boxed policy.
pub struct RefCache {
    geom: CacheGeometry,
    sets: Vec<Vec<RefLine>>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
}

impl RefCache {
    /// Creates a reference cache of `geom` driven by `policy`.
    pub fn new(geom: CacheGeometry, policy: Box<dyn ReplacementPolicy>) -> Self {
        RefCache {
            geom,
            sets: vec![vec![RefLine::default(); geom.ways()]; geom.sets()],
            policy,
            stats: CacheStats::default(),
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Performs one lookup for `access`.
    pub fn access(&mut self, access: &Access) -> RefOutcome {
        self.access_block(self.geom.block_of(access.addr), &access.context())
    }

    /// Performs one lookup for an already block-aligned address.
    pub fn access_block(&mut self, block_addr: u64, ctx: &AccessContext) -> RefOutcome {
        let set = self.geom.set_of_block(block_addr);
        let tag = self.geom.tag_of_block(block_addr);
        let ways = self.geom.ways();
        self.stats.accesses += 1;

        // Hit: the first valid way whose tag matches.
        let hit_way = (0..ways).find(|&w| {
            let l = self.sets[set][w];
            l.valid && l.tag == tag
        });
        if let Some(way) = hit_way {
            if ctx.is_write {
                self.sets[set][way].dirty = true;
            }
            self.stats.hits += 1;
            self.policy.on_hit(set, way, ctx);
            return RefOutcome {
                hit: true,
                bypassed: false,
                evicted: None,
            };
        }

        // Miss.
        self.stats.misses += 1;
        self.policy.on_miss(set, ctx);
        if self.policy.should_bypass(set, ctx) {
            self.stats.bypasses += 1;
            return RefOutcome {
                hit: false,
                bypassed: true,
                evicted: None,
            };
        }

        // Fill the lowest-numbered invalid way if one exists, otherwise
        // evict the policy's victim.
        let (fill_way, evicted) = match (0..ways).find(|&w| !self.sets[set][w].valid) {
            Some(w) => (w, None),
            None => {
                let w = self.policy.victim(set, ctx);
                assert!(w < ways, "reference victim way {w} out of range");
                let old = self.sets[set][w];
                self.stats.evictions += 1;
                if old.dirty {
                    self.stats.writebacks += 1;
                }
                self.policy.on_evict(set, w);
                (
                    w,
                    Some((self.geom.block_from_parts(set, old.tag), old.dirty)),
                )
            }
        };
        self.sets[set][fill_way] = RefLine {
            valid: true,
            dirty: ctx.is_write,
            tag,
        };
        self.policy.on_fill(set, fill_way, ctx);
        RefOutcome {
            hit: false,
            bypassed: false,
            evicted,
        }
    }

    /// Block addresses of the valid lines in `set`, in way order.
    pub fn resident_blocks(&self, set: usize) -> Vec<u64> {
        self.sets[set]
            .iter()
            .filter(|l| l.valid)
            .map(|l| self.geom.block_from_parts(set, l.tag))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::policy::fifo_like_fixture::AlwaysWayZero;

    fn small() -> RefCache {
        let geom = CacheGeometry::from_sets(4, 4, 64).unwrap();
        RefCache::new(geom, Box::new(AlwaysWayZero::new(&geom)))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        let ctx = AccessContext::blank();
        assert!(!c.access_block(8, &ctx).hit);
        assert!(c.access_block(8, &ctx).hit);
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn fills_invalid_ways_in_way_order_then_evicts() {
        let mut c = small();
        let ctx = AccessContext::blank();
        for tag in 0..4u64 {
            assert_eq!(c.access_block(tag * 4, &ctx).evicted, None);
        }
        assert_eq!(c.occupancy_of(0), 4);
        // Way-0 fixture: block with tag 0 is evicted clean.
        let out = c.access_block(16, &ctx);
        assert_eq!(out.evicted, Some((0, false)));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn write_marks_dirty_and_forces_writeback() {
        let mut c = small();
        let w = AccessContext {
            is_write: true,
            ..AccessContext::blank()
        };
        c.access_block(0, &w);
        for tag in 1..4u64 {
            c.access_block(tag * 4, &AccessContext::blank());
        }
        let out = c.access_block(16, &AccessContext::blank());
        assert_eq!(out.evicted, Some((0, true)));
        assert_eq!(c.stats().writebacks, 1);
    }

    impl RefCache {
        fn occupancy_of(&self, set: usize) -> usize {
            self.resident_blocks(set).len()
        }
    }
}
