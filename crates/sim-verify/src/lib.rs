#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Differential oracle for the cache simulator.
//!
//! The optimized simulator earns its speed with packed tag words, bit-level
//! PLRU position algebra, and a monomorphized replay loop — all of which are
//! easy places for a subtle bug to hide while still producing plausible
//! miss ratios. This crate holds the *other* implementation: naive
//! reference models written for obviousness rather than speed, and a
//! differential driver that replays the same access stream through both and
//! reports the first access where they disagree, with a minimized repro.
//!
//! * [`refcache`] — [`RefCache`](refcache::RefCache), a Vec-of-structs tag
//!   store with no packing, mirroring the [`sim_core::SetAssocCache`]
//!   callback protocol line by line.
//! * [`refmodels`] — naive counterparts of the replacement state machines:
//!   [`RefPlru`](refmodels::RefPlru), a `Vec<bool>` PLRU tree;
//!   [`RefRecencyStack`](refmodels::RefRecencyStack), an MRU-ordered list;
//!   plus reference policies for LRU, FIFO, SRRIP, PDP, PLRU, GIPPR, and
//!   GIPLR.
//! * [`diff`] — the differential driver: three models per access
//!   (`access_fast`, `access_block`, reference), compared on hit/miss,
//!   bypass, victim identity and dirtiness, set contents, and final stats.
//! * [`workloads`] — deterministic synthetic access streams chosen to
//!   exercise different replacement behaviours (locality, scans, chases).
//! * [`mck`] — roster-wide bounded model checking: every policy adapted
//!   onto [`sim_lint::BoundedChecker`]'s [`sim_lint::PolicyState`] via a
//!   miniature cache model, plus the shard-affinity and Mattson
//!   fast-path contract audits. `cargo xtask model-check` sweeps these.
//!
//! The `sim-verify` binary runs the whole roster:
//!
//! ```text
//! cargo run -p sim-verify --release -- --policy all --accesses 1M --seed 1
//! ```

pub mod diff;
pub mod mck;
pub mod refcache;
pub mod refmodels;
pub mod workloads;

pub use diff::{diff_replay, roster, Divergence, PolicyPair};
pub use mck::{
    mattson_qualification_audit, mck_roster, AffinityModel, MckEntry, PolicyModel, SharedFactory,
    StepOutcome,
};
pub use refcache::{RefCache, RefOutcome};
pub use refmodels::{RefPlru, RefRecencyStack};
