//! Roster-wide bounded model checking and engine-contract auditing.
//!
//! The exhaustive checker in `sim_lint::mck` proves PLRU-tree invariants
//! by enumerating every tree state — possible because a `k`-way tree is
//! `k - 1` bits. The rest of the roster (ARC's adaptive partition, EHC's
//! hit-count tables, AWRP's clocks, dueling PSELs) has state spaces that
//! are astronomically large or outright unbounded, so this module drives
//! each policy through the *bounded* checker instead
//! ([`sim_lint::BoundedChecker`]): breadth-first search over a tiny
//! cache's reachable states with digest-based deduplication, proving on
//! every explored transition that
//!
//! * victim selection is total and in range, and an invalid way is never
//!   evicted ([`PolicyModel`] mirrors the exact `SetAssocCache` fill
//!   protocol, so the victim callback only ever fires on a full set),
//! * every policy-declared metadata invariant holds
//!   ([`sim_core::ReplacementPolicy::audit_invariants`]): EHC/SHiP
//!   counters saturate, ARC's partition target stays in range and its
//!   ghost lists never exceed capacity, AWRP clocks stay stride-aligned,
//!   recency stacks remain permutations, and
//! * constant-input promotion orbits revisit a state (the bounded
//!   checker's orbit pass).
//!
//! Two contract-soundness passes ride on the same machinery:
//!
//! * [`AffinityModel`] — the shard-affinity checker. For every policy
//!   claiming [`ShardAffinity::SetLocal`], it explores interleaved
//!   multi-set streams while replaying each set's subsequence on an
//!   isolated twin instance, requiring hit/evict outcomes and per-set
//!   audit digests to be bit-identical at every reachable state —
//!   exactly the contract the sharded replay engine (`sim_core::shard`)
//!   relies on when it splits a trace across workers.
//! * [`mattson_qualification_audit`] — the single-pass Mattson profiler
//!   trusts [`sim_core::mattson::policy_qualifies`] to admit only
//!   LRU-equivalent policies to its fast path; the audit replays every
//!   qualifying roster policy against an independent list-based LRU
//!   reference over exhaustive short streams and returns the qualifying
//!   set so callers can pin it.
//!
//! Each checker is validated against a seeded defect: [`SneakyGlobal`]
//! (a fixture that claims `SetLocal` while routing a global counter into
//! per-set state) must be caught by the affinity pass, and
//! `ArcPolicy::poison_p_clamp` (a hidden switch that skips the upper
//! clamp on ARC's adaptation target) must be caught by the invariant
//! sweep. Both catches are asserted by unit tests here and re-run by
//! `cargo xtask model-check` as checker self-tests.

use std::sync::Arc;

use baselines::{
    ArcPolicy, AwrpPolicy, DipPolicy, DrripPolicy, EhcPolicy, FifoPolicy, PdpConfig, PdpPolicy,
    RandomPolicy, ShipPolicy, SrripPolicy, TrueLru,
};
use gippr::PlruPolicy;
use sim_core::{Access, CacheGeometry, ReplacementPolicy, ShardAffinity};
use sim_lint::PolicyState;

/// A cloneable policy constructor. Unlike `sim_core::policy::PolicyFactory`
/// (a `Box`), the `Arc` lets one roster entry build the many independent
/// instances the affinity checker's isolated twins need.
pub type SharedFactory = Arc<dyn Fn(&CacheGeometry) -> Box<dyn ReplacementPolicy> + Send + Sync>;

/// One roster entry for the bounded model checker: a display name kept in
/// lockstep with `harness::policies::baseline_roster` (the xtask twin
/// lint enforces the pairing) plus a cloneable policy constructor.
pub struct MckEntry {
    /// Roster display name, identical to the harness roster's.
    pub name: &'static str,
    /// Whether constant-input orbits converge for this policy, i.e.
    /// whether the orbit pass may run. False for policies whose canonical
    /// state contains genuinely unbounded counters — PDP's periodic
    /// access counter and AWRP's idle-way ages grow on every access, so a
    /// constant input keeps minting fresh states and only the budgeted
    /// BFS covers them.
    pub orbit_converges: bool,
    /// Constructor for fresh policy instances.
    pub build: SharedFactory,
}

/// The model-check roster: every policy the harness shoot-outs run,
/// constructed for the tiny geometries the bounded checker sweeps.
/// Dueling policies use one leader set per candidate and narrow PSELs so
/// the reachable global state stays small; PDP runs a miniature sampler
/// configuration for the same reason.
pub fn mck_roster(seed: u64) -> Vec<MckEntry> {
    fn entry(
        name: &'static str,
        build: impl Fn(&CacheGeometry) -> Box<dyn ReplacementPolicy> + Send + Sync + 'static,
    ) -> MckEntry {
        MckEntry {
            name,
            orbit_converges: true,
            build: Arc::new(build),
        }
    }
    fn unbounded(
        name: &'static str,
        build: impl Fn(&CacheGeometry) -> Box<dyn ReplacementPolicy> + Send + Sync + 'static,
    ) -> MckEntry {
        MckEntry {
            orbit_converges: false,
            ..entry(name, build)
        }
    }
    vec![
        entry("LRU", |g| Box::new(TrueLru::new(g))),
        entry("PseudoLRU", |g| Box::new(PlruPolicy::new(g))),
        entry("Random", move |g| {
            Box::new(RandomPolicy::with_seed(g, seed))
        }),
        entry("FIFO", |g| Box::new(FifoPolicy::new(g))),
        entry("DIP", |g| {
            Box::new(DipPolicy::with_config(g, 1, 4).expect("tiny geometry fits DIP"))
        }),
        entry("SRRIP", |g| Box::new(SrripPolicy::new(g))),
        entry("DRRIP", |g| {
            Box::new(DrripPolicy::with_config(g, 1, 4).expect("tiny geometry fits DRRIP"))
        }),
        unbounded("PDP", |g| {
            Box::new(PdpPolicy::with_config(
                g,
                PdpConfig {
                    rpd_bits: 2,
                    max_distance: 8,
                    compute_period: 16,
                    sampler_stride: 1,
                    initial_pd: 4,
                    sampler_depth: 4,
                },
            ))
        }),
        entry("SHiP", |g| Box::new(ShipPolicy::new(g))),
        entry("EHC", |g| Box::new(EhcPolicy::new(g))),
        unbounded("AWRP", |g| Box::new(AwrpPolicy::new(g))),
        entry("ARC", |g| Box::new(ArcPolicy::new(g))),
    ]
}

/// What one modelled access did, for differential comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// The way evicted to make room, if the fill replaced a valid line.
    pub evicted: Option<usize>,
}

/// A [`sim_lint::PolicyState`] adapter wrapping one real
/// [`ReplacementPolicy`] behind a miniature cache model that mirrors the
/// exact `SetAssocCache::access_tagged` callback protocol: hit scan, then
/// `on_hit`; or `on_miss`, bypass check, fill-the-first-invalid-way,
/// otherwise `victim` (checked for totality) plus `on_evict`, then
/// `on_fill`. The input alphabet is a fixed roster of block addresses
/// spread evenly over the sets; the state digest combines the tag array
/// with the policy's own canonical audit digests.
pub struct PolicyModel {
    name: String,
    build: SharedFactory,
    geom: CacheGeometry,
    policy: Box<dyn ReplacementPolicy>,
    tags: Vec<u64>,
    valid: Vec<bool>,
    blocks: Vec<u64>,
}

impl PolicyModel {
    /// Builds the model over `geom` with `blocks_per_set` distinct block
    /// addresses available per set (the input alphabet has
    /// `sets * blocks_per_set` reads). Blocks are found by scanning block
    /// numbers upward and bucketing through the geometry's own set
    /// mapping, so the alphabet is valid for any index function.
    pub fn new(
        name: &str,
        geom: CacheGeometry,
        blocks_per_set: usize,
        build: SharedFactory,
    ) -> Self {
        let sets = geom.sets();
        let mut per_set = vec![0usize; sets];
        let mut blocks = Vec::with_capacity(sets * blocks_per_set);
        let mut candidate = 0u64;
        while blocks.len() < sets * blocks_per_set {
            let set = geom.set_of_block(candidate);
            if per_set[set] < blocks_per_set {
                per_set[set] += 1;
                blocks.push(candidate);
            }
            candidate += 1;
        }
        let policy = build(&geom);
        PolicyModel {
            name: name.to_string(),
            build,
            geom,
            policy,
            tags: vec![0; sets * geom.ways()],
            valid: vec![false; sets * geom.ways()],
            blocks,
        }
    }

    /// The policy name this model wraps.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The block address input `input` accesses.
    pub fn input_block(&self, input: usize) -> u64 {
        self.blocks[input]
    }

    /// The set the given input's block maps to.
    pub fn set_of_input(&self, input: usize) -> usize {
        self.geom.set_of_block(self.blocks[input])
    }

    /// The wrapped policy's per-set audit digest (for cross-model
    /// comparisons such as the affinity checker).
    pub fn set_digest(&self, set: usize) -> Option<Vec<u8>> {
        self.policy.audit_set_digest(set)
    }

    /// Applies one access with full outcome reporting;
    /// [`PolicyState::apply`] discards the outcome, differential audits
    /// compare it.
    pub fn step(&mut self, input: usize) -> Result<StepOutcome, String> {
        let block = self.blocks[input];
        let set = self.geom.set_of_block(block);
        let tag = self.geom.tag_of_block(block);
        let ways = self.geom.ways();
        let base = set * ways;
        // A distinct PC per block keeps PC-indexed predictors (SHiP)
        // exercising more than one table entry.
        let ctx = Access::read(block * self.geom.line_bytes(), 0x40 + input as u64).context();

        let hit = (0..ways).find(|&w| self.valid[base + w] && self.tags[base + w] == tag);
        let outcome = if let Some(way) = hit {
            self.policy.on_hit(set, way, &ctx);
            StepOutcome {
                hit: true,
                evicted: None,
            }
        } else {
            self.policy.on_miss(set, &ctx);
            if self.policy.should_bypass(set, &ctx) {
                StepOutcome {
                    hit: false,
                    evicted: None,
                }
            } else {
                let (fill, evicted) = match (0..ways).find(|&w| !self.valid[base + w]) {
                    Some(w) => (w, None),
                    None => {
                        let w = self.policy.victim(set, &ctx);
                        if w >= ways {
                            return Err(format!(
                                "victim totality violated: {} returned way {w} of {ways} \
                                 in set {set}",
                                self.name
                            ));
                        }
                        if !self.valid[base + w] {
                            return Err(format!(
                                "{} evicted invalid way {w} in set {set}",
                                self.name
                            ));
                        }
                        self.policy.on_evict(set, w);
                        (w, Some(w))
                    }
                };
                self.tags[base + fill] = tag;
                self.valid[base + fill] = true;
                self.policy.on_fill(set, fill, &ctx);
                StepOutcome {
                    hit: false,
                    evicted,
                }
            }
        };
        self.policy
            .audit_invariants()
            .map_err(|e| format!("{}: invariant violated: {e}", self.name))?;
        Ok(outcome)
    }
}

impl PolicyState for PolicyModel {
    fn reset(&mut self) {
        self.policy = (self.build)(&self.geom);
        self.tags.fill(0);
        self.valid.fill(false);
    }

    fn num_inputs(&self) -> usize {
        self.blocks.len()
    }

    fn input_label(&self, input: usize) -> String {
        format!(
            "read block {:#x} (set {})",
            self.blocks[input],
            self.set_of_input(input)
        )
    }

    fn apply(&mut self, input: usize) -> Result<(), String> {
        self.step(input).map(|_| ())
    }

    fn digest(&self) -> Vec<u8> {
        let mut d = Vec::new();
        for set in 0..self.geom.sets() {
            let base = set * self.geom.ways();
            for w in 0..self.geom.ways() {
                d.push(u8::from(self.valid[base + w]));
                d.extend_from_slice(&self.tags[base + w].to_le_bytes());
            }
            if let Some(sd) = self.policy.audit_set_digest(set) {
                d.push(0xfe);
                d.extend_from_slice(&sd);
            }
            d.push(0xfd);
        }
        d.extend_from_slice(&self.policy.audit_global_digest());
        d
    }
}

/// The shard-affinity checker's composite state: one interleaved cache
/// over all sets plus one isolated twin per set that receives only that
/// set's subsequence. After every access, the touched set's hit/evict
/// outcome and audit digest must be bit-identical between the
/// interleaved run and its twin — the exact property that makes sharded
/// replay sound for [`ShardAffinity::SetLocal`] policies. Exploring this
/// composite with the bounded checker proves the property over *every*
/// reachable interleaving, not just one sampled stream.
pub struct AffinityModel {
    interleaved: PolicyModel,
    isolated: Vec<PolicyModel>,
}

impl AffinityModel {
    /// Builds the composite model.
    ///
    /// # Errors
    ///
    /// Fails if the policy does not claim [`ShardAffinity::SetLocal`]
    /// (nothing to prove — global policies are legitimately
    /// interleaving-sensitive) or exposes no per-set audit digest
    /// (nothing to compare).
    pub fn new(
        name: &str,
        geom: CacheGeometry,
        blocks_per_set: usize,
        build: SharedFactory,
    ) -> Result<Self, String> {
        let interleaved = PolicyModel::new(name, geom, blocks_per_set, build.clone());
        if interleaved.policy.shard_affinity() != ShardAffinity::SetLocal {
            return Err(format!("{name} does not claim SetLocal shard affinity"));
        }
        if interleaved.policy.audit_set_digest(0).is_none() {
            return Err(format!("{name} exposes no per-set audit digest"));
        }
        let isolated = (0..geom.sets())
            .map(|_| PolicyModel::new(name, geom, blocks_per_set, build.clone()))
            .collect();
        Ok(AffinityModel {
            interleaved,
            isolated,
        })
    }
}

impl PolicyState for AffinityModel {
    fn reset(&mut self) {
        self.interleaved.reset();
        for iso in &mut self.isolated {
            iso.reset();
        }
    }

    fn num_inputs(&self) -> usize {
        self.interleaved.num_inputs()
    }

    fn input_label(&self, input: usize) -> String {
        self.interleaved.input_label(input)
    }

    fn apply(&mut self, input: usize) -> Result<(), String> {
        let a = self.interleaved.step(input)?;
        let set = self.interleaved.set_of_input(input);
        let b = self.isolated[set].step(input)?;
        if a != b {
            return Err(format!(
                "shard-affinity violation in set {set}: interleaved outcome {a:?} != \
                 isolated {b:?}"
            ));
        }
        let ia = self.interleaved.set_digest(set);
        let ib = self.isolated[set].set_digest(set);
        if ia != ib {
            return Err(format!(
                "shard-affinity violation in set {set}: interleaved per-set digest \
                 {ia:02x?} != isolated {ib:02x?} — cross-set state leaked into a \
                 SetLocal policy"
            ));
        }
        Ok(())
    }

    fn digest(&self) -> Vec<u8> {
        // The twins' state is a function of the interleaved inputs, so the
        // interleaved digest alone would quotient correctly for a sound
        // policy; including the twins keeps the quotient sound even for a
        // *buggy* policy whose twin state drifts (the exact case the
        // checker exists to catch).
        let mut d = self.interleaved.digest();
        for iso in &self.isolated {
            d.push(0xfc);
            d.extend_from_slice(&iso.digest());
        }
        d
    }
}

/// A seeded-defect fixture: claims [`ShardAffinity::SetLocal`] while a
/// *global* access counter leaks into every set's victim choice and
/// per-set marks. The affinity checker must reject it; its existence
/// proves the checker catches the cross-set-state defect class.
#[doc(hidden)]
pub struct SneakyGlobal {
    ways: usize,
    cursor: u64,
    marks: Vec<u64>,
}

impl SneakyGlobal {
    /// Builds the fixture for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        SneakyGlobal {
            ways: geom.ways(),
            cursor: 0,
            marks: vec![0; geom.sets()],
        }
    }
}

impl ReplacementPolicy for SneakyGlobal {
    fn name(&self) -> &str {
        "SneakyGlobal"
    }

    fn victim(&mut self, _set: usize, _ctx: &sim_core::AccessContext) -> usize {
        (self.cursor as usize) % self.ways
    }

    fn on_hit(&mut self, set: usize, _way: usize, _ctx: &sim_core::AccessContext) {
        self.cursor += 1;
        self.marks[set] = self.cursor;
    }

    fn on_fill(&mut self, set: usize, _way: usize, _ctx: &sim_core::AccessContext) {
        self.cursor += 1;
        self.marks[set] = self.cursor;
    }

    fn bits_per_set(&self) -> u64 {
        64
    }

    // The lie under test: `cursor` is global mutable state that both the
    // victim choice and the per-set marks observe.
    fn shard_affinity(&self) -> ShardAffinity {
        ShardAffinity::SetLocal
    }

    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        Some(self.marks[set].to_le_bytes().to_vec())
    }
}

/// Independent list-based LRU reference for the Mattson qualification
/// audit: per-set way order from LRU to MRU, fills preferring the lowest
/// invalid way (matching [`PolicyModel`]'s fill protocol).
struct RefLru {
    geom: CacheGeometry,
    slots: Vec<Option<u64>>,
    order: Vec<Vec<usize>>,
}

impl RefLru {
    fn new(geom: CacheGeometry) -> Self {
        RefLru {
            geom,
            slots: vec![None; geom.sets() * geom.ways()],
            order: vec![Vec::new(); geom.sets()],
        }
    }

    fn step(&mut self, block: u64) -> StepOutcome {
        let set = self.geom.set_of_block(block);
        let tag = self.geom.tag_of_block(block);
        let ways = self.geom.ways();
        let base = set * ways;
        if let Some(way) = (0..ways).find(|&w| self.slots[base + w] == Some(tag)) {
            self.order[set].retain(|&w| w != way);
            self.order[set].push(way);
            return StepOutcome {
                hit: true,
                evicted: None,
            };
        }
        let (fill, evicted) = match (0..ways).find(|&w| self.slots[base + w].is_none()) {
            Some(w) => (w, None),
            None => {
                let w = self.order[set].remove(0);
                (w, Some(w))
            }
        };
        self.slots[base + fill] = Some(tag);
        self.order[set].retain(|&w| w != fill);
        self.order[set].push(fill);
        StepOutcome {
            hit: false,
            evicted,
        }
    }
}

/// Audits the Mattson fast-path gate: replays every roster policy that
/// [`sim_core::mattson::policy_qualifies`] admits against an independent
/// list-based LRU reference over *all* input streams of length `depth`
/// drawn from a `sets * blocks_per_set` block alphabet, and returns the
/// qualifying names so callers can pin the set.
///
/// # Errors
///
/// Returns the first divergence if a qualifying policy is not
/// hit/evict-equivalent to true LRU — the defect class that would
/// silently corrupt every fast-path stack-distance profile.
pub fn mattson_qualification_audit(
    geom: CacheGeometry,
    blocks_per_set: usize,
    depth: usize,
) -> Result<Vec<&'static str>, String> {
    let mut qualifying = Vec::new();
    for entry in mck_roster(0xA11D) {
        let probe = (entry.build)(&geom);
        if !sim_core::mattson::policy_qualifies(&*probe) {
            continue;
        }
        qualifying.push(entry.name);
        let mut model = PolicyModel::new(entry.name, geom, blocks_per_set, entry.build.clone());
        let n = model.num_inputs();
        let mut stream = vec![0usize; depth];
        'streams: loop {
            model.reset();
            let mut reference = RefLru::new(geom);
            for (pos, &input) in stream.iter().enumerate() {
                let got = model.step(input)?;
                let want = reference.step(model.input_block(input));
                if got != want {
                    return Err(format!(
                        "{} qualifies for the Mattson fast path but diverges from LRU at \
                         step {} of {:?}: policy {:?}, reference {:?}",
                        entry.name,
                        pos + 1,
                        stream,
                        got,
                        want
                    ));
                }
            }
            // Advance the base-`n` odometer; carrying past the last digit
            // means every stream has been replayed.
            let mut carried = true;
            for digit in stream.iter_mut() {
                *digit += 1;
                if *digit < n {
                    carried = false;
                    break;
                }
                *digit = 0;
            }
            if carried {
                break 'streams;
            }
        }
    }
    Ok(qualifying)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_lint::BoundedChecker;

    fn geom(sets: usize, ways: usize) -> CacheGeometry {
        CacheGeometry::from_sets(sets, ways, 64).unwrap()
    }

    #[test]
    fn roster_policies_pass_bounded_check_at_tiny_geometry() {
        for entry in mck_roster(11) {
            let orbits = if entry.orbit_converges {
                (48, 6)
            } else {
                (0, 0)
            };
            let mut model = PolicyModel::new(entry.name, geom(4, 2), 2, entry.build);
            let report = BoundedChecker::new()
                .with_max_states(300)
                .with_max_depth(10)
                .with_orbits(orbits.0, orbits.1)
                .run(&mut model)
                .unwrap_or_else(|trail| panic!("{}: {trail}", model.name()));
            assert!(report.transitions > 0, "{} explored nothing", model.name());
        }
    }

    #[test]
    fn poisoned_arc_p_update_is_caught_by_bounded_check() {
        // 1 set x 2 ways with a 4-block alphabet reaches the defect at
        // depth 7: two step-1 B1 ghost hits push p to its cap, and a third
        // (which only the unclamped update lets through) pushes it past
        // ways * P_SCALE.
        let build: SharedFactory = Arc::new(|g| {
            let mut p = ArcPolicy::new(g);
            p.poison_p_clamp();
            Box::new(p)
        });
        let mut model = PolicyModel::new("ARC[poisoned-p]", geom(1, 2), 4, build);
        let trail = BoundedChecker::new()
            .with_max_states(8192)
            .with_max_depth(10)
            .with_orbits(0, 0)
            .run(&mut model)
            .expect_err("the poisoned p update must be caught");
        assert!(
            trail.invariant.contains("exceeds"),
            "unexpected invariant: {}",
            trail.invariant
        );
        assert!(
            trail.invariant.contains('p'),
            "violation should name the adaptation target: {}",
            trail.invariant
        );
    }

    #[test]
    fn setlocal_roster_passes_affinity_check() {
        let mut checked = 0;
        for entry in mck_roster(5) {
            let orbits = if entry.orbit_converges {
                (32, 4)
            } else {
                (0, 0)
            };
            let mut model = match AffinityModel::new(entry.name, geom(2, 2), 2, entry.build) {
                Ok(m) => m,
                Err(_) => continue, // global policy: out of the contract's scope
            };
            BoundedChecker::new()
                .with_max_states(200)
                .with_max_depth(8)
                .with_orbits(orbits.0, orbits.1)
                .run(&mut model)
                .unwrap_or_else(|trail| panic!("{}: {trail}", entry.name));
            checked += 1;
        }
        assert!(
            checked >= 5,
            "expected at least LRU/PseudoLRU/FIFO/SRRIP/AWRP to claim SetLocal, got {checked}"
        );
    }

    #[test]
    fn sneaky_global_is_caught_by_affinity_check() {
        let build: SharedFactory = Arc::new(|g| Box::new(SneakyGlobal::new(g)));
        let mut model = AffinityModel::new("SneakyGlobal", geom(2, 2), 2, build).unwrap();
        let trail = BoundedChecker::new()
            .with_max_states(200)
            .with_max_depth(8)
            .run(&mut model)
            .expect_err("the fake SetLocal claim must be caught");
        assert!(
            trail.invariant.contains("shard-affinity violation"),
            "unexpected invariant: {}",
            trail.invariant
        );
    }

    #[test]
    fn affinity_model_rejects_global_policies() {
        let build: SharedFactory = Arc::new(|g| Box::new(ArcPolicy::new(g)));
        let err = match AffinityModel::new("ARC", geom(2, 2), 2, build) {
            Err(e) => e,
            Ok(_) => panic!("global ARC must be rejected by the affinity model"),
        };
        assert!(err.contains("SetLocal"));
    }

    #[test]
    fn mattson_audit_pins_exactly_lru() {
        let qualifying = mattson_qualification_audit(geom(2, 2), 2, 5).unwrap();
        assert_eq!(
            qualifying,
            vec!["LRU"],
            "the Mattson fast-path qualification set changed — update the profiler \
             docs and this pin together"
        );
    }

    #[test]
    fn policy_model_digests_replay_deterministically() {
        for entry in mck_roster(3) {
            let mut model = PolicyModel::new(entry.name, geom(4, 2), 2, entry.build);
            let stream = [0usize, 3, 5, 1, 0, 7, 2, 4, 6, 0];
            for &i in &stream {
                model.apply(i).unwrap();
            }
            let first = model.digest();
            model.reset();
            for &i in &stream {
                model.apply(i).unwrap();
            }
            assert_eq!(
                first,
                model.digest(),
                "{} is nondeterministic",
                model.name()
            );
        }
    }
}
