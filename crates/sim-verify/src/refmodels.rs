//! Naive reference implementations of the replacement state machines.
//!
//! Each type here re-derives its optimized counterpart's behaviour from the
//! paper's *specification*, using a deliberately different representation:
//!
//! * [`RefPlru`] keeps one `bool` per tree node instead of packed `u64`
//!   bits, and derives positions by walking root → leaf (the optimized
//!   [`gippr::PlruTree`] walks leaf → root).
//! * [`RefRecencyStack`] keeps the MRU→LRU *ordering* as a list of ways
//!   (the optimized [`gippr::RecencyStack`] stores each way's integer
//!   position), so its shifting semantics fall out of `remove`/`insert`.
//! * [`RefLru`] orders ways by recency rather than comparing timestamps.
//! * [`RefAwrp`] re-derives the weight ranking in per-set touch units
//!   instead of the optimized way-packed, `ways`-strided clock.
//! * [`RefFifo`], [`RefSrrip`], and [`RefPdp`] are clarity-first ports of
//!   the published policy descriptions.
//! * [`RefPlruPolicy`], [`RefGippr`], and [`RefGiplr`] drive the naive
//!   structures through the [`ReplacementPolicy`] interface.

use gippr::Ipv;
use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy};

/// A tree PseudoLRU state holding one `bool` per internal node.
///
/// Node indices are heap order from 1 (the root); node `i`'s children are
/// `2i` and `2i + 1`, and way `w`'s leaf is node `ways + w`. `false` points
/// left, `true` points right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefPlru {
    /// `nodes[i]` is node `i`'s bit; index 0 is unused.
    nodes: Vec<bool>,
    ways: usize,
}

impl RefPlru {
    /// Creates an all-zero tree for a power-of-two associativity in 2..=64.
    pub fn new(ways: usize) -> Self {
        assert!(
            ways.is_power_of_two() && (2..=64).contains(&ways),
            "RefPlru needs a power-of-two associativity in 2..=64, got {ways}"
        );
        RefPlru {
            nodes: vec![false; ways],
            ways,
        }
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn levels(&self) -> usize {
        self.ways.trailing_zeros() as usize
    }

    /// The PseudoLRU victim: follow the bits down from the root.
    pub fn victim(&self) -> usize {
        let mut node = 1;
        while node < self.ways {
            node = 2 * node + usize::from(self.nodes[node]);
        }
        node - self.ways
    }

    /// Promotes `way` to pseudo-MRU (position 0).
    pub fn promote(&mut self, way: usize) {
        self.set_position(way, 0);
    }

    /// Reads `way`'s pseudo recency-stack position by walking root → leaf.
    ///
    /// At depth `d` (root = 0) the path branches on bit `levels - 1 - d` of
    /// `way`; the node contributes that same bit of the position when its
    /// plru bit points *toward* the block.
    pub fn position(&self, way: usize) -> usize {
        assert!(way < self.ways, "way {way} out of range");
        let levels = self.levels();
        let mut node = 1;
        let mut pos = 0;
        for d in 0..levels {
            let bit_index = levels - 1 - d;
            let branch = way >> bit_index & 1;
            let toward_block = usize::from(self.nodes[node]) == branch;
            if toward_block {
                pos |= 1 << bit_index;
            }
            node = 2 * node + branch;
        }
        pos
    }

    /// Writes `way`'s position, rewriting the bits on its root-to-leaf path.
    pub fn set_position(&mut self, way: usize, position: usize) {
        assert!(way < self.ways, "way {way} out of range");
        assert!(position < self.ways, "position {position} out of range");
        let levels = self.levels();
        let mut node = 1;
        for d in 0..levels {
            let bit_index = levels - 1 - d;
            let branch = way >> bit_index & 1;
            let pos_bit = position >> bit_index & 1 == 1;
            // Point toward the block iff the position bit says so: a right
            // branch is "toward" when the node bit is 1, a left branch when
            // it is 0.
            self.nodes[node] = if branch == 1 { pos_bit } else { !pos_bit };
            node = 2 * node + branch;
        }
    }

    /// All ways' positions, indexed by way.
    pub fn positions(&self) -> Vec<usize> {
        (0..self.ways).map(|w| self.position(w)).collect()
    }
}

/// A recency stack represented as the explicit MRU→LRU ordering of ways.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefRecencyStack {
    /// `order[p]` is the way at position `p` (0 = MRU).
    order: Vec<usize>,
}

impl RefRecencyStack {
    /// Creates a stack where way `w` starts at position `w`.
    pub fn new(ways: usize) -> Self {
        assert!((2..=64).contains(&ways), "2..=64 ways, got {ways}");
        RefRecencyStack {
            order: (0..ways).collect(),
        }
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.order.len()
    }

    /// The position of `way` (0 = MRU).
    pub fn position(&self, way: usize) -> usize {
        self.order
            .iter()
            .position(|&w| w == way)
            .expect("every way appears in the ordering")
    }

    /// The way currently at `pos`.
    pub fn way_at(&self, pos: usize) -> usize {
        self.order[pos]
    }

    /// The way at the LRU position.
    pub fn lru_way(&self) -> usize {
        *self.order.last().expect("ways > 0")
    }

    /// Moves `way` to `target`; everything between slides over by one.
    pub fn move_to(&mut self, way: usize, target: usize) {
        assert!(target < self.ways(), "target {target} out of range");
        let current = self.position(way);
        self.order.remove(current);
        self.order.insert(target, way);
    }

    /// All positions, indexed by way.
    pub fn positions(&self) -> Vec<usize> {
        let mut by_way = vec![0; self.ways()];
        for (p, &w) in self.order.iter().enumerate() {
            by_way[w] = p;
        }
        by_way
    }
}

/// Reference true LRU: per-set MRU→LRU lists of *touched* ways.
///
/// Untouched ways sort before touched ones (they are infinitely old), ties
/// among them broken toward the lowest way index — matching the optimized
/// timestamp implementation's zero-initialized clock and way-packed `min`.
pub struct RefLru {
    /// Per-set list of touched ways, most recent first.
    recency: Vec<Vec<usize>>,
    ways: usize,
}

impl RefLru {
    /// Creates the reference LRU policy for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        RefLru {
            recency: vec![Vec::new(); geom.sets()],
            ways: geom.ways(),
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        let list = &mut self.recency[set];
        list.retain(|&w| w != way);
        list.insert(0, way);
    }
}

impl ReplacementPolicy for RefLru {
    fn name(&self) -> &str {
        "ref-LRU"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        let list = &self.recency[set];
        match (0..self.ways).find(|w| !list.contains(w)) {
            Some(untouched) => untouched,
            None => *list.last().expect("set is full"),
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.touch(set, way);
    }

    fn bits_per_set(&self) -> u64 {
        sim_core::overhead::lru_bits_per_set(self.ways)
    }
}

/// Reference AWRP: weight ranking re-derived in per-set *touch units*.
///
/// Where the optimized [`baselines::AwrpPolicy`] scales a per-set clock
/// by the associativity so it can pack way indices into timestamp low
/// bits, this model counts the set's touches directly (1 per touch) and
/// takes an explicit `min_by_key` over `(last_touch + FREQ_WEIGHT ×
/// freq, way)`. Untouched ways keep `(0, 0)` — infinitely old, ties to
/// the lowest way — matching the optimized zero-initialized state.
pub struct RefAwrp {
    ways: usize,
    touches: Vec<u64>,
    last_touch: Vec<Vec<u64>>,
    freq: Vec<Vec<u8>>,
}

impl RefAwrp {
    /// Creates the reference AWRP policy for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        RefAwrp {
            ways: geom.ways(),
            touches: vec![0; geom.sets()],
            last_touch: vec![vec![0; geom.ways()]; geom.sets()],
            freq: vec![vec![0; geom.ways()]; geom.sets()],
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.touches[set] += 1;
        self.last_touch[set][way] = self.touches[set];
    }
}

impl ReplacementPolicy for RefAwrp {
    fn name(&self) -> &str {
        "ref-AWRP"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        (0..self.ways)
            .min_by_key(|&w| {
                (
                    self.last_touch[set][w]
                        + u64::from(self.freq[set][w]) * baselines::awrp::FREQ_WEIGHT,
                    w,
                )
            })
            .expect("ways > 0")
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.touch(set, way);
        let f = &mut self.freq[set][way];
        *f = (*f + 1).min(baselines::awrp::FREQ_MAX);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.touch(set, way);
        self.freq[set][way] = 0;
    }

    fn bits_per_set(&self) -> u64 {
        sim_core::overhead::lru_bits_per_set(self.ways) + self.ways as u64 * 4
    }

    fn shard_affinity(&self) -> sim_core::ShardAffinity {
        sim_core::ShardAffinity::SetLocal
    }
}

/// Reference FIFO: a per-set round-robin pointer, advanced only when a fill
/// consumes the pointed-to way (cold fills land in way order already).
pub struct RefFifo {
    next: Vec<usize>,
    ways: usize,
}

impl RefFifo {
    /// Creates the reference FIFO policy for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        RefFifo {
            next: vec![0; geom.sets()],
            ways: geom.ways(),
        }
    }
}

impl ReplacementPolicy for RefFifo {
    fn name(&self) -> &str {
        "ref-FIFO"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        self.next[set]
    }

    fn on_hit(&mut self, _set: usize, _way: usize, _ctx: &AccessContext) {}

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        if self.next[set] == way {
            self.next[set] = (way + 1) % self.ways;
        }
    }

    fn bits_per_set(&self) -> u64 {
        u64::from(self.ways.trailing_zeros())
    }
}

/// Reference SRRIP (Jaleel et al., ISCA 2010) with 2-bit RRPVs: insert at
/// "long" (`max - 1`), promote hits to 0, victimize the first way at `max`,
/// aging everyone until one exists. Invalid lines start at `max`.
pub struct RefSrrip {
    rrpv: Vec<Vec<u8>>,
    max: u8,
    ways: usize,
}

impl RefSrrip {
    /// Creates the reference SRRIP policy for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        let max = (1u8 << baselines::rrip::RRPV_BITS) - 1;
        RefSrrip {
            rrpv: vec![vec![max; geom.ways()]; geom.sets()],
            max,
            ways: geom.ways(),
        }
    }
}

impl ReplacementPolicy for RefSrrip {
    fn name(&self) -> &str {
        "ref-SRRIP"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        loop {
            if let Some(w) = (0..self.ways).find(|&w| self.rrpv[set][w] == self.max) {
                return w;
            }
            for w in 0..self.ways {
                self.rrpv[set][w] += 1;
            }
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.rrpv[set][way] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.rrpv[set][way] = self.max - 1;
    }

    fn bits_per_set(&self) -> u64 {
        sim_core::overhead::rrip_bits_per_set(self.ways, baselines::rrip::RRPV_BITS)
    }
}

/// Reference plain tree PseudoLRU over [`RefPlru`] trees.
pub struct RefPlruPolicy {
    trees: Vec<RefPlru>,
}

impl RefPlruPolicy {
    /// Creates the reference PLRU policy for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        RefPlruPolicy {
            trees: vec![RefPlru::new(geom.ways()); geom.sets()],
        }
    }
}

impl ReplacementPolicy for RefPlruPolicy {
    fn name(&self) -> &str {
        "ref-PseudoLRU"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        self.trees[set].victim()
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.trees[set].promote(way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.trees[set].promote(way);
    }

    fn bits_per_set(&self) -> u64 {
        self.trees[0].ways() as u64 - 1
    }
}

/// Reference GIPPR: [`RefPlru`] trees driven by an insertion/promotion
/// vector — a hit at position `p` moves to `V[p]`, a fill lands at `V[k]`.
pub struct RefGippr {
    ipv: Ipv,
    trees: Vec<RefPlru>,
}

impl RefGippr {
    /// Creates the reference GIPPR policy; `ipv` must match `geom.ways()`.
    pub fn new(geom: &CacheGeometry, ipv: Ipv) -> Self {
        assert_eq!(ipv.assoc(), geom.ways(), "vector/geometry mismatch");
        RefGippr {
            ipv,
            trees: vec![RefPlru::new(geom.ways()); geom.sets()],
        }
    }
}

impl ReplacementPolicy for RefGippr {
    fn name(&self) -> &str {
        "ref-GIPPR"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        self.trees[set].victim()
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        let pos = self.trees[set].position(way);
        self.trees[set].set_position(way, self.ipv.promotion(pos));
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.trees[set].set_position(way, self.ipv.insertion());
    }

    fn bits_per_set(&self) -> u64 {
        self.trees[0].ways() as u64 - 1
    }
}

/// Reference GIPLR: [`RefRecencyStack`]s driven by an insertion/promotion
/// vector with true-LRU shifting semantics.
pub struct RefGiplr {
    ipv: Ipv,
    stacks: Vec<RefRecencyStack>,
}

impl RefGiplr {
    /// Creates the reference GIPLR policy; `ipv` must match `geom.ways()`.
    pub fn new(geom: &CacheGeometry, ipv: Ipv) -> Self {
        assert_eq!(ipv.assoc(), geom.ways(), "vector/geometry mismatch");
        RefGiplr {
            ipv,
            stacks: vec![RefRecencyStack::new(geom.ways()); geom.sets()],
        }
    }
}

impl ReplacementPolicy for RefGiplr {
    fn name(&self) -> &str {
        "ref-GIPLR"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        self.stacks[set].lru_way()
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        let pos = self.stacks[set].position(way);
        self.stacks[set].move_to(way, self.ipv.promotion(pos));
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.stacks[set].move_to(way, self.ipv.insertion());
    }

    fn bits_per_set(&self) -> u64 {
        sim_core::overhead::lru_bits_per_set(self.stacks[0].ways())
    }
}

/// Reference PDP (Duong et al., MICRO 2012), no-bypass configuration.
///
/// Same specification as [`baselines::PdpPolicy`] — reuse-distance sampler,
/// periodic protecting-distance recomputation, quantized per-set decay —
/// written with per-set `Vec`s and explicit loops rather than flat arrays.
pub struct RefPdp {
    cfg: baselines::PdpConfig,
    ways: usize,
    line_shift: u32,
    /// Per-set remaining protecting distance, per way.
    rpd: Vec<Vec<u8>>,
    /// Per-set reuse bit, per way.
    reused: Vec<Vec<bool>>,
    rpd_max: u8,
    tick: Vec<u8>,
    quantum: u8,
    hist: Vec<u64>,
    total_sampled: u64,
    /// Per sampled set: FIFO of (tag, last access count) pairs.
    sampler: Vec<Vec<(u64, u64)>>,
    set_access_count: Vec<u64>,
    accesses: u64,
    pd: usize,
}

impl RefPdp {
    /// Creates the reference PDP policy with default configuration.
    pub fn new(geom: &CacheGeometry) -> Self {
        let cfg = baselines::PdpConfig::default();
        let rpd_max = ((1u16 << cfg.rpd_bits) - 1) as u8;
        let sampled_sets = geom.sets().div_ceil(cfg.sampler_stride);
        let mut p = RefPdp {
            cfg,
            ways: geom.ways(),
            line_shift: geom.line_bytes().trailing_zeros(),
            rpd: vec![vec![0; geom.ways()]; geom.sets()],
            reused: vec![vec![false; geom.ways()]; geom.sets()],
            rpd_max,
            tick: vec![0; geom.sets()],
            quantum: 1,
            hist: vec![0; cfg.max_distance],
            total_sampled: 0,
            sampler: vec![Vec::new(); sampled_sets],
            set_access_count: vec![0; sampled_sets],
            accesses: 0,
            pd: cfg.initial_pd,
        };
        p.quantum = p.quantum_for(p.pd);
        p
    }

    /// Whether a line's remaining protecting distance is nonzero.
    pub fn is_protected(&self, set: usize, way: usize) -> bool {
        self.rpd[set][way] != 0
    }

    fn quantum_for(&self, pd: usize) -> u8 {
        pd.max(1).div_ceil(usize::from(self.rpd_max)).min(255) as u8
    }

    fn compute_pd(&self) -> usize {
        if self.total_sampled == 0 {
            return self.cfg.initial_pd;
        }
        let mut best_d = 1;
        let mut best_e = 0.0f64;
        let mut hits: u64 = 0;
        let mut weighted: u64 = 0;
        for d in 1..=self.cfg.max_distance {
            let n = self.hist[d - 1];
            hits += n;
            weighted += n * d as u64;
            let occupancy = weighted + (self.total_sampled - hits) * d as u64;
            if occupancy == 0 {
                continue;
            }
            let e = hits as f64 / occupancy as f64;
            if e > best_e {
                best_e = e;
                best_d = d;
            }
        }
        best_d
    }

    fn sample(&mut self, set: usize, ctx: &AccessContext) {
        if set % self.cfg.sampler_stride != 0 {
            return;
        }
        let idx = set / self.cfg.sampler_stride;
        self.set_access_count[idx] += 1;
        let now = self.set_access_count[idx];
        let tag = ctx.addr >> self.line_shift;
        let entries = &mut self.sampler[idx];
        if let Some(e) = entries.iter_mut().find(|e| e.0 == tag) {
            let rd = (now - e.1) as usize;
            let bucket = rd.clamp(1, self.cfg.max_distance) - 1;
            self.hist[bucket] += 1;
            self.total_sampled += 1;
            e.1 = now;
        } else {
            if entries.len() == self.cfg.sampler_depth {
                entries.remove(0);
            }
            entries.push((tag, now));
        }
    }

    fn on_any_access(&mut self, set: usize, ctx: &AccessContext) {
        self.sample(set, ctx);
        self.accesses += 1;
        if self.accesses % self.cfg.compute_period == 0 {
            self.pd = self.compute_pd();
            self.quantum = self.quantum_for(self.pd);
            for h in &mut self.hist {
                *h /= 2;
            }
            self.total_sampled /= 2;
        }
        self.tick[set] += 1;
        if self.tick[set] >= self.quantum {
            self.tick[set] = 0;
            for w in 0..self.ways {
                self.rpd[set][w] = self.rpd[set][w].saturating_sub(1);
            }
        }
    }
}

impl ReplacementPolicy for RefPdp {
    fn name(&self) -> &str {
        "ref-PDP"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        if let Some(w) = (0..self.ways).find(|&w| self.rpd[set][w] == 0) {
            return w;
        }
        (0..self.ways)
            .max_by_key(|&w| (!self.reused[set][w], self.rpd[set][w]))
            .expect("ways > 0")
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessContext) {
        self.on_any_access(set, ctx);
        self.rpd[set][way] = self.rpd_max;
        self.reused[set][way] = true;
    }

    fn on_miss(&mut self, set: usize, ctx: &AccessContext) {
        self.on_any_access(set, ctx);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.rpd[set][way] = self.rpd_max;
        self.reused[set][way] = false;
    }

    fn bits_per_set(&self) -> u64 {
        self.ways as u64 * (u64::from(self.cfg.rpd_bits) + 1) + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_plru_round_trips_positions() {
        for ways in [2usize, 4, 8, 16, 32, 64] {
            let mut t = RefPlru::new(ways);
            for w in 0..ways {
                for p in 0..ways {
                    t.set_position(w, p);
                    assert_eq!(t.position(w), p, "{ways}-way, way {w}, pos {p}");
                }
            }
        }
    }

    #[test]
    fn ref_plru_positions_are_a_permutation() {
        let mut t = RefPlru::new(16);
        for (i, w) in [3usize, 7, 1, 15, 8, 2, 9, 0, 12].iter().enumerate() {
            t.set_position(*w, (i * 5) % 16);
            let mut ps = t.positions();
            ps.sort_unstable();
            assert_eq!(ps, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn ref_stack_matches_documented_shifts() {
        let mut s = RefRecencyStack::new(4);
        s.move_to(2, 0);
        assert_eq!(s.positions(), vec![1, 2, 0, 3]);
        s.move_to(0, 3);
        assert_eq!(s.position(0), 3);
    }

    #[test]
    fn ref_lru_prefers_untouched_then_oldest() {
        let g = CacheGeometry::from_sets(2, 4, 64).unwrap();
        let mut p = RefLru::new(&g);
        let ctx = AccessContext::blank();
        p.on_fill(0, 2, &ctx);
        assert_eq!(p.victim(0, &ctx), 0, "lowest untouched way first");
        for w in [0usize, 1, 3] {
            p.on_fill(0, w, &ctx);
        }
        assert_eq!(p.victim(0, &ctx), 2, "way 2 is now the oldest touch");
    }
}
