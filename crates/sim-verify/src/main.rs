#![forbid(unsafe_code)]

//! Differential-oracle runner.
//!
//! ```text
//! cargo run -p sim-verify --release -- --policy all --accesses 1M --seed 1
//! ```
//!
//! Replays every requested policy pair over the three synthetic workloads
//! and exits nonzero if any access diverges between the optimized simulator
//! and the naive reference models.

use sim_verify::diff::{diff_replay, oracle_geometry, roster};
use sim_verify::workloads::workloads;
use std::process::ExitCode;

/// The `--mattson` mode: one single-pass stack-distance profile per
/// workload must reproduce per-configuration `replay_llc` hit/miss
/// counts (and MPKI) for true LRU at every associativity in {2,4,8,16},
/// at a fixed set count. One profile answers all four sweeps — the
/// whole point of the Mattson tentpole — so any disagreement here means
/// either the profiler or the replay engine broke.
fn mattson_check(seed: u64, accesses: usize) -> ExitCode {
    let sets = 1024usize;
    let max_ways = 16usize;
    let streams = workloads(seed, accesses);
    let perf = mem_model::WindowPerfModel::default();
    println!(
        "sim-verify --mattson: {} workload(s) x {} accesses, {} sets, ways 2..={} (seed {})",
        streams.len(),
        accesses,
        sets,
        max_ways,
        seed
    );
    let mut failures = 0u32;
    for (wname, stream) in &streams {
        let warmup = mem_model::default_warmup(stream.len());
        let profile_geom = sim_core::CacheGeometry::from_sets(sets, max_ways, 64)
            .expect("static geometry is valid");
        let profile =
            sim_core::StackDistanceProfile::capture(stream, &profile_geom, warmup, max_ways);
        for ways in [2usize, 4, 8, 16] {
            let geom = sim_core::CacheGeometry::from_sets(sets, ways, 64)
                .expect("static geometry is valid");
            let replay = mem_model::replay_llc(
                stream,
                geom,
                Box::new(baselines::TrueLru::new(&geom)),
                warmup,
                &perf,
            );
            let ok = profile.hits(ways) == replay.stats.hits
                && profile.misses(ways) == replay.stats.misses
                && profile.accesses() == replay.stats.accesses
                && profile.instructions() == replay.instructions
                && profile.mpki(ways) == replay.mpki();
            if ok {
                println!(
                    "  ok   {wname:<14} {ways:>2} ways: {} hits / {} misses (MPKI {:.3})",
                    replay.stats.hits,
                    replay.stats.misses,
                    replay.mpki()
                );
            } else {
                failures += 1;
                println!(
                    "  FAIL {wname:<14} {ways:>2} ways: profile {}h/{}m vs replay {}h/{}m",
                    profile.hits(ways),
                    profile.misses(ways),
                    replay.stats.hits,
                    replay.stats.misses,
                );
            }
        }
    }
    if failures > 0 {
        eprintln!("sim-verify --mattson: {failures} disagreement(s)");
        ExitCode::FAILURE
    } else {
        println!("sim-verify --mattson: profile and replay agree at every associativity");
        ExitCode::SUCCESS
    }
}

struct Args {
    policy: String,
    accesses: usize,
    seed: u64,
    mattson: bool,
}

fn parse_count(s: &str) -> Result<usize, String> {
    let (digits, mult) = match s.to_ascii_lowercase() {
        ref t if t.ends_with('m') => (s[..s.len() - 1].to_string(), 1_000_000),
        ref t if t.ends_with('k') => (s[..s.len() - 1].to_string(), 1_000),
        _ => (s.to_string(), 1),
    };
    digits
        .parse::<usize>()
        .map(|n| n * mult)
        .map_err(|e| format!("bad count {s:?}: {e}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        policy: "all".to_string(),
        accesses: 1_000_000,
        seed: 1,
        mattson: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--policy" => args.policy = value()?,
            "--accesses" => args.accesses = parse_count(&value()?)?,
            "--seed" => {
                args.seed = value()?.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--mattson" => args.mattson = true,
            "--help" | "-h" => return Err(
                "usage: sim-verify [--policy NAME|all] [--accesses N[k|M]] [--seed N] [--mattson]"
                    .to_string(),
            ),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.mattson {
        return mattson_check(args.seed, args.accesses);
    }
    let pairs = roster(&args.policy);
    if pairs.is_empty() {
        eprintln!(
            "no policy named {:?}; known: {}",
            args.policy,
            roster("all")
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    }

    let geom = oracle_geometry();
    let streams = workloads(args.seed, args.accesses);
    println!(
        "sim-verify: {} policy pair(s) x {} workload(s) x {} accesses (seed {})",
        pairs.len(),
        streams.len(),
        args.accesses,
        args.seed
    );

    let mut divergences = 0u32;
    for pair in &pairs {
        for (wname, stream) in &streams {
            match diff_replay(pair, geom, stream) {
                Ok(stats) => println!(
                    "  ok   {:<16} {:<14} miss ratio {:.4} ({} evictions, {} writebacks)",
                    pair.name,
                    wname,
                    stats.miss_ratio(),
                    stats.evictions,
                    stats.writebacks,
                ),
                Err(d) => {
                    divergences += 1;
                    println!("  FAIL {:<16} {:<14}", pair.name, wname);
                    println!("{d}");
                }
            }
        }
    }

    if divergences > 0 {
        eprintln!("sim-verify: {divergences} divergence(s) found");
        ExitCode::FAILURE
    } else {
        println!("sim-verify: all models agree");
        ExitCode::SUCCESS
    }
}
