//! Differential test for the sharded single-pass multi-policy engine:
//! [`mem_model::replay_many`] must reproduce the sequential
//! [`mem_model::replay_llc`] result — every stat and the cycle estimate,
//! to the bit — for every policy in the verification roster, on every
//! oracle workload. Set-local policies exercise the shard-and-merge
//! path; global-state policies (duels, RNG, samplers) exercise the
//! documented sequential fallback, so the whole roster goes through the
//! batch API exactly as the figure harness uses it.

use mem_model::cpi::WindowPerfModel;
use mem_model::{replay_llc, replay_many, replay_many_sharded};
use sim_core::{PolicyFactory, ShardedStream};
use sim_verify::diff::{oracle_geometry, roster};
use sim_verify::workloads::workloads;

#[test]
fn sharded_replay_matches_sequential_for_full_roster() {
    let geom = oracle_geometry();
    let perf = WindowPerfModel::default();
    let pairs = roster("all");
    assert!(
        pairs.len() >= 17,
        "expected the full roster, got {} pairs",
        pairs.len()
    );
    let factories: Vec<&PolicyFactory> = pairs.iter().map(|p| &p.optimized).collect();
    for (name, stream) in workloads(0xc0ffee, 40_000) {
        let warmup = mem_model::llc::default_warmup(stream.len());
        let sequential: Vec<_> = pairs
            .iter()
            .map(|p| replay_llc(&stream, geom, (p.optimized)(&geom), warmup, &perf))
            .collect();

        // The convenience entry picks its shard count from the host's
        // worker budget (possibly 1); pinned routings below force the
        // shard-and-merge path on any host.
        let batched = replay_many(&stream, geom, &factories, warmup, &perf);
        assert_eq!(batched.len(), pairs.len());
        for ((pair, want), got) in pairs.iter().zip(&sequential).zip(&batched) {
            assert_eq!(
                got, want,
                "sharded replay diverged for policy {} on workload {name}",
                pair.name
            );
        }
        for shards in [4usize, 32] {
            let sharded = ShardedStream::build(&stream, &geom, warmup, shards);
            let batched = replay_many_sharded(&stream, &sharded, &factories, &perf);
            for ((pair, want), got) in pairs.iter().zip(&sequential).zip(&batched) {
                assert_eq!(
                    got, want,
                    "{shards}-shard replay diverged for policy {} on workload {name}",
                    pair.name
                );
            }
        }
    }
}
