//! Full-roster differential run at test-friendly scale.
//!
//! CI additionally runs the `sim-verify` binary at 500k accesses per
//! workload; this test keeps a smaller version of the same sweep inside
//! `cargo test` so a divergence cannot land unnoticed between CI changes.

use sim_verify::diff::{diff_replay, oracle_geometry, roster};
use sim_verify::workloads::workloads;

#[test]
fn full_roster_agrees_on_all_workloads() {
    let geom = oracle_geometry();
    let streams = workloads(0xd1ff_5eed, 30_000);
    let mut failures = Vec::new();
    for pair in roster("all") {
        for (wname, stream) in &streams {
            if let Err(d) = diff_replay(&pair, geom, stream) {
                failures.push(format!("{wname}: {d}"));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "differential divergences:\n{}",
        failures.join("\n")
    );
}

#[test]
fn roster_covers_every_shipped_policy_family() {
    let names: Vec<&str> = roster("all").iter().map(|p| p.name).collect();
    for required in [
        "lru",
        "fifo",
        "plru",
        "srrip",
        "pdp",
        "gippr",
        "giplr",
        "random",
        "brrip",
        "drrip",
        "dip",
        "ship",
        "sdbp",
        "rrip-ipv",
        "dgippr2",
        "dgippr4",
        "dgippr4-bypass",
    ] {
        assert!(names.contains(&required), "roster is missing {required}");
    }
}
