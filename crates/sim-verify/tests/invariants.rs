//! Metamorphic invariants over the replacement state machines, checked
//! with randomized inputs (vendored proptest subset).
//!
//! These complement the differential driver: instead of comparing two whole
//! cache models, each property pins down one algebraic fact the paper's
//! mechanisms rely on — position round-trips, permutation preservation,
//! duel monotonicity, and PDP's protection contract.

use gippr::{PlruTree, RecencyStack};
use proptest::prelude::*;
use sim_core::dueling::DuelController;
use sim_core::{AccessContext, CacheGeometry, SetRole};
use sim_verify::{RefPlru, RefRecencyStack};

/// Strategy: a supported power-of-two associativity.
fn pow2_ways() -> impl Strategy<Value = usize> {
    prop_oneof![Just(2usize), Just(4), Just(8), Just(16), Just(32), Just(64),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Paper Figures 7/9: writing a block's pseudo recency position and
    /// reading it back agrees, for every associativity — after arbitrary
    /// earlier churn, and identically in the packed tree and the naive one.
    #[test]
    fn plru_position_round_trips(
        ways in pow2_ways(),
        ops in proptest::collection::vec((0usize..64, 0usize..64), 1..40),
    ) {
        let mut tree = PlruTree::new(ways);
        let mut naive = RefPlru::new(ways);
        for (w, p) in ops {
            let (w, p) = (w % ways, p % ways);
            tree.set_position(w, p);
            naive.set_position(w, p);
            prop_assert_eq!(tree.position(w), p);
            prop_assert_eq!(naive.position(w), p);
            // The two representations agree on every way, and on the victim.
            prop_assert_eq!(tree.positions(), naive.positions());
            prop_assert_eq!(tree.victim(), naive.victim());
            // Positions always form a permutation of 0..ways.
            let mut ps = tree.positions();
            ps.sort_unstable();
            prop_assert_eq!(ps, (0..ways).collect::<Vec<_>>());
        }
    }

    /// Section 2.3: generalized recency-stack moves preserve the
    /// permutation property under arbitrary move sequences, and the
    /// position-array implementation matches the ordered-list one.
    #[test]
    fn recency_stack_moves_preserve_permutation(
        ways in prop_oneof![Just(2usize), Just(3), Just(5), Just(16), Just(64)],
        moves in proptest::collection::vec((0usize..64, 0usize..64), 1..60),
    ) {
        let mut stack = RecencyStack::new(ways);
        let mut naive = RefRecencyStack::new(ways);
        for (w, t) in moves {
            let (w, t) = (w % ways, t % ways);
            stack.move_to(w, t);
            naive.move_to(w, t);
            prop_assert!(stack.is_permutation());
            let stack_positions: Vec<usize> =
                stack.positions().iter().map(|&p| usize::from(p)).collect();
            prop_assert_eq!(stack_positions, naive.positions());
            prop_assert_eq!(stack.lru_way(), naive.lru_way());
        }
    }

    /// A one-sided miss stream moves the duel toward the other policy and
    /// never back: once the winner flips away from the losing side, it
    /// stays flipped for as long as only that side misses.
    #[test]
    fn duel_winner_is_monotone_under_one_sided_misses(
        loser in prop_oneof![Just(0usize), Just(1)],
        bits in 2u32..12,
        misses in 1usize..200,
    ) {
        let sets = 256;
        let mut duel = DuelController::two(sets, 16, bits).expect("leaders fit");
        let leader_sets: Vec<usize> = (0..sets)
            .filter(|&s| duel.leader_map().role(s) == SetRole::Leader(loser))
            .collect();
        prop_assert!(!leader_sets.is_empty());
        let settled = 1 - loser;
        let mut seen_settled = false;
        for i in 0..misses {
            duel.record_miss(leader_sets[i % leader_sets.len()]);
            if duel.winner() == settled {
                seen_settled = true;
            } else {
                prop_assert!(
                    !seen_settled,
                    "winner flipped back to the losing side after settling"
                );
            }
        }
        prop_assert!(seen_settled, "enough one-sided misses must flip the duel");
    }

    /// PDP's contract: the victim is never a protected line while an
    /// unprotected line exists in the set.
    #[test]
    fn pdp_victim_never_evicts_protected_over_unprotected(
        events in proptest::collection::vec((0usize..3, 0usize..16, 0u64..4096), 1..300),
    ) {
        let geom = CacheGeometry::from_sets(64, 16, 64).unwrap();
        let mut pdp = baselines::PdpPolicy::new(&geom);
        let set = 0usize;
        for (kind, way, block) in events {
            let ctx = AccessContext { pc: 0, addr: block << 6, is_write: false };
            match kind {
                0 => sim_core::ReplacementPolicy::on_fill(&mut pdp, set, way, &ctx),
                1 => sim_core::ReplacementPolicy::on_hit(&mut pdp, set, way, &ctx),
                _ => sim_core::ReplacementPolicy::on_miss(&mut pdp, set, &ctx),
            }
            let any_unprotected = (0..16).any(|w| !pdp.is_protected(set, w));
            if any_unprotected {
                let v = sim_core::ReplacementPolicy::victim(
                    &mut pdp,
                    set,
                    &AccessContext::blank(),
                );
                prop_assert!(
                    !pdp.is_protected(set, v),
                    "victim way {v} is protected while an unprotected line exists"
                );
            }
        }
    }
}

/// The duel settles at exactly the saturation boundary: with a `b`-bit
/// PSEL, at most `2^(b-1) + 1` one-sided misses are needed to flip and
/// hold the winner (deterministic companion to the monotonicity property).
#[test]
fn duel_settles_within_counter_range() {
    let sets = 256;
    for bits in [2u32, 5, 11] {
        let mut duel = DuelController::two(sets, 16, bits).expect("leaders fit");
        let side1_leaders: Vec<usize> = (0..sets)
            .filter(|&s| duel.leader_map().role(s) == SetRole::Leader(1))
            .collect();
        let budget = (1usize << (bits - 1)) + 1;
        for i in 0..budget {
            duel.record_miss(side1_leaders[i % side1_leaders.len()]);
        }
        assert_eq!(duel.winner(), 0, "{bits}-bit duel settled on policy 0");
    }
}
