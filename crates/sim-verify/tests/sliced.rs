//! Differential test for the bit-sliced kernel engine:
//! [`mem_model::replay_llc_sliced`] must reproduce the monomorphized
//! [`mem_model::replay_llc_mono`] result — every statistics field and the
//! cycle estimate, to the bit — for every roster policy that describes
//! itself as a `SliceKernel`, on every oracle workload
//! (hot_cold / scan_thrash / pointer_chase).
//!
//! The sliced engine interprets packed state (4 PLRU trees per `u64`,
//! SWAR nibble stacks and RRPV arrays), so this is the roster-wide proof
//! that the packing is exact, not approximate.

use mem_model::cpi::WindowPerfModel;
use mem_model::{replay_llc, replay_llc_sliced};
use sim_verify::diff::{oracle_geometry, roster};
use sim_verify::workloads::workloads;

/// 1 M accesses per workload in release (the documented verification
/// depth); trimmed in debug so plain `cargo test` stays fast while still
/// covering warm-up, cold fills, and steady state.
const ACCESSES: usize = if cfg!(debug_assertions) {
    150_000
} else {
    1_000_000
};

#[test]
fn sliced_replay_matches_mono_for_qualifying_roster() {
    let geom = oracle_geometry();
    let perf = WindowPerfModel::default();
    let qualifying: Vec<_> = roster("all")
        .into_iter()
        .filter(|p| (p.optimized)(&geom).slice_kernel().is_some())
        .collect();
    // LRU, PseudoLRU, SRRIP, RRIP-IPV, GIPPR/GIPLR family entries.
    assert!(
        qualifying.len() >= 5,
        "expected the set-local kernel roster, got {} pairs",
        qualifying.len()
    );

    for (wname, stream) in workloads(0x51ced, ACCESSES) {
        let warmup = mem_model::llc::default_warmup(stream.len());
        for pair in &qualifying {
            let kernel = (pair.optimized)(&geom)
                .slice_kernel()
                .expect("filtered on Some");
            let sliced = replay_llc_sliced(&stream, geom, &kernel, warmup, &perf)
                .expect("oracle geometry is 16-way — every kernel supports it");
            let mono = replay_llc(&stream, geom, (pair.optimized)(&geom), warmup, &perf);
            assert_eq!(
                sliced, mono,
                "sliced engine diverged from mono for policy {} on workload {wname}",
                pair.name
            );
        }
    }
}

#[test]
fn non_qualifying_policies_have_no_kernel() {
    // Policies with global mutable state must not claim a kernel: the
    // sliced engine never calls back into the policy object, so a duel or
    // RNG policy advertising one would silently change semantics.
    let geom = oracle_geometry();
    for pair in roster("all") {
        let p = (pair.optimized)(&geom);
        if p.shard_affinity() == sim_core::ShardAffinity::Global {
            assert!(
                p.slice_kernel().is_none(),
                "global-state policy {} must not advertise a slice kernel",
                pair.name
            );
        }
    }
}
