//! Exhaustive valid-mask fill test.
//!
//! `SetAssocCache` promises invalid-line-first filling: as long as a set
//! has an invalid way, a miss fills the *lowest-indexed* invalid way and
//! never consults the policy's victim. The `sim-lint` model checker proves
//! the matching invariant on the policy side (the BFS only ever sees
//! prefix valid-masks); this test proves the cache side by constructing
//! *every* one of the `2^ways` valid masks — including the non-prefix ones
//! `invalidate` can punch — and checking where the next miss lands.

#![forbid(unsafe_code)]

use sim_core::policy::ReplacementPolicy;
use sim_core::{AccessContext, CacheGeometry, SetAssocCache};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Records every fill way and victimizes a fixed way, so the test can see
/// exactly which way the cache chose and whether the policy was consulted.
struct RecordingPolicy {
    fills: Arc<AtomicUsize>,
    victims: Arc<AtomicUsize>,
    victim_way: usize,
    ways: usize,
}

impl ReplacementPolicy for RecordingPolicy {
    fn name(&self) -> &str {
        "recording-fixture"
    }

    fn victim(&mut self, _set: usize, _ctx: &AccessContext) -> usize {
        self.victims.fetch_add(1, Ordering::Relaxed);
        self.victim_way
    }

    fn on_hit(&mut self, _set: usize, _way: usize, _ctx: &AccessContext) {}

    fn on_fill(&mut self, _set: usize, way: usize, _ctx: &AccessContext) {
        self.fills.store(way, Ordering::Relaxed);
    }

    fn bits_per_set(&self) -> u64 {
        self.ways as u64
    }
}

fn one_set_cache(ways: usize, fills: Arc<AtomicUsize>, victims: Arc<AtomicUsize>) -> SetAssocCache {
    let line = 64u64;
    let geom = CacheGeometry::new(ways as u64 * line, ways, line).unwrap();
    assert_eq!(geom.sets(), 1, "test wants a single set");
    SetAssocCache::new(
        geom,
        Box::new(RecordingPolicy {
            fills,
            victims,
            victim_way: ways - 1,
            ways,
        }),
    )
}

#[test]
fn every_valid_mask_fills_the_lowest_invalid_way() {
    for ways in [2usize, 4, 8, 16] {
        for mask in 0..(1u64 << ways) {
            let fills = Arc::new(AtomicUsize::new(usize::MAX));
            let victims = Arc::new(AtomicUsize::new(0));
            let mut cache = one_set_cache(ways, Arc::clone(&fills), Arc::clone(&victims));
            let ctx = AccessContext::blank();

            // Sequential cold fills land block `b` in way `b` (each fill
            // takes the lowest invalid way of a prefix-filled set)...
            for b in 0..ways as u64 {
                cache.access_block(b, &ctx);
                assert_eq!(fills.load(Ordering::Relaxed), b as usize);
            }
            // ...so invalidating block `w` punches a hole at exactly way
            // `w`, reaching the arbitrary (non-prefix) target mask.
            for w in 0..ways as u64 {
                if mask >> w & 1 == 0 {
                    assert_eq!(cache.invalidate(w), Some(false));
                }
            }
            assert_eq!(cache.occupancy(0), mask.count_ones() as usize);

            let victims_before = victims.load(Ordering::Relaxed);
            cache.access_block(ways as u64, &ctx); // fresh tag: a miss
            let filled = fills.load(Ordering::Relaxed);

            if mask == (1u64 << ways) - 1 {
                // Full set: the policy's victim (fixed: the last way) is
                // the only legal fill target.
                assert_eq!(filled, ways - 1, "full set must fill the victim way");
                assert_eq!(
                    victims.load(Ordering::Relaxed),
                    victims_before + 1,
                    "full set must consult the policy"
                );
            } else {
                assert_eq!(
                    filled,
                    (!mask).trailing_zeros() as usize,
                    "mask {mask:#b} at {ways} ways must fill the lowest invalid way"
                );
                assert_eq!(
                    victims.load(Ordering::Relaxed),
                    victims_before,
                    "a set with invalid ways must never consult the policy"
                );
            }
        }
    }
}
