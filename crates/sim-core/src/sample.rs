//! Deterministic set-sampled sub-streams for cheap fitness fidelities.
//!
//! The GA's full-replay fitness pays for every set in the cache on every
//! candidate. For set-local policies (GIPPR/GIPLR substrates — proven
//! per-set independent by the shard-affinity model check), replaying only
//! a subset of sets is *exact* for those sets: the policy state of set `s`
//! depends only on the accesses routed to set `s`. A [`SampledStream`]
//! keeps every access whose set index satisfies
//! `set % every == offset` — a pure function of the stream and the cache
//! geometry, so the selected subset is identical no matter how many shards
//! the full stream is routed into, how many worker threads evaluate the
//! population, or whether the run was resumed from a checkpoint.
//!
//! The sampled warmup is the number of *kept* accesses that fall inside
//! the full stream's warmup prefix, so the warm/measure boundary cuts the
//! sub-stream at the same point in program time as the full replay.

use crate::access::Access;
use crate::geometry::CacheGeometry;

/// A deterministic set-sampled sub-stream of a captured LLC stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledStream {
    stream: Vec<Access>,
    warmup: usize,
    every: usize,
    offset: usize,
    sampled_sets: usize,
    total_sets: usize,
}

impl SampledStream {
    /// Filters `stream` down to the sets selected by
    /// `set % every == offset` under `geom`'s set mapping. `warmup` is the
    /// full stream's warmup prefix length (in accesses).
    ///
    /// # Panics
    ///
    /// Panics if `every == 0` or `offset >= every`.
    pub fn build(
        stream: &[Access],
        geom: &CacheGeometry,
        warmup: usize,
        every: usize,
        offset: usize,
    ) -> Self {
        assert!(every > 0, "sample period must be positive");
        assert!(offset < every, "sample offset {offset} >= period {every}");
        let mut kept = Vec::with_capacity(stream.len() / every + 1);
        let mut kept_warmup = 0;
        for (i, acc) in stream.iter().enumerate() {
            if geom.set_of(acc.addr) % every == offset {
                if i < warmup {
                    kept_warmup += 1;
                }
                kept.push(*acc);
            }
        }
        let total_sets = geom.sets();
        let sampled_sets = (0..total_sets).filter(|s| s % every == offset).count();
        SampledStream {
            stream: kept,
            warmup: kept_warmup,
            every,
            offset,
            sampled_sets,
            total_sets,
        }
    }

    /// The filtered accesses, in original stream order.
    pub fn stream(&self) -> &[Access] {
        &self.stream
    }

    /// Warmup prefix length of the filtered stream.
    pub fn warmup(&self) -> usize {
        self.warmup
    }

    /// The sampling period: one in `every` sets is kept.
    pub fn every(&self) -> usize {
        self.every
    }

    /// The sampled residue class (`set % every == offset`).
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of distinct sets selected by the filter.
    pub fn sampled_sets(&self) -> usize {
        self.sampled_sets
    }

    /// Fraction of the geometry's sets that the sample covers.
    pub fn fraction(&self) -> f64 {
        self.sampled_sets as f64 / self.total_sets.max(1) as f64
    }

    /// Number of kept accesses.
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// Whether the filter kept no accesses at all.
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sets(64, 4, 64).unwrap()
    }

    fn stream() -> Vec<Access> {
        // A deterministic mix touching every set with varying strides.
        let mut out = Vec::new();
        let mut addr = 0x1000u64;
        for i in 0..4096u64 {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(i) % (1 << 20);
            out.push(Access::read(addr, i));
        }
        out
    }

    #[test]
    fn keeps_exactly_the_selected_residue_class() {
        let g = geom();
        let s = stream();
        let sampled = SampledStream::build(&s, &g, 100, 4, 1);
        assert!(!sampled.is_empty());
        for acc in sampled.stream() {
            assert_eq!(g.set_of(acc.addr) % 4, 1);
        }
        assert_eq!(sampled.sampled_sets(), 16);
        assert_eq!(sampled.fraction(), 0.25);
        // Every kept access of the right class is present, in order.
        let expect: Vec<Access> = s
            .iter()
            .filter(|a| g.set_of(a.addr) % 4 == 1)
            .copied()
            .collect();
        assert_eq!(sampled.stream(), expect.as_slice());
    }

    #[test]
    fn warmup_counts_kept_accesses_in_the_full_warmup_prefix() {
        let g = geom();
        let s = stream();
        let sampled = SampledStream::build(&s, &g, 1000, 4, 0);
        let expect = s[..1000]
            .iter()
            .filter(|a| g.set_of(a.addr) % 4 == 0)
            .count();
        assert_eq!(sampled.warmup(), expect);
        assert!(sampled.warmup() <= sampled.len());
    }

    #[test]
    fn build_is_deterministic() {
        let g = geom();
        let s = stream();
        let a = SampledStream::build(&s, &g, 500, 8, 3);
        let b = SampledStream::build(&s, &g, 500, 8, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn residue_classes_partition_the_stream() {
        let g = geom();
        let s = stream();
        let total: usize = (0..4)
            .map(|off| SampledStream::build(&s, &g, 0, 4, off).len())
            .sum();
        assert_eq!(total, s.len());
    }

    #[test]
    #[should_panic(expected = "offset")]
    fn rejects_offset_out_of_range() {
        let _ = SampledStream::build(&stream(), &geom(), 0, 4, 4);
    }
}
