//! Explicit SIMD emulation on stable Rust: a fixed 4-lane `u64` vector.
//!
//! The tag scan in [`SetAssocCache`](crate::SetAssocCache) and the
//! bit-sliced replay kernel ([`crate::slice`]) both reduce a set's packed
//! line words to a match mask and a valid mask. Written as a scalar loop
//! the reduction *may* auto-vectorize; written against [`U64x4`] the wide
//! shape is explicit — four loads, four ANDs, four compares, one 4-bit
//! movemask per chunk — and survives compiler and flag changes without
//! depending on the nightly-only `std::simd`. Every operation is plain
//! safe arithmetic, so the module stays `forbid(unsafe_code)` and the
//! backend is free to lower chunks to `pcmpeqq`/`vpcmpeqq` under
//! `-C target-cpu=native`.

#![forbid(unsafe_code)]

/// A 4-lane vector of `u64`, emulated with an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct U64x4(pub [u64; 4]);

impl U64x4 {
    /// Number of lanes.
    pub const LANES: usize = 4;

    /// All four lanes set to `x`.
    #[inline(always)]
    pub fn splat(x: u64) -> Self {
        U64x4([x; 4])
    }

    /// Loads four consecutive words from `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` has fewer than four elements.
    #[inline(always)]
    pub fn load(w: &[u64]) -> Self {
        U64x4([w[0], w[1], w[2], w[3]])
    }

    /// Lane-wise bitwise AND.
    #[inline(always)]
    pub fn and(self, o: Self) -> Self {
        U64x4([
            self.0[0] & o.0[0],
            self.0[1] & o.0[1],
            self.0[2] & o.0[2],
            self.0[3] & o.0[3],
        ])
    }

    /// Lane-wise equality compare reduced to a 4-bit movemask: bit `i` is
    /// set iff lane `i` of `self` equals lane `i` of `o`.
    #[inline(always)]
    pub fn eq_mask(self, o: Self) -> u64 {
        u64::from(self.0[0] == o.0[0])
            | u64::from(self.0[1] == o.0[1]) << 1
            | u64::from(self.0[2] == o.0[2]) << 2
            | u64::from(self.0[3] == o.0[3]) << 3
    }
}

/// One wide pass over a set's packed line words: returns
/// `(match_mask, valid_mask)` with bit `way` set iff that way matches
/// `tag` / holds a valid line. `want` must be `tag | valid_bit` and the
/// masks follow the packing of [`crate::SetAssocCache`]'s lines (tag in
/// the low bits, `valid_bit` and `dirty_bit` flags above it): a line
/// matches iff `word & !dirty_bit == want`.
#[inline(always)]
pub fn scan_masks(words: &[u64], want: u64, valid_bit: u64, dirty_bit: u64) -> (u64, u64) {
    let mut match_mask = 0u64;
    let mut valid_mask = 0u64;
    let not_dirty = U64x4::splat(!dirty_bit);
    let want_v = U64x4::splat(want);
    let valid_v = U64x4::splat(valid_bit);
    let mut chunks = words.chunks_exact(U64x4::LANES);
    let mut way = 0u32;
    for c in chunks.by_ref() {
        let w = U64x4::load(c);
        match_mask |= w.and(not_dirty).eq_mask(want_v) << way;
        valid_mask |= w.and(valid_v).eq_mask(valid_v) << way;
        way += U64x4::LANES as u32;
    }
    for &word in chunks.remainder() {
        match_mask |= u64::from(word & !dirty_bit == want) << way;
        valid_mask |= u64::from(word & valid_bit != 0) << way;
        way += 1;
    }
    (match_mask, valid_mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALID: u64 = 1 << 62;
    const DIRTY: u64 = 1 << 63;

    #[test]
    fn splat_and_eq_mask() {
        let a = U64x4::splat(7);
        let b = U64x4([7, 8, 7, 9]);
        assert_eq!(a.eq_mask(b), 0b0101);
        assert_eq!(a.eq_mask(a), 0b1111);
    }

    #[test]
    fn and_is_lanewise() {
        let a = U64x4([0b1100, 0b1010, u64::MAX, 0]);
        let b = U64x4::splat(0b1001);
        assert_eq!(a.and(b).0, [0b1000, 0b1000, 0b1001, 0]);
    }

    #[test]
    fn scan_matches_scalar_reference_for_all_ways() {
        for ways in [1usize, 2, 3, 4, 5, 7, 8, 12, 15, 16, 32] {
            let words: Vec<u64> = (0..ways as u64)
                .map(|w| match w % 4 {
                    0 => 0,                       // invalid
                    1 => (w / 2) | VALID,         // clean
                    2 => (w / 2) | VALID | DIRTY, // dirty
                    _ => (900 + w) | VALID,       // other tag
                })
                .collect();
            for tag in 0..10u64 {
                let want = tag | VALID;
                let (m, v) = scan_masks(&words, want, VALID, DIRTY);
                let mut rm = 0u64;
                let mut rv = 0u64;
                for (w, &word) in words.iter().enumerate() {
                    rm |= u64::from(word & !DIRTY == want) << w;
                    rv |= u64::from(word & VALID != 0) << w;
                }
                assert_eq!((m, v), (rm, rv), "ways={ways} tag={tag}");
            }
        }
    }

    #[test]
    fn dirty_bit_does_not_defeat_match() {
        let words = [5 | VALID | DIRTY];
        let (m, v) = scan_masks(&words, 5 | VALID, VALID, DIRTY);
        assert_eq!(m, 1);
        assert_eq!(v, 1);
    }
}
