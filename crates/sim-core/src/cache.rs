//! A set-associative cache driving a pluggable replacement policy.

use crate::access::AccessContext;
use crate::geometry::CacheGeometry;
use crate::policy::ReplacementPolicy;
use crate::stats::CacheStats;

/// One cache line packed into a `u64`: the tag in the low 62 bits, with
/// valid at bit 62 and dirty at bit 63. Packing keeps a 16-way set's
/// metadata inside two cache lines (16 bytes/line with separate flag
/// bytes needed four), which roughly halves the memory traffic of the
/// tag scan — the single hottest loop in the simulator. Tags are block
/// addresses shifted right by `log2(sets)`, so with 64-byte lines even a
/// full 64-bit byte address leaves the top two bits free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Line(u64);

pub(crate) const LINE_VALID: u64 = 1 << 62;
pub(crate) const LINE_DIRTY: u64 = 1 << 63;
const LINE_TAG_MASK: u64 = LINE_VALID - 1;

/// One wide pass over a set: `(match_mask, valid_mask)` with bit `way`
/// set iff that way matches `tag` / is valid.
///
/// This is the branchless OR-reduction form on purpose: with
/// `-C target-cpu=native` LLVM lowers it to wide loads + wide packed
/// compares + movemask — the same shape as the explicit
/// [`U64x4`](crate::simd::U64x4) scan the bit-sliced kernel uses
/// (`crate::simd::scan_masks`), which the tests below hold
/// bit-equivalent. An A/B on the dev box measured the hand-chunked
/// `U64x4` emulation 15–25% *slower* here (the runtime set length and
/// `Line` wrapper indexing defeat the unroller), so the explicit wide
/// code lives where it wins — the `slice` step loop over raw `u64`
/// words with a const-dispatched way count — and the mono/dyn engines
/// keep the autovectorized reduction.
#[inline(always)]
fn scan_set(lines: &[Line], tag: u64) -> (u64, u64) {
    let mut match_mask = 0u64;
    let mut valid_mask = 0u64;
    for (way, &line) in lines.iter().enumerate() {
        match_mask |= u64::from(line.matches(tag)) << way;
        valid_mask |= u64::from(line.valid()) << way;
    }
    (match_mask, valid_mask)
}

impl Line {
    #[inline]
    fn new(tag: u64, dirty: bool) -> Self {
        debug_assert_eq!(tag & !LINE_TAG_MASK, 0, "tag overflows packed line");
        Line(tag | LINE_VALID | if dirty { LINE_DIRTY } else { 0 })
    }

    #[inline]
    fn valid(self) -> bool {
        self.0 & LINE_VALID != 0
    }

    #[inline]
    fn dirty(self) -> bool {
        self.0 & LINE_DIRTY != 0
    }

    #[inline]
    fn tag(self) -> u64 {
        self.0 & LINE_TAG_MASK
    }

    /// True iff valid with this tag — one AND and one compare, which lets
    /// the set scan auto-vectorize.
    #[inline]
    fn matches(self, tag: u64) -> bool {
        self.0 & !LINE_DIRTY == tag | LINE_VALID
    }

    #[inline]
    fn set_dirty(&mut self, dirty: bool) {
        if dirty {
            self.0 |= LINE_DIRTY;
        }
    }
}

/// A block displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Block (line) address of the displaced block.
    pub block_addr: u64,
    /// Whether the block was dirty and must be written downstream.
    pub dirty: bool,
}

/// The result of one cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the block was resident.
    pub hit: bool,
    /// The block displaced by the fill, if any.
    pub evicted: Option<Evicted>,
    /// Whether the incoming block bypassed the cache entirely.
    pub bypassed: bool,
}

/// A set-associative cache with tags, per-line dirty bits, and statistics.
///
/// The cache stores *block addresses*; callers convert byte addresses via
/// [`CacheGeometry::block_of`] or use [`SetAssocCache::access`].
///
/// The policy type parameter defaults to `Box<dyn ReplacementPolicy>`, so
/// `SetAssocCache` written without parameters is the dynamically-dispatched
/// cache used by factory-driven sweeps. Hot paths (the GA fitness loop)
/// instead instantiate [`SetAssocCache::with_policy`] at a concrete policy
/// type, monomorphizing every callback into the replay loop.
///
/// # Example
///
/// ```
/// use sim_core::{Access, CacheGeometry, SetAssocCache};
/// use sim_core::policy::fifo_like_fixture::AlwaysWayZero;
///
/// # fn main() -> Result<(), sim_core::GeometryError> {
/// let geom = CacheGeometry::new(4096, 4, 64)?;
/// let mut cache = SetAssocCache::new(geom, Box::new(AlwaysWayZero::new(&geom)));
/// let a = Access::read(0x1000, 0);
/// assert!(!cache.access(&a).hit); // cold miss
/// assert!(cache.access(&a).hit); // now resident
///
/// // Monomorphized equivalent — no virtual dispatch in the access path:
/// let mut fast = SetAssocCache::with_policy(geom, AlwaysWayZero::new(&geom));
/// assert!(!fast.access(&a).hit);
/// # Ok(())
/// # }
/// ```
pub struct SetAssocCache<P: ReplacementPolicy = Box<dyn ReplacementPolicy>> {
    geom: CacheGeometry,
    lines: Vec<Line>,
    policy: P,
    stats: CacheStats,
}

impl<P: ReplacementPolicy> std::fmt::Debug for SetAssocCache<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("geom", &self.geom)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl SetAssocCache {
    /// Creates an empty cache using a boxed `policy` for replacement
    /// decisions (the dynamic-dispatch compatibility entry point; see
    /// [`SetAssocCache::with_policy`] for the monomorphized one).
    pub fn new(geom: CacheGeometry, policy: Box<dyn ReplacementPolicy>) -> Self {
        SetAssocCache::with_policy(geom, policy)
    }
}

impl<P: ReplacementPolicy> SetAssocCache<P> {
    /// Creates an empty cache driving `policy` with static dispatch.
    pub fn with_policy(geom: CacheGeometry, policy: P) -> Self {
        SetAssocCache {
            geom,
            lines: vec![Line::default(); geom.sets() * geom.ways()],
            policy,
            stats: CacheStats::new(),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. after a warm-up phase) without touching
    /// contents or policy state.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    /// The policy driving this cache.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the policy (e.g. to inspect dueling winners).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Looks up a byte-addressed access, filling on miss.
    #[inline]
    pub fn access(&mut self, access: &crate::access::Access) -> AccessOutcome {
        self.access_block(self.geom.block_of(access.addr), &access.context())
    }

    /// [`SetAssocCache::access`] for callers that only need the hit/miss
    /// outcome (the replay loop): identical state transitions and
    /// statistics, but skips assembling the [`Evicted`] record — on a
    /// replayed LLC miss nobody consumes the displaced block's address,
    /// and reconstructing it costs a shift/or per miss in the hottest
    /// loop of the simulator.
    #[inline]
    pub fn access_fast(&mut self, access: &crate::access::Access) -> bool {
        let block_addr = self.geom.block_of(access.addr);
        let ctx = access.context();
        let set = self.geom.set_of_block(block_addr);
        let tag = self.geom.tag_of_block(block_addr);
        self.access_tagged(set, tag, &ctx)
    }

    /// [`SetAssocCache::access_fast`] with the set/tag arithmetic already
    /// done. The sharded replay engine pre-routes each access to its set
    /// once per *stream* and then drives every policy from the packed
    /// buckets, so the hot loop must accept pre-split coordinates instead
    /// of re-deriving them per policy.
    #[inline]
    pub fn access_tagged(&mut self, set: usize, tag: u64, ctx: &AccessContext) -> bool {
        let ways = self.geom.ways();
        let base = set * ways;
        self.stats.accesses += 1;

        let (match_mask, valid_mask) = scan_set(&self.lines[base..base + ways], tag);

        if match_mask != 0 {
            let way = match_mask.trailing_zeros() as usize;
            self.lines[base + way].set_dirty(ctx.is_write);
            self.stats.hits += 1;
            self.policy.on_hit(set, way, ctx);
            return true;
        }

        self.stats.misses += 1;
        self.policy.on_miss(set, ctx);
        if self.policy.should_bypass(set, ctx) {
            self.stats.bypasses += 1;
            return false;
        }

        let first_invalid = (!valid_mask).trailing_zeros() as usize;
        let fill_way = if first_invalid < ways {
            first_invalid
        } else {
            let w = self.policy.victim(set, ctx);
            assert!(
                w < ways,
                "policy {} returned way {w} >= {ways}",
                self.policy.name()
            );
            self.stats.evictions += 1;
            if self.lines[base + w].dirty() {
                self.stats.writebacks += 1;
            }
            self.policy.on_evict(set, w);
            w
        };
        self.lines[base + fill_way] = Line::new(tag, ctx.is_write);
        self.policy.on_fill(set, fill_way, ctx);
        false
    }

    /// Looks up `block_addr`, filling on miss. `ctx` is forwarded to the
    /// policy callbacks.
    #[inline]
    pub fn access_block(&mut self, block_addr: u64, ctx: &AccessContext) -> AccessOutcome {
        let set = self.geom.set_of_block(block_addr);
        let tag = self.geom.tag_of_block(block_addr);
        let ways = self.geom.ways();
        let base = set * ways;
        self.stats.accesses += 1;

        // One branchless pass over the set builds a match mask and a valid
        // mask (wide compares, no early exit); `trailing_zeros` then yields
        // the hit way and the first invalid way. Tags are unique within a
        // set, so at most one bit matches.
        let (match_mask, valid_mask) = scan_set(&self.lines[base..base + ways], tag);

        if match_mask != 0 {
            let way = match_mask.trailing_zeros() as usize;
            self.lines[base + way].set_dirty(ctx.is_write);
            self.stats.hits += 1;
            self.policy.on_hit(set, way, ctx);
            return AccessOutcome {
                hit: true,
                evicted: None,
                bypassed: false,
            };
        }
        let invalid = match (!valid_mask).trailing_zeros() as usize {
            w if w < ways => w,
            _ => usize::MAX,
        };

        // Miss path.
        self.stats.misses += 1;
        self.policy.on_miss(set, ctx);
        if self.policy.should_bypass(set, ctx) {
            self.stats.bypasses += 1;
            return AccessOutcome {
                hit: false,
                evicted: None,
                bypassed: true,
            };
        }

        // Prefer an invalid way; otherwise ask the policy for a victim.
        let (fill_way, evicted) = match (invalid != usize::MAX).then_some(invalid) {
            Some(w) => (w, None),
            None => {
                let w = self.policy.victim(set, ctx);
                assert!(
                    w < ways,
                    "policy {} returned way {w} >= {ways}",
                    self.policy.name()
                );
                let old = self.lines[base + w];
                self.stats.evictions += 1;
                if old.dirty() {
                    self.stats.writebacks += 1;
                }
                self.policy.on_evict(set, w);
                (
                    w,
                    Some(Evicted {
                        block_addr: self.geom.block_from_parts(set, old.tag()),
                        dirty: old.dirty(),
                    }),
                )
            }
        };

        self.lines[base + fill_way] = Line::new(tag, ctx.is_write);
        self.policy.on_fill(set, fill_way, ctx);
        AccessOutcome {
            hit: false,
            evicted,
            bypassed: false,
        }
    }

    /// Returns whether `block_addr` is currently resident (no side effects).
    pub fn probe(&self, block_addr: u64) -> bool {
        let set = self.geom.set_of_block(block_addr);
        let tag = self.geom.tag_of_block(block_addr);
        let base = set * self.geom.ways();
        (0..self.geom.ways()).any(|w| self.lines[base + w].matches(tag))
    }

    /// Invalidates `block_addr` if resident, returning whether it was dirty.
    pub fn invalidate(&mut self, block_addr: u64) -> Option<bool> {
        let set = self.geom.set_of_block(block_addr);
        let tag = self.geom.tag_of_block(block_addr);
        let base = set * self.geom.ways();
        for w in 0..self.geom.ways() {
            let l = &mut self.lines[base + w];
            if l.matches(tag) {
                let dirty = l.dirty();
                *l = Line::default();
                self.policy.on_evict(set, w);
                return Some(dirty);
            }
        }
        None
    }

    /// Number of valid lines in `set` (test/diagnostic aid).
    pub fn occupancy(&self, set: usize) -> usize {
        let base = set * self.geom.ways();
        (0..self.geom.ways())
            .filter(|&w| self.lines[base + w].valid())
            .count()
    }

    /// Block addresses currently resident in `set`, in way order.
    pub fn resident_blocks(&self, set: usize) -> Vec<u64> {
        let base = set * self.geom.ways();
        (0..self.geom.ways())
            .filter_map(|w| {
                let l = self.lines[base + w];
                l.valid().then(|| self.geom.block_from_parts(set, l.tag()))
            })
            .collect()
    }

    /// Total replacement-metadata bits (per-set plus global) for this cache.
    pub fn replacement_bits(&self) -> u64 {
        self.policy.bits_per_set() * self.geom.sets() as u64 + self.policy.global_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;
    use crate::policy::fifo_like_fixture::AlwaysWayZero;

    /// The mono engine's autovectorized reduction and the sliced kernel's
    /// explicit `U64x4` scan are the same function: identical masks for
    /// every mix of valid/dirty/matching lines at every associativity the
    /// engines support (including tails the wide path handles scalar-ly).
    #[test]
    fn scan_set_matches_simd_scan_masks() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for ways in [2usize, 3, 4, 7, 8, 16] {
            for _ in 0..200 {
                let mut lines = Vec::with_capacity(ways);
                let mut words = Vec::with_capacity(ways);
                let tag = {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state & LINE_TAG_MASK & 0xff
                };
                for _ in 0..ways {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let word = match state % 4 {
                        0 => 0,                             // invalid
                        1 => tag | LINE_VALID,              // clean match
                        2 => tag | LINE_VALID | LINE_DIRTY, // dirty match
                        _ => (state & 0xff) | LINE_VALID,   // other tag
                    };
                    lines.push(Line(word));
                    words.push(word);
                }
                let (m, v) = scan_set(&lines, tag);
                let (sm, sv) =
                    crate::simd::scan_masks(&words, tag | LINE_VALID, LINE_VALID, LINE_DIRTY);
                assert_eq!((m, v), (sm, sv), "ways {ways}, tag {tag:#x}");
            }
        }
    }

    fn small_cache() -> SetAssocCache {
        let geom = CacheGeometry::new(1024, 4, 64).unwrap(); // 4 sets x 4 ways
        SetAssocCache::new(geom, Box::new(AlwaysWayZero::new(&geom)))
    }

    fn blk(set: usize, tag: u64) -> u64 {
        (tag << 2) | set as u64 // 4 sets
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache();
        let ctx = AccessContext::blank();
        assert!(!c.access_block(blk(0, 1), &ctx).hit);
        assert!(c.access_block(blk(0, 1), &ctx).hit);
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn fills_invalid_ways_before_evicting() {
        let mut c = small_cache();
        let ctx = AccessContext::blank();
        for tag in 0..4 {
            let out = c.access_block(blk(1, tag), &ctx);
            assert!(
                out.evicted.is_none(),
                "no eviction while set has invalid ways"
            );
        }
        assert_eq!(c.occupancy(1), 4);
        let out = c.access_block(blk(1, 99), &ctx);
        assert_eq!(
            out.evicted,
            Some(Evicted {
                block_addr: blk(1, 0),
                dirty: false
            })
        );
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small_cache();
        let wctx = AccessContext {
            is_write: true,
            ..AccessContext::blank()
        };
        let rctx = AccessContext::blank();
        c.access_block(blk(2, 0), &wctx); // dirty fill into way 0
        for tag in 1..4 {
            c.access_block(blk(2, tag), &rctx);
        }
        let out = c.access_block(blk(2, 50), &rctx); // evicts way 0 (dirty)
        assert!(out.evicted.unwrap().dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small_cache();
        let rctx = AccessContext::blank();
        let wctx = AccessContext {
            is_write: true,
            ..AccessContext::blank()
        };
        c.access_block(blk(3, 7), &rctx); // clean fill
        c.access_block(blk(3, 7), &wctx); // write hit dirties it
        for tag in 0..3 {
            c.access_block(blk(3, tag), &rctx);
        }
        let out = c.access_block(blk(3, 40), &rctx);
        assert!(out.evicted.unwrap().dirty);
    }

    #[test]
    fn probe_and_invalidate() {
        let mut c = small_cache();
        let ctx = AccessContext::blank();
        c.access_block(blk(0, 5), &ctx);
        assert!(c.probe(blk(0, 5)));
        assert!(!c.probe(blk(0, 6)));
        assert_eq!(c.invalidate(blk(0, 5)), Some(false));
        assert!(!c.probe(blk(0, 5)));
        assert_eq!(c.invalidate(blk(0, 5)), None);
    }

    #[test]
    fn byte_address_entry_point() {
        let mut c = small_cache();
        // Two addresses in the same 64-byte line are one block.
        assert!(!c.access(&Access::read(0x1000, 0)).hit);
        assert!(c.access(&Access::read(0x1030, 0)).hit);
    }

    #[test]
    fn resident_blocks_reconstructs_addresses() {
        let mut c = small_cache();
        let ctx = AccessContext::blank();
        for tag in [3u64, 9, 12] {
            c.access_block(blk(2, tag), &ctx);
        }
        let mut resident = c.resident_blocks(2);
        resident.sort_unstable();
        assert_eq!(resident, vec![blk(2, 3), blk(2, 9), blk(2, 12)]);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small_cache();
        let ctx = AccessContext::blank();
        c.access_block(blk(0, 1), &ctx);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(
            c.access_block(blk(0, 1), &ctx).hit,
            "contents survive reset"
        );
    }

    #[test]
    fn replacement_bits_scales_with_sets() {
        let c = small_cache();
        assert_eq!(c.replacement_bits(), 0); // fixture policy is stateless
    }
}
