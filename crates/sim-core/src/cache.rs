//! A set-associative cache driving a pluggable replacement policy.

use crate::access::AccessContext;
use crate::geometry::CacheGeometry;
use crate::policy::ReplacementPolicy;
use crate::stats::CacheStats;

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
}

/// A block displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Block (line) address of the displaced block.
    pub block_addr: u64,
    /// Whether the block was dirty and must be written downstream.
    pub dirty: bool,
}

/// The result of one cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the block was resident.
    pub hit: bool,
    /// The block displaced by the fill, if any.
    pub evicted: Option<Evicted>,
    /// Whether the incoming block bypassed the cache entirely.
    pub bypassed: bool,
}

/// A set-associative cache with tags, per-line dirty bits, and statistics.
///
/// The cache stores *block addresses*; callers convert byte addresses via
/// [`CacheGeometry::block_of`] or use [`SetAssocCache::access`].
///
/// # Example
///
/// ```
/// use sim_core::{Access, CacheGeometry, SetAssocCache};
/// use sim_core::policy::fifo_like_fixture::AlwaysWayZero;
///
/// # fn main() -> Result<(), sim_core::GeometryError> {
/// let geom = CacheGeometry::new(4096, 4, 64)?;
/// let mut cache = SetAssocCache::new(geom, Box::new(AlwaysWayZero::new(&geom)));
/// let a = Access::read(0x1000, 0);
/// assert!(!cache.access(&a).hit); // cold miss
/// assert!(cache.access(&a).hit); // now resident
/// # Ok(())
/// # }
/// ```
pub struct SetAssocCache {
    geom: CacheGeometry,
    lines: Vec<Line>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
}

impl std::fmt::Debug for SetAssocCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("geom", &self.geom)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl SetAssocCache {
    /// Creates an empty cache using `policy` for replacement decisions.
    pub fn new(geom: CacheGeometry, policy: Box<dyn ReplacementPolicy>) -> Self {
        SetAssocCache {
            geom,
            lines: vec![Line::default(); geom.sets() * geom.ways()],
            policy,
            stats: CacheStats::new(),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. after a warm-up phase) without touching
    /// contents or policy state.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    /// The policy driving this cache.
    pub fn policy(&self) -> &dyn ReplacementPolicy {
        self.policy.as_ref()
    }

    /// Mutable access to the policy (e.g. to inspect dueling winners).
    pub fn policy_mut(&mut self) -> &mut dyn ReplacementPolicy {
        self.policy.as_mut()
    }

    /// Looks up a byte-addressed access, filling on miss.
    pub fn access(&mut self, access: &crate::access::Access) -> AccessOutcome {
        self.access_block(self.geom.block_of(access.addr), &access.context())
    }

    /// Looks up `block_addr`, filling on miss. `ctx` is forwarded to the
    /// policy callbacks.
    pub fn access_block(&mut self, block_addr: u64, ctx: &AccessContext) -> AccessOutcome {
        let set = self.geom.set_of_block(block_addr);
        let tag = self.geom.tag_of_block(block_addr);
        let ways = self.geom.ways();
        let base = set * ways;
        self.stats.accesses += 1;

        // Hit path.
        for way in 0..ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.dirty |= ctx.is_write;
                self.stats.hits += 1;
                self.policy.on_hit(set, way, ctx);
                return AccessOutcome { hit: true, evicted: None, bypassed: false };
            }
        }

        // Miss path.
        self.stats.misses += 1;
        self.policy.on_miss(set, ctx);
        if self.policy.should_bypass(set, ctx) {
            return AccessOutcome { hit: false, evicted: None, bypassed: true };
        }

        // Prefer an invalid way; otherwise ask the policy for a victim.
        let (fill_way, evicted) = match (0..ways).find(|&w| !self.lines[base + w].valid) {
            Some(w) => (w, None),
            None => {
                let w = self.policy.victim(set, ctx);
                assert!(w < ways, "policy {} returned way {w} >= {ways}", self.policy.name());
                let old = self.lines[base + w];
                self.stats.evictions += 1;
                if old.dirty {
                    self.stats.writebacks += 1;
                }
                self.policy.on_evict(set, w);
                (
                    w,
                    Some(Evicted {
                        block_addr: self.geom.block_from_parts(set, old.tag),
                        dirty: old.dirty,
                    }),
                )
            }
        };

        self.lines[base + fill_way] = Line { tag, valid: true, dirty: ctx.is_write };
        self.policy.on_fill(set, fill_way, ctx);
        AccessOutcome { hit: false, evicted, bypassed: false }
    }

    /// Returns whether `block_addr` is currently resident (no side effects).
    pub fn probe(&self, block_addr: u64) -> bool {
        let set = self.geom.set_of_block(block_addr);
        let tag = self.geom.tag_of_block(block_addr);
        let base = set * self.geom.ways();
        (0..self.geom.ways()).any(|w| {
            let l = &self.lines[base + w];
            l.valid && l.tag == tag
        })
    }

    /// Invalidates `block_addr` if resident, returning whether it was dirty.
    pub fn invalidate(&mut self, block_addr: u64) -> Option<bool> {
        let set = self.geom.set_of_block(block_addr);
        let tag = self.geom.tag_of_block(block_addr);
        let base = set * self.geom.ways();
        for w in 0..self.geom.ways() {
            let l = &mut self.lines[base + w];
            if l.valid && l.tag == tag {
                l.valid = false;
                let dirty = l.dirty;
                l.dirty = false;
                self.policy.on_evict(set, w);
                return Some(dirty);
            }
        }
        None
    }

    /// Number of valid lines in `set` (test/diagnostic aid).
    pub fn occupancy(&self, set: usize) -> usize {
        let base = set * self.geom.ways();
        (0..self.geom.ways()).filter(|&w| self.lines[base + w].valid).count()
    }

    /// Block addresses currently resident in `set`, in way order.
    pub fn resident_blocks(&self, set: usize) -> Vec<u64> {
        let base = set * self.geom.ways();
        (0..self.geom.ways())
            .filter_map(|w| {
                let l = &self.lines[base + w];
                l.valid.then(|| self.geom.block_from_parts(set, l.tag))
            })
            .collect()
    }

    /// Total replacement-metadata bits (per-set plus global) for this cache.
    pub fn replacement_bits(&self) -> u64 {
        self.policy.bits_per_set() * self.geom.sets() as u64 + self.policy.global_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;
    use crate::policy::fifo_like_fixture::AlwaysWayZero;

    fn small_cache() -> SetAssocCache {
        let geom = CacheGeometry::new(1024, 4, 64).unwrap(); // 4 sets x 4 ways
        SetAssocCache::new(geom, Box::new(AlwaysWayZero::new(&geom)))
    }

    fn blk(set: usize, tag: u64) -> u64 {
        (tag << 2) | set as u64 // 4 sets
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache();
        let ctx = AccessContext::blank();
        assert!(!c.access_block(blk(0, 1), &ctx).hit);
        assert!(c.access_block(blk(0, 1), &ctx).hit);
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn fills_invalid_ways_before_evicting() {
        let mut c = small_cache();
        let ctx = AccessContext::blank();
        for tag in 0..4 {
            let out = c.access_block(blk(1, tag), &ctx);
            assert!(out.evicted.is_none(), "no eviction while set has invalid ways");
        }
        assert_eq!(c.occupancy(1), 4);
        let out = c.access_block(blk(1, 99), &ctx);
        assert_eq!(out.evicted, Some(Evicted { block_addr: blk(1, 0), dirty: false }));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small_cache();
        let wctx = AccessContext { is_write: true, ..AccessContext::blank() };
        let rctx = AccessContext::blank();
        c.access_block(blk(2, 0), &wctx); // dirty fill into way 0
        for tag in 1..4 {
            c.access_block(blk(2, tag), &rctx);
        }
        let out = c.access_block(blk(2, 50), &rctx); // evicts way 0 (dirty)
        assert!(out.evicted.unwrap().dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small_cache();
        let rctx = AccessContext::blank();
        let wctx = AccessContext { is_write: true, ..AccessContext::blank() };
        c.access_block(blk(3, 7), &rctx); // clean fill
        c.access_block(blk(3, 7), &wctx); // write hit dirties it
        for tag in 0..3 {
            c.access_block(blk(3, tag), &rctx);
        }
        let out = c.access_block(blk(3, 40), &rctx);
        assert!(out.evicted.unwrap().dirty);
    }

    #[test]
    fn probe_and_invalidate() {
        let mut c = small_cache();
        let ctx = AccessContext::blank();
        c.access_block(blk(0, 5), &ctx);
        assert!(c.probe(blk(0, 5)));
        assert!(!c.probe(blk(0, 6)));
        assert_eq!(c.invalidate(blk(0, 5)), Some(false));
        assert!(!c.probe(blk(0, 5)));
        assert_eq!(c.invalidate(blk(0, 5)), None);
    }

    #[test]
    fn byte_address_entry_point() {
        let mut c = small_cache();
        // Two addresses in the same 64-byte line are one block.
        assert!(!c.access(&Access::read(0x1000, 0)).hit);
        assert!(c.access(&Access::read(0x1030, 0)).hit);
    }

    #[test]
    fn resident_blocks_reconstructs_addresses() {
        let mut c = small_cache();
        let ctx = AccessContext::blank();
        for tag in [3u64, 9, 12] {
            c.access_block(blk(2, tag), &ctx);
        }
        let mut resident = c.resident_blocks(2);
        resident.sort_unstable();
        assert_eq!(resident, vec![blk(2, 3), blk(2, 9), blk(2, 12)]);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small_cache();
        let ctx = AccessContext::blank();
        c.access_block(blk(0, 1), &ctx);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access_block(blk(0, 1), &ctx).hit, "contents survive reset");
    }

    #[test]
    fn replacement_bits_scales_with_sets() {
        let c = small_cache();
        assert_eq!(c.replacement_bits(), 0); // fixture policy is stateless
    }
}
