//! The replacement-policy interface.

use crate::access::AccessContext;
use crate::geometry::CacheGeometry;

/// How a policy's state decomposes across cache sets, which determines
/// whether the sharded replay engine (`sim_core::shard`) may drive disjoint
/// set ranges of the same stream concurrently on independent policy clones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAffinity {
    /// Every state transition depends only on the set being accessed, so
    /// replaying disjoint set ranges independently (each on a fresh policy
    /// instance) produces exactly the per-set transitions of a sequential
    /// replay. Global *read-only* configuration (an IPV, a seed vector) is
    /// fine; global *mutable* counters are not — with one exception: a
    /// global monotonic clock whose influence reduces to within-set
    /// relative order (e.g. true-LRU timestamps) still qualifies, because
    /// stable bucketing preserves per-set access order.
    ///
    /// Policies claiming `SetLocal` must also not depend on the sub-line
    /// bits of `AccessContext::addr`: the sharded engine reconstructs the
    /// address from the block address, zeroing the line offset.
    SetLocal,
    /// State is shared across sets (PSEL duel counters, global RNG streams,
    /// reuse-distance samplers keyed on the full access sequence). Sharded
    /// replay falls back to a sequential whole-stream pass for these, which
    /// preserves exact semantics at the cost of per-policy parallelism only.
    Global,
}

/// A cache replacement policy.
///
/// One policy object serves an entire cache level; every callback carries the
/// set index so policies may keep per-set state (recency stacks, PLRU bits,
/// RRPVs) as well as cache-global state (set-dueling counters, reuse-distance
/// samplers). Policies deal only in *way indices* — the cache owns tags,
/// validity, and dirtiness.
///
/// Callback protocol, per lookup:
///
/// 1. **Hit** → [`on_hit`](ReplacementPolicy::on_hit).
/// 2. **Miss** → [`on_miss`](ReplacementPolicy::on_miss), then, unless the
///    policy chose to bypass, either a fill into an invalid way or
///    [`victim`](ReplacementPolicy::victim) followed by
///    [`on_evict`](ReplacementPolicy::on_evict); finally
///    [`on_fill`](ReplacementPolicy::on_fill) for the incoming block.
///
/// `Send` is a supertrait so long-lived engines (e.g. the serving
/// daemon's per-tenant sessions) can be handed between worker-pool
/// threads; every policy is a plain data structure, so this costs
/// implementors nothing.
pub trait ReplacementPolicy: Send {
    /// A short human-readable policy name (e.g. `"WN1-4-DGIPPR"`).
    fn name(&self) -> &str;

    /// Chooses the way to evict in `set`. Called only when the set is full.
    fn victim(&mut self, set: usize, ctx: &AccessContext) -> usize;

    /// Records a hit on `way` in `set` (promotion happens here).
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessContext);

    /// Records that the incoming block was placed in `way` (insertion
    /// happens here). Called for both cold fills and replacement fills.
    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessContext);

    /// Records a miss in `set` before any fill (set-dueling feedback).
    fn on_miss(&mut self, _set: usize, _ctx: &AccessContext) {}

    /// Records that `way` in `set` was evicted (before the fill).
    fn on_evict(&mut self, _set: usize, _way: usize) {}

    /// Returns true to skip caching the incoming block entirely
    /// (bypass). The default never bypasses; the paper's PDP configuration
    /// also runs without bypass.
    fn should_bypass(&mut self, _set: usize, _ctx: &AccessContext) -> bool {
        false
    }

    /// Replacement metadata cost in bits per set (paper Section 3.6).
    fn bits_per_set(&self) -> u64;

    /// Cache-global metadata cost in bits (e.g. PSEL counters). Defaults to 0.
    fn global_bits(&self) -> u64 {
        0
    }

    /// Whether this policy's transitions are per-set independent (see
    /// [`ShardAffinity`]). Defaults to [`ShardAffinity::Global`] — the
    /// conservative answer: the sharded engine then replays the policy
    /// sequentially, which is always correct. Policies whose state is
    /// provably per-set opt in to [`ShardAffinity::SetLocal`].
    fn shard_affinity(&self) -> ShardAffinity {
        ShardAffinity::Global
    }

    /// A plain-data [`SliceKernel`](crate::slice::SliceKernel) description
    /// of this policy for the bit-sliced replay engine, or `None` (the
    /// default) if its transitions cannot be expressed as one.
    ///
    /// A policy may only return `Some` when the kernel reproduces its
    /// `victim`/`on_hit`/`on_fill` *exactly* (same victim on every full
    /// set, same state after every transition, starting from the same
    /// initial state) and its `on_miss`/`on_evict`/`should_bypass` are the
    /// trait defaults — the sliced engine never calls back into the policy
    /// object. Engines still validate the kernel against the concrete
    /// geometry via [`SliceKernel::supports`](crate::slice::SliceKernel)
    /// and fall back to the monomorphized replay when it declines.
    fn slice_kernel(&self) -> Option<crate::slice::SliceKernel> {
        None
    }

    /// Canonical digest of this policy's state *attributable to `set`*, or
    /// `None` (the default) when the policy does not support state auditing.
    ///
    /// Used by the bounded model checker and the shard-affinity auditor
    /// (`sim-verify`, `xtask model-check`). The contract mirrors the
    /// soundness obligation of `sim_lint::bounded`: two per-set states with
    /// equal digests must be behaviourally indistinguishable *for that set*.
    /// Unbounded monotone state (timestamps, clocks) must be canonicalized —
    /// e.g. reduced to within-set rank order or rebased against the running
    /// minimum — precisely the reduction that justifies a
    /// [`ShardAffinity::SetLocal`] claim in the first place.
    fn audit_set_digest(&self, _set: usize) -> Option<Vec<u8>> {
        None
    }

    /// Canonical digest of this policy's cross-set state (duel counters,
    /// shared predictor tables, RNG words). Defaults to empty — correct for
    /// policies whose state fully decomposes per set. Policies overriding
    /// [`audit_set_digest`](ReplacementPolicy::audit_set_digest) while
    /// keeping mutable global state must override this too, or the model
    /// checker will merge states it should distinguish.
    fn audit_global_digest(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Checks the policy's internal metadata invariants (counter saturation,
    /// list-capacity bounds, partition disjointness, …), returning
    /// `Err(description)` on violation. Called by the bounded model checker
    /// after every transition; the default has nothing to check.
    fn audit_invariants(&self) -> Result<(), String> {
        Ok(())
    }
}

/// Boxed policies are policies too: this keeps `Box<dyn ReplacementPolicy>`
/// usable as the default policy parameter of
/// [`SetAssocCache`](crate::SetAssocCache) while concrete types take the
/// monomorphized fast path.
impl<P: ReplacementPolicy + ?Sized> ReplacementPolicy for Box<P> {
    #[inline]
    fn name(&self) -> &str {
        (**self).name()
    }

    #[inline]
    fn victim(&mut self, set: usize, ctx: &AccessContext) -> usize {
        (**self).victim(set, ctx)
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessContext) {
        (**self).on_hit(set, way, ctx)
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessContext) {
        (**self).on_fill(set, way, ctx)
    }

    #[inline]
    fn on_miss(&mut self, set: usize, ctx: &AccessContext) {
        (**self).on_miss(set, ctx)
    }

    #[inline]
    fn on_evict(&mut self, set: usize, way: usize) {
        (**self).on_evict(set, way)
    }

    #[inline]
    fn should_bypass(&mut self, set: usize, ctx: &AccessContext) -> bool {
        (**self).should_bypass(set, ctx)
    }

    #[inline]
    fn bits_per_set(&self) -> u64 {
        (**self).bits_per_set()
    }

    #[inline]
    fn global_bits(&self) -> u64 {
        (**self).global_bits()
    }

    #[inline]
    fn shard_affinity(&self) -> ShardAffinity {
        (**self).shard_affinity()
    }

    #[inline]
    fn slice_kernel(&self) -> Option<crate::slice::SliceKernel> {
        (**self).slice_kernel()
    }

    #[inline]
    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        (**self).audit_set_digest(set)
    }

    #[inline]
    fn audit_global_digest(&self) -> Vec<u8> {
        (**self).audit_global_digest()
    }

    #[inline]
    fn audit_invariants(&self) -> Result<(), String> {
        (**self).audit_invariants()
    }
}

/// A constructor for policy instances, used by sweeps that simulate the same
/// cache under many policies (and by multi-threaded experiments).
pub type PolicyFactory = Box<dyn Fn(&CacheGeometry) -> Box<dyn ReplacementPolicy> + Send + Sync>;

/// Wraps a closure into a [`PolicyFactory`].
///
/// # Example
///
/// ```
/// use sim_core::policy::{factory, fifo_like_fixture::AlwaysWayZero};
/// use sim_core::CacheGeometry;
///
/// # fn main() -> Result<(), sim_core::GeometryError> {
/// let f = factory(|geom| Box::new(AlwaysWayZero::new(geom)));
/// let geom = CacheGeometry::new(4096, 4, 64)?;
/// assert_eq!(f(&geom).bits_per_set(), 0);
/// # Ok(())
/// # }
/// ```
pub fn factory<F>(f: F) -> PolicyFactory
where
    F: Fn(&CacheGeometry) -> Box<dyn ReplacementPolicy> + Send + Sync + 'static,
{
    Box::new(f)
}

/// A deliberately bad fixture policy used in documentation examples and
/// substrate tests: it always evicts way 0 and keeps no state.
pub mod fifo_like_fixture {
    use super::*;

    /// Evicts way 0 unconditionally. Zero metadata.
    #[derive(Debug, Clone, Default)]
    pub struct AlwaysWayZero;

    impl AlwaysWayZero {
        /// Creates the fixture; geometry is accepted for interface symmetry.
        pub fn new(_geom: &CacheGeometry) -> Self {
            AlwaysWayZero
        }
    }

    impl ReplacementPolicy for AlwaysWayZero {
        fn name(&self) -> &str {
            "always-way-0"
        }

        fn victim(&mut self, _set: usize, _ctx: &AccessContext) -> usize {
            0
        }

        fn on_hit(&mut self, _set: usize, _way: usize, _ctx: &AccessContext) {}

        fn on_fill(&mut self, _set: usize, _way: usize, _ctx: &AccessContext) {}

        fn bits_per_set(&self) -> u64 {
            0
        }

        fn shard_affinity(&self) -> ShardAffinity {
            ShardAffinity::SetLocal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fifo_like_fixture::AlwaysWayZero;
    use super::*;

    #[test]
    fn fixture_behaviour() {
        let geom = CacheGeometry::new(4096, 4, 64).unwrap();
        let mut p = AlwaysWayZero::new(&geom);
        assert_eq!(p.victim(3, &AccessContext::blank()), 0);
        assert_eq!(p.bits_per_set(), 0);
        assert_eq!(p.global_bits(), 0);
        assert!(!p.should_bypass(0, &AccessContext::blank()));
        assert_eq!(p.name(), "always-way-0");
    }

    #[test]
    fn factory_is_reusable() {
        let f = factory(|g| Box::new(AlwaysWayZero::new(g)));
        let geom = CacheGeometry::new(4096, 4, 64).unwrap();
        let a = f(&geom);
        let b = f(&geom);
        assert_eq!(a.name(), b.name());
    }
}
