//! Bit-sliced replay kernel: packed replacement state advanced with
//! word-parallel ALU ops.
//!
//! A 16-way tree PseudoLRU set is 15 bits of state; this module packs
//! four such trees (one per 16-bit lane) into a single `u64` and runs
//! victim selection, position reads, and position writes directly on the
//! packed word — no per-set struct, no bounds-checked `Vec<PlruTree>`
//! indexing, and co-resident sets share cache lines. Recency stacks and
//! RRPV arrays get the same treatment as 4-bit-per-way nibble vectors
//! driven by SWAR (SIMD-within-a-register) find/shift ops.
//!
//! The kernel is *data-driven*: a policy that qualifies describes itself
//! as a [`SliceKernel`] (via
//! [`ReplacementPolicy::slice_kernel`](crate::ReplacementPolicy::slice_kernel)),
//! and [`replay_sliced`] interprets that description over a captured
//! stream with the exact per-access protocol of
//! [`SetAssocCache::access_tagged`](crate::SetAssocCache) — same
//! statistics fields, same fill-invalid-first rule, same dirty/writeback
//! accounting — so final stats are bit-identical to a monomorphized
//! sequential replay (proven roster-wide by `sim-verify`).
//!
//! Lane layout for the PLRU family (16-way shown; `k`-way uses
//! `64 / k`-lane words, each lane `k` bits: `k - 1` tree bits plus one
//! pad bit that is never written):
//!
//! ```text
//!   u64 word:  [ lane 3 | lane 2 | lane 1 | lane 0 ]   4 sets per word
//!   lane bits:  b14 .. b1 b0 | pad                      node i at bit i-1
//! ```
//!
//! The packed state is model-checked twice over. [`SlicedTree`] implements
//! `sim_lint::PlruState`, so `cargo xtask model-check` sweeps its full
//! state space at every lane offset, with sibling lanes filled with a
//! poison pattern whose integrity is asserted on every state read — any
//! cross-lane contamination is caught immediately. And
//! [`kernel_soundness_sweep`] drives the *actual replay interpreters*
//! (`PlruLanes`, `StackList`, `RripNibbles`) transition by transition
//! against independent scalar models for every kernel shape at every lane
//! offset, exhaustively wherever the state space permits.

#![forbid(unsafe_code)]

use crate::access::Access;
use crate::cache::{LINE_DIRTY, LINE_VALID};
use crate::geometry::CacheGeometry;
use crate::simd::scan_masks;
use crate::stats::CacheStats;

/// A plain-data description of a qualifying replacement policy, complete
/// enough for [`replay_sliced`] to reproduce its transitions exactly.
///
/// A policy must only return one of these (from
/// [`ReplacementPolicy::slice_kernel`](crate::ReplacementPolicy::slice_kernel))
/// if its `on_miss`, `on_evict`, and `should_bypass` are the trait
/// defaults (no-ops / never bypass) and its `victim`/`on_hit`/`on_fill`
/// are fully determined by the kernel data below — the sliced engine
/// never calls back into the policy object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceKernel {
    /// Tree PseudoLRU driven by an insertion/promotion vector
    /// `V[0..=k]`: a hit at pseudo-position `p` rewrites the block to
    /// position `V[p]`, a fill lands at `V[k]`, the victim sits at
    /// position `k - 1`. Plain PLRU is the all-zero vector.
    PlruIpv {
        /// The `k + 1` vector entries, each `< k`.
        ipv: Vec<u8>,
    },
    /// A true-LRU recency stack driven by an insertion/promotion vector
    /// with shift-by-one move semantics (GIPLR). True LRU is the
    /// all-zero vector.
    StackIpv {
        /// The `k + 1` vector entries, each `< k`.
        ipv: Vec<u8>,
    },
    /// RRIP with a 5-entry vector `V[0..=4]`: a hit at RRPV `i` rewrites
    /// to `V[i]`, a fill installs `V[4]`; the victim is the lowest way
    /// at max RRPV, aging all ways until one exists. SRRIP is
    /// `[0, 0, 0, 0, 2]`.
    RripIpv {
        /// Promotion targets for RRPVs 0–3 plus the insertion RRPV.
        vector: [u8; 5],
    },
}

impl SliceKernel {
    /// Whether [`replay_sliced`] can run this kernel on `geom`: the
    /// associativity must be a power of two in `2..=16` and the vector
    /// entries must be in range.
    pub fn supports(&self, geom: &CacheGeometry) -> bool {
        let ways = geom.ways();
        if !matches!(ways, 2 | 4 | 8 | 16) {
            return false;
        }
        match self {
            SliceKernel::PlruIpv { ipv } | SliceKernel::StackIpv { ipv } => {
                ipv.len() == ways + 1 && ipv.iter().all(|&e| usize::from(e) < ways)
            }
            SliceKernel::RripIpv { vector } => vector.iter().all(|&e| e < 4),
        }
    }

    /// Sets packed per `u64` state word at associativity `ways`: `64/k`
    /// for the PLRU family (the headline bit-slicing win), 1 for the
    /// nibble-vector kernels (a 16-way stack or RRPV array fills the
    /// word by itself).
    pub fn lanes(&self, ways: usize) -> usize {
        match self {
            SliceKernel::PlruIpv { .. } => 64 / ways,
            SliceKernel::StackIpv { .. } | SliceKernel::RripIpv { .. } => 1,
        }
    }
}

// ---------------------------------------------------------------------------
// PLRU lane math. One runtime-`ways` implementation serves both the hot
// kernel (where `ways` is a const-propagated literal, so the walks unroll)
// and the model-checked `SlicedTree`.
// ---------------------------------------------------------------------------

/// Victim walk over the tree in the lane at bit offset `off`: follow node
/// bits from the root (node 1, stored at `off`), 0 = left, 1 = right.
#[inline(always)]
fn lane_victim(word: u64, off: u32, ways: usize) -> usize {
    let mut node = 1usize;
    while node < ways {
        let bit = (word >> (off + node as u32 - 1)) & 1;
        node = 2 * node + bit as usize;
    }
    node - ways
}

/// Reads `way`'s pseudo recency position from the lane at `off`: walking
/// leaf-to-root, visited node `i` contributes bit `i` of the position —
/// the parent's bit if the node is a right child, its complement if left.
#[inline(always)]
fn lane_position(word: u64, off: u32, ways: usize, way: usize) -> usize {
    let mut node = ways + way;
    let mut pos = 0usize;
    let mut i = 0u32;
    while node > 1 {
        let parent = node / 2;
        let pbit = ((word >> (off + parent as u32 - 1)) & 1) as usize;
        pos |= (pbit ^ ((node & 1) ^ 1)) << i;
        node = parent;
        i += 1;
    }
    pos
}

/// Writes `way`'s position into the lane at `off`, rewriting the
/// `log2 ways` bits on its root-to-leaf path; sibling lanes untouched.
#[inline(always)]
fn lane_set_position(word: u64, off: u32, ways: usize, way: usize, position: usize) -> u64 {
    let mut w = word;
    let mut node = ways + way;
    let mut i = 0u32;
    while node > 1 {
        let parent = node / 2;
        let bit = (position >> i) & 1;
        let stored = (bit ^ ((node & 1) ^ 1)) as u64;
        let sh = off + parent as u32 - 1;
        w = (w & !(1u64 << sh)) | (stored << sh);
        node = parent;
        i += 1;
    }
    w
}

/// Mask of a lane's `ways - 1` tree bits (lane-relative).
#[inline]
fn tree_mask(ways: usize) -> u64 {
    (1u64 << (ways - 1)) - 1
}

/// Deterministic non-zero filler for inactive lanes of a [`SlicedTree`].
fn lane_poison(ways: usize, lane: usize) -> u64 {
    0x9e37_79b9_7f4a_7c15u64.rotate_left(lane as u32 * 7) & tree_mask(ways)
}

/// One PLRU tree living in a chosen lane of a packed `u64` word, with
/// every *other* lane filled with a poison pattern that is re-asserted on
/// each state read — the model-checkable face of the bit-sliced tree.
///
/// Semantics (victim walk, position algebra) are exactly those of
/// `gippr::PlruTree`; the `sim_lint::PlruState` impl lets the exhaustive
/// model checker sweep the full `2^(k-1)` state space per lane offset,
/// proving both the tree invariants and lane isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlicedTree {
    word: u64,
    ways: usize,
    lane: usize,
}

impl SlicedTree {
    /// Builds a tree with bit pattern `bits` in lane `lane`, poison
    /// elsewhere.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` is a power of two in `2..=16`, `lane` is
    /// below `64 / ways`, and `bits` fits in `ways - 1` bits.
    pub fn at_lane(ways: usize, bits: u64, lane: usize) -> Self {
        assert!(
            ways.is_power_of_two() && (2..=16).contains(&ways),
            "sliced tree supports power-of-two ways in 2..=16, got {ways}"
        );
        let lanes = 64 / ways;
        assert!(lane < lanes, "lane {lane} out of range for {ways}-way");
        assert!(
            bits >> (ways - 1) == 0,
            "bits {bits:#x} exceed the {} tree bits",
            ways - 1
        );
        let mut word = bits << (lane * ways);
        for l in 0..lanes {
            if l != lane {
                word |= lane_poison(ways, l) << (l * ways);
            }
        }
        SlicedTree { word, ways, lane }
    }

    /// The lane this tree occupies.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn off(&self) -> u32 {
        (self.lane * self.ways) as u32
    }

    /// This lane's tree bits in the canonical encoding (node `i` at bit
    /// `i - 1`), verifying on the way out that every sibling lane's
    /// poison — and this lane's pad bit — survived intact.
    ///
    /// # Panics
    ///
    /// Panics if any bit outside this lane's tree bits changed: that
    /// would mean a lane operation leaked across a lane boundary.
    pub fn tree_bits(&self) -> u64 {
        let lanes = 64 / self.ways;
        for l in 0..lanes {
            let lane_bits = (self.word >> (l * self.ways)) & ((1u64 << self.ways) - 1);
            if l != self.lane {
                assert_eq!(
                    lane_bits,
                    lane_poison(self.ways, l),
                    "lane {l} poison clobbered by an operation on lane {}",
                    self.lane
                );
            } else {
                assert_eq!(lane_bits >> (self.ways - 1), 0, "pad bit written");
            }
        }
        (self.word >> self.off()) & tree_mask(self.ways)
    }

    /// The PseudoLRU victim way of this lane.
    pub fn victim(&self) -> usize {
        lane_victim(self.word, self.off(), self.ways)
    }

    /// `way`'s pseudo recency position (0 = MRU, `ways - 1` = victim).
    pub fn position(&self, way: usize) -> usize {
        assert!(way < self.ways, "way {way} out of range");
        lane_position(self.word, self.off(), self.ways, way)
    }

    /// Rewrites `way`'s root-to-leaf path so it occupies `position`.
    pub fn set_position(&mut self, way: usize, position: usize) {
        assert!(way < self.ways, "way {way} out of range");
        assert!(position < self.ways, "position {position} out of range");
        self.word = lane_set_position(self.word, self.off(), self.ways, way, position);
    }
}

/// [`SlicedTree`] pinned to a compile-time lane, so the `sim_lint` model
/// checker (whose [`PlruState`](sim_lint::PlruState) constructor carries
/// only `(ways, bits)`) can be instantiated per lane offset. For small
/// associativities with more than `LANE + 1` lanes the requested lane is
/// taken modulo the lane count, keeping every `(ways, LANE)` combination
/// valid.
#[derive(Debug, Clone)]
pub struct SlicedTreeLane<const LANE: usize>(SlicedTree);

impl<const LANE: usize> SlicedTreeLane<LANE> {
    /// The underlying packed tree.
    pub fn inner(&self) -> &SlicedTree {
        &self.0
    }
}

impl<const LANE: usize> sim_lint::PlruState for SlicedTreeLane<LANE> {
    fn from_bits(ways: usize, bits: u64) -> Self {
        SlicedTreeLane(SlicedTree::at_lane(ways, bits, LANE % (64 / ways)))
    }

    fn bits(&self) -> u64 {
        self.0.tree_bits()
    }

    fn ways(&self) -> usize {
        self.0.ways()
    }

    fn victim(&self) -> usize {
        self.0.victim()
    }

    fn position(&self, way: usize) -> usize {
        self.0.position(way)
    }

    fn set_position(&mut self, way: usize, position: usize) {
        self.0.set_position(way, position)
    }
}

// ---------------------------------------------------------------------------
// Nibble SWAR: recency stacks and RRPV arrays as 4-bit-per-entry words.
// ---------------------------------------------------------------------------

/// `0x1111…` repeated over the low `ways` nibbles.
#[inline(always)]
fn nib_rep(ways: usize) -> u64 {
    (0x1111_1111_1111_1111u128 & ((1u128 << (4 * ways)) - 1)) as u64
}

/// Index of the lowest nibble of `word` equal to `target` (which must be
/// present among the low `ways` nibbles). Classic SWAR zero-detect on
/// `word ^ target·rep`: below the lowest genuine zero nibble no borrow
/// has started, so the lowest flagged nibble is exact.
#[inline(always)]
fn nib_find(word: u64, target: u64, ways: usize) -> usize {
    let rep = nib_rep(ways);
    let x = word ^ target.wrapping_mul(rep);
    let y = x.wrapping_sub(rep) & !x & (rep << 3);
    debug_assert_ne!(y, 0, "target nibble must be present");
    (y.trailing_zeros() / 4) as usize
}

/// Nibble `idx` of `word`.
#[inline(always)]
fn nib_read(word: u64, idx: usize) -> u64 {
    (word >> (4 * idx as u32)) & 0xF
}

/// `word` with nibble `idx` replaced by `val` (`val < 16`).
#[inline(always)]
fn nib_write(word: u64, idx: usize, val: u64) -> u64 {
    let sh = 4 * idx as u32;
    (word & !(0xFu64 << sh)) | (val << sh)
}

/// Bit mask covering nibbles `lo..hi` (i.e. bits `4·lo..4·hi`, `hi ≤ 16`).
#[inline(always)]
fn nib_span(lo: usize, hi: usize) -> u64 {
    ((1u128 << (4 * hi)) - (1u128 << (4 * lo))) as u64
}

/// Moves `way` from stack position `current` to `target` in a packed
/// nibble list (`nibble p` = way at position `p`), shifting the
/// intervening occupants by one — the packed twin of
/// `gippr::RecencyStack::move_to`.
#[inline(always)]
fn stack_move(list: u64, way: u64, current: usize, target: usize) -> u64 {
    match target.cmp(&current) {
        std::cmp::Ordering::Equal => list,
        std::cmp::Ordering::Less => {
            // Occupants of positions [target, current) slide up one.
            (list & !nib_span(target, current + 1))
                | ((list & nib_span(target, current)) << 4)
                | (way << (4 * target as u32))
        }
        std::cmp::Ordering::Greater => {
            // Occupants of positions (current, target] slide down one.
            (list & !nib_span(current, target + 1))
                | ((list & nib_span(current + 1, target + 1)) >> 4)
                | (way << (4 * target as u32))
        }
    }
}

// ---------------------------------------------------------------------------
// Packed per-kernel replacement state.
// ---------------------------------------------------------------------------

/// The replacement-state interface the replay loop drives. `ways` is
/// passed by the (const-dispatched) caller so every division and shift
/// below folds to a constant.
trait ReplState {
    fn victim(&mut self, ways: usize, set: usize) -> usize;
    fn on_hit(&mut self, ways: usize, set: usize, way: usize);
    fn on_fill(&mut self, ways: usize, set: usize, way: usize);
}

/// `64/k` PLRU trees per word, IPV-driven.
struct PlruLanes {
    words: Vec<u64>,
    promo: [u8; 16],
    insert: u8,
}

impl PlruLanes {
    fn new(sets: usize, ways: usize, ipv: &[u8]) -> Self {
        let mut promo = [0u8; 16];
        promo[..ways].copy_from_slice(&ipv[..ways]);
        PlruLanes {
            words: vec![0u64; sets.div_ceil(64 / ways)],
            promo,
            insert: ipv[ways],
        }
    }

    #[inline(always)]
    fn locate(ways: usize, set: usize) -> (usize, u32) {
        let lanes = 64 / ways; // power of two: folds to shift + mask
        (set / lanes, ((set % lanes) * ways) as u32)
    }
}

impl ReplState for PlruLanes {
    #[inline(always)]
    fn victim(&mut self, ways: usize, set: usize) -> usize {
        let (ix, off) = Self::locate(ways, set);
        lane_victim(self.words[ix], off, ways)
    }

    #[inline(always)]
    fn on_hit(&mut self, ways: usize, set: usize, way: usize) {
        let (ix, off) = Self::locate(ways, set);
        let w = self.words[ix];
        let pos = lane_position(w, off, ways, way);
        self.words[ix] = lane_set_position(w, off, ways, way, usize::from(self.promo[pos & 15]));
    }

    #[inline(always)]
    fn on_fill(&mut self, ways: usize, set: usize, way: usize) {
        let (ix, off) = Self::locate(ways, set);
        self.words[ix] =
            lane_set_position(self.words[ix], off, ways, way, usize::from(self.insert));
    }
}

/// One packed recency stack per set: nibble `p` holds the way at
/// position `p`, starting from the identity permutation (way `p` at
/// position `p`, matching `RecencyStack::new`).
struct StackList {
    list: Vec<u64>,
    promo: [u8; 16],
    insert: u8,
}

impl StackList {
    fn new(sets: usize, ways: usize, ipv: &[u8]) -> Self {
        let mut promo = [0u8; 16];
        promo[..ways].copy_from_slice(&ipv[..ways]);
        let mut identity = 0u64;
        for p in 0..ways {
            identity |= (p as u64) << (4 * p as u32);
        }
        StackList {
            list: vec![identity; sets],
            promo,
            insert: ipv[ways],
        }
    }
}

impl ReplState for StackList {
    #[inline(always)]
    fn victim(&mut self, ways: usize, set: usize) -> usize {
        nib_read(self.list[set], ways - 1) as usize
    }

    #[inline(always)]
    fn on_hit(&mut self, ways: usize, set: usize, way: usize) {
        let l = self.list[set];
        let pos = nib_find(l, way as u64, ways);
        self.list[set] = stack_move(l, way as u64, pos, usize::from(self.promo[pos & 15]));
    }

    #[inline(always)]
    fn on_fill(&mut self, ways: usize, set: usize, way: usize) {
        let l = self.list[set];
        let pos = nib_find(l, way as u64, ways);
        self.list[set] = stack_move(l, way as u64, pos, usize::from(self.insert));
    }
}

/// One packed RRPV array per set: nibble `w` holds way `w`'s RRPV,
/// starting at max (3), matching the reference RRIP tables.
struct RripNibbles {
    nib: Vec<u64>,
    vector: [u8; 5],
}

impl RripNibbles {
    fn new(sets: usize, ways: usize, vector: [u8; 5]) -> Self {
        RripNibbles {
            nib: vec![nib_rep(ways).wrapping_mul(3); sets],
            vector,
        }
    }
}

impl ReplState for RripNibbles {
    #[inline(always)]
    fn victim(&mut self, ways: usize, set: usize) -> usize {
        let rep = nib_rep(ways);
        let max = rep.wrapping_mul(3);
        let word = &mut self.nib[set];
        loop {
            let x = *word ^ max;
            let y = x.wrapping_sub(rep) & !x & (rep << 3);
            if y != 0 {
                // Lowest max nibble = lowest-index way at max RRPV,
                // matching the reference's ascending-way scan.
                return (y.trailing_zeros() / 4) as usize;
            }
            // Age every way by one. No nibble is at max here, so the
            // per-nibble add never carries.
            *word += rep;
        }
    }

    #[inline(always)]
    fn on_hit(&mut self, _ways: usize, set: usize, way: usize) {
        let r = nib_read(self.nib[set], way) as usize;
        self.nib[set] = nib_write(self.nib[set], way, u64::from(self.vector[r & 3]));
    }

    #[inline(always)]
    fn on_fill(&mut self, _ways: usize, set: usize, way: usize) {
        self.nib[set] = nib_write(self.nib[set], way, u64::from(self.vector[4]));
    }
}

// ---------------------------------------------------------------------------
// Kernel soundness sweep: the packed interpreters above, checked transition
// by transition against independent scalar models.
// ---------------------------------------------------------------------------

/// A deliberately naive PLRU tree (`Vec<bool>` nodes, heap-indexed from 1)
/// coded without bit packing: the independent scalar reference the kernel
/// soundness sweep and the in-crate tests compare the packed lanes against.
#[derive(Clone)]
struct NaiveTree {
    node: Vec<bool>, // node[i] for i in 1..ways
    ways: usize,
}

impl NaiveTree {
    fn new(ways: usize, bits: u64) -> Self {
        NaiveTree {
            node: (0..=ways)
                .map(|i| i >= 1 && (bits >> (i - 1)) & 1 == 1)
                .collect(),
            ways,
        }
    }

    fn victim(&self) -> usize {
        let mut n = 1;
        while n < self.ways {
            n = 2 * n + usize::from(self.node[n]);
        }
        n - self.ways
    }

    fn position(&self, way: usize) -> usize {
        let mut n = self.ways + way;
        let mut pos = 0;
        let mut i = 0;
        while n > 1 {
            let toward = if n % 2 == 1 {
                self.node[n / 2]
            } else {
                !self.node[n / 2]
            };
            pos |= usize::from(toward) << i;
            n /= 2;
            i += 1;
        }
        pos
    }

    fn set_position(&mut self, way: usize, position: usize) {
        let mut n = self.ways + way;
        let mut i = 0;
        while n > 1 {
            let bit = (position >> i) & 1 == 1;
            self.node[n / 2] = if n % 2 == 1 { bit } else { !bit };
            n /= 2;
            i += 1;
        }
    }

    fn bits(&self) -> u64 {
        (1..self.ways).fold(0, |acc, i| acc | (u64::from(self.node[i]) << (i - 1)))
    }
}

/// Outcome of one [`kernel_soundness_sweep`] run over a single kernel at a
/// single associativity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSweepReport {
    /// Lane offsets exercised (`64 / ways` for the PLRU family, 1 for the
    /// nibble kernels, which fill the word by themselves).
    pub lanes: usize,
    /// Distinct start states driven (per lane for the PLRU family).
    pub states: u64,
    /// Packed transitions checked against the scalar model.
    pub transitions: u64,
    /// Whether the start states covered the entire state space. True for
    /// every PLRU sweep and for nibble kernels up to 8 ways; the 16-way
    /// nibble spaces (`16!` stack orders, `4^16` RRPV maps) are driven by
    /// a deterministic transition walk instead.
    pub exhaustive: bool,
}

/// Which defect (if any) the sweep driver injects into each packed hit
/// transition — the seeded-bug hook proving the sweep catches its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepDefect {
    None,
    /// PLRU family: flip one bit in a sibling lane after the packed op;
    /// nibble kernels: corrupt the rewritten nibble.
    Seeded,
}

/// Checks the packed kernel interpreter used by [`replay_sliced`] against
/// an independent scalar model: every lane offset, every start state
/// (every *reachable* state is a subset; a deterministic walk substitutes
/// where the space is astronomically large), and every
/// `victim`/`on_hit`/`on_fill` transition out of each. PLRU-family checks
/// additionally assert that sibling-lane poison and the pad bit survive
/// every operation, so a cross-lane leak cannot hide.
///
/// # Errors
///
/// Returns the first counterexample as a human-readable description of
/// the kernel, lane, start state, and offending transition.
pub fn kernel_soundness_sweep(
    kernel: &SliceKernel,
    ways: usize,
) -> Result<KernelSweepReport, String> {
    sweep(kernel, ways, SweepDefect::None)
}

/// [`kernel_soundness_sweep`] with a deliberately corrupted packed hit
/// transition (a cross-lane bit leak for the PLRU family, a wrong nibble
/// rewrite for the stack/RRIP kernels). Exists so tests and the
/// `cargo xtask model-check` gate can prove the sweep detects its defect
/// class; always returns `Err`.
#[doc(hidden)]
pub fn kernel_soundness_sweep_poisoned(
    kernel: &SliceKernel,
    ways: usize,
) -> Result<KernelSweepReport, String> {
    sweep(kernel, ways, SweepDefect::Seeded)
}

fn sweep(
    kernel: &SliceKernel,
    ways: usize,
    defect: SweepDefect,
) -> Result<KernelSweepReport, String> {
    let geom = CacheGeometry::from_sets(64, ways, 64)
        .map_err(|e| format!("no {ways}-way probe geometry: {e}"))?;
    if !kernel.supports(&geom) {
        return Err(format!("kernel {kernel:?} does not support {ways} ways"));
    }
    match kernel {
        SliceKernel::PlruIpv { ipv } => sweep_plru(ipv, ways, defect),
        SliceKernel::StackIpv { ipv } => sweep_stack(ipv, ways, defect),
        SliceKernel::RripIpv { vector } => sweep_rrip(*vector, ways, defect),
    }
}

fn sweep_plru(ipv: &[u8], ways: usize, defect: SweepDefect) -> Result<KernelSweepReport, String> {
    let lanes = 64 / ways;
    let tree_states = 1u64 << (ways - 1);
    let lane_mask = (1u64 << ways) - 1;
    let mut transitions = 0u64;
    for lane in 0..lanes {
        let off = (lane * ways) as u32;
        let mut sibling = 0u64;
        for l in 0..lanes {
            if l != lane {
                sibling |= lane_poison(ways, l) << (l * ways);
            }
        }
        // One word hosts all lanes (`sets == lanes`); ops target `lane`.
        let mut st = PlruLanes::new(lanes, ways, ipv);
        let check = |word: u64, expect: u64, op: &str, way: usize, bits: u64| {
            let lane_field = (word >> off) & lane_mask;
            if lane_field >> (ways - 1) != 0 {
                return Err(format!(
                    "PlruIpv {ways}-way lane {lane}: {op}(way {way}) from state {bits:#x} \
                     wrote the pad bit"
                ));
            }
            if word & !(lane_mask << off) != sibling {
                return Err(format!(
                    "PlruIpv {ways}-way lane {lane}: {op}(way {way}) from state {bits:#x} \
                     leaked across the lane boundary (sibling poison clobbered, word \
                     {word:#018x})"
                ));
            }
            if lane_field != expect {
                return Err(format!(
                    "PlruIpv {ways}-way lane {lane}: {op}(way {way}) from state {bits:#x} \
                     produced tree bits {lane_field:#x}, scalar model says {expect:#x}"
                ));
            }
            Ok(())
        };
        for bits in 0..tree_states {
            let start = sibling | (bits << off);
            let naive = NaiveTree::new(ways, bits);

            st.words[0] = start;
            let got = st.victim(ways, lane);
            transitions += 1;
            if got != naive.victim() {
                return Err(format!(
                    "PlruIpv {ways}-way lane {lane}: victim from state {bits:#x} is way \
                     {got}, scalar model says {}",
                    naive.victim()
                ));
            }
            if st.words[0] != start {
                return Err(format!(
                    "PlruIpv {ways}-way lane {lane}: victim from state {bits:#x} mutated \
                     the packed word"
                ));
            }

            for way in 0..ways {
                st.words[0] = start;
                st.on_hit(ways, lane, way);
                if defect == SweepDefect::Seeded {
                    st.words[0] ^= 1u64 << (((lane + 1) % lanes) * ways);
                }
                let mut n = naive.clone();
                let pos = n.position(way);
                n.set_position(way, usize::from(ipv[pos]));
                transitions += 1;
                check(st.words[0], n.bits(), "on_hit", way, bits)?;

                st.words[0] = start;
                st.on_fill(ways, lane, way);
                let mut n = naive.clone();
                n.set_position(way, usize::from(ipv[ways]));
                transitions += 1;
                check(st.words[0], n.bits(), "on_fill", way, bits)?;
            }
        }
    }
    Ok(KernelSweepReport {
        lanes,
        states: tree_states,
        transitions,
        exhaustive: true,
    })
}

/// Heap's algorithm over `0..ways`, calling `f` on every permutation.
fn for_each_permutation(
    ways: usize,
    f: &mut dyn FnMut(&[u8]) -> Result<(), String>,
) -> Result<(), String> {
    let mut a: Vec<u8> = (0..ways as u8).collect();
    let mut c = vec![0usize; ways];
    f(&a)?;
    let mut i = 0;
    while i < ways {
        if c[i] < i {
            if i % 2 == 0 {
                a.swap(0, i);
            } else {
                a.swap(c[i], i);
            }
            f(&a)?;
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    Ok(())
}

fn sweep_stack(ipv: &[u8], ways: usize, defect: SweepDefect) -> Result<KernelSweepReport, String> {
    let insert = usize::from(ipv[ways]);
    let mut transitions = 0u64;
    let mut states = 0u64;
    let mut st = StackList::new(1, ways, ipv);
    // Scalar state: `perm[p]` = way at stack position `p`, packed one
    // nibble per position — directly comparable to the SWAR word.
    let pack = |perm: &[u8]| {
        perm.iter()
            .enumerate()
            .fold(0u64, |acc, (p, &w)| acc | (u64::from(w) << (4 * p)))
    };

    let mut drive = |perm: &[u8]| -> Result<(), String> {
        states += 1;
        let word = pack(perm);
        st.list[0] = word;
        let got = st.victim(ways, 0);
        transitions += 1;
        if got != usize::from(perm[ways - 1]) {
            return Err(format!(
                "StackIpv {ways}-way: victim from order {perm:?} is way {got}, scalar \
                 model says {}",
                perm[ways - 1]
            ));
        }
        if st.list[0] != word {
            return Err(format!(
                "StackIpv {ways}-way: victim from order {perm:?} mutated the packed word"
            ));
        }
        for way in 0..ways {
            let cur = perm.iter().position(|&w| usize::from(w) == way).unwrap();
            for (op, target) in [("on_hit", usize::from(ipv[cur])), ("on_fill", insert)] {
                // Reference shift-by-one move: remove at the current
                // position, reinsert at the target.
                let mut model = perm.to_vec();
                let v = model.remove(cur);
                model.insert(target, v);

                st.list[0] = word;
                if op == "on_hit" {
                    st.on_hit(ways, 0, way);
                    if defect == SweepDefect::Seeded {
                        st.list[0] =
                            nib_write(st.list[0], 0, (nib_read(st.list[0], 0) + 1) % ways as u64);
                    }
                } else {
                    st.on_fill(ways, 0, way);
                }
                transitions += 1;
                if st.list[0] != pack(&model) {
                    return Err(format!(
                        "StackIpv {ways}-way: {op}(way {way}) from order {perm:?} produced \
                         word {:#018x}, scalar model says {:#018x}",
                        st.list[0],
                        pack(&model)
                    ));
                }
            }
        }
        Ok(())
    };

    let exhaustive = ways <= 8;
    if exhaustive {
        for_each_permutation(ways, &mut drive)?;
    } else {
        // 16! start orders are out of reach: walk the transition graph
        // deterministically from the identity order, checking every
        // transition out of each visited state.
        let mut perm: Vec<u8> = (0..ways as u8).collect();
        let mut seed = 0x243f_6a88_85a3_08d3u64;
        for _ in 0..2048 {
            drive(&perm)?;
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let way = ((seed >> 33) as usize) % ways;
            let cur = perm.iter().position(|&w| usize::from(w) == way).unwrap();
            let target = if seed & 1 == 0 {
                usize::from(ipv[cur])
            } else {
                insert
            };
            let v = perm.remove(cur);
            perm.insert(target, v);
        }
    }
    Ok(KernelSweepReport {
        lanes: 1,
        states,
        transitions,
        exhaustive,
    })
}

fn sweep_rrip(
    vector: [u8; 5],
    ways: usize,
    defect: SweepDefect,
) -> Result<KernelSweepReport, String> {
    let mut transitions = 0u64;
    let mut states = 0u64;
    let mut st = RripNibbles::new(1, ways, vector);
    let pack = |rrpv: &[u8]| {
        rrpv.iter()
            .enumerate()
            .fold(0u64, |acc, (w, &r)| acc | (u64::from(r) << (4 * w)))
    };
    // Scalar victim with aging side effects, mirrored into `model`.
    let scalar_victim = |model: &mut [u8]| loop {
        if let Some(w) = (0..model.len()).find(|&w| model[w] == 3) {
            return w;
        }
        for r in model.iter_mut() {
            *r += 1;
        }
    };

    let mut drive = |rrpv: &[u8]| -> Result<(), String> {
        states += 1;
        let word = pack(rrpv);
        let mut model = rrpv.to_vec();
        st.nib[0] = word;
        let got = st.victim(ways, 0);
        let want = scalar_victim(&mut model);
        transitions += 1;
        if got != want || st.nib[0] != pack(&model) {
            return Err(format!(
                "RripIpv {ways}-way: victim from rrpv {rrpv:?} gave (way {got}, word \
                 {:#018x}), scalar model says (way {want}, word {:#018x})",
                st.nib[0],
                pack(&model)
            ));
        }
        for way in 0..ways {
            let mut model = rrpv.to_vec();
            model[way] = vector[usize::from(model[way])];
            st.nib[0] = word;
            st.on_hit(ways, 0, way);
            if defect == SweepDefect::Seeded {
                st.nib[0] = nib_write(st.nib[0], way, (nib_read(st.nib[0], way) + 1) & 3);
            }
            transitions += 1;
            if st.nib[0] != pack(&model) {
                return Err(format!(
                    "RripIpv {ways}-way: on_hit(way {way}) from rrpv {rrpv:?} produced \
                     word {:#018x}, scalar model says {:#018x}",
                    st.nib[0],
                    pack(&model)
                ));
            }

            let mut model = rrpv.to_vec();
            model[way] = vector[4];
            st.nib[0] = word;
            st.on_fill(ways, 0, way);
            transitions += 1;
            if st.nib[0] != pack(&model) {
                return Err(format!(
                    "RripIpv {ways}-way: on_fill(way {way}) from rrpv {rrpv:?} produced \
                     word {:#018x}, scalar model says {:#018x}",
                    st.nib[0],
                    pack(&model)
                ));
            }
        }
        Ok(())
    };

    let exhaustive = ways <= 8;
    if exhaustive {
        let total = 1u64 << (2 * ways);
        let mut rrpv = vec![0u8; ways];
        for code in 0..total {
            for (w, r) in rrpv.iter_mut().enumerate() {
                *r = ((code >> (2 * w)) & 3) as u8;
            }
            drive(&rrpv)?;
        }
    } else {
        // 4^16 RRPV maps: deterministic walk from the all-max fill state.
        let mut rrpv = vec![3u8; ways];
        let mut seed = 0x1319_8a2e_0370_7344u64;
        for _ in 0..2048 {
            drive(&rrpv)?;
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let way = ((seed >> 33) as usize) % ways;
            match seed % 3 {
                0 => {
                    scalar_victim(&mut rrpv);
                }
                1 => rrpv[way] = vector[usize::from(rrpv[way])],
                _ => rrpv[way] = vector[4],
            }
        }
    }
    Ok(KernelSweepReport {
        lanes: 1,
        states,
        transitions,
        exhaustive,
    })
}

// ---------------------------------------------------------------------------
// The replay loop.
// ---------------------------------------------------------------------------

/// One access against the packed tag array + replacement state, with the
/// exact statistics protocol of `SetAssocCache::access_tagged`.
/// Qualifying kernels use the default (no-op) `on_miss`, `should_bypass`,
/// and `on_evict`, so those callbacks are elided rather than emulated.
#[inline(always)]
fn step<P: ReplState>(
    ways: usize,
    geom: &CacheGeometry,
    lines: &mut [u64],
    state: &mut P,
    stats: &mut CacheStats,
    a: &Access,
) -> bool {
    let block = geom.block_of(a.addr);
    let set = geom.set_of_block(block);
    let tag = geom.tag_of_block(block);
    let base = set * ways;
    let is_write = a.is_write();
    stats.accesses += 1;

    let (match_mask, valid_mask) = scan_masks(
        &lines[base..base + ways],
        tag | LINE_VALID,
        LINE_VALID,
        LINE_DIRTY,
    );

    if match_mask != 0 {
        let way = match_mask.trailing_zeros() as usize;
        if is_write {
            lines[base + way] |= LINE_DIRTY;
        }
        stats.hits += 1;
        state.on_hit(ways, set, way);
        return true;
    }

    stats.misses += 1;
    let first_invalid = (!valid_mask).trailing_zeros() as usize;
    let fill_way = if first_invalid < ways {
        first_invalid
    } else {
        let w = state.victim(ways, set);
        debug_assert!(w < ways, "sliced victim out of range");
        stats.evictions += 1;
        stats.writebacks += u64::from(lines[base + w] & LINE_DIRTY != 0);
        w
    };
    lines[base + fill_way] = tag | LINE_VALID | if is_write { LINE_DIRTY } else { 0 };
    state.on_fill(ways, set, fill_way);
    false
}

#[inline(always)]
fn run<P: ReplState, S: FnMut(u32, bool)>(
    ways: usize,
    geom: &CacheGeometry,
    state: &mut P,
    stream: &[Access],
    warmup: usize,
    sink: &mut S,
) -> CacheStats {
    let mut lines = vec![0u64; geom.sets() * ways];
    let mut stats = CacheStats::new();
    let warmup = warmup.min(stream.len());
    for a in &stream[..warmup] {
        step(ways, geom, &mut lines, state, &mut stats, a);
    }
    stats = CacheStats::new();
    for a in &stream[warmup..] {
        let hit = step(ways, geom, &mut lines, state, &mut stats, a);
        sink(a.icount_delta, hit);
    }
    stats
}

/// Replays `stream` through the bit-sliced engine: the first `warmup`
/// accesses only warm the cache, then statistics cover the remainder
/// while `sink` receives each measured access's `(icount_delta, hit)` in
/// exact stream order (for cycle accounting).
///
/// Returns `None` — without touching `sink` — when the kernel does not
/// support `geom` (see [`SliceKernel::supports`]); callers fall back to
/// the monomorphized engine, which is always exact.
pub fn replay_sliced<S: FnMut(u32, bool)>(
    stream: &[Access],
    geom: &CacheGeometry,
    kernel: &SliceKernel,
    warmup: usize,
    mut sink: S,
) -> Option<CacheStats> {
    if !kernel.supports(geom) {
        return None;
    }
    let sets = geom.sets();
    // Dispatch on the (validated) associativity with literal arguments so
    // each arm monomorphizes `run` with a constant `ways`: the lane walks
    // unroll and the `64/ways` lane math folds to shifts.
    macro_rules! run_ways {
        ($st:expr) => {
            match geom.ways() {
                2 => run(2, geom, $st, stream, warmup, &mut sink),
                4 => run(4, geom, $st, stream, warmup, &mut sink),
                8 => run(8, geom, $st, stream, warmup, &mut sink),
                16 => run(16, geom, $st, stream, warmup, &mut sink),
                _ => unreachable!("supports() admitted ways {}", geom.ways()),
            }
        };
    }
    Some(match kernel {
        SliceKernel::PlruIpv { ipv } => run_ways!(&mut PlruLanes::new(sets, geom.ways(), ipv)),
        SliceKernel::StackIpv { ipv } => run_ways!(&mut StackList::new(sets, geom.ways(), ipv)),
        SliceKernel::RripIpv { vector } => {
            run_ways!(&mut RripNibbles::new(sets, geom.ways(), *vector))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{Access, AccessContext};
    use crate::cache::SetAssocCache;
    use crate::policy::{ReplacementPolicy, ShardAffinity};
    use sim_lint::PlruState;

    // -- SWAR helpers against naive models ---------------------------------

    #[test]
    fn nib_find_matches_linear_scan() {
        for ways in [2usize, 4, 8, 16] {
            let mut word = 0u64;
            // An arbitrary permutation of 0..ways.
            for p in 0..ways {
                word |= (((p * 7 + 3) % ways) as u64) << (4 * p);
            }
            for target in 0..ways as u64 {
                let naive = (0..ways).find(|&p| nib_read(word, p) == target).unwrap();
                assert_eq!(nib_find(word, target, ways), naive, "ways={ways}");
            }
        }
    }

    #[test]
    fn stack_move_matches_vec_model() {
        // Drive the packed stack and a positions-vector model (the exact
        // RecencyStack::move_to semantics) through chaotic moves.
        for ways in [2usize, 4, 8, 16] {
            let mut list = 0u64;
            for p in 0..ways {
                list |= (p as u64) << (4 * p);
            }
            let mut pos: Vec<usize> = (0..ways).collect(); // pos[way]
            let mut seed = 0x12345678u64;
            for _ in 0..500 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let way = (seed >> 33) as usize % ways;
                let target = (seed >> 49) as usize % ways;
                let current = pos[way];
                list = stack_move(list, way as u64, current, target);
                // Reference shift semantics.
                if target < current {
                    for p in pos.iter_mut() {
                        if (target..current).contains(p) {
                            *p += 1;
                        }
                    }
                } else {
                    for p in pos.iter_mut() {
                        if *p > current && *p <= target {
                            *p -= 1;
                        }
                    }
                }
                pos[way] = target;
                for (w, &p) in pos.iter().enumerate() {
                    assert_eq!(
                        nib_read(list, p),
                        w as u64,
                        "ways={ways} way={way} target={target}"
                    );
                }
            }
        }
    }

    // -- Sliced tree vs the independent naive tree --------------------------

    #[test]
    fn sliced_tree_matches_naive_tree_at_every_lane() {
        for ways in [2usize, 4, 8, 16] {
            let states = 1u64 << (ways - 1);
            // Exhaustive for ways <= 8; strided sample at 16.
            let stride = if ways == 16 { 641 } else { 1 };
            for lane in 0..64 / ways {
                let mut bits = 0u64;
                while bits < states {
                    let t = SlicedTree::at_lane(ways, bits, lane);
                    let n = NaiveTree::new(ways, bits);
                    assert_eq!(t.victim(), n.victim(), "ways={ways} lane={lane}");
                    for w in 0..ways {
                        assert_eq!(t.position(w), n.position(w));
                        for p in 0..ways {
                            let mut t2 = t.clone();
                            let mut n2 = n.clone();
                            t2.set_position(w, p);
                            n2.set_position(w, p);
                            assert_eq!(
                                t2.tree_bits(),
                                n2.bits(),
                                "ways={ways} lane={lane} bits={bits:#x} w={w} p={p}"
                            );
                        }
                    }
                    bits += stride;
                }
            }
        }
    }

    #[test]
    fn sliced_tree_lane_plru_state_round_trips() {
        for ways in [2usize, 4, 8, 16] {
            let bits = 0x5a5a & ((1u64 << (ways - 1)) - 1);
            let t = <SlicedTreeLane<3> as PlruState>::from_bits(ways, bits);
            assert_eq!(t.bits(), bits);
            assert_eq!(PlruState::ways(&t), ways);
            let mut t2 = t.clone();
            for w in 0..ways {
                for p in 0..ways {
                    t2.set_position(w, p);
                    assert_eq!(t2.position(w), p);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "poison")]
    fn cross_lane_write_is_detected() {
        let mut t = SlicedTree::at_lane(16, 0, 1);
        // Simulate a stray write into lane 0's bits.
        t.word ^= 1;
        let _ = t.tree_bits();
    }

    // -- Whole-kernel differential: sliced replay vs SetAssocCache ---------

    /// Interprets a [`SliceKernel`] naively as a boxed policy, so the
    /// sliced engine can be differentially tested against the production
    /// cache without depending on the policy crates (which sit above
    /// `sim-core` in the workspace graph).
    struct NaiveKernelPolicy {
        kernel: SliceKernel,
        trees: Vec<NaiveTree>,
        stacks: Vec<Vec<usize>>, // pos[way] per set
        rrpv: Vec<Vec<u8>>,
        ways: usize,
    }

    impl NaiveKernelPolicy {
        fn new(geom: &CacheGeometry, kernel: SliceKernel) -> Self {
            let (sets, ways) = (geom.sets(), geom.ways());
            NaiveKernelPolicy {
                kernel,
                trees: vec![NaiveTree::new(ways, 0); sets],
                stacks: vec![(0..ways).collect(); sets],
                rrpv: vec![vec![3u8; ways]; sets],
                ways,
            }
        }

        fn stack_move_to(&mut self, set: usize, way: usize, target: usize) {
            let current = self.stacks[set][way];
            if target < current {
                for p in self.stacks[set].iter_mut() {
                    if (target..current).contains(p) {
                        *p += 1;
                    }
                }
            } else {
                for p in self.stacks[set].iter_mut() {
                    if *p > current && *p <= target {
                        *p -= 1;
                    }
                }
            }
            self.stacks[set][way] = target;
        }
    }

    impl ReplacementPolicy for NaiveKernelPolicy {
        fn name(&self) -> &str {
            "naive-kernel"
        }

        fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
            match &self.kernel {
                SliceKernel::PlruIpv { .. } => self.trees[set].victim(),
                SliceKernel::StackIpv { .. } => (0..self.ways)
                    .find(|&w| self.stacks[set][w] == self.ways - 1)
                    .unwrap(),
                SliceKernel::RripIpv { .. } => loop {
                    if let Some(w) = (0..self.ways).find(|&w| self.rrpv[set][w] == 3) {
                        break w;
                    }
                    for r in self.rrpv[set].iter_mut() {
                        *r += 1;
                    }
                },
            }
        }

        fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
            match &self.kernel.clone() {
                SliceKernel::PlruIpv { ipv } => {
                    let p = self.trees[set].position(way);
                    self.trees[set].set_position(way, usize::from(ipv[p]));
                }
                SliceKernel::StackIpv { ipv } => {
                    let p = self.stacks[set][way];
                    self.stack_move_to(set, way, usize::from(ipv[p]));
                }
                SliceKernel::RripIpv { vector } => {
                    let r = usize::from(self.rrpv[set][way]);
                    self.rrpv[set][way] = vector[r];
                }
            }
        }

        fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
            match &self.kernel.clone() {
                SliceKernel::PlruIpv { ipv } => {
                    self.trees[set].set_position(way, usize::from(ipv[self.ways]));
                }
                SliceKernel::StackIpv { ipv } => {
                    self.stack_move_to(set, way, usize::from(ipv[self.ways]));
                }
                SliceKernel::RripIpv { vector } => self.rrpv[set][way] = vector[4],
            }
        }

        fn bits_per_set(&self) -> u64 {
            0
        }

        fn shard_affinity(&self) -> ShardAffinity {
            ShardAffinity::SetLocal
        }
    }

    fn mixed_stream(n: usize, blocks: u64) -> Vec<Access> {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let hot = i % 3 == 0;
                let addr = (state % if hot { blocks / 8 } else { blocks }) * 64;
                let a = if state & 3 == 0 {
                    Access::write(addr, state % 256)
                } else {
                    Access::read(addr, state % 256)
                };
                a.with_icount_delta((state % 5) as u32 + 1)
            })
            .collect()
    }

    fn kernels(ways: usize) -> Vec<SliceKernel> {
        let mut zero = vec![0u8; ways + 1];
        let mut churn = vec![0u8; ways + 1];
        for (i, e) in churn.iter_mut().enumerate() {
            *e = ((i * 3 + 1) % ways) as u8;
        }
        zero[ways] = 0;
        vec![
            SliceKernel::PlruIpv { ipv: zero.clone() },
            SliceKernel::PlruIpv { ipv: churn.clone() },
            SliceKernel::StackIpv { ipv: zero },
            SliceKernel::StackIpv { ipv: churn },
            SliceKernel::RripIpv {
                vector: [0, 0, 0, 0, 2],
            },
            SliceKernel::RripIpv {
                vector: [0, 1, 1, 2, 3],
            },
        ]
    }

    #[test]
    fn sliced_replay_is_bit_identical_to_cache_replay() {
        for ways in [2usize, 4, 8, 16] {
            let geom = CacheGeometry::from_sets(32, ways, 64).unwrap();
            let stream = mixed_stream(12_000, 32 * ways as u64 * 3);
            let warmup = 3_000;
            for kernel in kernels(ways) {
                // Reference: the production cache driving the naive
                // kernel interpreter.
                let mut cache =
                    SetAssocCache::with_policy(geom, NaiveKernelPolicy::new(&geom, kernel.clone()));
                for a in &stream[..warmup] {
                    cache.access_fast(a);
                }
                cache.reset_stats();
                let mut ref_hits = Vec::new();
                for a in &stream[warmup..] {
                    ref_hits.push(cache.access_fast(a));
                }

                let mut hits = Vec::new();
                let stats = replay_sliced(&stream, &geom, &kernel, warmup, |_, h| hits.push(h))
                    .expect("kernel supports geometry");
                assert_eq!(stats, *cache.stats(), "ways={ways} kernel={kernel:?}");
                assert_eq!(hits, ref_hits, "ways={ways} kernel={kernel:?}");
            }
        }
    }

    #[test]
    fn unsupported_geometry_falls_back() {
        let geom = CacheGeometry::from_sets(4, 32, 64).unwrap(); // 32-way
        let kernel = SliceKernel::PlruIpv { ipv: vec![0; 33] };
        assert!(!kernel.supports(&geom));
        assert!(replay_sliced(&[], &geom, &kernel, 0, |_, _| {}).is_none());
    }

    #[test]
    fn malformed_kernels_are_rejected() {
        let geom = CacheGeometry::from_sets(4, 16, 64).unwrap();
        assert!(!SliceKernel::PlruIpv { ipv: vec![0; 16] }.supports(&geom)); // short
        assert!(!SliceKernel::StackIpv { ipv: vec![16; 17] }.supports(&geom)); // out of range
        assert!(!SliceKernel::RripIpv {
            vector: [0, 0, 0, 0, 4]
        }
        .supports(&geom));
        assert!(SliceKernel::RripIpv {
            vector: [0, 0, 0, 0, 2]
        }
        .supports(&geom));
    }

    #[test]
    fn lanes_reporting() {
        let plru = SliceKernel::PlruIpv { ipv: vec![0; 17] };
        assert_eq!(plru.lanes(16), 4);
        assert_eq!(plru.lanes(8), 8);
        assert_eq!(SliceKernel::StackIpv { ipv: vec![0; 17] }.lanes(16), 1);
        assert_eq!(SliceKernel::RripIpv { vector: [0; 5] }.lanes(16), 1);
    }

    // -- Kernel soundness sweep --------------------------------------------

    #[test]
    fn kernel_sweep_passes_for_every_kernel_shape() {
        for ways in [2usize, 4, 8] {
            for kernel in kernels(ways) {
                let r = kernel_soundness_sweep(&kernel, ways)
                    .unwrap_or_else(|e| panic!("ways={ways} kernel={kernel:?}: {e}"));
                assert!(r.exhaustive, "ways={ways} kernel={kernel:?}");
                assert!(r.transitions > 0);
            }
        }
        // 16-way nibble kernels fall back to the deterministic walk; the
        // exhaustive 16-way PLRU sweep runs from xtask model-check in
        // release, where its 4M transitions are cheap.
        let r = kernel_soundness_sweep(&SliceKernel::StackIpv { ipv: vec![0; 17] }, 16).unwrap();
        assert!(!r.exhaustive);
        let r = kernel_soundness_sweep(
            &SliceKernel::RripIpv {
                vector: [0, 0, 0, 0, 2],
            },
            16,
        )
        .unwrap();
        assert!(!r.exhaustive);
    }

    #[test]
    fn kernel_sweep_rejects_unsupported_shapes() {
        assert!(kernel_soundness_sweep(&SliceKernel::PlruIpv { ipv: vec![0; 5] }, 3).is_err());
        assert!(kernel_soundness_sweep(&SliceKernel::PlruIpv { ipv: vec![0; 5] }, 8).is_err());
    }

    #[test]
    fn kernel_sweep_catches_seeded_lane_leak() {
        let err = kernel_soundness_sweep_poisoned(&SliceKernel::PlruIpv { ipv: vec![0; 5] }, 4)
            .unwrap_err();
        assert!(err.contains("lane boundary"), "{err}");
    }

    #[test]
    fn kernel_sweep_catches_seeded_nibble_corruption() {
        let err = kernel_soundness_sweep_poisoned(&SliceKernel::StackIpv { ipv: vec![0; 5] }, 4)
            .unwrap_err();
        assert!(err.contains("on_hit"), "{err}");
        let err = kernel_soundness_sweep_poisoned(
            &SliceKernel::RripIpv {
                vector: [0, 0, 0, 0, 2],
            },
            4,
        )
        .unwrap_err();
        assert!(err.contains("on_hit"), "{err}");
        // At 16 ways the walk path must catch the same defect.
        let err = kernel_soundness_sweep_poisoned(&SliceKernel::StackIpv { ipv: vec![0; 17] }, 16)
            .unwrap_err();
        assert!(err.contains("on_hit"), "{err}");
    }

    #[test]
    fn warmup_longer_than_stream_is_clamped() {
        let geom = CacheGeometry::from_sets(4, 4, 64).unwrap();
        let stream = mixed_stream(100, 64);
        let kernel = SliceKernel::PlruIpv { ipv: vec![0; 5] };
        let stats = replay_sliced(&stream, &geom, &kernel, 1_000, |_, _| {}).unwrap();
        assert_eq!(stats.accesses, 0);
    }
}
