#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

//! Core cache-simulation substrate for the PseudoLRU insertion/promotion
//! reproduction.
//!
//! This crate provides the building blocks every replacement policy and
//! experiment in the workspace is written against:
//!
//! * [`CacheGeometry`] — validated cache dimensions (size, associativity,
//!   line size) and the derived set/tag arithmetic.
//! * [`Access`] / [`AccessContext`] — a single memory reference as seen by a
//!   cache level.
//! * [`ReplacementPolicy`] — the trait all policies (LRU, PLRU, GIPPR,
//!   DGIPPR, DRRIP, PDP, …) implement. Policies manage only *way indices*;
//!   the cache owns tags and validity.
//! * [`SetAssocCache`] — a set-associative cache that drives a policy and
//!   collects [`CacheStats`].
//! * [`dueling`] — the set-dueling framework (leader-set maps, PSEL
//!   counters, two-way and tournament selection) shared by DIP, DRRIP, and
//!   DGIPPR.
//! * [`slice`] / [`simd`] — the bit-sliced replay kernel (4 PLRU sets per
//!   `u64`, SWAR recency stacks and RRPV arrays) and the stable-Rust wide
//!   tag-scan primitives backing both it and [`SetAssocCache`].
//! * [`mattson`] — single-pass stack-distance profiling: one stream pass
//!   yields exact LRU hit/miss counts at every associativity for
//!   inclusion-preserving policies.
//! * [`sample`] — deterministic set-sampled sub-streams: the exact
//!   per-set replay of a fixed residue class of sets, the GA's
//!   mid-fidelity evaluation tier.
//! * [`overhead`] — storage-overhead accounting used to regenerate the
//!   paper's Section 3.6 cost comparison.
//! * [`persist`] — crash-safe atomic artifact writes (tmp + fsync +
//!   rename) used for every file the experiment pipeline produces.
//!
//! # Example
//!
//! Simulate a small cache under a trivial policy:
//!
//! ```
//! use sim_core::{Access, CacheGeometry, SetAssocCache};
//! use sim_core::policy::fifo_like_fixture::AlwaysWayZero;
//!
//! # fn main() -> Result<(), sim_core::GeometryError> {
//! let geom = CacheGeometry::new(4 * 1024, 4, 64)?;
//! let mut cache = SetAssocCache::new(geom, Box::new(AlwaysWayZero::new(&geom)));
//! for blk in 0..128u64 {
//!     cache.access_block(blk, &Access::read(blk << 6, 0).context());
//! }
//! assert_eq!(cache.stats().misses, 128);
//! # Ok(())
//! # }
//! ```

pub mod access;
pub mod cache;
pub mod dueling;
pub mod geometry;
pub mod mattson;
pub mod overhead;
pub mod persist;
pub mod policy;
pub mod pool;
pub mod sample;
pub mod shard;
pub mod simd;
pub mod slice;
pub mod stats;

pub use access::{Access, AccessContext, AccessKind};
pub use cache::{AccessOutcome, Evicted, SetAssocCache};
pub use dueling::{DuelController, LeaderMap, Psel, Selector, SetRole};
pub use geometry::{CacheGeometry, GeometryError};
pub use mattson::StackDistanceProfile;
pub use overhead::OverheadReport;
pub use persist::{atomic_write, atomic_write_with};
pub use policy::{PolicyFactory, ReplacementPolicy, ShardAffinity};
pub use sample::SampledStream;
pub use shard::{ShardRun, ShardedStream};
pub use slice::{
    kernel_soundness_sweep, replay_sliced, KernelSweepReport, SliceKernel, SlicedTree,
    SlicedTreeLane,
};
pub use stats::CacheStats;
