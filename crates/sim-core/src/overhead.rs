//! Storage-overhead accounting (paper Section 3.6).
//!
//! The paper's central cost claim: for a 4 MB 16-way LLC, tree PseudoLRU and
//! GIPPR/DGIPPR need 15 bits/set (7 KB), true LRU needs 64 bits/set (32 KB),
//! DRRIP needs 2 bits/block (16 KB), and PDP needs 4 bits/block (32 KB) plus
//! a microcontroller. [`OverheadReport`] computes these figures from a
//! geometry and a policy's declared costs.

use crate::geometry::CacheGeometry;
use crate::policy::ReplacementPolicy;
use std::fmt;

/// Replacement-metadata cost of one policy on one cache geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadReport {
    /// Policy name.
    pub policy: String,
    /// Bits of replacement state per set.
    pub bits_per_set: u64,
    /// Cache-global bits (dueling counters, samplers, …).
    pub global_bits: u64,
    /// Number of sets in the geometry.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl OverheadReport {
    /// Computes the report for `policy` on `geom`.
    pub fn for_policy(geom: &CacheGeometry, policy: &dyn ReplacementPolicy) -> Self {
        OverheadReport {
            policy: policy.name().to_string(),
            bits_per_set: policy.bits_per_set(),
            global_bits: policy.global_bits(),
            sets: geom.sets(),
            ways: geom.ways(),
        }
    }

    /// Builds a report from raw numbers (for policies not instantiated here,
    /// e.g. the paper's PDP microcontroller estimate).
    pub fn from_parts(
        policy: &str,
        bits_per_set: u64,
        global_bits: u64,
        geom: &CacheGeometry,
    ) -> Self {
        OverheadReport {
            policy: policy.to_string(),
            bits_per_set,
            global_bits,
            sets: geom.sets(),
            ways: geom.ways(),
        }
    }

    /// Per-set metadata summed over the cache, in bits.
    pub fn total_set_bits(&self) -> u64 {
        self.bits_per_set * self.sets as u64
    }

    /// All replacement metadata (per-set plus global), in bits.
    pub fn total_bits(&self) -> u64 {
        self.total_set_bits() + self.global_bits
    }

    /// All replacement metadata in kilobytes (binary).
    pub fn total_kib(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }

    /// Average metadata bits per cache block.
    pub fn bits_per_block(&self) -> f64 {
        self.bits_per_set as f64 / self.ways as f64
    }
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} bits/set ({:.3} bits/block), {} global bits, {:.1} KB total",
            self.policy,
            self.bits_per_set,
            self.bits_per_block(),
            self.global_bits,
            self.total_kib()
        )
    }
}

/// Bits per set for a true-LRU recency stack: `k * ceil(log2 k)`.
pub fn lru_bits_per_set(ways: usize) -> u64 {
    ways as u64 * log2_ceil(ways)
}

/// Bits per set for a tree PLRU (and GIPPR/DGIPPR): `k - 1`.
pub fn plru_bits_per_set(ways: usize) -> u64 {
    ways as u64 - 1
}

/// Bits per set for an RRIP family policy with `m`-bit RRPVs: `k * m`.
pub fn rrip_bits_per_set(ways: usize, rrpv_bits: u32) -> u64 {
    ways as u64 * u64::from(rrpv_bits)
}

fn log2_ceil(n: usize) -> u64 {
    debug_assert!(n > 0);
    (usize::BITS - (n - 1).leading_zeros()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::fifo_like_fixture::AlwaysWayZero;

    fn llc() -> CacheGeometry {
        CacheGeometry::new(4 * 1024 * 1024, 16, 64).unwrap()
    }

    #[test]
    fn paper_bit_counts_for_16_ways() {
        assert_eq!(lru_bits_per_set(16), 64, "LRU: 4 bits x 16 ways");
        assert_eq!(plru_bits_per_set(16), 15, "PLRU: k-1 bits");
        assert_eq!(rrip_bits_per_set(16, 2), 32, "DRRIP: 2 bits/block");
        assert_eq!(rrip_bits_per_set(16, 4), 64, "PDP at 4 bits/block");
    }

    #[test]
    fn paper_kb_totals_for_4mb_llc() {
        let geom = llc();
        let lru = OverheadReport::from_parts("LRU", lru_bits_per_set(16), 0, &geom);
        assert!(
            (lru.total_kib() - 32.0).abs() < 1e-9,
            "LRU is 32 KB on 4 MB"
        );
        let plru = OverheadReport::from_parts("PLRU", plru_bits_per_set(16), 0, &geom);
        assert!(
            (plru.total_kib() - 7.5).abs() < 1e-9,
            "PLRU is 7.5 KB (paper rounds to 7 KB)"
        );
        let drrip = OverheadReport::from_parts("DRRIP", rrip_bits_per_set(16, 2), 10, &geom);
        assert!(
            drrip.total_kib() > 16.0 && drrip.total_kib() < 16.01,
            "DRRIP about 16 KB"
        );
    }

    #[test]
    fn bits_per_block_below_one_for_gippr() {
        let geom = llc();
        let r = OverheadReport::from_parts("GIPPR", plru_bits_per_set(16), 33, &geom);
        assert!(
            r.bits_per_block() < 0.94 + 1e-9,
            "paper: less than 0.94 bits per block"
        );
    }

    #[test]
    fn for_policy_reads_declared_costs() {
        let geom = llc();
        let p = AlwaysWayZero::new(&geom);
        let r = OverheadReport::for_policy(&geom, &p);
        assert_eq!(r.total_bits(), 0);
        assert_eq!(r.policy, "always-way-0");
    }

    #[test]
    fn log2_ceil_handles_non_powers() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(16), 4);
        assert_eq!(log2_ceil(17), 5);
    }

    #[test]
    fn display_nonempty() {
        let geom = llc();
        let r = OverheadReport::from_parts("x", 15, 33, &geom);
        assert!(r.to_string().contains("bits/set"));
    }
}
