//! Set-sharded stream routing for single-pass multi-policy replay.
//!
//! Cache sets are independent state machines: for any policy whose
//! transitions are per-set ([`ShardAffinity::SetLocal`]), the final state
//! and statistics of a replay depend only on the per-set subsequences of
//! the access stream, not on their interleaving. [`ShardedStream`]
//! exploits this by routing a captured stream once — one pre-pass doing
//! the set-index math — into `S` contiguous-set-range buckets, after
//! which every (policy × shard) pair can be replayed concurrently and
//! the per-shard [`CacheStats`] summed in fixed shard order, giving
//! results bit-identical to a sequential replay *and* bit-identical
//! run-to-run.
//!
//! Buckets are stored struct-of-arrays (packed block-address words and a
//! parallel PC array) so the replay scan stays branchless: the set and
//! tag fall out of the pre-split block address with a mask and a shift,
//! with no per-policy re-derivation.
//!
//! Timing reconstruction: hit/miss outcomes of a sharded replay arrive
//! bucket-by-bucket, but the cycle model
//! (`mem_model::PerfAccumulator`) consumes them in global stream order.
//! Each [`ShardRun`] therefore carries a hit bitmap over its bucket's
//! measured entries; [`ShardedStream::shard_of`] and
//! [`ShardedStream::icount`] let a merge pass replay those bits in exact
//! global order with one cursor per shard.

use crate::access::{Access, AccessContext};
use crate::cache::SetAssocCache;
use crate::geometry::CacheGeometry;
use crate::policy::ReplacementPolicy;
use crate::stats::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};

pub use crate::policy::ShardAffinity;

/// Process-wide count of routing pre-passes ([`ShardedStream::build`]
/// invocations). The routing pass is pure overhead whenever `shards == 1`
/// — the single bucket is the stream in order — so degenerate-path
/// regression tests assert this counter does not advance where the
/// engines promise to skip routing.
static ROUTING_PREPASSES: AtomicU64 = AtomicU64::new(0);

/// Total [`ShardedStream::build`] routing pre-passes so far in this
/// process (monotonic; test/diagnostic aid).
pub fn routing_prepasses() -> u64 {
    ROUTING_PREPASSES.load(Ordering::Relaxed)
}

/// High bit of a packed bucket word marks a write; the low 63 bits are the
/// block address. With 64-byte lines a full 64-bit byte address leaves six
/// spare high bits, so the flag can never collide with address bits.
const WRITE_FLAG: u64 = 1 << 63;

/// One shard's slice of the stream, struct-of-arrays.
#[derive(Debug, Clone, Default)]
struct Bucket {
    /// Block address | [`WRITE_FLAG`], in stream order.
    blk: Vec<u64>,
    /// Program counter of each access, parallel to `blk`.
    pc: Vec<u64>,
    /// Entries `[0, warm)` come from the stream's global warm-up prefix.
    warm: usize,
}

/// A captured access stream routed by set index into `S` buckets covering
/// contiguous, disjoint set ranges (shard `s` owns sets
/// `[s * sets/S, (s+1) * sets/S)`).
///
/// Routing is stable: within a bucket, accesses keep their stream order,
/// so every per-set subsequence is exactly what a sequential replay would
/// present to that set.
#[derive(Debug, Clone)]
pub struct ShardedStream {
    geom: CacheGeometry,
    buckets: Vec<Bucket>,
    /// Shard owning each *measured* access, in global stream order.
    shard_of: Vec<u16>,
    /// `icount_delta` of each measured access, in global stream order.
    icount: Vec<u32>,
    warmup: usize,
    shard_shift: u32,
}

/// The outcome of replaying one policy instance over one shard.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Statistics over the shard's measured entries (warm-up excluded).
    pub stats: CacheStats,
    /// Bit `i` set iff the shard's `i`-th measured access hit, packed 64
    /// per word in bucket order.
    pub hits: Vec<u64>,
}

impl ShardedStream {
    /// Routes `stream` into `shards` buckets for `geom`. The first
    /// `warmup` accesses are marked as warm-up: sharded replays run them
    /// to populate cache and policy state, then reset statistics —
    /// exactly the sequential warm-up contract, applied per set.
    ///
    /// `shards` must be a power of two no larger than `geom.sets()` (and
    /// at most 65 536, so shard ids fit in a `u16`).
    pub fn build(stream: &[Access], geom: &CacheGeometry, warmup: usize, shards: usize) -> Self {
        assert!(
            shards.is_power_of_two() && shards <= geom.sets() && shards <= 1 << 16,
            "shards must be a power of two in [1, min(sets, 65536)], got {shards}"
        );
        ROUTING_PREPASSES.fetch_add(1, Ordering::Relaxed);
        let warmup = warmup.min(stream.len());
        let shard_shift = geom.sets().trailing_zeros() - shards.trailing_zeros();

        // Pass 1: exact bucket sizes, so the fill pass never reallocates.
        let mut counts = vec![0usize; shards];
        for a in stream {
            let set = geom.set_of(a.addr);
            counts[set >> shard_shift] += 1;
        }
        let mut buckets: Vec<Bucket> = counts
            .iter()
            .map(|&n| Bucket {
                blk: Vec::with_capacity(n),
                pc: Vec::with_capacity(n),
                warm: 0,
            })
            .collect();

        // Pass 2: route. Warm-up entries land first in each bucket (the
        // stream is scanned in order), so `[0, warm)` is the warm prefix.
        let measured = stream.len() - warmup;
        let mut shard_of = Vec::with_capacity(measured);
        let mut icount = Vec::with_capacity(measured);
        for (i, a) in stream.iter().enumerate() {
            let block = geom.block_of(a.addr);
            debug_assert_eq!(block & WRITE_FLAG, 0, "block address overflows packed word");
            let s = geom.set_of_block(block) >> shard_shift;
            let b = &mut buckets[s];
            b.blk
                .push(block | if a.is_write() { WRITE_FLAG } else { 0 });
            b.pc.push(a.pc);
            if i < warmup {
                b.warm += 1;
            } else {
                shard_of.push(s as u16);
                icount.push(a.icount_delta);
            }
        }

        ShardedStream {
            geom: *geom,
            buckets,
            shard_of,
            icount,
            warmup,
            shard_shift,
        }
    }

    /// [`ShardedStream::build`] with the shard count chosen for a target
    /// parallelism: the largest power of two ≤ `max(target, 1)`, clamped
    /// to the set count. A few shards per worker would balance better,
    /// but each (policy × shard) task allocates a full tag array, so the
    /// engine keeps shard granularity coarse.
    pub fn for_parallelism(
        stream: &[Access],
        geom: &CacheGeometry,
        warmup: usize,
        target: usize,
    ) -> Self {
        let shards = prev_power_of_two(target.max(1))
            .min(geom.sets())
            .min(1 << 16);
        Self::build(stream, geom, warmup, shards)
    }

    /// The geometry the stream was routed for.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.buckets.len()
    }

    /// Total routed accesses (warm-up + measured).
    pub fn len(&self) -> usize {
        self.warmup + self.shard_of.len()
    }

    /// True iff the stream was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of the global warm-up prefix.
    pub fn warmup(&self) -> usize {
        self.warmup
    }

    /// Shard owning each measured access, in global stream order.
    pub fn shard_of(&self) -> &[u16] {
        &self.shard_of
    }

    /// `icount_delta` of each measured access, in global stream order.
    pub fn icount(&self) -> &[u32] {
        &self.icount
    }

    /// The shard owning `set`.
    pub fn shard_of_set(&self, set: usize) -> usize {
        set >> self.shard_shift
    }

    /// Number of measured accesses routed to `shard`.
    pub fn measured_in(&self, shard: usize) -> usize {
        let b = &self.buckets[shard];
        b.blk.len() - b.warm
    }

    /// Replays `policy` over `shard` on a fresh full-geometry cache.
    ///
    /// The cache spans all sets (policies index state by absolute set
    /// number), but only this shard's sets are ever touched, so the
    /// per-set transitions are exactly those of a sequential replay. The
    /// warm prefix runs first, statistics reset, then the measured
    /// entries replay while their hit bits are recorded.
    pub fn replay_shard<P: ReplacementPolicy>(&self, shard: usize, policy: P) -> ShardRun {
        let measured = self.measured_in(shard);
        let mut hits = vec![0u64; measured.div_ceil(64)];
        let mut j = 0usize;
        let stats = self.replay_shard_with(shard, policy, |hit| {
            hits[j >> 6] |= u64::from(hit) << (j & 63);
            j += 1;
        });
        ShardRun { stats, hits }
    }

    /// [`ShardedStream::replay_shard`] with the hit sequence streamed to
    /// `note` (one call per measured entry, in bucket order) instead of
    /// packed into a bitmap.
    ///
    /// At `shards == 1` the single bucket *is* the stream in global order,
    /// so a caller can feed its cycle model directly from `note` and skip
    /// both the bitmap allocation and the merge-cursor second pass — the
    /// degenerate-path fix for the single-core regression.
    pub fn replay_shard_with<P, F>(&self, shard: usize, policy: P, mut note: F) -> CacheStats
    where
        P: ReplacementPolicy,
        F: FnMut(bool),
    {
        let b = &self.buckets[shard];
        let mut cache = SetAssocCache::with_policy(self.geom, policy);
        let line_shift = self.geom.line_bytes().trailing_zeros();

        for i in 0..b.warm {
            let (set, tag, ctx) = self.unpack(b, i, line_shift);
            cache.access_tagged(set, tag, &ctx);
        }
        cache.reset_stats();

        for i in b.warm..b.blk.len() {
            let (set, tag, ctx) = self.unpack(b, i, line_shift);
            note(cache.access_tagged(set, tag, &ctx));
        }

        *cache.stats()
    }

    /// Sums per-shard statistics in fixed (ascending shard) order. The
    /// counters are `u64` sums, so any order gives the same totals; the
    /// fixed order is the documented determinism contract.
    pub fn merge_stats<'a, I>(runs: I) -> CacheStats
    where
        I: IntoIterator<Item = &'a ShardRun>,
    {
        let mut total = CacheStats::new();
        for r in runs {
            total += r.stats;
        }
        total
    }

    #[inline]
    fn unpack(&self, b: &Bucket, i: usize, line_shift: u32) -> (usize, u64, AccessContext) {
        let word = b.blk[i];
        let block = word & !WRITE_FLAG;
        let set = self.geom.set_of_block(block);
        let tag = self.geom.tag_of_block(block);
        let ctx = AccessContext {
            pc: b.pc[i],
            // Reconstructed from the block address: sub-line bits are
            // gone. Part of the `SetLocal` contract (policies must not
            // read them); `Global` policies never take this path.
            addr: block << line_shift,
            is_write: word & WRITE_FLAG != 0,
        };
        (set, tag, ctx)
    }

    /// Iterates a shard's measured hit bits in bucket order (test aid and
    /// merge-pass building block).
    pub fn hit_at(run: &ShardRun, j: usize) -> bool {
        run.hits[j >> 6] >> (j & 63) & 1 != 0
    }
}

/// Largest power of two ≤ `n` (`n` ≥ 1).
fn prev_power_of_two(n: usize) -> usize {
    debug_assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use crate::policy::fifo_like_fixture::AlwaysWayZero;

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sets(64, 4, 64).unwrap()
    }

    fn synthetic(n: usize) -> Vec<Access> {
        // Deterministic xorshift mix of hot blocks and a scan.
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let addr = if i % 3 == 0 {
                    (state % 128) * 64
                } else {
                    (state % 8192) * 64
                };
                let a = if state & 1 == 0 {
                    Access::read(addr, state % 1024)
                } else {
                    Access::write(addr, state % 1024)
                };
                a.with_icount_delta((state % 7) as u32 + 1)
            })
            .collect()
    }

    #[test]
    fn routing_preserves_order_and_ranges() {
        let geom = geom();
        let stream = synthetic(5000);
        let sharded = ShardedStream::build(&stream, &geom, 1000, 8);
        assert_eq!(sharded.shards(), 8);
        assert_eq!(sharded.len(), 5000);
        assert_eq!(sharded.warmup(), 1000);

        // Every access lands in the bucket owning its set range, in order.
        let sets_per_shard = geom.sets() / 8;
        let mut cursors = [0usize; 8];
        for a in &stream {
            let set = geom.set_of(a.addr);
            let s = set / sets_per_shard;
            let b = &sharded.buckets[s];
            let i = cursors[s];
            assert_eq!(b.blk[i] & !WRITE_FLAG, geom.block_of(a.addr));
            assert_eq!(b.blk[i] & WRITE_FLAG != 0, a.kind != AccessKind::Read);
            assert_eq!(b.pc[i], a.pc);
            cursors[s] += 1;
        }
        for (s, b) in sharded.buckets.iter().enumerate() {
            assert_eq!(cursors[s], b.blk.len());
        }

        // shard_of/icount cover exactly the measured suffix, in order.
        assert_eq!(sharded.shard_of().len(), 4000);
        for (k, a) in stream[1000..].iter().enumerate() {
            assert_eq!(
                sharded.shard_of()[k] as usize,
                geom.set_of(a.addr) / sets_per_shard
            );
            assert_eq!(sharded.icount()[k], a.icount_delta);
        }
    }

    #[test]
    fn warm_prefix_counts_sum_to_warmup() {
        let sharded = ShardedStream::build(&synthetic(3000), &geom(), 700, 4);
        let warm_total: usize = sharded.buckets.iter().map(|b| b.warm).sum();
        assert_eq!(warm_total, 700);
        let measured_total: usize = (0..4).map(|s| sharded.measured_in(s)).sum();
        assert_eq!(measured_total, 2300);
    }

    #[test]
    fn sharded_stats_match_sequential() {
        let geom = geom();
        let stream = synthetic(8000);
        let warmup = 2000;

        let mut seq = SetAssocCache::with_policy(geom, AlwaysWayZero);
        for a in &stream[..warmup] {
            seq.access_fast(a);
        }
        seq.reset_stats();
        let mut seq_hits = Vec::with_capacity(stream.len() - warmup);
        for a in &stream[warmup..] {
            seq_hits.push(seq.access_fast(a));
        }

        for shards in [1usize, 2, 16, 64] {
            let sharded = ShardedStream::build(&stream, &geom, warmup, shards);
            let runs: Vec<ShardRun> = (0..shards)
                .map(|s| sharded.replay_shard(s, AlwaysWayZero))
                .collect();
            assert_eq!(ShardedStream::merge_stats(&runs), *seq.stats());

            // Hit bitmaps replayed in global order equal the sequential
            // hit sequence.
            let mut cursors = vec![0usize; shards];
            for (k, &s) in sharded.shard_of().iter().enumerate() {
                let hit = ShardedStream::hit_at(&runs[s as usize], cursors[s as usize]);
                assert_eq!(hit, seq_hits[k], "access {k}");
                cursors[s as usize] += 1;
            }
        }
    }

    #[test]
    fn for_parallelism_clamps_to_power_of_two() {
        let stream = synthetic(100);
        let g = geom();
        assert_eq!(
            ShardedStream::for_parallelism(&stream, &g, 0, 5).shards(),
            4
        );
        assert_eq!(
            ShardedStream::for_parallelism(&stream, &g, 0, 1).shards(),
            1
        );
        assert_eq!(
            ShardedStream::for_parallelism(&stream, &g, 0, 1000).shards(),
            64
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_shards() {
        ShardedStream::build(&[], &geom(), 0, 3);
    }

    #[test]
    fn warmup_clamped_to_stream_length() {
        let stream = synthetic(10);
        let sharded = ShardedStream::build(&stream, &geom(), 50, 2);
        assert_eq!(sharded.warmup(), 10);
        assert_eq!(sharded.shard_of().len(), 0);
    }
}
