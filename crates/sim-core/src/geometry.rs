//! Validated cache dimensions and the derived address arithmetic.

use std::error::Error;
use std::fmt;

/// The dimensions of one cache level: capacity, associativity, and line size.
///
/// All three quantities must be powers of two and consistent with each other
/// (capacity divisible by `ways * line_bytes`). The number of sets is derived.
///
/// # Example
///
/// ```
/// use sim_core::CacheGeometry;
///
/// # fn main() -> Result<(), sim_core::GeometryError> {
/// // The paper's last-level cache: 4 MB, 16-way, 64-byte lines.
/// let llc = CacheGeometry::new(4 * 1024 * 1024, 16, 64)?;
/// assert_eq!(llc.sets(), 4096);
/// assert_eq!(llc.ways(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    ways: usize,
    line_bytes: u64,
    sets: usize,
    line_shift: u32,
    set_mask: u64,
}

/// Error returned when cache dimensions are inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// A dimension was zero or not a power of two.
    NotPowerOfTwo {
        /// Which dimension was invalid.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
    /// `size_bytes` is smaller than one full set (`ways * line_bytes`).
    TooSmall {
        /// Requested capacity in bytes.
        size_bytes: u64,
        /// Minimum capacity for the requested ways and line size.
        minimum: u64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NotPowerOfTwo { field, value } => {
                write!(
                    f,
                    "cache {field} must be a nonzero power of two, got {value}"
                )
            }
            GeometryError::TooSmall {
                size_bytes,
                minimum,
            } => write!(
                f,
                "cache size {size_bytes} bytes is smaller than one set ({minimum} bytes)"
            ),
        }
    }
}

impl Error for GeometryError {}

impl CacheGeometry {
    /// Creates a geometry from capacity in bytes, associativity, and line size.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if any dimension is zero or not a power of
    /// two, or if the capacity cannot hold even a single set.
    pub fn new(size_bytes: u64, ways: usize, line_bytes: u64) -> Result<Self, GeometryError> {
        fn check_pow2(field: &'static str, value: u64) -> Result<(), GeometryError> {
            if value == 0 || !value.is_power_of_two() {
                Err(GeometryError::NotPowerOfTwo { field, value })
            } else {
                Ok(())
            }
        }
        check_pow2("size_bytes", size_bytes)?;
        check_pow2("ways", ways as u64)?;
        check_pow2("line_bytes", line_bytes)?;
        let set_bytes = ways as u64 * line_bytes;
        if size_bytes < set_bytes {
            return Err(GeometryError::TooSmall {
                size_bytes,
                minimum: set_bytes,
            });
        }
        let sets = (size_bytes / set_bytes) as usize;
        Ok(CacheGeometry {
            size_bytes,
            ways,
            line_bytes,
            sets,
            line_shift: line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
        })
    }

    /// Creates a geometry directly from a set count instead of a capacity.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if any dimension is zero or not a power of two.
    pub fn from_sets(sets: usize, ways: usize, line_bytes: u64) -> Result<Self, GeometryError> {
        if sets == 0 || !sets.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo {
                field: "sets",
                value: sets as u64,
            });
        }
        Self::new(sets as u64 * ways as u64 * line_bytes, ways, line_bytes)
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity (number of ways per set).
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Line (block) size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Converts a byte address to a block (line) address.
    #[inline]
    pub fn block_of(&self, byte_addr: u64) -> u64 {
        byte_addr >> self.line_shift
    }

    /// Set index for a block address.
    #[inline]
    pub fn set_of_block(&self, block_addr: u64) -> usize {
        (block_addr & self.set_mask) as usize
    }

    /// Set index for a byte address.
    #[inline]
    pub fn set_of(&self, byte_addr: u64) -> usize {
        self.set_of_block(self.block_of(byte_addr))
    }

    /// Tag for a block address (the bits above the set index).
    #[inline]
    pub fn tag_of_block(&self, block_addr: u64) -> u64 {
        block_addr >> self.sets.trailing_zeros()
    }

    /// Reconstructs a block address from a set index and tag.
    #[inline]
    pub fn block_from_parts(&self, set: usize, tag: u64) -> u64 {
        (tag << self.sets.trailing_zeros()) | set as u64
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KB, {}-way, {}-byte lines, {} sets",
            self.size_bytes / 1024,
            self.ways,
            self.line_bytes,
            self.sets
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_llc_dimensions() {
        let g = CacheGeometry::new(4 * 1024 * 1024, 16, 64).unwrap();
        assert_eq!(g.sets(), 4096);
        assert_eq!(g.ways(), 16);
        assert_eq!(g.line_bytes(), 64);
    }

    #[test]
    fn l1_and_l2_dimensions() {
        let l1 = CacheGeometry::new(32 * 1024, 8, 64).unwrap();
        assert_eq!(l1.sets(), 64);
        let l2 = CacheGeometry::new(256 * 1024, 8, 64).unwrap();
        assert_eq!(l2.sets(), 512);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            CacheGeometry::new(3000, 4, 64),
            Err(GeometryError::NotPowerOfTwo {
                field: "size_bytes",
                ..
            })
        ));
        assert!(matches!(
            CacheGeometry::new(4096, 3, 64),
            Err(GeometryError::NotPowerOfTwo { field: "ways", .. })
        ));
        assert!(matches!(
            CacheGeometry::new(4096, 4, 48),
            Err(GeometryError::NotPowerOfTwo {
                field: "line_bytes",
                ..
            })
        ));
        assert!(matches!(
            CacheGeometry::new(0, 4, 64),
            Err(GeometryError::NotPowerOfTwo {
                field: "size_bytes",
                value: 0
            })
        ));
    }

    #[test]
    fn rejects_capacity_below_one_set() {
        let err = CacheGeometry::new(128, 4, 64).unwrap_err();
        assert_eq!(
            err,
            GeometryError::TooSmall {
                size_bytes: 128,
                minimum: 256
            }
        );
    }

    #[test]
    fn address_round_trip() {
        let g = CacheGeometry::new(64 * 1024, 4, 64).unwrap();
        for byte_addr in [0u64, 64, 4096, 0xdead_beef, u64::MAX / 2] {
            let blk = g.block_of(byte_addr);
            let set = g.set_of_block(blk);
            let tag = g.tag_of_block(blk);
            assert_eq!(g.block_from_parts(set, tag), blk);
            assert_eq!(g.set_of(byte_addr), set);
        }
    }

    #[test]
    fn from_sets_matches_new() {
        let a = CacheGeometry::from_sets(4096, 16, 64).unwrap();
        let b = CacheGeometry::new(4 * 1024 * 1024, 16, 64).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_informative() {
        let g = CacheGeometry::new(4 * 1024 * 1024, 16, 64).unwrap();
        let s = g.to_string();
        assert!(s.contains("4096 KB"));
        assert!(s.contains("16-way"));
    }

    #[test]
    fn error_display() {
        let e = CacheGeometry::new(100, 4, 64).unwrap_err();
        assert!(!e.to_string().is_empty());
    }
}
